/// pckpt_lint — determinism- and hot-path-aware static analysis for the
/// p-ckpt tree (docs/STATIC_ANALYSIS.md has the rule catalog).
///
/// Usage:
///   pckpt_lint [--root=DIR] [--rule=ID]... [--list-rules] PATH...
///   pckpt_lint src tools bench            # the CI gate invocation
///
/// Exit codes: 0 = clean, 1 = findings at error severity, 2 = usage or
/// I/O error — the same contract as bench_report. All logic lives in
/// lint::run_pckpt_lint (unit-tested in tests/lint/); this is just the
/// process shell.

#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return pckpt::lint::run_pckpt_lint(args, std::cout, std::cerr);
}
