/// bench_report — diff two pckpt-bench/1 telemetry files (or a baseline
/// directory against a results directory) and gate on perf regressions.
///
/// Usage:
///   bench_report [--tolerance=PCT] [--warn-only] OLD.json NEW.json
///   bench_report [--tolerance=PCT] [--warn-only] bench/baselines results/
///
/// Exit codes: 0 = ok, 1 = regression beyond tolerance, 2 = usage/parse
/// error. All of the logic lives in obs::run_bench_report (unit-tested in
/// tests/obs/bench_report_test.cpp); this is just the process shell.

#include <iostream>
#include <string>
#include <vector>

#include "obs/bench_json.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return pckpt::obs::run_bench_report(args, std::cout, std::cerr);
}
