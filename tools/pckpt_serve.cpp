/// pckpt_serve — the campaign-as-a-service daemon (docs/SERVING.md):
/// listens on a unix-domain socket, answers NDJSON queries from a
/// crash-safe memoized ResultStore, computes misses via the two-tier
/// planner (closed-form estimates in-process, exact DES campaigns under
/// admission control), and persists every computed payload so the next
/// identical query is a byte-identical cache hit.
///
/// Usage:
///   pckpt_serve --socket=PATH --store=PATH [--scenario=FILE]
///               [--jobs=N] [--checkpoint=DIR] [--max-inflight=N]
///               [--queue-limit=N] [--wait-ms=MS] [--compact-min-dead=BYTES]
///               [--log=PATH] [--log-level=LEVEL]
///               [--slow-query-ms=N] [--telemetry=on|off]
///
/// With --checkpoint, exact-tier campaigns commit each shard to DIR as
/// they go; after a crash/restart the same query resumes from the
/// committed prefix instead of re-simulating it (docs/CHECKPOINTING.md).
/// Telemetry (docs/OBSERVABILITY.md) is on by default: NDJSON runtime
/// records to stderr (or --log=PATH), latency histograms behind the
/// `metrics` op, and slow-query breakdowns past --slow-query-ms.

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "core/scenario.hpp"
#include "exec/fair_share.hpp"
#include "failure/system_catalog.hpp"
#include "obs/cli_flags.hpp"
#include "obs/runtime_log.hpp"
#include "serve/server.hpp"
#include "serve/telemetry.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace {

void usage() {
  std::printf(
      "usage: pckpt_serve --socket=PATH --store=PATH [options]\n"
      "  --socket=PATH            unix-domain socket to listen on\n"
      "  --store=PATH             result-store log file (created if absent)\n"
      "  --scenario=FILE          scenario INI (default: built-in Summit)\n"
      "  --jobs=N                 worker threads in the shared fair-share\n"
      "                           pool; all admitted campaigns split it\n"
      "                           round-robin (default 1)\n"
      "  --checkpoint=DIR         checkpoint exact campaigns into DIR and\n"
      "                           resume them after a restart\n"
      "  --max-inflight=N         concurrent exact campaigns (default 1)\n"
      "  --queue-limit=N          admission waiters beyond inflight "
      "(default 4)\n"
      "  --wait-ms=MS             max admission wait before a 429 "
      "(default 0)\n"
      "  --compact-min-dead=BYTES compact the store at open once dead\n"
      "                           (superseded) bytes reach BYTES "
      "(default: off)\n"
      "  --log=PATH               append runtime telemetry records to PATH\n"
      "                           (default: stderr)\n"
      "  --log-level=LEVEL        debug|info|warn|error (default info)\n"
      "  --slow-query-ms=N        log a full span breakdown for requests\n"
      "                           slower than N ms (default 0 = off)\n"
      "  --telemetry=on|off       runtime telemetry and the metrics op\n"
      "                           (default on)\n"
      "Protocol and store format: docs/SERVING.md; telemetry: "
      "docs/OBSERVABILITY.md.\n");
}

/// The scenario served when no --scenario file is given: the paper's
/// Summit machine, its Table-I workloads, the Titan failure
/// distribution and default C/R policy.
pckpt::core::Scenario builtin_scenario() {
  pckpt::core::Scenario s;
  s.machine = pckpt::workload::summit();
  s.applications = pckpt::workload::summit_workloads();
  s.system = pckpt::failure::system_by_name("titan");
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pckpt;
  std::string socket_path;
  std::string store_path;
  std::string scenario_path;
  std::string checkpoint_dir;
  std::string log_path;
  obs::LogLevel log_level = obs::LogLevel::kInfo;
  std::uint64_t slow_query_ms = 0;
  bool telemetry_on = true;
  std::size_t jobs = 1;
  serve::AdmissionConfig admission;
  serve::CompactionConfig compaction;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (const char* v = obs::cli_value(arg, "--socket=")) {
      socket_path = obs::cli_path("pckpt_serve", "--socket", v);
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--store=")) {
      store_path = obs::cli_path("pckpt_serve", "--store", v);
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--scenario=")) {
      scenario_path = obs::cli_path("pckpt_serve", "--scenario", v);
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--jobs=")) {
      jobs = static_cast<std::size_t>(
          obs::cli_u64_min("pckpt_serve", "--jobs", v, 1));
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--compact-min-dead=")) {
      compaction.on_open_min_dead_bytes =
          obs::cli_u64_min("pckpt_serve", "--compact-min-dead", v, 1);
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--checkpoint=")) {
      checkpoint_dir = obs::cli_path("pckpt_serve", "--checkpoint", v);
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--max-inflight=")) {
      admission.max_inflight = static_cast<std::size_t>(
          obs::cli_u64_min("pckpt_serve", "--max-inflight", v, 1));
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--queue-limit=")) {
      admission.queue_limit = static_cast<std::size_t>(
          obs::cli_u64("pckpt_serve", "--queue-limit", v));
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--wait-ms=")) {
      admission.wait_ms = obs::cli_u64("pckpt_serve", "--wait-ms", v);
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--log=")) {
      log_path = obs::cli_path("pckpt_serve", "--log", v);
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--log-level=")) {
      if (!obs::parse_log_level(v, log_level)) {
        std::fprintf(stderr,
                     "pckpt_serve: --log-level: expected "
                     "debug|info|warn|error, got '%s'\n",
                     v);
        return 2;
      }
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--slow-query-ms=")) {
      slow_query_ms = obs::cli_u64("pckpt_serve", "--slow-query-ms", v);
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--telemetry=")) {
      if (std::strcmp(v, "on") == 0) {
        telemetry_on = true;
      } else if (std::strcmp(v, "off") == 0) {
        telemetry_on = false;
      } else {
        std::fprintf(stderr,
                     "pckpt_serve: --telemetry: expected on|off, got '%s'\n",
                     v);
        return 2;
      }
      continue;
    }
    std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
    usage();
    return 2;
  }
  if (socket_path.empty() || store_path.empty()) {
    usage();
    return 2;
  }

  try {
    obs::RuntimeLog log(log_level);
    if (!log_path.empty() && !log.open_file(log_path)) {
      std::fprintf(stderr, "pckpt_serve: cannot open --log file %s\n",
                   log_path.c_str());
      return 1;
    }
    std::optional<serve::Telemetry> telemetry;
    if (telemetry_on) telemetry.emplace(log, slow_query_ms);

    const core::Scenario scenario =
        scenario_path.empty()
            ? builtin_scenario()
            : core::load_scenario(core::ConfigFile::load(scenario_path));
    serve::ResultStore store(store_path, compaction);
    const auto stats = store.stats();
    if (telemetry) {
      telemetry->record_recover("store", stats.replayed_journal,
                                stats.truncated_bytes, stats.log_records,
                                stats.recover_us);
      serve::Telemetry& t = *telemetry;
      store.set_commit_hook([&t](std::size_t frames, std::uint64_t bytes,
                                 std::uint64_t us) {
        t.record_store_commit(frames, bytes, us);
      });
    }
    // One shared worker pool for every exact-tier campaign: admitted
    // campaigns enqueue shards into per-campaign queues that the pool
    // drains round-robin, so --jobs is a daemon-wide knob and a big
    // campaign cannot starve a small one (docs/SERVING.md).
    exec::FairShareScheduler scheduler(jobs);
    serve::Planner planner(scenario, admission, store, checkpoint_dir,
                           &scheduler);
    serve::Server server(socket_path, planner,
                         telemetry ? &*telemetry : nullptr);
    if (telemetry) {
      telemetry->log()
          .info("serve", "serve.start")
          .add("version", serve::kServeVersion)
          .add("socket", socket_path)
          .add("store", store_path)
          .add("records", static_cast<std::uint64_t>(stats.records))
          .add("jobs", static_cast<std::uint64_t>(jobs))
          .add("slow_query_ms", slow_query_ms);
    }
    std::printf("pckpt_serve: listening on %s, store %s (%zu records%s)\n",
                socket_path.c_str(), store_path.c_str(), stats.records,
                stats.replayed_journal ? ", journal replayed" : "");
    std::fflush(stdout);
    server.run();
    if (telemetry) {
      telemetry->log()
          .info("serve", "serve.stop")
          .add("socket", socket_path);
    }
    std::printf("pckpt_serve: shut down\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pckpt_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
