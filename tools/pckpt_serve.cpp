/// pckpt_serve — the campaign-as-a-service daemon (docs/SERVING.md):
/// listens on a unix-domain socket, answers NDJSON queries from a
/// crash-safe memoized ResultStore, computes misses via the two-tier
/// planner (closed-form estimates in-process, exact DES campaigns under
/// admission control), and persists every computed payload so the next
/// identical query is a byte-identical cache hit.
///
/// Usage:
///   pckpt_serve --socket=PATH --store=PATH [--scenario=FILE]
///               [--checkpoint=DIR] [--max-inflight=N] [--queue-limit=N]
///               [--wait-ms=MS]
///
/// With --checkpoint, exact-tier campaigns commit each shard to DIR as
/// they go; after a crash/restart the same query resumes from the
/// committed prefix instead of re-simulating it (docs/CHECKPOINTING.md).

#include <cstdio>
#include <cstring>
#include <string>

#include "core/scenario.hpp"
#include "failure/system_catalog.hpp"
#include "obs/cli_flags.hpp"
#include "serve/server.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace {

void usage() {
  std::printf(
      "usage: pckpt_serve --socket=PATH --store=PATH [options]\n"
      "  --socket=PATH            unix-domain socket to listen on\n"
      "  --store=PATH             result-store log file (created if absent)\n"
      "  --scenario=FILE          scenario INI (default: built-in Summit)\n"
      "  --checkpoint=DIR         checkpoint exact campaigns into DIR and\n"
      "                           resume them after a restart\n"
      "  --max-inflight=N         concurrent exact campaigns (default 1)\n"
      "  --queue-limit=N          admission waiters beyond inflight "
      "(default 4)\n"
      "  --wait-ms=MS             max admission wait before a 429 "
      "(default 0)\n"
      "Protocol and store format: docs/SERVING.md.\n");
}

/// The scenario served when no --scenario file is given: the paper's
/// Summit machine, its Table-I workloads, the Titan failure
/// distribution and default C/R policy.
pckpt::core::Scenario builtin_scenario() {
  pckpt::core::Scenario s;
  s.machine = pckpt::workload::summit();
  s.applications = pckpt::workload::summit_workloads();
  s.system = pckpt::failure::system_by_name("titan");
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pckpt;
  std::string socket_path;
  std::string store_path;
  std::string scenario_path;
  std::string checkpoint_dir;
  serve::AdmissionConfig admission;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (const char* v = obs::cli_value(arg, "--socket=")) {
      socket_path = obs::cli_path("pckpt_serve", "--socket", v);
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--store=")) {
      store_path = obs::cli_path("pckpt_serve", "--store", v);
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--scenario=")) {
      scenario_path = obs::cli_path("pckpt_serve", "--scenario", v);
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--checkpoint=")) {
      checkpoint_dir = obs::cli_path("pckpt_serve", "--checkpoint", v);
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--max-inflight=")) {
      admission.max_inflight = static_cast<std::size_t>(
          obs::cli_u64_min("pckpt_serve", "--max-inflight", v, 1));
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--queue-limit=")) {
      admission.queue_limit = static_cast<std::size_t>(
          obs::cli_u64("pckpt_serve", "--queue-limit", v));
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--wait-ms=")) {
      admission.wait_ms = obs::cli_u64("pckpt_serve", "--wait-ms", v);
      continue;
    }
    std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
    usage();
    return 2;
  }
  if (socket_path.empty() || store_path.empty()) {
    usage();
    return 2;
  }

  try {
    const core::Scenario scenario =
        scenario_path.empty()
            ? builtin_scenario()
            : core::load_scenario(core::ConfigFile::load(scenario_path));
    serve::ResultStore store(store_path);
    const auto stats = store.stats();
    serve::Planner planner(scenario, admission, store, checkpoint_dir);
    serve::Server server(socket_path, planner);
    std::printf("pckpt_serve: listening on %s, store %s (%zu records%s)\n",
                socket_path.c_str(), store_path.c_str(), stats.records,
                stats.replayed_journal ? ", journal replayed" : "");
    std::fflush(stdout);
    server.run();
    std::printf("pckpt_serve: shut down\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pckpt_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
