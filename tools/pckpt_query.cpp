/// pckpt_query — CLI client for the pckpt_serve daemon: builds one
/// NDJSON request from flags, streams the daemon's response lines, and
/// exits nonzero on an `ev:error` reply. Progress events go to stderr
/// so stdout carries exactly the final result line (or, with
/// --payload-only, the raw memoized payload bytes — the form the
/// byte-identity tests diff).
///
/// Usage:
///   pckpt_query --socket=PATH --model=M --app=NAME [options]
///   pckpt_query --socket=PATH --batch=FILE [--payload-only]
///   pckpt_query --socket=PATH --ping | --stats | --metrics [--prom]
///                             | --shutdown
///
/// --batch sends one `pckpt-serve/2` batch request built from FILE
/// (one query object per line, the wire format of docs/SERVING.md);
/// the daemon answers every entry in order over a single round trip.
/// Entry lines print to stdout (--payload-only: just the payload bytes
/// of successful entries); failed entries go to stderr and make the
/// exit code 1.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "exec/result_sink.hpp"
#include "obs/cli_flags.hpp"
#include "obs/json_value.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

constexpr unsigned kFlagMask =
    pckpt::obs::kCliRuns | pckpt::obs::kCliSeed | pckpt::obs::kCliSystem;

void usage() {
  std::printf(
      "usage: pckpt_query --socket=PATH (--ping|--stats|--metrics"
      "|--shutdown | --model=M --app=NAME [options])\n"
      "  --socket=PATH            daemon unix-domain socket\n"
      "  --metrics                telemetry snapshot (latency quantiles)\n"
      "  --prom                   with --metrics: print the Prometheus\n"
      "                           text exposition instead of JSON\n"
      "  --batch=FILE             send every line of FILE (one query\n"
      "                           object per line) as one batch request\n"
      "  --model=M                B|M1|M2|P1|P2\n"
      "  --app=NAME               workload name (paper Table I)\n"
      "  --mode=estimate|exact    tier (default estimate)\n"
      "%s"
      "  --progress               stream shard progress to stderr\n"
      "  --payload-only           print only the payload bytes\n"
      "  --set KEY=VALUE          numeric C/R policy override "
      "(repeatable)\n"
      "Wire protocol: docs/SERVING.md.\n",
      pckpt::obs::cli_common_help(kFlagMask).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pckpt;
  std::string socket_path;
  std::string batch_path;
  std::string mode = "estimate";
  std::string model;
  std::string app;
  std::string op = "query";
  bool progress = false;
  bool payload_only = false;
  bool prom_only = false;
  obs::CommonFlags flags;
  flags.system.clear();  // empty = daemon scenario's failure system
  exec::JsonlRow overrides;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (const char* v = obs::cli_value(arg, "--socket=")) {
      socket_path = obs::cli_path("pckpt_query", "--socket", v);
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--batch=")) {
      batch_path = obs::cli_path("pckpt_query", "--batch", v);
      op = "batch";
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--mode=")) {
      mode = v;
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--model=")) {
      model = v;
      continue;
    }
    if (const char* v = obs::cli_value(arg, "--app=")) {
      app = v;
      continue;
    }
    if (arg == "--ping" || arg == "--stats" || arg == "--metrics" ||
        arg == "--shutdown") {
      op = arg.substr(2);
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg == "--payload-only") {
      payload_only = true;
    } else if (arg == "--prom") {
      prom_only = true;
    } else if (arg == "--set" && i + 1 < argc) {
      const std::string kv = argv[++i];
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "pckpt_query: --set: expected KEY=VALUE\n");
        return 2;
      }
      overrides.add(kv.substr(0, eq),
                    obs::cli_double("pckpt_query", "--set",
                                    kv.c_str() + eq + 1));
    } else if (!obs::cli_consume_common("pckpt_query", arg, kFlagMask,
                                        flags)) {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (socket_path.empty() || (op == "query" && (model.empty() || app.empty()))) {
    usage();
    return 2;
  }

  try {
    serve::Client client(socket_path);
    exec::JsonlRow req;
    req.add("op", op);
    if (op == "query") {
      req.add("mode", mode);
      req.add("model", model);
      req.add("app", app);
      if (!flags.system.empty()) req.add("system", flags.system);
      req.add("runs", static_cast<std::uint64_t>(flags.runs));
      req.add("seed", flags.seed);
      if (progress) req.add("progress", true);
      // Splice policy overrides into the same object: strip the
      // override row's braces and append its members.
      const std::string extra = overrides.str();
      std::string line = req.str();
      if (extra.size() > 2) {
        line.pop_back();
        line += ',';
        line.append(extra, 1, extra.size() - 2);
        line += '}';
      }
      client.send_line(line);
    } else if (op == "batch") {
      // Each non-blank line of the file is one query object; the batch
      // request embeds them verbatim, so the daemon's parser (not this
      // client) is the single validator of entry syntax.
      std::ifstream in(batch_path);
      if (!in) {
        std::fprintf(stderr, "pckpt_query: cannot open --batch file %s\n",
                     batch_path.c_str());
        return 1;
      }
      std::string request = "{\"op\":\"batch\",\"queries\":[";
      std::string entry;
      std::size_t entries = 0;
      while (std::getline(in, entry)) {
        if (entry.empty()) continue;
        if (entries++ > 0) request += ',';
        request += entry;
      }
      request += "]}";
      if (entries == 0) {
        std::fprintf(stderr, "pckpt_query: --batch file %s has no queries\n",
                     batch_path.c_str());
        return 2;
      }
      client.send_line(request);
    } else {
      client.send_line(req.str());
    }

    int rc = 1;  // no terminal line = failure
    bool batch_failed = false;
    while (auto line = client.read_line()) {
      if (line->rfind("{\"ev\":\"progress\"", 0) == 0) {
        std::fprintf(stderr, "%s\n", line->c_str());
        continue;
      }
      if (line->rfind("{\"ev\":\"error\"", 0) == 0) {
        std::fprintf(stderr, "pckpt_query: %s\n", line->c_str());
        return 1;
      }
      if (op == "batch") {
        if (line->rfind("{\"ev\":\"entry\"", 0) == 0) {
          if (const auto payload = serve::extract_payload(*line)) {
            if (payload_only) {
              std::printf("%.*s\n", static_cast<int>(payload->size()),
                          payload->data());
            } else {
              std::printf("%s\n", line->c_str());
            }
          } else {
            // Failed entry (`status` != 200): keep stdout clean for the
            // successes, surface the failure, and exit nonzero.
            std::fprintf(stderr, "pckpt_query: %s\n", line->c_str());
            batch_failed = true;
          }
          continue;
        }
        if (line->rfind("{\"ev\":\"batch\"", 0) == 0) {
          if (!payload_only) std::printf("%s\n", line->c_str());
          rc = batch_failed ? 1 : 0;
          break;
        }
      }
      if (payload_only) {
        if (const auto payload = serve::extract_payload(*line)) {
          std::printf("%.*s\n", static_cast<int>(payload->size()),
                      payload->data());
          rc = 0;
          break;
        }
      }
      if (prom_only && op == "metrics") {
        // The Prometheus text rides inside the JSON reply as the
        // escaped `prom` member; unescape and print it verbatim.
        const obs::JsonValue root = obs::parse_json(*line);
        const obs::JsonValue* prom = root.get("prom");
        if (prom == nullptr || !prom->is_string()) {
          std::fprintf(stderr,
                       "pckpt_query: metrics reply has no 'prom' member\n");
          return 1;
        }
        std::fputs(prom->string.c_str(), stdout);
        rc = 0;
        break;
      }
      std::printf("%s\n", line->c_str());
      rc = 0;
      break;  // pong / stats / bye / result are all single terminal lines
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pckpt_query: %s\n", e.what());
    return 1;
  }
}
