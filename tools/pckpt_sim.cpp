/// pckpt_sim — the command-line front end of the simulation framework:
/// load a scenario from a configuration file (the Fig.-3 input), run a
/// paired campaign of the requested models over every application in the
/// scenario, and print the overhead/FT summary (optionally CSV).
///
/// Usage:
///   pckpt_sim <scenario.ini> [--models=B,M1,M2,P1,P2] [--runs=N]
///             [--seed=S] [--csv]

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/tables.hpp"
#include "core/campaign.hpp"
#include "core/simulation.hpp"
#include "failure/lead_time_model.hpp"
#include "core/scenario.hpp"

namespace {

void usage() {
  std::printf(
      "usage: pckpt_sim <scenario.ini> [options]\n"
      "  --models=B,M1,M2,P1,P2   comma-separated models (default: all)\n"
      "  --runs=N                 paired runs per model (default 200)\n"
      "  --seed=S                 base seed (default 2022)\n"
      "  --csv                    CSV instead of aligned table\n"
      "The scenario file format is documented in "
      "src/core/scenario.hpp and configs/summit.ini.\n");
}

std::vector<pckpt::core::ModelKind> parse_models(const std::string& list) {
  std::vector<pckpt::core::ModelKind> kinds;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const auto comma = list.find(',', pos);
    const std::string name =
        list.substr(pos, comma == std::string::npos ? list.size() - pos
                                                    : comma - pos);
    if (!name.empty()) kinds.push_back(pckpt::core::model_from_string(name));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (kinds.empty()) throw std::invalid_argument("--models: empty list");
  return kinds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pckpt;
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0) {
    usage();
    return argc < 2 ? 2 : 0;
  }

  std::string models_arg = "B,M1,M2,P1,P2";
  std::size_t runs = 200;
  std::uint64_t seed = 2022;
  bool csv = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--models=", 0) == 0) {
      models_arg = arg.substr(9);
    } else if (arg.rfind("--runs=", 0) == 0) {
      runs = std::strtoul(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--csv") {
      csv = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  try {
    const auto scenario =
        core::load_scenario(core::ConfigFile::load(argv[1]));
    const auto kinds = parse_models(models_arg);
    const auto storage = scenario.machine.make_storage();
    const auto leads = failure::LeadTimeModel::summit_default();

    std::printf("pckpt_sim — %s, failure distribution %s, %zu paired runs\n\n",
                scenario.machine.name.c_str(), scenario.system.name.c_str(),
                runs);

    analysis::Table t({"application", "model", "ckpt(h)", "recomp(h)",
                       "recov(h)", "migr(h)", "total(h)", "%ofB", "FT",
                       "fails/run", "makespan(h)"});
    for (const auto& app : scenario.applications) {
      core::RunSetup setup;
      setup.app = &app;
      setup.machine = &scenario.machine;
      setup.storage = &storage;
      setup.system = &scenario.system;
      setup.leads = &leads;

      // The base model is always computed for normalization.
      auto base_cfg = scenario.cr;
      base_cfg.kind = core::ModelKind::kB;
      const auto base = core::run_campaign(setup, base_cfg, runs, seed);

      for (auto kind : kinds) {
        auto cfg = scenario.cr;
        cfg.kind = kind;
        const auto r = kind == core::ModelKind::kB
                           ? base
                           : core::run_campaign(setup, cfg, runs, seed);
        t.add_row();
        t.cell(app.name)
            .cell(std::string(core::to_string(kind)))
            .cell(r.checkpoint_h(), 3)
            .cell(r.recomputation_h(), 3)
            .cell(r.recovery_h(), 3)
            .cell(r.migration_h(), 3)
            .cell(r.total_overhead_h(), 3)
            .cell_percent(100.0 * r.total_overhead_s.mean() /
                              base.total_overhead_s.mean(),
                          1)
            .cell(r.pooled_ft_ratio(), 3)
            .cell(r.failures, 2)
            .cell(r.makespan_s.mean() / 3600.0, 1);
      }
    }
    if (csv) {
      t.print_csv(std::cout);
    } else {
      t.print(std::cout);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pckpt_sim: %s\n", e.what());
    return 1;
  }
  return 0;
}
