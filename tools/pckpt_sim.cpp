/// pckpt_sim — the command-line front end of the simulation framework:
/// load a scenario from a configuration file (the Fig.-3 input), run a
/// paired campaign of the requested models over every application in the
/// scenario, and print the overhead/FT summary (optionally CSV).
///
/// Usage:
///   pckpt_sim <scenario.ini> [--models=B,M1,M2,P1,P2] [--runs=N]
///             [--seed=S] [--jobs=N] [--jsonl=PATH] [--csv]
///             [--trace=PATH] [--trace-format=jsonl|chrome] [--profile]
///             [--checkpoint=DIR [--resume]]
///
/// With --checkpoint, every campaign commits each completed shard to
/// DIR (one durable log per (app, model) campaign, keyed by its
/// canonical query text); --resume picks up the committed prefix of an
/// interrupted invocation instead of re-simulating it, and the final
/// table/JSONL/trace bytes are identical to an uninterrupted run at any
/// --jobs (docs/CHECKPOINTING.md). Checkpoints are removed once the run
/// completes.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/tables.hpp"
#include "ckpt/campaign_ckpt.hpp"
#include "core/campaign.hpp"
#include "core/simulation.hpp"
#include "exec/result_sink.hpp"
#include "exec/thread_pool.hpp"
#include "failure/lead_time_model.hpp"
#include "obs/cli_flags.hpp"
#include "obs/obs.hpp"
#include "core/scenario.hpp"
#include "serve/cache_key.hpp"

namespace {

// The common flag block shared with the bench harness and the serve
// tools (src/obs/cli_flags.hpp): strict validation, exit(2) on garbage.
constexpr unsigned kFlagMask = pckpt::obs::kCliRuns | pckpt::obs::kCliSeed |
                               pckpt::obs::kCliJobs | pckpt::obs::kCliJsonl |
                               pckpt::obs::kCliCsv | pckpt::obs::kCliTrace |
                               pckpt::obs::kCliProfile;

void usage() {
  std::printf(
      "usage: pckpt_sim <scenario.ini> [options]\n"
      "  --models=B,M1,M2,P1,P2   comma-separated models (default: all)\n"
      "  --checkpoint=DIR         commit each completed campaign shard to "
      "DIR\n"
      "  --resume                 resume committed shards from a previous\n"
      "                           interrupted --checkpoint run\n"
      "%s"
      "The scenario file format is documented in "
      "src/core/scenario.hpp and configs/summit.ini.\n",
      pckpt::obs::cli_common_help(kFlagMask).c_str());
}

std::vector<pckpt::core::ModelKind> parse_models(const std::string& list) {
  std::vector<pckpt::core::ModelKind> kinds;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const auto comma = list.find(',', pos);
    const std::string name =
        list.substr(pos, comma == std::string::npos ? list.size() - pos
                                                    : comma - pos);
    if (!name.empty()) kinds.push_back(pckpt::core::model_from_string(name));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (kinds.empty()) throw std::invalid_argument("--models: empty list");
  return kinds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pckpt;
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0) {
    usage();
    return argc < 2 ? 2 : 0;
  }

  std::string models_arg = "B,M1,M2,P1,P2";
  std::string checkpoint_dir;
  bool resume = false;
  obs::CommonFlags flags;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--models=", 0) == 0) {
      models_arg = arg.substr(9);
    } else if (const char* v = obs::cli_value(arg, "--checkpoint=")) {
      checkpoint_dir = obs::cli_path("pckpt_sim", "--checkpoint", v);
    } else if (arg == "--resume") {
      resume = true;
    } else if (!obs::cli_consume_common("pckpt_sim", arg, kFlagMask, flags)) {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (resume && checkpoint_dir.empty()) {
    std::fprintf(stderr, "pckpt_sim: --resume requires --checkpoint=DIR\n");
    return 2;
  }
  const std::size_t runs = flags.runs;
  const std::uint64_t seed = flags.seed;
  const std::size_t jobs = flags.jobs;
  const std::string& jsonl_path = flags.jsonl;
  const bool csv = flags.csv;
  const std::string& trace_path = flags.trace;
  const obs::TraceFormat trace_format = flags.trace_format;
  const bool profile = flags.profile;

  try {
    const auto scenario =
        core::load_scenario(core::ConfigFile::load(argv[1]));
    const auto kinds = parse_models(models_arg);
    const auto storage = scenario.machine.make_storage();
    const auto leads = failure::LeadTimeModel::summit_default();

    // Campaign execution engine: a shared thread pool when more than one
    // worker is useful, the serial executor otherwise.  Either way the
    // trials run through the same fixed shard plan, so results are
    // bit-identical for every --jobs value.
    const std::size_t workers = exec::resolve_jobs(jobs);
    std::unique_ptr<exec::ThreadPool> pool;
    std::unique_ptr<exec::Executor> executor;
    if (workers > 1) {
      pool = std::make_unique<exec::ThreadPool>(workers);
      executor = std::make_unique<exec::ThreadPoolExecutor>(*pool);
    } else {
      executor = std::make_unique<exec::SerialExecutor>();
    }
    std::unique_ptr<exec::JsonlSink> sink;
    if (!jsonl_path.empty()) {
      sink = std::make_unique<exec::JsonlSink>(jsonl_path, /*append=*/true);
    }
    std::ofstream trace_out;
    std::unique_ptr<obs::TraceWriter> trace_writer;
    if (!trace_path.empty()) {
      trace_out.open(trace_path);
      if (!trace_out) {
        std::fprintf(stderr, "pckpt_sim: --trace: cannot open '%s'\n",
                     trace_path.c_str());
        return 2;
      }
      trace_writer = obs::make_trace_writer(trace_format, trace_out);
    }
    obs::MetricsRegistry trace_metrics;
    obs::Profiler profiler;
    if (profile) profiler.attach();
    const auto campaign_t0 = std::chrono::steady_clock::now();

    // One checkpoint log per (app, model) campaign, keyed by the same
    // canonical query text the serve layer hashes — so the identity of
    // a campaign is defined once, project-wide. Files are kept until
    // the whole invocation succeeds: a crash in a later campaign must
    // not discard earlier campaigns' committed shards.
    std::vector<std::unique_ptr<ckpt::CampaignCheckpointer>> checkpoints;
    const auto make_ckpt =
        [&](const workload::Application& app,
            const core::CrConfig& cfg) -> core::CampaignCheckpointSink* {
      if (checkpoint_dir.empty()) return nullptr;
      const auto q = serve::canonicalize(
          "exact", core::to_string(cfg.kind), runs, seed, scenario.machine,
          app, scenario.system, cfg);
      checkpoints.push_back(std::make_unique<ckpt::CampaignCheckpointer>(
          checkpoint_dir, serve::canonical_text(q), runs, resume));
      return checkpoints.back().get();
    };

    std::printf("pckpt_sim — %s, failure distribution %s, %zu paired runs, "
                "%zu worker(s)\n\n",
                scenario.machine.name.c_str(), scenario.system.name.c_str(),
                runs, workers);

    analysis::Table t({"application", "model", "ckpt(h)", "recomp(h)",
                       "recov(h)", "migr(h)", "total(h)", "%ofB", "FT",
                       "fails/run", "makespan(h)"});
    for (const auto& app : scenario.applications) {
      core::RunSetup setup;
      setup.app = &app;
      setup.machine = &scenario.machine;
      setup.storage = &storage;
      setup.system = &scenario.system;
      setup.leads = &leads;

      // The base model is always computed for normalization. Its trace is
      // emitted only when B is among the requested models.
      const bool want_base_trace =
          trace_writer != nullptr &&
          std::find(kinds.begin(), kinds.end(), core::ModelKind::kB) !=
              kinds.end();
      auto base_cfg = scenario.cr;
      base_cfg.kind = core::ModelKind::kB;
      obs::CampaignTraceCollector base_collector;
      const auto base = core::run_campaign(
          setup, base_cfg, runs, seed, *executor, {},
          want_base_trace ? &base_collector : nullptr,
          make_ckpt(app, base_cfg));
      if (want_base_trace) {
        base_collector.write(*trace_writer, app.name + "/B");
        base_collector.summarize(trace_metrics);
      }

      for (auto kind : kinds) {
        auto cfg = scenario.cr;
        cfg.kind = kind;
        obs::CampaignTraceCollector collector;
        const bool trace_this =
            trace_writer != nullptr && kind != core::ModelKind::kB;
        const auto r =
            kind == core::ModelKind::kB
                ? base
                : core::run_campaign(setup, cfg, runs, seed, *executor, {},
                                     trace_this ? &collector : nullptr,
                                     make_ckpt(app, cfg));
        if (trace_this) {
          collector.write(*trace_writer,
                          app.name + "/" + std::string(core::to_string(kind)));
          collector.summarize(trace_metrics);
        }
        t.add_row();
        t.cell(app.name)
            .cell(std::string(core::to_string(kind)))
            .cell(r.checkpoint_h(), 3)
            .cell(r.recomputation_h(), 3)
            .cell(r.recovery_h(), 3)
            .cell(r.migration_h(), 3)
            .cell(r.total_overhead_h(), 3)
            .cell_percent(100.0 * r.total_overhead_s.mean() /
                              base.total_overhead_s.mean(),
                          1)
            .cell(r.pooled_ft_ratio(), 3)
            .cell(r.failures_per_run(), 2)
            .cell(r.makespan_s.mean() / 3600.0, 1);
        if (sink) {
          exec::JsonlRow row;
          row.add("bench", "pckpt_sim");
          row.add("scenario", scenario.machine.name);
          row.add("system", scenario.system.name);
          row.add("app", app.name);
          row.add("model", core::to_string(kind));
          row.add("runs", runs);
          row.add("seed", seed);
          row.add("jobs", workers);
          row.add("ckpt_h", r.checkpoint_h());
          row.add("recomp_h", r.recomputation_h());
          row.add("recov_h", r.recovery_h());
          row.add("migr_h", r.migration_h());
          row.add("total_h", r.total_overhead_h());
          row.add("pct_of_base", 100.0 * r.total_overhead_s.mean() /
                                     base.total_overhead_s.mean());
          row.add("ft_ratio", r.pooled_ft_ratio());
          row.add("failures_per_run", r.failures_per_run());
          row.add("makespan_h", r.makespan_s.mean() / 3600.0);
          sink->write(row);
        }
      }
    }
    const double campaign_wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      campaign_t0)
            .count();
    obs::ProfileReport prof_report;
    if (profile) {
      profiler.detach();
      prof_report = profiler.report();
      obs::merge_profile(prof_report, trace_metrics);
    }
    if (csv) {
      t.print_csv(std::cout);
    } else {
      t.print(std::cout);
    }
    if (trace_writer) {
      trace_writer->finish();
      std::printf("\ntrace: %s (%s, %llu events)\n", trace_path.c_str(),
                  std::string(obs::to_string(trace_format)).c_str(),
                  static_cast<unsigned long long>(
                      trace_writer->events_written()));
    }
    if (trace_writer || profile) {
      std::fputs(trace_metrics.to_string().c_str(), stdout);
    }
    if (profile) {
      // Self-times partition the instrumented host time, so this sum
      // against the measured wall is the attribution-coverage figure the
      // docs target (>= 90% of campaign wall accounted for).
      const double covered = prof_report.covered_s();
      std::printf("\nprofile: attributed %.3f s of %.3f s campaign wall "
                  "(%.1f%%) across %zu thread record(s)\n",
                  covered, campaign_wall_s,
                  campaign_wall_s > 0.0 ? 100.0 * covered / campaign_wall_s
                                        : 0.0,
                  prof_report.threads);
    }
    // Every output byte is flushed; the interrupted-run insurance is no
    // longer needed.
    for (const auto& c : checkpoints) c->remove();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pckpt_sim: %s\n", e.what());
    return 1;
  }
  return 0;
}
