#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "exec/result_sink.hpp"

/// \file runtime_log.hpp
/// `obs::RuntimeLog` — the structured runtime logger behind the serving
/// and checkpoint daemons (docs/OBSERVABILITY.md, "Runtime telemetry").
/// Where the trace layer records *simulated* time and the profiler
/// records *host* time, this layer records *operational* events: daemon
/// lifecycle, per-request outcomes, journal replays, slow queries.
///
/// Record format: NDJSON, one object per line, fixed prefix then
/// caller fields in insertion order:
///
///   {"ts_ms":<u64>,"seq":<u64>,"level":"info","component":"serve",
///    "event":"request.done",...}
///
/// - `ts_ms`: milliseconds since the Unix epoch from the injected
///   clock. The *default* clock is the tree's single waived wall-clock
///   site (the lint rule stays at one waiver); tests inject a fake
///   clock and assert byte-stable output.
/// - `seq`: monotonic per-logger sequence number, assigned at emit
///   under the sink lock — total order over the file even with
///   concurrent handler threads.
/// - `level`: debug < info < warn < error; records below the
///   configured minimum are dropped before any field is rendered.
///
/// Sinks: stderr (default) or an append-mode file. Emission is
/// mutex-serialized and line-buffered, so concurrent records never
/// interleave mid-line and a crashed daemon leaves a valid NDJSON
/// prefix.
///
/// Disabled path: subsystems hold a `RuntimeLog*` that may be null and
/// guard call sites with `log && log->enabled(level)` — one pointer
/// test, mirroring the profiler's detached ScopedTimer contract.

namespace pckpt::obs {

enum class LogLevel : unsigned char { kDebug = 0, kInfo, kWarn, kError };

std::string_view to_string(LogLevel level) noexcept;

/// Parse "debug"/"info"/"warn"/"error"; returns false on anything else.
bool parse_log_level(std::string_view text, LogLevel& out) noexcept;

class RuntimeLog {
 public:
  /// Milliseconds since the Unix epoch.
  using ClockFn = std::function<std::uint64_t()>;

  /// Starts with the stderr sink and the wall clock.
  explicit RuntimeLog(LogLevel min_level = LogLevel::kInfo);
  ~RuntimeLog();

  RuntimeLog(const RuntimeLog&) = delete;
  RuntimeLog& operator=(const RuntimeLog&) = delete;

  /// Route records to `path` (append mode, line-buffered) instead of
  /// stderr. Returns false (sink unchanged) when the file cannot be
  /// opened.
  bool open_file(const std::string& path);

  void set_min_level(LogLevel level) noexcept { min_level_ = level; }
  LogLevel min_level() const noexcept { return min_level_; }

  /// Replace the timestamp source (tests; deterministic replay).
  void set_clock(ClockFn clock);

  bool enabled(LogLevel level) const noexcept {
    return static_cast<unsigned char>(level) >=
           static_cast<unsigned char>(min_level_);
  }

  /// Records emitted since construction (post-filter).
  std::uint64_t records() const noexcept {
    return seq_.load(std::memory_order_relaxed);
  }

  /// Builder for one record. Obtained from `record()`; `add()` fields,
  /// then `commit()` (or let the destructor commit). A builder from a
  /// filtered-out level renders nothing and commits nothing.
  class Record {
   public:
    ~Record() { commit(); }
    Record(Record&& o) noexcept : log_(o.log_), row_(std::move(o.row_)) {
      o.log_ = nullptr;
    }
    Record(const Record&) = delete;
    Record& operator=(const Record&) = delete;
    Record& operator=(Record&&) = delete;

    template <typename T>
    Record& add(std::string_view key, T value) {
      if (log_ != nullptr) row_.add(key, value);
      return *this;
    }
    Record& add_raw(std::string_view key, std::string_view json) {
      if (log_ != nullptr) row_.add_raw(key, json);
      return *this;
    }

    /// Emit the record (idempotent; no-op for filtered levels).
    void commit() {
      if (log_ == nullptr) return;
      log_->emit(row_);
      log_ = nullptr;
    }

   private:
    friend class RuntimeLog;
    Record(RuntimeLog* log, LogLevel level, std::string_view component,
           std::string_view event);

    RuntimeLog* log_ = nullptr;  ///< null = below min level, drop
    exec::JsonlRow row_;
  };

  /// Start a record at `level` for `component` (subsystem slug: "serve",
  /// "ckpt", ...) and `event` (dotted name: "request.done").
  Record record(LogLevel level, std::string_view component,
                std::string_view event) {
    return Record(enabled(level) ? this : nullptr, level, component, event);
  }

  Record debug(std::string_view component, std::string_view event) {
    return record(LogLevel::kDebug, component, event);
  }
  Record info(std::string_view component, std::string_view event) {
    return record(LogLevel::kInfo, component, event);
  }
  Record warn(std::string_view component, std::string_view event) {
    return record(LogLevel::kWarn, component, event);
  }
  Record error(std::string_view component, std::string_view event) {
    return record(LogLevel::kError, component, event);
  }

  /// Current clock reading (ms since epoch) — shared with callers that
  /// stamp durations (e.g. uptime) so their timeline matches the log's.
  std::uint64_t now_ms() const;

 private:
  void emit(const exec::JsonlRow& row);

  LogLevel min_level_;
  std::atomic<std::uint64_t> seq_{0};
  mutable std::mutex mu_;  ///< sink + clock swap
  ClockFn clock_;              // guarded_by(mu_)
  std::FILE* file_ = nullptr;  // guarded_by(mu_) owned file sink; null = stderr
};

}  // namespace pckpt::obs
