#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>

#include "obs/event.hpp"

/// \file trace_writer.hpp
/// Serialization back ends for trace events. Two formats:
///
///  - JSONL (`JsonlTraceWriter`): one JSON object per event, in the
///    order written. The reference format — golden-trace tests diff it
///    line by line, and the `--jobs` byte-identity contract is stated
///    over it. Schema: docs/OBSERVABILITY.md.
///  - Chrome `trace_event` (`ChromeTraceWriter`): a JSON document
///    loadable in Perfetto / `chrome://tracing`. Each trial maps to a
///    process (pid), each simulated node/process lane to a named thread
///    (tid), spans to `ph:"X"` duration events and instants to
///    `ph:"i"`.
///
/// Writers are single-threaded by design: campaigns buffer events per
/// trial and serialize them from one thread in ascending trial order
/// (obs/collector.hpp), so the emitted bytes are independent of worker
/// count.

namespace pckpt::obs {

enum class TraceFormat { kJsonl, kChrome };

/// Parse `jsonl` / `chrome`; throws std::invalid_argument otherwise.
TraceFormat trace_format_from_string(std::string_view name);
std::string_view to_string(TraceFormat f);

class TraceWriter {
 public:
  virtual ~TraceWriter() = default;

  /// Begin a named campaign (e.g. "xgc/P2"). Events written afterwards
  /// belong to it; a writer may serialize several campaigns in
  /// sequence into one file.
  virtual void begin_campaign(std::string_view label) = 0;

  virtual void write(const Event& e) = 0;

  /// Flush any trailing structure (idempotent; called once after the
  /// last event). Chrome traces are not valid JSON until finished.
  virtual void finish() = 0;

  std::uint64_t events_written() const noexcept { return events_written_; }

 protected:
  std::uint64_t events_written_ = 0;
};

/// One JSON object per line; key order is fixed (campaign, run, cat,
/// name, track, t0_s, t1_s, then payload fields in emission order), so
/// identical event sequences serialize to identical bytes.
class JsonlTraceWriter final : public TraceWriter {
 public:
  explicit JsonlTraceWriter(std::ostream& out) : out_(&out) {}

  void begin_campaign(std::string_view label) override;
  void write(const Event& e) override;
  void finish() override;

 private:
  std::ostream* out_;
  std::string campaign_;
};

/// Chrome `trace_event` JSON: `{"traceEvents":[...]}` with lazy
/// process/thread-name metadata so every trial shows up as a process
/// with one named track per simulated node/process.
class ChromeTraceWriter final : public TraceWriter {
 public:
  explicit ChromeTraceWriter(std::ostream& out) : out_(&out) {}
  ~ChromeTraceWriter() override;

  void begin_campaign(std::string_view label) override;
  void write(const Event& e) override;
  void finish() override;

 private:
  void raw(std::string_view json);
  std::int64_t pid_for(std::uint64_t run_id);
  void ensure_names(std::int64_t pid, std::uint64_t run_id,
                    std::int32_t track);

  std::ostream* out_;
  std::string campaign_;
  bool started_ = false;
  bool finished_ = false;
  bool first_record_ = true;
  std::int64_t pid_base_ = 0;
  std::int64_t max_pid_ = -1;
  std::set<std::int64_t> named_processes_;
  std::set<std::pair<std::int64_t, std::int32_t>> named_threads_;
};

/// Factory keyed on the `--trace-format` flag value.
std::unique_ptr<TraceWriter> make_trace_writer(TraceFormat format,
                                               std::ostream& out);

}  // namespace pckpt::obs
