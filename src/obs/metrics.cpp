#include "obs/metrics.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "exec/result_sink.hpp"
#include "obs/profiler.hpp"

namespace pckpt::obs {

namespace {

/// Lower bound of bucket `b` as a double (exact — every bound is a
/// small integer times a power of two). Valid one past the last
/// reachable bucket, so midpoints never overflow u64 arithmetic.
double bucket_lo_d(std::size_t b) noexcept {
  if (b < (1u << LatencyHist::kSubBits)) return static_cast<double>(b);
  const std::size_t g = b >> LatencyHist::kSubBits;
  const std::size_t sub = b & ((1u << LatencyHist::kSubBits) - 1);
  return std::ldexp(static_cast<double>((1u << LatencyHist::kSubBits) + sub),
                    static_cast<int>(g) - 1);
}

}  // namespace

std::size_t LatencyHist::bucket_of(std::uint64_t us) noexcept {
  if (us < (1u << kSubBits)) return static_cast<std::size_t>(us);
  const auto e = static_cast<std::size_t>(std::bit_width(us)) - 1;  // >= 2
  const std::size_t sub =
      static_cast<std::size_t>(us >> (e - kSubBits)) & ((1u << kSubBits) - 1);
  const std::size_t b = ((e - 1) << kSubBits) + sub;
  return b < kBuckets ? b : kBuckets - 1;
}

std::uint64_t LatencyHist::bucket_lo(std::size_t b) noexcept {
  if (b < (1u << kSubBits)) return b;
  const std::size_t g = b >> kSubBits;
  const std::size_t sub = b & ((1u << kSubBits) - 1);
  if (g - 1 >= 62) return ~0ull;  // beyond any reachable bucket
  return static_cast<std::uint64_t>((1u << kSubBits) + sub) << (g - 1);
}

double LatencyHist::bucket_mid(std::size_t b) noexcept {
  return 0.5 * (bucket_lo_d(b) + bucket_lo_d(b + 1));
}

void LatencyHist::record_us(std::uint64_t us) noexcept {
  ++counts_[bucket_of(us)];
  ++count_;
  sum_us_ += us;
  if (us > max_us_) max_us_ = us;
}

double LatencyHist::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  if (!(q > 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the sample the quantile lands on, 1-based: ceil(q * n),
  // clamped so q=0 still selects the first sample.
  std::uint64_t target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (target == 0) target = 1;
  if (target > count_) target = count_;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cum += counts_[b];
    if (cum >= target) return bucket_mid(b);
  }
  return bucket_mid(kBuckets - 1);
}

void LatencyHist::merge(const LatencyHist& other) noexcept {
  for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
  count_ += other.count_;
  sum_us_ += other.sum_us_;
  if (other.max_us_ > max_us_) max_us_ = other.max_us_;
}

std::uint64_t& MetricsRegistry::counter(std::string_view name) {
  auto it = counter_index_.find(std::string(name));
  if (it == counter_index_.end()) {
    counters_.emplace_back(std::string(name), 0);
    it = counter_index_.emplace(std::string(name), counters_.size() - 1).first;
  }
  return counters_[it->second].second;
}

stats::OnlineStats& MetricsRegistry::stat(std::string_view name) {
  auto it = stat_index_.find(std::string(name));
  if (it == stat_index_.end()) {
    stats_.emplace_back(std::string(name), stats::OnlineStats{});
    it = stat_index_.emplace(std::string(name), stats_.size() - 1).first;
  }
  return stats_[it->second].second;
}

stats::Histogram& MetricsRegistry::histogram(std::string_view name, double lo,
                                             double hi, std::size_t bins) {
  auto it = histogram_index_.find(std::string(name));
  if (it == histogram_index_.end()) {
    NamedHistogram h;
    h.name.assign(name);
    h.lo = lo;
    h.hi = hi;
    h.bins = bins;
    h.hist = std::make_unique<stats::Histogram>(lo, hi, bins);
    histograms_.push_back(std::move(h));
    it = histogram_index_.emplace(std::string(name), histograms_.size() - 1)
             .first;
  }
  const NamedHistogram& h = histograms_[it->second];
  if (h.lo != lo || h.hi != hi || h.bins != bins) {
    throw std::invalid_argument("MetricsRegistry: histogram '" +
                                std::string(name) +
                                "' re-registered with a different shape");
  }
  return *histograms_[it->second].hist;
}

LatencyHist& MetricsRegistry::latency(std::string_view name) {
  auto it = latency_index_.find(std::string(name));
  if (it == latency_index_.end()) {
    latencies_.emplace_back(std::string(name), LatencyHist{});
    it = latency_index_.emplace(std::string(name), latencies_.size() - 1).first;
  }
  return latencies_[it->second].second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counter(name) += value;
  for (const auto& [name, s] : other.stats_) stat(name).merge(s);
  for (const auto& h : other.histograms_) {
    stats::Histogram& mine = histogram(h.name, h.lo, h.hi, h.bins);
    // Histogram has no native merge; replay bin mid-points bin by bin.
    for (std::size_t b = 0; b < h.hist->bins(); ++b) {
      const double mid = h.hist->bin_lo(b) + 0.5 * h.hist->bin_width();
      for (std::size_t n = 0; n < h.hist->bin_count(b); ++n) mine.add(mid);
    }
    for (std::size_t n = 0; n < h.hist->underflow(); ++n) {
      mine.add(h.lo - h.hist->bin_width());
    }
    for (std::size_t n = 0; n < h.hist->overflow(); ++n) {
      mine.add(h.hi + h.hist->bin_width());
    }
  }
  // LatencyHists all share one shape, so this merge is exact.
  for (const auto& [name, h] : other.latencies_) latency(name).merge(h);
}

std::string MetricsRegistry::to_string() const {
  std::string out;
  char buf[160];
  for (const auto& [name, value] : counters_) {
    std::snprintf(buf, sizeof buf, "%-40s %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  for (const auto& [name, s] : stats_) {
    std::snprintf(buf, sizeof buf,
                  "%-40s mean=%.6g min=%.6g max=%.6g n=%zu\n", name.c_str(),
                  s.mean(), s.min(), s.max(), s.count());
    out += buf;
  }
  for (const auto& h : histograms_) {
    std::snprintf(buf, sizeof buf, "%-40s histogram n=%zu [%g, %g) x%zu\n",
                  h.name.c_str(), h.hist->total(), h.lo, h.hi, h.bins);
    out += buf;
  }
  for (const auto& [name, h] : latencies_) {
    std::snprintf(buf, sizeof buf,
                  "%-40s latency n=%llu p50=%.6g p90=%.6g p99=%.6g "
                  "max_us=%llu\n",
                  name.c_str(), static_cast<unsigned long long>(h.count()),
                  h.p50(), h.p90(), h.p99(),
                  static_cast<unsigned long long>(h.max_us()));
    out += buf;
  }
  return out;
}

void MetricsRegistry::write_jsonl(std::ostream& os,
                                  std::string_view label) const {
  for (const auto& [name, value] : counters_) {
    exec::JsonlRow row;
    row.add("label", label)
        .add("metric", name)
        .add("kind", "counter")
        .add("value", static_cast<std::uint64_t>(value));
    os << row.str() << '\n';
  }
  for (const auto& [name, s] : stats_) {
    exec::JsonlRow row;
    row.add("label", label)
        .add("metric", name)
        .add("kind", "stat")
        .add("count", static_cast<std::uint64_t>(s.count()))
        .add("mean", s.mean())
        .add("stddev", s.stddev())
        .add("min", s.min())
        .add("max", s.max());
    os << row.str() << '\n';
  }
  for (const auto& h : histograms_) {
    exec::JsonlRow row;
    row.add("label", label)
        .add("metric", h.name)
        .add("kind", "histogram")
        .add("lo", h.lo)
        .add("hi", h.hi)
        .add("bins", static_cast<std::uint64_t>(h.bins))
        .add("total", static_cast<std::uint64_t>(h.hist->total()))
        .add("underflow", static_cast<std::uint64_t>(h.hist->underflow()))
        .add("overflow", static_cast<std::uint64_t>(h.hist->overflow()));
    std::string counts = "[";
    for (std::size_t b = 0; b < h.hist->bins(); ++b) {
      if (b > 0) counts += ',';
      counts += std::to_string(h.hist->bin_count(b));
    }
    counts += ']';
    row.add_raw("counts", counts);
    os << row.str() << '\n';
  }
  for (const auto& [name, h] : latencies_) {
    exec::JsonlRow row;
    row.add("label", label)
        .add("metric", name)
        .add("kind", "latency")
        .add("count", h.count())
        .add("p50_us", h.p50())
        .add("p90_us", h.p90())
        .add("p99_us", h.p99())
        .add("max_us", h.max_us())
        .add("sum_us", h.sum_us());
    os << row.str() << '\n';
  }
}

void merge_profile(const ProfileReport& report, MetricsRegistry& registry) {
  // report.spans is already sorted by label, so registration (and thus
  // to_string/write_jsonl order) is deterministic.
  for (const auto& e : report.spans) {
    registry.counter("prof.calls." + e.label) += e.stats.calls;
    registry.counter("prof.us." + e.label) += e.stats.total_ns / 1000;
    registry.counter("prof.self_us." + e.label) += e.stats.self_ns() / 1000;
  }
}

}  // namespace pckpt::obs
