#include "obs/metrics.hpp"

#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "exec/result_sink.hpp"
#include "obs/profiler.hpp"

namespace pckpt::obs {

std::uint64_t& MetricsRegistry::counter(std::string_view name) {
  auto it = counter_index_.find(std::string(name));
  if (it == counter_index_.end()) {
    counters_.emplace_back(std::string(name), 0);
    it = counter_index_.emplace(std::string(name), counters_.size() - 1).first;
  }
  return counters_[it->second].second;
}

stats::OnlineStats& MetricsRegistry::stat(std::string_view name) {
  auto it = stat_index_.find(std::string(name));
  if (it == stat_index_.end()) {
    stats_.emplace_back(std::string(name), stats::OnlineStats{});
    it = stat_index_.emplace(std::string(name), stats_.size() - 1).first;
  }
  return stats_[it->second].second;
}

stats::Histogram& MetricsRegistry::histogram(std::string_view name, double lo,
                                             double hi, std::size_t bins) {
  auto it = histogram_index_.find(std::string(name));
  if (it == histogram_index_.end()) {
    NamedHistogram h;
    h.name.assign(name);
    h.lo = lo;
    h.hi = hi;
    h.bins = bins;
    h.hist = std::make_unique<stats::Histogram>(lo, hi, bins);
    histograms_.push_back(std::move(h));
    it = histogram_index_.emplace(std::string(name), histograms_.size() - 1)
             .first;
  }
  const NamedHistogram& h = histograms_[it->second];
  if (h.lo != lo || h.hi != hi || h.bins != bins) {
    throw std::invalid_argument("MetricsRegistry: histogram '" +
                                std::string(name) +
                                "' re-registered with a different shape");
  }
  return *histograms_[it->second].hist;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counter(name) += value;
  for (const auto& [name, s] : other.stats_) stat(name).merge(s);
  for (const auto& h : other.histograms_) {
    stats::Histogram& mine = histogram(h.name, h.lo, h.hi, h.bins);
    // Histogram has no native merge; replay bin mid-points bin by bin.
    for (std::size_t b = 0; b < h.hist->bins(); ++b) {
      const double mid = h.hist->bin_lo(b) + 0.5 * h.hist->bin_width();
      for (std::size_t n = 0; n < h.hist->bin_count(b); ++n) mine.add(mid);
    }
    for (std::size_t n = 0; n < h.hist->underflow(); ++n) {
      mine.add(h.lo - h.hist->bin_width());
    }
    for (std::size_t n = 0; n < h.hist->overflow(); ++n) {
      mine.add(h.hi + h.hist->bin_width());
    }
  }
}

std::string MetricsRegistry::to_string() const {
  std::string out;
  char buf[160];
  for (const auto& [name, value] : counters_) {
    std::snprintf(buf, sizeof buf, "%-40s %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  for (const auto& [name, s] : stats_) {
    std::snprintf(buf, sizeof buf,
                  "%-40s mean=%.6g min=%.6g max=%.6g n=%zu\n", name.c_str(),
                  s.mean(), s.min(), s.max(), s.count());
    out += buf;
  }
  for (const auto& h : histograms_) {
    std::snprintf(buf, sizeof buf, "%-40s histogram n=%zu [%g, %g) x%zu\n",
                  h.name.c_str(), h.hist->total(), h.lo, h.hi, h.bins);
    out += buf;
  }
  return out;
}

void MetricsRegistry::write_jsonl(std::ostream& os,
                                  std::string_view label) const {
  for (const auto& [name, value] : counters_) {
    exec::JsonlRow row;
    row.add("label", label)
        .add("metric", name)
        .add("kind", "counter")
        .add("value", static_cast<std::uint64_t>(value));
    os << row.str() << '\n';
  }
  for (const auto& [name, s] : stats_) {
    exec::JsonlRow row;
    row.add("label", label)
        .add("metric", name)
        .add("kind", "stat")
        .add("count", static_cast<std::uint64_t>(s.count()))
        .add("mean", s.mean())
        .add("stddev", s.stddev())
        .add("min", s.min())
        .add("max", s.max());
    os << row.str() << '\n';
  }
  for (const auto& h : histograms_) {
    exec::JsonlRow row;
    row.add("label", label)
        .add("metric", h.name)
        .add("kind", "histogram")
        .add("lo", h.lo)
        .add("hi", h.hi)
        .add("bins", static_cast<std::uint64_t>(h.bins))
        .add("total", static_cast<std::uint64_t>(h.hist->total()))
        .add("underflow", static_cast<std::uint64_t>(h.hist->underflow()))
        .add("overflow", static_cast<std::uint64_t>(h.hist->overflow()));
    std::string counts = "[";
    for (std::size_t b = 0; b < h.hist->bins(); ++b) {
      if (b > 0) counts += ',';
      counts += std::to_string(h.hist->bin_count(b));
    }
    counts += ']';
    row.add_raw("counts", counts);
    os << row.str() << '\n';
  }
}

void merge_profile(const ProfileReport& report, MetricsRegistry& registry) {
  // report.spans is already sorted by label, so registration (and thus
  // to_string/write_jsonl order) is deterministic.
  for (const auto& e : report.spans) {
    registry.counter("prof.calls." + e.label) += e.stats.calls;
    registry.counter("prof.us." + e.label) += e.stats.total_ns / 1000;
    registry.counter("prof.self_us." + e.label) += e.stats.self_ns() / 1000;
  }
}

}  // namespace pckpt::obs
