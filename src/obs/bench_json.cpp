#include "obs/bench_json.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "exec/result_sink.hpp"
#include "obs/json_value.hpp"

namespace pckpt::obs {

namespace {

#if defined(PCKPT_GIT_REV)
constexpr const char* kGitRev = PCKPT_GIT_REV;
#else
constexpr const char* kGitRev = "unknown";
#endif

std::string json_string(std::string_view s) {
  // Built with insert/append rather than `"\"" + escape(s) + "\""`: the
  // operator+(const char*, string&&) form trips a GCC 12 -Wrestrict
  // false positive (PR105329) once -Werror promotes it.
  std::string out = exec::JsonlRow::escape(s);
  out.insert(out.begin(), '"');
  out.push_back('"');
  return out;
}

}  // namespace

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

BenchJsonWriter::BenchJsonWriter(std::string bench_name)
    : bench_(std::move(bench_name)) {}

void BenchJsonWriter::add_config(std::string_view key, double value) {
  config_.emplace_back(std::string(key), exec::JsonlRow::number(value));
}

void BenchJsonWriter::add_config(std::string_view key,
                                 std::string_view value) {
  config_.emplace_back(std::string(key), json_string(value));
}

void BenchJsonWriter::add_metric(std::string_view key, double value) {
  metrics_.emplace_back(std::string(key), value);
}

void BenchJsonWriter::set_profile(const ProfileReport& report) {
  profile_.clear();
  for (const auto& e : report.spans) {
    profile_.push_back(ProfileRow{
        e.label, e.stats.calls, static_cast<double>(e.stats.total_ns) * 1e-9,
        static_cast<double>(e.stats.self_ns()) * 1e-9});
  }
}

std::string BenchJsonWriter::str() const {
  const HostCounters host = sample_host_counters();
  std::string out;
  out += "{\n";
  out += "  \"schema\": " + json_string(kBenchSchema) + ",\n";
  out += "  \"bench\": " + json_string(bench_) + ",\n";
  out += "  \"git_rev\": " + json_string(kGitRev) + ",\n";
  out += "  \"host\": {";
  out += "\"clock\": " + json_string(ProfClock::name());
  out += ", \"peak_rss_kb\": " +
         exec::JsonlRow::number(static_cast<double>(host.peak_rss_kb));
  if (host.heap_valid) {
    out += ", \"heap_used_kb\": " +
           exec::JsonlRow::number(static_cast<double>(host.heap_used_kb));
  }
  out += "},\n";
  out += "  \"config\": {";
  for (std::size_t i = 0; i < config_.size(); ++i) {
    if (i > 0) out += ", ";
    out += json_string(config_[i].first) + ": " + config_[i].second;
  }
  out += "},\n";
  out += "  \"metrics\": {";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n    " + json_string(metrics_[i].first) + ": " +
           exec::JsonlRow::number(metrics_[i].second);
  }
  out += metrics_.empty() ? std::string("},\n") : std::string("\n  },\n");
  out += "  \"profile\": {";
  for (std::size_t i = 0; i < profile_.size(); ++i) {
    const ProfileRow& r = profile_[i];
    if (i > 0) out += ",";
    out += "\n    " + json_string(r.label) + ": {\"calls\": " +
           exec::JsonlRow::number(static_cast<double>(r.calls)) +
           ", \"total_s\": " + exec::JsonlRow::number(r.total_s) +
           ", \"self_s\": " + exec::JsonlRow::number(r.self_s) + "}";
  }
  out += profile_.empty() ? std::string("}\n") : std::string("\n  }\n");
  out += "}\n";
  return out;
}

void BenchJsonWriter::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("bench-json: cannot open '" + path +
                             "' for writing");
  }
  out << str();
  if (!out.good()) {
    throw std::runtime_error("bench-json: write to '" + path + "' failed");
  }
}

// ---------------------------------------------------------------------
// Reading: the generic hand-rolled JSON reader lives in
// obs/json_value.hpp (shared with the pckpt_serve wire protocol); this
// file keeps only the pckpt-bench/1 schema mapping.
// ---------------------------------------------------------------------

namespace {

std::string render_scalar(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kString: return v.string;
    case JsonValue::Kind::kNumber: return exec::JsonlRow::number(v.number);
    case JsonValue::Kind::kBool: return v.boolean ? "true" : "false";
    default: return "null";
  }
}

}  // namespace

BenchDoc parse_bench_json(std::string_view text) {
  const JsonValue root = parse_json(text);
  if (root.kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("bench-json: top level is not an object");
  }
  BenchDoc doc;
  const JsonValue* schema = root.get("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString) {
    throw std::runtime_error("bench-json: missing \"schema\" marker");
  }
  doc.schema = schema->string;
  if (doc.schema != kBenchSchema) {
    throw std::runtime_error("bench-json: unsupported schema '" + doc.schema +
                             "' (expected '" + std::string(kBenchSchema) +
                             "')");
  }
  if (const JsonValue* b = root.get("bench");
      b != nullptr && b->kind == JsonValue::Kind::kString) {
    doc.bench = b->string;
  }
  if (const JsonValue* r = root.get("git_rev");
      r != nullptr && r->kind == JsonValue::Kind::kString) {
    doc.git_rev = r->string;
  }
  if (const JsonValue* c = root.get("config");
      c != nullptr && c->kind == JsonValue::Kind::kObject) {
    for (const auto& [k, v] : c->object) doc.config[k] = render_scalar(v);
  }
  const JsonValue* m = root.get("metrics");
  if (m == nullptr || m->kind != JsonValue::Kind::kObject) {
    throw std::runtime_error("bench-json: missing \"metrics\" object");
  }
  for (const auto& [k, v] : m->object) {
    if (v.kind != JsonValue::Kind::kNumber) {
      throw std::runtime_error("bench-json: metric '" + k +
                               "' is not a number");
    }
    doc.metrics[k] = v.number;
  }
  if (const JsonValue* p = root.get("profile");
      p != nullptr && p->kind == JsonValue::Kind::kObject) {
    for (const auto& [label, entry] : p->object) {
      if (entry.kind != JsonValue::Kind::kObject) continue;
      BenchDoc::ProfileEntry pe;
      if (const JsonValue* x = entry.get("calls");
          x != nullptr && x->kind == JsonValue::Kind::kNumber) {
        pe.calls = static_cast<std::uint64_t>(x->number);
      }
      if (const JsonValue* x = entry.get("total_s");
          x != nullptr && x->kind == JsonValue::Kind::kNumber) {
        pe.total_s = x->number;
      }
      if (const JsonValue* x = entry.get("self_s");
          x != nullptr && x->kind == JsonValue::Kind::kNumber) {
        pe.self_s = x->number;
      }
      doc.profile[label] = pe;
    }
  }
  return doc;
}

BenchDoc load_bench_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open '" + path + "'");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    return parse_bench_json(ss.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

// ---------------------------------------------------------------------
// Comparison.
// ---------------------------------------------------------------------

namespace {

std::string_view strip_aggregate_suffix(std::string_view name) {
  for (const std::string_view suffix :
       {".min", ".median", ".max", ".mean"}) {
    if (name.size() > suffix.size() &&
        name.substr(name.size() - suffix.size()) == suffix) {
      return name.substr(0, name.size() - suffix.size());
    }
  }
  return name;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

bool higher_is_better(std::string_view metric) {
  const std::string_view base = strip_aggregate_suffix(metric);
  return ends_with(base, "_per_s") || ends_with(base, "_rate") ||
         ends_with(base, "speedup");
}

bool is_informational(std::string_view metric) {
  return ends_with(metric, ".stddev");
}

CompareResult compare_bench(const BenchDoc& baseline, const BenchDoc& current,
                            double tolerance_frac) {
  CompareResult out;
  for (const auto& [key, base_v] : baseline.config) {
    auto it = current.config.find(key);
    const std::string cur_v = it != current.config.end() ? it->second : "-";
    if (cur_v != base_v) {
      out.config_changes.push_back(key + ": " + base_v + " -> " + cur_v);
    }
  }
  for (const auto& [name, base_v] : baseline.metrics) {
    auto it = current.metrics.find(name);
    if (it == current.metrics.end()) {
      out.only_baseline.push_back(name);
      out.regression = true;  // a gated metric vanished
      continue;
    }
    MetricDelta d;
    d.name = name;
    d.baseline = base_v;
    d.current = it->second;
    d.higher_better = higher_is_better(name);
    d.informational = is_informational(name);
    const double denom = std::abs(base_v);
    d.change_frac = denom > 0.0 ? (d.current - d.baseline) / denom
                                : (d.current == d.baseline ? 0.0 : HUGE_VAL);
    if (!d.informational && std::isfinite(d.change_frac)) {
      const double worsening =
          d.higher_better ? -d.change_frac : d.change_frac;
      d.regressed = worsening > tolerance_frac;
    } else if (!d.informational && !std::isfinite(d.change_frac)) {
      d.regressed = !d.higher_better && d.current > d.baseline;
    }
    out.regression = out.regression || d.regressed;
    out.deltas.push_back(std::move(d));
  }
  for (const auto& [name, v] : current.metrics) {
    (void)v;
    if (baseline.metrics.find(name) == baseline.metrics.end()) {
      out.only_current.push_back(name);
    }
  }
  return out;
}

std::string format_compare(const BenchDoc& baseline, const BenchDoc& current,
                           const CompareResult& cmp) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf, "bench %s: %s (%s) vs %s (%s)\n",
                current.bench.c_str(), baseline.git_rev.c_str(), "baseline",
                current.git_rev.c_str(), "current");
  out += buf;
  for (const auto& c : cmp.config_changes) {
    out += "  config changed — comparison may be meaningless: " + c + "\n";
  }
  std::snprintf(buf, sizeof buf, "  %-36s %14s %14s %9s  %s\n", "metric",
                "baseline", "current", "delta", "status");
  out += buf;
  for (const auto& d : cmp.deltas) {
    const char* status = d.informational
                             ? "info"
                             : (d.regressed ? "REGRESSED"
                                            : (d.higher_better
                                                   ? (d.change_frac >= 0 ? "ok"
                                                                         : "ok(-)")
                                                   : (d.change_frac <= 0
                                                          ? "ok"
                                                          : "ok(-)")));
    std::snprintf(buf, sizeof buf, "  %-36s %14.6g %14.6g %+8.1f%%  %s\n",
                  d.name.c_str(), d.baseline, d.current,
                  100.0 * d.change_frac, status);
    out += buf;
  }
  for (const auto& name : cmp.only_baseline) {
    out += "  " + name + ": present in baseline only — REGRESSED\n";
  }
  for (const auto& name : cmp.only_current) {
    out += "  " + name + ": new metric (not gated)\n";
  }
  // Profile shifts are advisory: self-time moving between subsystems is
  // diagnostic context for a wall-time regression, never a gate itself.
  for (const auto& [label, base_p] : baseline.profile) {
    auto it = current.profile.find(label);
    if (it == current.profile.end()) continue;
    const double denom = base_p.self_s;
    if (denom <= 0.0) continue;
    const double frac = (it->second.self_s - base_p.self_s) / denom;
    if (std::abs(frac) >= 0.25) {
      std::snprintf(buf, sizeof buf,
                    "  profile %-27s self %.4fs -> %.4fs (%+.0f%%)\n",
                    label.c_str(), base_p.self_s, it->second.self_s,
                    100.0 * frac);
      out += buf;
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// CLI driver.
// ---------------------------------------------------------------------

namespace {

void usage(std::ostream& err) {
  err << "usage: bench_report [options] BASELINE.json CURRENT.json\n"
         "       bench_report [options] BASELINE_DIR CURRENT_DIR\n"
         "  --tolerance=PCT  allowed regression in percent (default 10)\n"
         "  --warn-only      report regressions but always exit 0\n"
         "Directory mode compares every BENCH_*.json in CURRENT_DIR\n"
         "against the file of the same name in BASELINE_DIR (typically\n"
         "the committed bench/baselines/). Exit codes: 0 = ok,\n"
         "1 = regression beyond tolerance, 2 = usage or parse error.\n";
}

/// One file-vs-file comparison; returns true when a regression gates.
bool report_pair(const std::string& base_path, const std::string& cur_path,
                 double tolerance, std::ostream& out) {
  const BenchDoc baseline = load_bench_json(base_path);
  const BenchDoc current = load_bench_json(cur_path);
  const CompareResult cmp = compare_bench(baseline, current, tolerance);
  out << format_compare(baseline, current, cmp);
  return cmp.regression;
}

}  // namespace

int run_bench_report(const std::vector<std::string>& args, std::ostream& out,
                     std::ostream& err) {
  namespace fs = std::filesystem;
  double tolerance = 0.10;
  bool warn_only = false;
  std::vector<std::string> paths;
  for (const auto& arg : args) {
    if (arg.rfind("--tolerance=", 0) == 0) {
      const std::string v = arg.substr(12);
      errno = 0;
      char* end = nullptr;
      const double pct = std::strtod(v.c_str(), &end);
      if (v.empty() || errno == ERANGE || end != v.c_str() + v.size() ||
          !(pct >= 0.0)) {
        err << "bench_report: --tolerance: expected a non-negative percent, "
               "got '"
            << v << "'\n";
        return 2;
      }
      tolerance = pct / 100.0;
    } else if (arg == "--warn-only") {
      warn_only = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(out);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      err << "bench_report: unknown option: " << arg << "\n";
      usage(err);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    err << "bench_report: expected exactly two paths, got "
        << paths.size() << "\n";
    usage(err);
    return 2;
  }

  bool regression = false;
  try {
    std::error_code ec;
    const bool base_dir = fs::is_directory(paths[0], ec);
    const bool cur_dir = fs::is_directory(paths[1], ec);
    if (base_dir != cur_dir) {
      err << "bench_report: '" << paths[0] << "' and '" << paths[1]
          << "' must both be files or both be directories\n";
      return 2;
    }
    if (!base_dir) {
      regression = report_pair(paths[0], paths[1], tolerance, out);
    } else {
      std::vector<std::string> names;
      for (const auto& entry : fs::directory_iterator(paths[1])) {
        const std::string name = entry.path().filename().string();
        if (entry.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
            ends_with(name, ".json")) {
          names.push_back(name);
        }
      }
      std::sort(names.begin(), names.end());
      if (names.empty()) {
        err << "bench_report: no BENCH_*.json files under '" << paths[1]
            << "'\n";
        return 2;
      }
      std::size_t compared = 0;
      for (const auto& name : names) {
        const fs::path base_path = fs::path(paths[0]) / name;
        if (!fs::exists(base_path)) {
          out << name << ": no committed baseline yet (skipped; regenerate "
                         "per docs/OBSERVABILITY.md)\n";
          continue;
        }
        regression =
            report_pair(base_path.string(),
                        (fs::path(paths[1]) / name).string(), tolerance, out) ||
            regression;
        ++compared;
      }
      for (const auto& entry : fs::directory_iterator(paths[0])) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) == 0 && ends_with(name, ".json") &&
            !fs::exists(fs::path(paths[1]) / name)) {
          out << name << ": baseline has no current counterpart\n";
        }
      }
      out << "compared " << compared << " of " << names.size()
          << " bench file(s)\n";
    }
  } catch (const std::exception& e) {
    err << "bench_report: " << e.what() << "\n";
    return 2;
  }

  if (regression) {
    out << (warn_only ? "REGRESSION detected (warn-only mode: exit 0)\n"
                      : "REGRESSION detected\n");
    return warn_only ? 0 : 1;
  }
  out << "no regression beyond tolerance\n";
  return 0;
}

}  // namespace pckpt::obs
