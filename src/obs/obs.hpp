#pragma once

/// \file obs.hpp
/// Umbrella header for the observability layer (docs/OBSERVABILITY.md).

#include "obs/bench_json.hpp"    // IWYU pragma: export
#include "obs/collector.hpp"     // IWYU pragma: export
#include "obs/event.hpp"         // IWYU pragma: export
#include "obs/metrics.hpp"       // IWYU pragma: export
#include "obs/profiler.hpp"      // IWYU pragma: export
#include "obs/trace_sink.hpp"    // IWYU pragma: export
#include "obs/trace_writer.hpp"  // IWYU pragma: export
