#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_sink.hpp"
#include "obs/trace_writer.hpp"

/// \file collector.hpp
/// Per-campaign trace collection that preserves the execution engine's
/// determinism contract (docs/EXECUTION.md): every trial gets its own
/// `MemoryTraceSink` slot addressed by the *global trial index*, worker
/// threads only ever touch their own trial's slot, and serialization
/// happens on the calling thread in ascending trial order after the
/// campaign completes. Trace bytes are therefore identical for any
/// `--jobs` value — the same argument that makes `CampaignResult`
/// merging bit-identical.

namespace pckpt::obs {

class CampaignTraceCollector {
 public:
  CampaignTraceCollector() = default;
  explicit CampaignTraceCollector(std::size_t trials) { reset(trials); }

  /// Pre-size the per-trial buffers. Must be called (by the campaign
  /// runner) before any worker dispatch; the slot array never grows
  /// during a run, so `sink_for` stays data-race free across workers.
  void reset(std::size_t trials) {
    buffers_.clear();
    buffers_.resize(trials);
  }

  std::size_t trials() const noexcept { return buffers_.size(); }

  /// The sink for one trial. Thread-safe under the engine's discipline:
  /// distinct trials are owned by distinct tasks.
  TraceSink& sink_for(std::size_t trial) { return buffers_.at(trial); }

  const std::vector<Event>& events_for(std::size_t trial) const {
    return buffers_.at(trial).events();
  }

  std::size_t total_events() const noexcept {
    std::size_t n = 0;
    for (const auto& b : buffers_) n += b.size();
    return n;
  }

  /// Serialize every trial's events in ascending trial order under the
  /// given campaign label. Deterministic in the collected events alone.
  void write(TraceWriter& writer, std::string_view label) const {
    ScopedTimer prof_span("obs.trace_write");
    writer.begin_campaign(label);
    for (const auto& buffer : buffers_) {
      for (const Event& e : buffer.events()) writer.write(e);
    }
  }

  /// Roll per-event counts and span durations into `metrics`:
  /// `events.<name>` counters, `span_s.<name>` duration stats, and an
  /// overall `events.total` counter. Iterates trials in ascending order
  /// so registry insertion order is deterministic.
  void summarize(MetricsRegistry& metrics) const {
    ScopedTimer prof_span("obs.trace_summarize");
    for (const auto& buffer : buffers_) {
      for (const Event& e : buffer.events()) summarize_event(metrics, e);
    }
  }

  /// Single-event rollup, shared with tests and ad-hoc sinks.
  static void summarize_event(MetricsRegistry& metrics, const Event& e) {
    ++metrics.counter("events.total");
    ++metrics.counter(std::string("events.") + e.name);
    if (!e.is_instant()) {
      metrics.stat(std::string("span_s.") + e.name).add(e.duration_s());
    }
  }

 private:
  std::vector<MemoryTraceSink> buffers_;
};

}  // namespace pckpt::obs
