#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <stdexcept>

#include <sys/resource.h>
#if defined(__GLIBC__) && defined(__GLIBC_PREREQ)
#if __GLIBC_PREREQ(2, 33)
#define PCKPT_HAVE_MALLINFO2 1
#include <malloc.h>
#endif
#endif

namespace pckpt::obs {

std::atomic<Profiler*> Profiler::g_active{nullptr};
std::atomic<std::uint64_t> Profiler::g_generation{0};

namespace prof_detail {

namespace {

/// Per-thread cache of the records registered with the current attach
/// epoch. Keyed on the profiler's generation (not its address): a new
/// attach — even of a recycled allocation — always gets fresh records.
struct RecordsCache {
  std::uint64_t generation = 0;
  std::shared_ptr<ThreadRecords> rec;
};

thread_local RecordsCache t_cache;

}  // namespace

ThreadRecords& records_for(Profiler& p) {
  if (t_cache.generation != p.generation() || !t_cache.rec) {
    auto rec = std::make_shared<ThreadRecords>();
    p.register_thread(rec);
    t_cache.generation = p.generation();
    t_cache.rec = std::move(rec);
  }
  return *t_cache.rec;
}

}  // namespace prof_detail

Profiler::~Profiler() { detach(); }

void Profiler::attach() {
  generation_ = 1 + g_generation.fetch_add(1, std::memory_order_relaxed);
  Profiler* expected = nullptr;
  if (!g_active.compare_exchange_strong(expected, this,
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
    throw std::logic_error("Profiler::attach: another profiler is active");
  }
}

void Profiler::detach() noexcept {
  Profiler* expected = this;
  g_active.compare_exchange_strong(expected, nullptr,
                                   std::memory_order_acq_rel,
                                   std::memory_order_relaxed);
}

void Profiler::register_thread(
    std::shared_ptr<prof_detail::ThreadRecords> rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  threads_.push_back(std::move(rec));
}

ProfileReport Profiler::report() const {
  // std::map orders labels lexicographically and the per-label fold is
  // integer addition, so the merge is independent of both thread
  // registration order and slot first-use order.
  std::map<std::string, SpanStats> merged;
  ProfileReport out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.threads = threads_.size();
    for (const auto& rec : threads_) {
      for (const auto& [label, stats] : rec->slots) {
        merged[label].add(stats);
      }
    }
  }
  out.spans.reserve(merged.size());
  for (auto& [label, stats] : merged) {
    out.spans.push_back(ProfileReport::Entry{label, stats});
  }
  return out;
}

void ScopedTimer::begin(Profiler& p, const char* label) {
  prof_detail::ThreadRecords& rec = prof_detail::records_for(p);
  slot_ = &rec.slot(label);
  rec_ = &rec;
  parent_ = rec.current;
  rec.current = this;
  child_ns_ = 0;
  start_ns_ = ProfClock::now_ns();  // last: exclude our own setup cost
}

void ScopedTimer::end() {
  const std::uint64_t now = ProfClock::now_ns();
  const std::uint64_t elapsed = now > start_ns_ ? now - start_ns_ : 0;
  SpanStats& s = *slot_;
  ++s.calls;
  s.total_ns += elapsed;
  s.child_ns += child_ns_;
  if (elapsed > s.max_ns) s.max_ns = elapsed;
  rec_->current = parent_;
  if (parent_ != nullptr) parent_->child_ns_ += elapsed;
}

const ProfileReport::Entry* ProfileReport::find(
    std::string_view label) const noexcept {
  for (const auto& e : spans) {
    if (e.label == label) return &e;
  }
  return nullptr;
}

double ProfileReport::covered_s() const noexcept {
  double s = 0.0;
  for (const auto& e : spans) {
    // Spans are stored in deterministic sorted-label order (see merge()).
    s += static_cast<double>(e.stats.self_ns()) * 1e-9;  // lint: fp-order-ok
  }
  return s;
}

std::string ProfileReport::to_string() const {
  std::vector<const Entry*> order;
  order.reserve(spans.size());
  for (const auto& e : spans) order.push_back(&e);
  std::sort(order.begin(), order.end(), [](const Entry* a, const Entry* b) {
    if (a->stats.self_ns() != b->stats.self_ns()) {
      return a->stats.self_ns() > b->stats.self_ns();
    }
    return a->label < b->label;  // tie-break keeps the order total
  });
  const double covered = covered_s();
  std::string outstr;
  char buf[192];
  std::snprintf(buf, sizeof buf, "%-28s %10s %12s %12s %7s\n", "span",
                "calls", "total(s)", "self(s)", "self%");
  outstr += buf;
  for (const Entry* e : order) {
    const double self_s = static_cast<double>(e->stats.self_ns()) * 1e-9;
    std::snprintf(buf, sizeof buf, "%-28s %10llu %12.6f %12.6f %6.1f%%\n",
                  e->label.c_str(),
                  static_cast<unsigned long long>(e->stats.calls),
                  static_cast<double>(e->stats.total_ns) * 1e-9, self_s,
                  covered > 0.0 ? 100.0 * self_s / covered : 0.0);
    outstr += buf;
  }
  return outstr;
}

HostCounters sample_host_counters() {
  HostCounters hc;
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    hc.peak_rss_kb = static_cast<std::uint64_t>(ru.ru_maxrss);  // KB on Linux
  }
#if defined(PCKPT_HAVE_MALLINFO2)
  const struct mallinfo2 mi = mallinfo2();
  hc.heap_used_kb = static_cast<std::uint64_t>(mi.uordblks) / 1024;
  hc.heap_valid = true;
#endif
  return hc;
}

}  // namespace pckpt::obs
