#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "obs/profiler.hpp"

/// \file request_span.hpp
/// `obs::RequestSpan` — the staged timeline of one serving request
/// (docs/OBSERVABILITY.md, "Runtime telemetry"). Where a ScopedTimer
/// aggregates host time per *label* across the whole process, a span
/// keeps the per-stage breakdown of a *single* request so the daemon
/// can (a) fold it into per-tier latency histograms and (b) print the
/// full breakdown when a query crosses the slow-query threshold.
///
/// Stages are the fixed request pipeline:
///
///   parse -> key-resolve -> store-lookup -> admission-wait
///         -> campaign-exec -> ckpt-commit -> render
///
/// A request touches a prefix-plus-subset of these (a store hit never
/// waits on admission); untouched stages stay at 0 ns and are omitted
/// from slow-query records.
///
/// Disabled path: subsystems take a `RequestSpan*` that may be null;
/// `StageTimer` on a null span reads no clock — one pointer test,
/// the same contract as the profiler's detached ScopedTimer.

namespace pckpt::obs {

class RequestSpan {
 public:
  enum class Stage : unsigned char {
    kParse = 0,
    kKeyResolve,
    kStoreLookup,
    kAdmissionWait,
    kCampaignExec,
    kCkptCommit,
    kRender,
  };
  static constexpr std::size_t kStages = 7;

  /// Planner tier the request resolved through; keys the per-tier
  /// latency histograms ("hit" / "estimate_miss" / "exact_miss").
  enum class Tier : unsigned char {
    kNone = 0,  ///< non-query ops (ping/stats/metrics) and errors
    kHit,
    kEstimateMiss,
    kExactMiss,
  };

  static std::string_view stage_name(Stage s) noexcept {
    switch (s) {
      case Stage::kParse:
        return "parse";
      case Stage::kKeyResolve:
        return "key_resolve";
      case Stage::kStoreLookup:
        return "store_lookup";
      case Stage::kAdmissionWait:
        return "admission_wait";
      case Stage::kCampaignExec:
        return "campaign_exec";
      case Stage::kCkptCommit:
        return "ckpt_commit";
      case Stage::kRender:
        return "render";
    }
    return "?";
  }

  static std::string_view tier_name(Tier t) noexcept {
    switch (t) {
      case Tier::kNone:
        return "none";
      case Tier::kHit:
        return "hit";
      case Tier::kEstimateMiss:
        return "estimate_miss";
      case Tier::kExactMiss:
        return "exact_miss";
    }
    return "?";
  }

  /// Starts the end-to-end clock; `request_id` is the daemon-unique id
  /// stamped into every log record about this request.
  explicit RequestSpan(std::uint64_t request_id) noexcept
      : request_id_(request_id), start_ns_(ProfClock::now_ns()) {}

  std::uint64_t request_id() const noexcept { return request_id_; }

  void add_ns(Stage s, std::uint64_t ns) noexcept {
    stage_ns_[static_cast<std::size_t>(s)] += ns;
  }
  std::uint64_t stage_ns(Stage s) const noexcept {
    return stage_ns_[static_cast<std::size_t>(s)];
  }

  /// End-to-end host time since construction.
  std::uint64_t total_ns() const noexcept {
    return ProfClock::now_ns() - start_ns_;
  }

  void set_tier(Tier t) noexcept { tier_ = t; }
  Tier tier() const noexcept { return tier_; }

  /// RAII stage clock. Null-span construction is a pointer test; no
  /// clock is read.
  class StageTimer {
   public:
    StageTimer(RequestSpan* span, Stage stage) noexcept
        : span_(span), stage_(stage) {
      if (span_ != nullptr) start_ns_ = ProfClock::now_ns();
    }
    StageTimer(const StageTimer&) = delete;
    StageTimer& operator=(const StageTimer&) = delete;
    ~StageTimer() { stop(); }

    /// Charge the elapsed time now (idempotent) — for stages that end
    /// mid-scope.
    void stop() noexcept {
      if (span_ == nullptr) return;
      span_->add_ns(stage_, ProfClock::now_ns() - start_ns_);
      span_ = nullptr;
    }

   private:
    RequestSpan* span_;
    Stage stage_;
    std::uint64_t start_ns_ = 0;
  };

 private:
  std::uint64_t request_id_;
  std::uint64_t start_ns_;
  std::uint64_t stage_ns_[kStages] = {};
  Tier tier_ = Tier::kNone;
};

}  // namespace pckpt::obs
