#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/profiler.hpp"

/// \file bench_json.hpp
/// Machine-readable bench telemetry (schema `pckpt-bench/1`) and the
/// perf-regression comparison behind `tools/bench_report`. Every bench
/// binary emits one JSON document per invocation via `--bench-json=PATH`;
/// `bench_report` diffs two documents (or a directory against the
/// committed baselines under `bench/baselines/`) and gates on regressions
/// beyond a tolerance. Schema and workflow: docs/OBSERVABILITY.md.

namespace pckpt::obs {

inline constexpr std::string_view kBenchSchema = "pckpt-bench/1";

/// Builder for one bench-telemetry document. Field groups:
/// - `config`: identity of the measurement (runs, seed, jobs, ...);
///   bench_report warns when configs differ instead of comparing apples
///   to oranges.
/// - `metrics`: the gated numbers. Direction is inferred from the name
///   (see `higher_is_better`); `*.stddev` entries are informational.
/// - `profile`: per-span host-time attribution from the self-profiler.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name);

  void add_config(std::string_view key, double value);
  void add_config(std::string_view key, std::string_view value);
  void add_metric(std::string_view key, double value);
  void set_profile(const ProfileReport& report);

  /// Render the full document (pretty-printed, stable key order: schema
  /// header, config, metrics, profile — each group in insertion order).
  std::string str() const;

  /// Write to `path`; throws std::runtime_error on I/O failure.
  void write(const std::string& path) const;

 private:
  std::string bench_;
  std::vector<std::pair<std::string, std::string>> config_;   // key -> JSON
  std::vector<std::pair<std::string, double>> metrics_;
  struct ProfileRow {
    std::string label;
    std::uint64_t calls;
    double total_s;
    double self_s;
  };
  std::vector<ProfileRow> profile_;
};

/// A parsed bench-telemetry document. Maps are sorted, so comparisons
/// and reports iterate deterministically.
struct BenchDoc {
  std::string schema;
  std::string bench;
  std::string git_rev;
  std::map<std::string, std::string> config;  // values re-rendered as text
  std::map<std::string, double> metrics;
  struct ProfileEntry {
    std::uint64_t calls = 0;
    double total_s = 0;
    double self_s = 0;
  };
  std::map<std::string, ProfileEntry> profile;
};

/// Parse a `pckpt-bench/1` document. \throws std::runtime_error with a
/// byte offset on malformed JSON or a wrong/missing schema marker.
BenchDoc parse_bench_json(std::string_view text);

/// Load and parse; the error message includes the path.
BenchDoc load_bench_json(const std::string& path);

/// Direction convention (documented in docs/OBSERVABILITY.md): metric
/// names ending in `_per_s`, `_rate` or `speedup` — after stripping an
/// aggregate suffix (`.min`, `.median`, `.max`, `.mean`) — are
/// higher-is-better; everything else is lower-is-better.
bool higher_is_better(std::string_view metric);

/// `*.stddev` metrics describe noise, not performance; they are reported
/// but never gate.
bool is_informational(std::string_view metric);

struct MetricDelta {
  std::string name;
  double baseline = 0;
  double current = 0;
  double change_frac = 0;  ///< (current - baseline) / |baseline|
  bool higher_better = false;
  bool informational = false;
  bool regressed = false;  ///< worse than baseline beyond tolerance
};

struct CompareResult {
  std::vector<MetricDelta> deltas;          // sorted by metric name
  std::vector<std::string> only_baseline;   // metric disappeared
  std::vector<std::string> only_current;    // new metric (not gated)
  std::vector<std::string> config_changes;  // "key: old -> new"
  bool regression = false;
};

/// Compare `current` against `baseline` with a relative tolerance
/// (`tolerance_frac = 0.1` allows a 10% regression). A vanished metric
/// counts as a regression; a new one does not.
CompareResult compare_bench(const BenchDoc& baseline, const BenchDoc& current,
                            double tolerance_frac);

/// Render the per-metric delta table plus config-change and profile-shift
/// notes, as printed by `tools/bench_report`.
std::string format_compare(const BenchDoc& baseline, const BenchDoc& current,
                           const CompareResult& cmp);

/// Full `bench_report` CLI driver (factored out of tools/bench_report.cpp
/// so the regression/tolerance/exit-code logic is unit-testable).
/// args excludes argv[0]. Returns the process exit code:
/// 0 = no regression, 1 = regression beyond tolerance, 2 = usage or
/// parse error.
int run_bench_report(const std::vector<std::string>& args, std::ostream& out,
                     std::ostream& err);

}  // namespace pckpt::obs
