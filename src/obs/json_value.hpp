#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file json_value.hpp
/// The repo's one hand-rolled JSON reader: a small tagged-union value and
/// a strict recursive-descent parser (any syntax error reports its byte
/// offset). Grown out of the `pckpt-bench/1` telemetry reader and now
/// shared by the bench-report tooling and the `pckpt_serve` wire protocol
/// (docs/SERVING.md). Writing stays with exec::JsonlRow /
/// obs::BenchJsonWriter — this header is the read side only.

namespace pckpt::obs {

/// A parsed JSON value. Object members keep insertion order so documents
/// render and iterate deterministically.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  /// First member named `key`, or nullptr (valid only for kObject).
  const JsonValue* get(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  bool is_object() const { return kind == Kind::kObject; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Typed member lookup: engaged only when the member exists and has the
  /// matching kind. `key_u64` additionally requires a non-negative
  /// integral value.
  std::optional<std::string> key_string(std::string_view key) const;
  std::optional<double> key_number(std::string_view key) const;
  std::optional<bool> key_bool(std::string_view key) const;
  std::optional<std::uint64_t> key_u64(std::string_view key) const;
};

/// Parse one complete JSON document (trailing bytes are an error).
/// \throws std::runtime_error with a byte offset on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace pckpt::obs
