#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#if defined(PCKPT_PROFILER_CLOCK_CPUTIME)
#include <ctime>
#endif

/// \file profiler.hpp
/// Self-profiling of *host* wall-clock (or per-thread CPU) time, the
/// counterpart of the simulated-time tracing in `obs/event.hpp`: where a
/// trace says "the run checkpointed at t=400 s of simulated time", the
/// profiler says "the simulator spent 38% of its host time in the DES
/// kernel". See docs/OBSERVABILITY.md ("Host-time profiling").
///
/// Design contract (mirrors the `sim::KernelTracer` hook):
///
/// - **Disabled by default, one branch when disabled.** A `ScopedTimer`
///   constructed while no `Profiler` is attached loads one atomic and
///   branches; it reads no clock and touches no shared state. The
///   `bench/micro_exec` throughput baseline is part of the acceptance
///   bar for keeping it that way.
/// - **Thread-local accumulation.** Each thread accumulates spans into
///   its own records (registered once per thread per attach); workers
///   never contend on the hot path.
/// - **Deterministic merge.** Accumulators are integer nanosecond/call
///   counters, so folding thread records is commutative and
///   order-independent; `report()` additionally sorts labels, making the
///   merged output byte-stable for a given set of records.
/// - **Self-time attribution.** Timers nest; each scope's elapsed time is
///   charged to its parent's `child_ns`, so `self_ns = total - child`
///   partitions the instrumented wall time with no double counting and
///   per-subsystem attribution sums to the instrumented total.
///
/// This header is intentionally dependency-free (library `pckpt_prof`):
/// the DES kernel, the I/O model and the failure-trace generator all
/// instrument themselves with it, and all of those sit *below*
/// `pckpt_obs` in the link order. The bridge into `obs::MetricsRegistry`
/// lives in `obs/metrics.hpp` (`merge_profile`).

namespace pckpt::obs {

/// The profiling clock, selected at compile time:
/// default            — `std::chrono::steady_clock` (wall time),
/// -DPCKPT_PROFILER_CLOCK_CPUTIME — per-thread CPU time
///                      (`CLOCK_THREAD_CPUTIME_ID`), which excludes
///                      scheduler preemption at ~3x the read cost.
struct ProfClock {
  static std::uint64_t now_ns() noexcept {
#if defined(PCKPT_PROFILER_CLOCK_CPUTIME)
    timespec ts;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
           static_cast<std::uint64_t>(ts.tv_nsec);
#else
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#endif
  }

  static constexpr std::string_view name() noexcept {
#if defined(PCKPT_PROFILER_CLOCK_CPUTIME)
    return "thread-cputime";
#else
    return "steady";
#endif
  }
};

/// Per-label accumulator. All fields are integers so cross-thread merging
/// is exact and order-independent.
struct SpanStats {
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;  ///< inclusive (children counted)
  std::uint64_t child_ns = 0;  ///< time spent in nested instrumented spans
  std::uint64_t max_ns = 0;    ///< longest single span

  /// Exclusive time: inclusive minus instrumented children. Clamped at 0
  /// (same-label recursion can make child_ns exceed total_ns transiently
  /// while outer frames are still open).
  std::uint64_t self_ns() const noexcept {
    return total_ns > child_ns ? total_ns - child_ns : 0;
  }

  void add(const SpanStats& o) noexcept {
    calls += o.calls;
    total_ns += o.total_ns;
    child_ns += o.child_ns;
    if (o.max_ns > max_ns) max_ns = o.max_ns;
  }
};

class Profiler;
class ScopedTimer;

namespace prof_detail {

/// One thread's span accumulators, owned jointly by the thread-local
/// cache and the profiler (shared_ptr), so records survive thread exit
/// until the profiler reports them.
struct ThreadRecords {
  /// deque, not vector: open ScopedTimers hold references into this
  /// container, so growing it (a nested span with a brand-new label) must
  /// not relocate existing accumulators.
  std::deque<std::pair<const char*, SpanStats>> slots;  // first-use order
  std::unordered_map<const void*, std::size_t> index;   // label ptr -> slot
  ScopedTimer* current = nullptr;  ///< innermost open span on this thread

  SpanStats& slot(const char* label) {
    auto it = index.find(label);
    if (it == index.end()) {
      slots.emplace_back(label, SpanStats{});
      it = index.emplace(label, slots.size() - 1).first;
    }
    return slots[it->second].second;
  }
};

ThreadRecords& records_for(Profiler& p);

}  // namespace prof_detail

/// Merged view of every thread's accumulators, labels sorted
/// lexicographically. Pure value; safe to keep after the profiler dies.
struct ProfileReport {
  struct Entry {
    std::string label;
    SpanStats stats;
  };
  std::vector<Entry> spans;  ///< sorted by label
  std::size_t threads = 0;   ///< thread records merged

  bool empty() const noexcept { return spans.empty(); }
  const Entry* find(std::string_view label) const noexcept;

  /// Sum of self-times: the instrumented fraction of host time. Compare
  /// against the measured wall time of the instrumented region to get
  /// coverage (docs/OBSERVABILITY.md documents the >= 90% target).
  double covered_s() const noexcept;

  /// Aligned human-readable attribution table (label, calls, total s,
  /// self s, share of covered time), biggest self-time first.
  std::string to_string() const;
};

/// Host-side resource counters sampled from the OS allocator/kernel.
struct HostCounters {
  std::uint64_t peak_rss_kb = 0;  ///< high-water resident set (getrusage)
  std::uint64_t heap_used_kb = 0;  ///< live malloc'd bytes (mallinfo2)
  bool heap_valid = false;  ///< heap_used_kb is meaningful (glibc >= 2.33)
};

HostCounters sample_host_counters();

/// Span-accumulation registry. At most one profiler is *attached*
/// (globally active) at a time; `ScopedTimer`s constructed while it is
/// attached record into it. Typical use:
///
///   obs::Profiler prof;
///   prof.attach();
///   ... run campaigns ...
///   prof.detach();
///   obs::ProfileReport report = prof.report();
class Profiler {
 public:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;
  ~Profiler();

  /// Make this profiler the recording target of every new ScopedTimer.
  /// \throws std::logic_error if another profiler is already attached.
  void attach();

  /// Stop recording (no-op when not attached). Already-open spans on
  /// other threads finish into their records; call report() only after
  /// the instrumented work has quiesced (e.g. the campaign returned).
  void detach() noexcept;

  bool attached() const noexcept { return active() == this; }

  /// The globally attached profiler, or null (the common case).
  static Profiler* active() noexcept {
    return g_active.load(std::memory_order_acquire);
  }

  /// Deterministic merge of every thread's accumulators (integer sums,
  /// sorted labels). Requires quiescence: no span may be concurrently
  /// open on another thread.
  ProfileReport report() const;

  /// Attach epoch; bumped on every attach() so stale thread-local record
  /// caches from an earlier attach never alias a new one.
  std::uint64_t generation() const noexcept { return generation_; }

 private:
  friend prof_detail::ThreadRecords& prof_detail::records_for(Profiler&);

  void register_thread(std::shared_ptr<prof_detail::ThreadRecords> rec);

  mutable std::mutex mutex_;
  // guarded_by(mutex_)
  std::vector<std::shared_ptr<prof_detail::ThreadRecords>> threads_;
  std::uint64_t generation_ = 0;  ///< immutable after construction

  static std::atomic<Profiler*> g_active;
  static std::atomic<std::uint64_t> g_generation;
};

/// RAII span: charges the enclosed host time to `label` on the current
/// thread. `label` must be a string literal (or otherwise outlive the
/// profiler) — accumulators key on the pointer.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* label) {
    Profiler* p = Profiler::active();
    if (p == nullptr) return;  // disabled path: one load + one branch
    begin(*p, label);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (slot_ != nullptr) end();
  }

 private:
  void begin(Profiler& p, const char* label);
  void end();

  SpanStats* slot_ = nullptr;  ///< null = this span is not recording
  ScopedTimer* parent_ = nullptr;
  prof_detail::ThreadRecords* rec_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t child_ns_ = 0;

  friend struct ScopedTimerLayout;
};

/// The disabled path must stay trivially cheap: a ScopedTimer is a
/// handful of words on the stack, never heap-allocated. Growing it past a
/// cache line is a red flag that someone added state to the hot path.
static_assert(sizeof(ScopedTimer) <= 64,
              "ScopedTimer must stay within one cache line");

}  // namespace pckpt::obs
