#include "obs/json_value.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace pckpt::obs {

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.compare(pos_, lit.size(), lit) == 0) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue value() {
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.string = string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        v.kind = JsonValue::Kind::kNull;
        return v;
      default:
        return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = string();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The repo's documents are ASCII; keep non-ASCII escapes
          // lossy-simple.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  JsonValue number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (errno == ERANGE || end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<std::string> JsonValue::key_string(std::string_view key) const {
  const JsonValue* v = get(key);
  if (v == nullptr || v->kind != Kind::kString) return std::nullopt;
  return v->string;
}

std::optional<double> JsonValue::key_number(std::string_view key) const {
  const JsonValue* v = get(key);
  if (v == nullptr || v->kind != Kind::kNumber) return std::nullopt;
  return v->number;
}

std::optional<bool> JsonValue::key_bool(std::string_view key) const {
  const JsonValue* v = get(key);
  if (v == nullptr || v->kind != Kind::kBool) return std::nullopt;
  return v->boolean;
}

std::optional<std::uint64_t> JsonValue::key_u64(std::string_view key) const {
  const JsonValue* v = get(key);
  if (v == nullptr || v->kind != Kind::kNumber) return std::nullopt;
  if (!(v->number >= 0.0) || v->number != std::floor(v->number) ||
      v->number >= 1.8446744073709552e19) {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(v->number);
}

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse();
}

}  // namespace pckpt::obs
