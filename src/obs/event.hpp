#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

/// \file event.hpp
/// The typed trace record of the observability layer. One `Event` is
/// either an *instant* (t0 == t1: a prediction arrived, a failure
/// struck) or a *span* (t0 < t1: a burst-buffer write, a recovery).
///
/// Design constraints, in priority order:
///  1. Deterministic: an event is a pure value; serializing the same
///     event sequence always yields the same bytes (see
///     docs/OBSERVABILITY.md for the determinism contract).
///  2. Cheap: no heap allocation per event. Names and field keys are
///     static string literals (`const char*` by contract); payloads are
///     a fixed-capacity array of numeric fields.
///  3. Self-describing: every event carries the simulation time window,
///     the global trial index (`run_id`), a category, a track (which
///     simulated node/process lane it belongs to) and named fields.

namespace pckpt::obs {

/// Coarse event taxonomy; used for filtering and for metrics rollups.
enum class Category : std::uint8_t {
  kRun,         ///< run lifecycle (run_begin / run_end)
  kPhase,       ///< application phase spans (compute, stall)
  kCheckpoint,  ///< BB + proactive checkpoint activity
  kDrain,       ///< asynchronous BB -> PFS drains
  kPrediction,  ///< predictor events (true and false positives)
  kFailure,     ///< failure strikes
  kRecovery,    ///< restore / restart activity
  kMigration,   ///< live-migration activity
  kProtocol,    ///< p-ckpt protocol round phases
  kKernel,      ///< DES kernel mechanics (schedule / fire / interrupt)
};

std::string_view to_string(Category c);

/// Track (lane) identifiers. Tracks map to Chrome-trace threads: one
/// per simulated node plus a few well-known process lanes.
inline constexpr std::int32_t kTrackApp = 0;     ///< application controller
inline constexpr std::int32_t kTrackDrain = 1;   ///< BB->PFS drain process
inline constexpr std::int32_t kTrackKernel = 2;  ///< DES kernel events
inline constexpr std::int32_t kTrackRound = 3;   ///< protocol coordinator
/// Node `n` reports on track `kTrackNodeBase + n`.
inline constexpr std::int32_t kTrackNodeBase = 8;

/// Human-readable track label ("app", "drain", "node 17", ...) written
/// into an internal buffer-free snippet; used by the writers.
std::string_view track_label_prefix(std::int32_t track);

struct Event {
  /// Payload capacity. `run_end` is the widest emitter (11 fields).
  static constexpr std::size_t kMaxFields = 12;

  /// One named numeric payload entry. `key` must be a string literal
  /// (or otherwise outlive the event).
  struct Field {
    const char* key = "";
    double value = 0.0;
  };

  double t0_s = 0.0;  ///< start time (== t1_s for instants)
  double t1_s = 0.0;  ///< end time; also the emission time
  std::uint64_t run_id = 0;  ///< global trial index within a campaign
  std::int32_t track = kTrackApp;
  Category category = Category::kRun;
  const char* name = "";  ///< static string literal by contract
  std::array<Field, kMaxFields> fields{};
  std::size_t field_count = 0;

  bool is_instant() const noexcept { return t1_s == t0_s; }
  double duration_s() const noexcept { return t1_s - t0_s; }

  /// Append a payload field; silently drops past capacity (callers emit
  /// fixed field sets well under `kMaxFields`).
  Event& with(const char* key, double value) noexcept {
    if (field_count < kMaxFields) {
      fields[field_count++] = Field{key, value};
    }
    return *this;
  }

  /// Look up a field by key; returns `fallback` when absent.
  double field(std::string_view key, double fallback = 0.0) const noexcept {
    for (std::size_t i = 0; i < field_count; ++i) {
      if (key == fields[i].key) return fields[i].value;
    }
    return fallback;
  }
  bool has_field(std::string_view key) const noexcept {
    for (std::size_t i = 0; i < field_count; ++i) {
      if (key == fields[i].key) return true;
    }
    return false;
  }

  static Event instant(Category cat, const char* name, double t_s,
                       std::int32_t track) noexcept {
    Event e;
    e.t0_s = t_s;
    e.t1_s = t_s;
    e.track = track;
    e.category = cat;
    e.name = name;
    return e;
  }

  static Event span(Category cat, const char* name, double t0_s, double t1_s,
                    std::int32_t track) noexcept {
    Event e;
    e.t0_s = t0_s;
    e.t1_s = t1_s;
    e.track = track;
    e.category = cat;
    e.name = name;
    return e;
  }
};

}  // namespace pckpt::obs
