#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/trace_writer.hpp"

/// \file cli_flags.hpp
/// The one strict-validation command-line helper shared by every binary
/// in the repo (tools/pckpt_sim, tools/pckpt_serve, tools/pckpt_query and
/// the bench harness). Before this existed, `--jobs`/`--jsonl`/
/// `--bench-json` parsing was duplicated per binary and the copies
/// drifted; now a flag means the same thing — and rejects the same
/// garbage with the same `exit(2)` contract — everywhere.
///
/// Conventions (docs/EXECUTION.md):
///  - integers are strict decimal: empty strings, signs, trailing junk
///    and overflow are fatal usage errors, never silently clamped;
///  - path-valued flags reject empty values;
///  - diagnostics are printed as "<tool>: <flag>: ..." on stderr and the
///    process exits with status 2 (usage error).

namespace pckpt::obs {

/// If `arg` starts with `prefix` (e.g. "--jobs="), return the value part
/// (may be empty); otherwise nullptr.
const char* cli_value(const std::string& arg, const char* prefix);

/// Strict non-negative decimal integer; exits(2) with a diagnostic
/// naming `tool` and `flag` on anything else.
std::uint64_t cli_u64(const char* tool, const char* flag, const char* text);

/// As cli_u64, additionally requiring `value >= min`.
std::uint64_t cli_u64_min(const char* tool, const char* flag,
                          const char* text, std::uint64_t min);

/// Non-empty path value; exits(2) otherwise.
std::string cli_path(const char* tool, const char* flag, const char* text);

/// Strict finite double; exits(2) on empty/trailing junk/NaN/inf.
double cli_double(const char* tool, const char* flag, const char* text);

/// Which of the common flags a binary accepts (bitmask).
enum CliFlagMask : unsigned {
  kCliRuns = 1u << 0,       ///< --runs=N        (>= 1)
  kCliSeed = 1u << 1,       ///< --seed=S
  kCliJobs = 1u << 2,       ///< --jobs=N        (>= 1; 0 = auto default)
  kCliJsonl = 1u << 3,      ///< --jsonl=PATH
  kCliCsv = 1u << 4,        ///< --csv
  kCliTrace = 1u << 5,      ///< --trace=PATH, --trace-format=jsonl|chrome
  kCliBenchJson = 1u << 6,  ///< --bench-json=PATH
  kCliProfile = 1u << 7,    ///< --profile
  kCliRepeat = 1u << 8,     ///< --repeat=N      (>= 1; micro benches)
  kCliSystem = 1u << 9,     ///< --system=NAME
};

/// Parsed values for the common flag block, with the repo-wide defaults.
struct CommonFlags {
  std::size_t runs = 200;
  std::uint64_t seed = 2022;
  std::size_t jobs = 0;  ///< 0 = auto (one worker per hardware thread)
  std::string jsonl;
  bool csv = false;
  std::string trace;
  TraceFormat trace_format = TraceFormat::kJsonl;
  std::string bench_json;
  bool profile = false;
  std::size_t repeat = 0;  ///< 0 = single sample
  std::string system = "titan";
};

/// Try to consume `arg` as one of the common flags enabled in `mask`.
/// Returns true when consumed (value stored in `out`); false when the
/// flag is not part of the common block (caller handles or rejects it).
/// Malformed values never return — strict exit(2), as above.
bool cli_consume_common(const char* tool, const std::string& arg,
                        unsigned mask, CommonFlags& out);

/// One help line per enabled flag, for embedding into a usage() text.
std::string cli_common_help(unsigned mask);

}  // namespace pckpt::obs
