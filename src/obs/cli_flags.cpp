#include "obs/cli_flags.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pckpt::obs {

namespace {

[[noreturn]] void usage_error(const char* tool, const char* flag,
                              const char* what, const char* got) {
  std::fprintf(stderr, "%s: %s: %s, got '%s'\n", tool, flag, what, got);
  std::exit(2);
}

}  // namespace

const char* cli_value(const std::string& arg, const char* prefix) {
  const std::size_t n = std::strlen(prefix);
  return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
}

std::uint64_t cli_u64(const char* tool, const char* flag, const char* text) {
  bool digits_only = *text != '\0';
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') digits_only = false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = digits_only ? std::strtoull(text, &end, 10) : 0;
  if (!digits_only || errno == ERANGE) {
    usage_error(tool, flag, "expected a non-negative integer", text);
  }
  return v;
}

std::uint64_t cli_u64_min(const char* tool, const char* flag,
                          const char* text, std::uint64_t min) {
  const std::uint64_t v = cli_u64(tool, flag, text);
  if (v < min) {
    std::fprintf(stderr, "%s: %s: must be at least %llu\n", tool, flag,
                 static_cast<unsigned long long>(min));
    std::exit(2);
  }
  return v;
}

std::string cli_path(const char* tool, const char* flag, const char* text) {
  if (*text == '\0') {
    std::fprintf(stderr, "%s: %s: missing path\n", tool, flag);
    std::exit(2);
  }
  return text;
}

double cli_double(const char* tool, const char* flag, const char* text) {
  if (*text == '\0') {
    usage_error(tool, flag, "expected a number", text);
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (errno == ERANGE || end != text + std::strlen(text) ||
      !std::isfinite(v)) {
    usage_error(tool, flag, "expected a finite number", text);
  }
  return v;
}

bool cli_consume_common(const char* tool, const std::string& arg,
                        unsigned mask, CommonFlags& out) {
  if ((mask & kCliRuns) != 0) {
    if (const char* v = cli_value(arg, "--runs=")) {
      out.runs = static_cast<std::size_t>(cli_u64_min(tool, "--runs", v, 1));
      return true;
    }
  }
  if ((mask & kCliSeed) != 0) {
    if (const char* v = cli_value(arg, "--seed=")) {
      out.seed = cli_u64(tool, "--seed", v);
      return true;
    }
  }
  if ((mask & kCliJobs) != 0) {
    if (const char* v = cli_value(arg, "--jobs=")) {
      out.jobs = static_cast<std::size_t>(cli_u64_min(tool, "--jobs", v, 1));
      return true;
    }
  }
  if ((mask & kCliJsonl) != 0) {
    if (const char* v = cli_value(arg, "--jsonl=")) {
      out.jsonl = cli_path(tool, "--jsonl", v);
      return true;
    }
  }
  if ((mask & kCliCsv) != 0 && arg == "--csv") {
    out.csv = true;
    return true;
  }
  if ((mask & kCliTrace) != 0) {
    if (const char* v = cli_value(arg, "--trace=")) {
      out.trace = cli_path(tool, "--trace", v);
      return true;
    }
    if (const char* v = cli_value(arg, "--trace-format=")) {
      try {
        out.trace_format = trace_format_from_string(v);
      } catch (const std::exception&) {
        usage_error(tool, "--trace-format", "expected jsonl|chrome", v);
      }
      return true;
    }
  }
  if ((mask & kCliBenchJson) != 0) {
    if (const char* v = cli_value(arg, "--bench-json=")) {
      out.bench_json = cli_path(tool, "--bench-json", v);
      return true;
    }
  }
  if ((mask & kCliProfile) != 0 && arg == "--profile") {
    out.profile = true;
    return true;
  }
  if ((mask & kCliRepeat) != 0) {
    if (const char* v = cli_value(arg, "--repeat=")) {
      out.repeat =
          static_cast<std::size_t>(cli_u64_min(tool, "--repeat", v, 1));
      return true;
    }
  }
  if ((mask & kCliSystem) != 0) {
    if (const char* v = cli_value(arg, "--system=")) {
      out.system = v;
      return true;
    }
  }
  return false;
}

std::string cli_common_help(unsigned mask) {
  std::string out;
  if ((mask & kCliRuns) != 0) {
    out += "  --runs=N                 paired runs per campaign (default "
           "200)\n";
  }
  if ((mask & kCliSeed) != 0) {
    out += "  --seed=S                 base seed (default 2022)\n";
  }
  if ((mask & kCliJobs) != 0) {
    out += "  --jobs=N                 worker threads (default: one per "
           "core)\n";
  }
  if ((mask & kCliJsonl) != 0) {
    out += "  --jsonl=PATH             machine-readable rows (see "
           "docs/EXECUTION.md)\n";
  }
  if ((mask & kCliCsv) != 0) {
    out += "  --csv                    CSV instead of aligned tables\n";
  }
  if ((mask & kCliTrace) != 0) {
    out += "  --trace=PATH             semantic run trace (see "
           "docs/OBSERVABILITY.md)\n"
           "  --trace-format=FMT       jsonl (default) or chrome\n";
  }
  if ((mask & kCliBenchJson) != 0) {
    out += "  --bench-json=PATH        pckpt-bench/1 telemetry (see "
           "docs/OBSERVABILITY.md)\n";
  }
  if ((mask & kCliProfile) != 0) {
    out += "  --profile                host-time attribution table\n";
  }
  if ((mask & kCliRepeat) != 0) {
    out += "  --repeat=N               warmup + N timed samples "
           "(min/median/stddev)\n";
  }
  if ((mask & kCliSystem) != 0) {
    out += "  --system=NAME            titan|lanl8|lanl18 (default titan)\n";
  }
  return out;
}

}  // namespace pckpt::obs
