#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "stats/summary.hpp"

/// \file metrics.hpp
/// `MetricsRegistry` — named counters, online moment accumulators and
/// fixed-width histograms, registered on first use and iterated in
/// insertion order (so exports are deterministic). Reuses the
/// `src/stats/` toolkit for the numeric machinery.
///
/// The registry is single-threaded by design: per-run metrics live in
/// per-trial registries (or are derived from per-trial trace buffers
/// via `summarize_events`), and campaign-level rollups happen on the
/// merging thread — the same discipline the campaign engine uses for
/// results (docs/EXECUTION.md).

namespace pckpt::obs {

struct ProfileReport;

class MetricsRegistry {
 public:
  /// Monotonic counter, created at zero on first use.
  std::uint64_t& counter(std::string_view name);

  /// Welford accumulator, created empty on first use.
  stats::OnlineStats& stat(std::string_view name);

  /// Fixed-width histogram; the (lo, hi, bins) shape is set by the
  /// first call and must match on later calls (throws otherwise).
  stats::Histogram& histogram(std::string_view name, double lo, double hi,
                              std::size_t bins);

  bool empty() const noexcept {
    return counters_.empty() && stats_.empty() && histograms_.empty();
  }

  /// Fold another registry into this one (counters add, stats merge).
  /// Histograms must have matching shapes; bin counts add.
  void merge(const MetricsRegistry& other);

  /// Insertion-ordered views.
  const std::vector<std::pair<std::string, std::uint64_t>>& counters()
      const noexcept {
    return counters_;
  }
  const std::vector<std::pair<std::string, stats::OnlineStats>>& stats()
      const noexcept {
    return stats_;
  }

  /// Render `name value` lines (counters) and `name mean/min/max/count`
  /// lines (stats) in insertion order — the human-readable summary the
  /// CLI prints after a traced campaign.
  std::string to_string() const;

  /// One JSON line per metric: {"metric": name, "kind": ..., ...}.
  void write_jsonl(std::ostream& os, std::string_view label) const;

 private:
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
  std::vector<std::pair<std::string, stats::OnlineStats>> stats_;
  struct NamedHistogram {
    std::string name;
    double lo = 0.0, hi = 0.0;
    std::size_t bins = 0;
    std::unique_ptr<stats::Histogram> hist;
  };
  std::vector<NamedHistogram> histograms_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::unordered_map<std::string, std::size_t> stat_index_;
  std::unordered_map<std::string, std::size_t> histogram_index_;
};

/// Fold a profiler report (obs/profiler.hpp) into a registry as counters
/// `prof.calls.<label>`, `prof.us.<label>` (inclusive microseconds) and
/// `prof.self_us.<label>` (exclusive), in sorted-label order so repeated
/// merges render identically. This is how `pckpt_sim --profile` shares
/// the trace-metrics dump path.
void merge_profile(const ProfileReport& report, MetricsRegistry& registry);

}  // namespace pckpt::obs
