#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "stats/summary.hpp"

/// \file metrics.hpp
/// `MetricsRegistry` — named counters, online moment accumulators,
/// fixed-width histograms and log-bucketed latency histograms,
/// registered on first use and iterated in insertion order (so exports
/// are deterministic). Reuses the `src/stats/` toolkit for the numeric
/// machinery.
///
/// The registry is single-threaded by design: per-run metrics live in
/// per-trial registries (or are derived from per-trial trace buffers
/// via `summarize_events`), and campaign-level rollups happen on the
/// merging thread — the same discipline the campaign engine uses for
/// results (docs/EXECUTION.md). Daemon-lifetime registries (the serve
/// layer's `Telemetry`) wrap access in their own mutex.

namespace pckpt::obs {

struct ProfileReport;

/// Log-bucketed latency histogram over integer microseconds, the shape
/// behind the serve layer's p50/p90/p99 surfaces. Buckets follow the
/// HdrHistogram scheme: values below 4 us get exact buckets, above that
/// each power of two splits into 4 sub-buckets (relative bucket width
/// <= 25%), 256 buckets covering the full u64 range — so two histograms
/// always share one shape and `merge` is an exact element-wise sum.
///
/// Quantile semantics (docs/OBSERVABILITY.md): `quantile(q)` returns
/// the midpoint of the lowest bucket whose cumulative count reaches
/// ceil(q * count) — an upper-bound estimate within one bucket width.
/// Empty histograms report 0; a single sample reports its own bucket's
/// midpoint; saturated samples (clamped into the top bucket) report the
/// top bucket's midpoint.
class LatencyHist {
 public:
  static constexpr std::size_t kSubBits = 2;  ///< 4 sub-buckets per octave
  static constexpr std::size_t kBuckets = 256;

  /// Bucket index for a microsecond value (monotone in `us`).
  static std::size_t bucket_of(std::uint64_t us) noexcept;
  /// Inclusive lower bound of bucket `b` in microseconds.
  static std::uint64_t bucket_lo(std::size_t b) noexcept;
  /// Midpoint of bucket `b` (the quantile representative).
  static double bucket_mid(std::size_t b) noexcept;

  void record_us(std::uint64_t us) noexcept;
  void record_ns(std::uint64_t ns) noexcept { record_us(ns / 1000); }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t max_us() const noexcept { return max_us_; }
  std::uint64_t sum_us() const noexcept { return sum_us_; }
  std::uint64_t bucket_count(std::size_t b) const { return counts_[b]; }

  /// q in [0, 1]; see the class comment for the exact semantics.
  double quantile(double q) const noexcept;

  double p50() const noexcept { return quantile(0.50); }
  double p90() const noexcept { return quantile(0.90); }
  double p99() const noexcept { return quantile(0.99); }

  /// Element-wise sum — always well-defined, the shape is fixed.
  void merge(const LatencyHist& other) noexcept;

 private:
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_us_ = 0;
  std::uint64_t max_us_ = 0;
};

class MetricsRegistry {
 public:
  /// Monotonic counter, created at zero on first use.
  std::uint64_t& counter(std::string_view name);

  /// Welford accumulator, created empty on first use.
  stats::OnlineStats& stat(std::string_view name);

  /// Fixed-width histogram; the (lo, hi, bins) shape is set by the
  /// first call and must match on later calls (throws otherwise).
  stats::Histogram& histogram(std::string_view name, double lo, double hi,
                              std::size_t bins);

  /// Log-bucketed latency histogram, created empty on first use. All
  /// LatencyHists share one shape, so merge never mismatches.
  LatencyHist& latency(std::string_view name);

  bool empty() const noexcept {
    return counters_.empty() && stats_.empty() && histograms_.empty() &&
           latencies_.empty();
  }

  /// Fold another registry into this one (counters add, stats merge).
  /// Histograms must have matching shapes; bin counts add.
  void merge(const MetricsRegistry& other);

  /// Insertion-ordered views.
  const std::vector<std::pair<std::string, std::uint64_t>>& counters()
      const noexcept {
    return counters_;
  }
  const std::vector<std::pair<std::string, stats::OnlineStats>>& stats()
      const noexcept {
    return stats_;
  }
  const std::vector<std::pair<std::string, LatencyHist>>& latencies()
      const noexcept {
    return latencies_;
  }

  /// Render `name value` lines (counters) and `name mean/min/max/count`
  /// lines (stats) in insertion order — the human-readable summary the
  /// CLI prints after a traced campaign.
  std::string to_string() const;

  /// One JSON line per metric: {"metric": name, "kind": ..., ...}.
  void write_jsonl(std::ostream& os, std::string_view label) const;

 private:
  std::vector<std::pair<std::string, std::uint64_t>> counters_;
  std::vector<std::pair<std::string, stats::OnlineStats>> stats_;
  struct NamedHistogram {
    std::string name;
    double lo = 0.0, hi = 0.0;
    std::size_t bins = 0;
    std::unique_ptr<stats::Histogram> hist;
  };
  std::vector<NamedHistogram> histograms_;
  std::vector<std::pair<std::string, LatencyHist>> latencies_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::unordered_map<std::string, std::size_t> stat_index_;
  std::unordered_map<std::string, std::size_t> histogram_index_;
  std::unordered_map<std::string, std::size_t> latency_index_;
};

/// Fold a profiler report (obs/profiler.hpp) into a registry as counters
/// `prof.calls.<label>`, `prof.us.<label>` (inclusive microseconds) and
/// `prof.self_us.<label>` (exclusive), in sorted-label order so repeated
/// merges render identically. This is how `pckpt_sim --profile` shares
/// the trace-metrics dump path.
void merge_profile(const ProfileReport& report, MetricsRegistry& registry);

}  // namespace pckpt::obs
