#include "obs/trace_writer.hpp"

#include <ostream>
#include <stdexcept>

#include "exec/result_sink.hpp"

namespace pckpt::obs {

using exec::JsonlRow;

std::string_view to_string(Category c) {
  switch (c) {
    case Category::kRun: return "run";
    case Category::kPhase: return "phase";
    case Category::kCheckpoint: return "checkpoint";
    case Category::kDrain: return "drain";
    case Category::kPrediction: return "prediction";
    case Category::kFailure: return "failure";
    case Category::kRecovery: return "recovery";
    case Category::kMigration: return "migration";
    case Category::kProtocol: return "protocol";
    case Category::kKernel: return "kernel";
  }
  return "?";
}

std::string_view track_label_prefix(std::int32_t track) {
  switch (track) {
    case kTrackApp: return "app";
    case kTrackDrain: return "drain";
    case kTrackKernel: return "kernel";
    case kTrackRound: return "round";
    default: return track >= kTrackNodeBase ? "node" : "track";
  }
}

namespace {

std::string track_label(std::int32_t track) {
  std::string label(track_label_prefix(track));
  if (track >= kTrackNodeBase) {
    label += ' ';
    label += std::to_string(track - kTrackNodeBase);
  } else if (track > kTrackRound) {
    label += ' ';
    label += std::to_string(track);
  }
  return label;
}

}  // namespace

TraceFormat trace_format_from_string(std::string_view name) {
  if (name == "jsonl") return TraceFormat::kJsonl;
  if (name == "chrome") return TraceFormat::kChrome;
  throw std::invalid_argument("trace format must be 'jsonl' or 'chrome', got '" +
                              std::string(name) + "'");
}

std::string_view to_string(TraceFormat f) {
  return f == TraceFormat::kJsonl ? "jsonl" : "chrome";
}

// ---------------------------------------------------------------- JSONL

void JsonlTraceWriter::begin_campaign(std::string_view label) {
  campaign_.assign(label);
}

void JsonlTraceWriter::write(const Event& e) {
  JsonlRow row;
  row.add("campaign", campaign_)
      .add("run", e.run_id)
      .add("cat", to_string(e.category))
      .add("name", e.name)
      .add("track", static_cast<int>(e.track))
      .add("t0_s", e.t0_s)
      .add("t1_s", e.t1_s);
  for (std::size_t i = 0; i < e.field_count; ++i) {
    row.add(e.fields[i].key, e.fields[i].value);
  }
  *out_ << row.str() << '\n';
  ++events_written_;
}

void JsonlTraceWriter::finish() { out_->flush(); }

// --------------------------------------------------------------- Chrome

ChromeTraceWriter::~ChromeTraceWriter() {
  try {
    finish();
  } catch (...) {
    // Destructor must not throw; a failed flush surfaces via the stream.
  }
}

void ChromeTraceWriter::raw(std::string_view json) {
  if (!started_) {
    *out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    started_ = true;
  }
  if (!first_record_) *out_ << ",\n";
  first_record_ = false;
  *out_ << json;
}

void ChromeTraceWriter::begin_campaign(std::string_view label) {
  campaign_.assign(label);
  // Each campaign gets a fresh pid namespace above everything the
  // previous campaigns used, so trials never collide across campaigns.
  pid_base_ = max_pid_ + 1;
}

std::int64_t ChromeTraceWriter::pid_for(std::uint64_t run_id) {
  const auto pid = pid_base_ + static_cast<std::int64_t>(run_id);
  if (pid > max_pid_) max_pid_ = pid;
  return pid;
}

void ChromeTraceWriter::ensure_names(std::int64_t pid, std::uint64_t run_id,
                                     std::int32_t track) {
  if (named_processes_.insert(pid).second) {
    std::string name = campaign_.empty() ? "run" : campaign_;
    name += " trial ";
    name += std::to_string(run_id);
    raw("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
        ",\"name\":\"process_name\",\"args\":{\"name\":\"" +
        JsonlRow::escape(name) + "\"}}");
  }
  if (named_threads_.insert({pid, track}).second) {
    raw("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
        ",\"tid\":" + std::to_string(track) +
        ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
        JsonlRow::escape(track_label(track)) + "\"}}");
  }
}

void ChromeTraceWriter::write(const Event& e) {
  const std::int64_t pid = pid_for(e.run_id);
  ensure_names(pid, e.run_id, e.track);

  // Simulation seconds -> trace microseconds.
  const double ts_us = e.t0_s * 1e6;
  std::string json = "{\"ph\":\"";
  json += e.is_instant() ? 'i' : 'X';
  json += "\",\"pid\":" + std::to_string(pid) +
          ",\"tid\":" + std::to_string(e.track) + ",\"ts\":" +
          JsonlRow::number(ts_us);
  if (e.is_instant()) {
    json += ",\"s\":\"t\"";
  } else {
    json += ",\"dur\":" + JsonlRow::number(e.duration_s() * 1e6);
  }
  json += ",\"name\":\"" + JsonlRow::escape(e.name) + "\",\"cat\":\"" +
          std::string(to_string(e.category)) + "\"";
  if (e.field_count > 0) {
    json += ",\"args\":{";
    for (std::size_t i = 0; i < e.field_count; ++i) {
      if (i > 0) json += ',';
      json += '"';
      json += JsonlRow::escape(e.fields[i].key);
      json += "\":";
      json += JsonlRow::number(e.fields[i].value);
    }
    json += '}';
  }
  json += '}';
  raw(json);
  ++events_written_;
}

void ChromeTraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  if (!started_) {
    *out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  }
  *out_ << "]}\n";
  out_->flush();
}

std::unique_ptr<TraceWriter> make_trace_writer(TraceFormat format,
                                               std::ostream& out) {
  if (format == TraceFormat::kChrome) {
    return std::make_unique<ChromeTraceWriter>(out);
  }
  return std::make_unique<JsonlTraceWriter>(out);
}

}  // namespace pckpt::obs
