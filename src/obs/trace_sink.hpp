#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "sim/tracer.hpp"

/// \file trace_sink.hpp
/// `TraceSink` — the emission seam of the observability layer. The
/// simulation core writes `Event`s to a sink without knowing whether
/// they end up in memory, a JSONL file, or a Chrome trace. Campaigns
/// buffer per-trial events in `MemoryTraceSink`s and serialize them in
/// ascending trial order (see obs/collector.hpp), which is what keeps
/// trace bytes identical across `--jobs` values.

namespace pckpt::obs {

/// Receives events as the simulation emits them. Implementations used
/// inside a single simulated run need not be thread-safe: a run is
/// single-threaded, and campaigns give every trial its own sink.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const Event& e) = 0;
};

/// Buffers events in emission order. The workhorse sink: tests inspect
/// it directly, campaigns use one per trial.
class MemoryTraceSink final : public TraceSink {
 public:
  void emit(const Event& e) override { events_.push_back(e); }

  const std::vector<Event>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

/// Adapts the DES kernel hook (`sim::KernelTracer`) onto a `TraceSink`:
/// every scheduling decision becomes a `Category::kKernel` instant.
/// Kernel traces are verbose — they are opt-in per run
/// (`core::RunSetup::trace_kernel`) and excluded from golden traces.
class KernelTraceBridge final : public sim::KernelTracer {
 public:
  KernelTraceBridge(TraceSink& sink, std::uint64_t run_id)
      : sink_(&sink), run_id_(run_id) {}

  void on_schedule(sim::SimTime now, sim::SimTime fire_at,
                   sim::EventSeq seq) override {
    Event e = Event::instant(Category::kKernel, "sched", now, kTrackKernel);
    e.run_id = run_id_;
    e.with("at_s", fire_at).with("seq", static_cast<double>(seq));
    sink_->emit(e);
  }

  void on_event(sim::SimTime t, sim::EventSeq seq) override {
    Event e = Event::instant(Category::kKernel, "fire", t, kTrackKernel);
    e.run_id = run_id_;
    e.with("seq", static_cast<double>(seq));
    sink_->emit(e);
  }

  void on_spawn(sim::SimTime now, const std::string& /*name*/) override {
    Event e = Event::instant(Category::kKernel, "spawn", now, kTrackKernel);
    e.run_id = run_id_;
    sink_->emit(e);
  }

  void on_interrupt(sim::SimTime now, const std::string& /*name*/) override {
    Event e = Event::instant(Category::kKernel, "interrupt", now,
                             kTrackKernel);
    e.run_id = run_id_;
    sink_->emit(e);
  }

 private:
  TraceSink* sink_;
  std::uint64_t run_id_;
};

}  // namespace pckpt::obs
