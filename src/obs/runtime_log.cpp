#include "obs/runtime_log.hpp"

#include <chrono>

namespace pckpt::obs {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

bool parse_log_level(std::string_view text, LogLevel& out) noexcept {
  if (text == "debug") {
    out = LogLevel::kDebug;
  } else if (text == "info") {
    out = LogLevel::kInfo;
  } else if (text == "warn") {
    out = LogLevel::kWarn;
  } else if (text == "error") {
    out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

namespace {

/// The tree's ONE waived wall-clock read (docs/STATIC_ANALYSIS.md): log
/// timestamps exist to correlate daemon records with the outside world
/// (client logs, kernel dmesg, operator clocks), which monotonic time
/// cannot do. No simulated state or persisted payload byte ever
/// derives from it — the determinism argument does not apply, and
/// every test that asserts log bytes injects a fake clock instead.
std::uint64_t wall_clock_ms() {
  const auto now =
      std::chrono::system_clock::now()  // lint: wall-clock-ok
          .time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count());
}

}  // namespace

RuntimeLog::RuntimeLog(LogLevel min_level)
    : min_level_(min_level), clock_(&wall_clock_ms) {}

RuntimeLog::~RuntimeLog() {
  if (file_ != nullptr) std::fclose(file_);
}

bool RuntimeLog::open_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ae");
  if (f == nullptr) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = f;
  return true;
}

void RuntimeLog::set_clock(ClockFn clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = clock ? std::move(clock) : ClockFn(&wall_clock_ms);
}

std::uint64_t RuntimeLog::now_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clock_();
}

RuntimeLog::Record::Record(RuntimeLog* log, LogLevel level,
                           std::string_view component, std::string_view event)
    : log_(log) {
  if (log_ == nullptr) return;
  row_.add("level", to_string(level));
  row_.add("component", component);
  row_.add("event", event);
}

void RuntimeLog::emit(const exec::JsonlRow& row) {
  // ts and seq are assigned under the sink lock, so the sequence order,
  // the timestamp order and the physical line order in the file all
  // agree — a reader never sees seq go backwards.
  const std::string body = row.str();  // "{"level":...}"
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  std::string line = "{\"ts_ms\":" + std::to_string(clock_()) +
                     ",\"seq\":" + std::to_string(seq) + ",";
  line.append(body, 1, body.size() - 1);  // splice past the row's '{'
  line.push_back('\n');
  std::FILE* out = file_ != nullptr ? file_ : stderr;
  std::fwrite(line.data(), 1, line.size(), out);
  std::fflush(out);
}

}  // namespace pckpt::obs
