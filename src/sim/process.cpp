#include "sim/process.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace pckpt::sim {

ProcessState::~ProcessState() {
  // A frame still attached here means the environment died first and has
  // already detached via destroy_frame(), or the process was never spawned.
  destroy_frame();
}

void ProcessState::start(Environment& env) {
  env_ = &env;
  done_ = env.event();
  kick();
}

void ProcessState::kick() {
  EventPtr ev = env_->event();
  EventCore& rec = *ev;
  rec.waiter_mode_ = EventCore::WaiterMode::kKick;
  rec.waiter_ = shared_from_this();
  env_->trigger_now(rec);
}

void ProcessState::arm_timer(SimTime dt) {
  if (!(dt >= 0.0)) {
    throw std::invalid_argument(
        "Environment::delay: negative or NaN delay");
  }
  awaiting_ = true;
  const auto epoch = ++wait_epoch_;
  EventCore* rec = nullptr;
  if (timer_) {
    EventCore& old = *timer_;
    if (old.sched_count_ == 0) {
      // Previous firing fully retired: recycle in place.
      old.rearm();
      rec = &old;
    } else {
      // An interrupted wait left a stale heap entry in flight. Abandon the
      // old record (the heap entry keeps it alive until it pops, where the
      // epoch check disarms it) and take a fresh one.
      timer_ = env_->event();
      rec = &*timer_;
    }
  } else {
    timer_ = env_->event();
    rec = &*timer_;
  }
  rec->waiter_mode_ = EventCore::WaiterMode::kAwait;
  rec->waiter_ = shared_from_this();
  rec->waiter_epoch_ = epoch;
  rec->state_ = EventCore::State::kScheduled;
  env_->push_entry(*rec, env_->now() + dt);
}

void ProcessState::resume() {
  assert(handle_ && !finished_);
  handle_.resume();
}

void ProcessState::on_finished(std::exception_ptr error) {
  // Runs inside FinalAwaiter::await_suspend: the coroutine body is done and
  // all its locals are destroyed; the frame is reaped by the environment
  // outside coroutine context.
  finished_ = true;
  awaiting_ = false;
  timer_.reset();
  if (error) {
    env_->record_error(name_, error);
    done_->fail(error);
  } else {
    done_->succeed();
  }
  auto h = handle_;
  handle_ = nullptr;
  env_->reap(h);
  env_->forget(this);  // may release the last external reference; `this`
                       // stays alive through the promise's ProcessPtr until
                       // the frame is garbage-collected.
}

void ProcessState::destroy_frame() {
  if (!handle_) return;
  auto h = handle_;
  handle_ = nullptr;
  h.destroy();
}

bool ProcessState::interrupt(std::any cause) {
  if (finished_) return false;
  if (env_ != nullptr && env_->tracer() != nullptr) {
    env_->tracer()->on_interrupt(env_->now(), name_);
  }
  has_interrupt_ = true;
  interrupt_cause_ = std::move(cause);
  if (awaiting_) {
    awaiting_ = false;
    ++wait_epoch_;  // disarm whichever event the process was parked on
    kick();
  }
  // If the process is currently executing (or not yet started), the flag is
  // delivered at its next co_await.
  return true;
}

}  // namespace pckpt::sim
