#include "sim/process.hpp"

#include <cassert>
#include <utility>

namespace pckpt::sim {

ProcessState::~ProcessState() {
  // A frame still attached here means the environment died first and has
  // already detached via destroy_frame(), or the process was never spawned.
  destroy_frame();
}

void ProcessState::start(Environment& env) {
  env_ = &env;
  done_ = env.event();
  auto self = shared_from_this();
  env.defer([self] {
    if (!self->finished_) self->resume();
  });
}

void ProcessState::resume() {
  assert(handle_ && !finished_);
  handle_.resume();
}

void ProcessState::on_finished(std::exception_ptr error) {
  // Runs inside FinalAwaiter::await_suspend: the coroutine body is done and
  // all its locals are destroyed; the frame is reaped by the environment
  // outside coroutine context.
  finished_ = true;
  awaiting_ = false;
  if (error) {
    env_->record_error(name_, error);
    done_->fail(error);
  } else {
    done_->succeed();
  }
  auto h = handle_;
  handle_ = nullptr;
  env_->reap(h);
  env_->forget(this);  // may release the last external reference; `this`
                       // stays alive through the promise's ProcessPtr until
                       // the frame is garbage-collected.
}

void ProcessState::destroy_frame() {
  if (!handle_) return;
  auto h = handle_;
  handle_ = nullptr;
  h.destroy();
}

bool ProcessState::interrupt(std::any cause) {
  if (finished_) return false;
  if (env_ != nullptr && env_->tracer() != nullptr) {
    env_->tracer()->on_interrupt(env_->now(), name_);
  }
  has_interrupt_ = true;
  interrupt_cause_ = std::move(cause);
  if (awaiting_) {
    awaiting_ = false;
    ++wait_epoch_;  // disarm the event callback that was waiting
    auto self = shared_from_this();
    env_->defer([self] {
      if (!self->finished_) self->resume();
    });
  }
  // If the process is currently executing (or not yet started), the flag is
  // delivered at its next co_await.
  return true;
}

}  // namespace pckpt::sim
