#include "sim/condition.hpp"

#include <memory>
#include <utility>

#include "sim/environment.hpp"

namespace pckpt::sim {

namespace {

struct ConditionState {
  std::size_t remaining;
  bool done = false;
};

}  // namespace

EventPtr any_of(Environment& env, std::vector<EventPtr> events) {
  auto result = env.event();
  if (events.empty()) {
    result->succeed();
    return result;
  }
  auto st = std::make_shared<ConditionState>();
  st->remaining = events.size();
  for (auto& ev : events) {
    ev->add_callback([result, st](EventCore& fired) {
      if (st->done) return;
      st->done = true;
      if (fired.failed()) {
        result->fail(fired.error());
      } else {
        result->succeed();
      }
    });
  }
  return result;
}

EventPtr all_of(Environment& env, std::vector<EventPtr> events) {
  auto result = env.event();
  if (events.empty()) {
    result->succeed();
    return result;
  }
  auto st = std::make_shared<ConditionState>();
  st->remaining = events.size();
  for (auto& ev : events) {
    ev->add_callback([result, st](EventCore& fired) {
      if (st->done) return;
      if (fired.failed()) {
        st->done = true;
        result->fail(fired.error());
        return;
      }
      if (--st->remaining == 0) {
        st->done = true;
        result->succeed();
      }
    });
  }
  return result;
}

}  // namespace pckpt::sim
