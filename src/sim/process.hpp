#pragma once

#include <any>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <utility>

#include "sim/environment.hpp"
#include "sim/event.hpp"

/// \file process.hpp
/// Coroutine-based simulation processes (the SimPy generator equivalent).
///
/// A process is a C++20 coroutine returning `Process`. Inside the coroutine
/// body, `co_await env.delay(dt)` (or `co_await env.timeout(dt)`) suspends
/// for simulated time and `co_await ev` suspends until an event fires.
/// Another process may call `Process::interrupt(cause)`, which makes the
/// victim's in-flight `co_await` throw `sim::Interrupted` — this is how
/// failures are injected into compute/checkpoint phases.
///
/// Lifetime: the coroutine frame is owned by a shared ProcessState that the
/// Environment keeps alive until the coroutine finishes. `Process` handles
/// are cheap shared references.
///
/// Hot path: awaiting parks the process in the event's intrusive waiter
/// slot (no closure allocation), and `co_await env.delay(dt)` recycles a
/// per-process timer event from the pool — steady-state waits neither
/// allocate nor free.

namespace pckpt::sim {

/// Thrown inside a process when it is interrupted while suspended.
class Interrupted : public std::exception {
 public:
  explicit Interrupted(std::any cause) : cause_(std::move(cause)) {}
  const char* what() const noexcept override { return "sim::Interrupted"; }
  const std::any& cause() const noexcept { return cause_; }

 private:
  std::any cause_;
};

class Process;

/// Shared state of one process coroutine. Users interact through `Process`.
class ProcessState : public std::enable_shared_from_this<ProcessState> {
 public:
  ProcessState() = default;
  ProcessState(const ProcessState&) = delete;
  ProcessState& operator=(const ProcessState&) = delete;
  ~ProcessState();

  bool finished() const noexcept { return finished_; }
  bool spawned() const noexcept { return env_ != nullptr; }
  Environment& env() const { return *env_; }

  /// Event that fires when the coroutine returns (or dies by exception, in
  /// which case the event fails with that exception).
  const EventPtr& done_event() const { return done_; }

  /// Interrupt the process: its current (or next) co_await throws
  /// `Interrupted` carrying `cause`. Returns false if the process already
  /// finished (no-op).
  bool interrupt(std::any cause = {});

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

 private:
  friend class Process;
  friend class Environment;
  friend class EventCore;
  struct EventAwaiter;
  struct DelayAwaiter;
  struct FinalAwaiter;

  void start(Environment& env);
  void resume();
  void on_finished(std::exception_ptr error);
  /// Destroy a never-finished coroutine frame (environment teardown).
  void destroy_frame();

  /// Queue a resume at the current time, after already-queued same-time
  /// events, via a pooled kick event (the start/interrupt wake-up path).
  void kick();

  /// Schedule the reusable timer event to fire `dt` seconds from now and
  /// park this process on it. Recycles `timer_` when its previous firing
  /// fully retired; if a stale heap entry is still in flight (interrupted
  /// wait), the old record is abandoned to the pool and a fresh one takes
  /// its place.
  /// \throws std::invalid_argument for negative or NaN `dt`.
  void arm_timer(SimTime dt);

  Environment* env_ = nullptr;
  std::coroutine_handle<> handle_;
  EventPtr done_;
  EventPtr timer_;
  std::uint64_t wait_epoch_ = 0;
  bool awaiting_ = false;
  bool finished_ = false;
  bool has_interrupt_ = false;
  std::any interrupt_cause_;
  std::string name_;
};

using ProcessPtr = std::shared_ptr<ProcessState>;

/// Return object / handle of a process coroutine.
class Process {
 public:
  struct promise_type;

  Process() = default;

  bool valid() const noexcept { return static_cast<bool>(state_); }
  bool finished() const { return state_->finished(); }
  const ProcessPtr& state() const { return state_; }
  const EventPtr& done_event() const { return state_->done_event(); }

  /// See ProcessState::interrupt.
  bool interrupt(std::any cause = {}) {
    return state_->interrupt(std::move(cause));
  }

  Process& named(std::string n) {
    state_->set_name(std::move(n));
    return *this;
  }

 private:
  friend class Environment;
  explicit Process(ProcessPtr s) : state_(std::move(s)) {}
  ProcessPtr state_;
};

/// Awaiter for EventPtr inside a process coroutine (created by
/// promise_type::await_transform; not used directly).
struct ProcessState::EventAwaiter {
  EventPtr ev;
  ProcessState* proc;

  bool await_ready() const {
    return proc->has_interrupt_ || ev->processed();
  }
  void await_suspend(std::coroutine_handle<> /*h*/) {
    proc->awaiting_ = true;
    const auto epoch = ++proc->wait_epoch_;
    // The intrusive waiter slot holds the state alive (ProcessPtr), so a
    // dropped Process handle cannot dangle while a wake-up is armed.
    ev->await_by(proc->shared_from_this(), epoch);
  }
  void await_resume() const {
    if (proc->has_interrupt_) {
      proc->has_interrupt_ = false;
      throw Interrupted(std::move(proc->interrupt_cause_));
    }
    if (ev->failed()) std::rethrow_exception(ev->error());
  }
};

/// Awaiter for `co_await env.delay(dt)` — the allocation-free timed wait.
struct ProcessState::DelayAwaiter {
  SimTime dt;
  ProcessState* proc;

  bool await_ready() const noexcept { return proc->has_interrupt_; }
  void await_suspend(std::coroutine_handle<> /*h*/) { proc->arm_timer(dt); }
  void await_resume() const {
    if (proc->has_interrupt_) {
      proc->has_interrupt_ = false;
      throw Interrupted(std::move(proc->interrupt_cause_));
    }
  }
};

struct ProcessState::FinalAwaiter {
  ProcessState* proc;
  std::exception_ptr pending_error;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> /*h*/) noexcept {
    // Coroutine locals are already destroyed; safe to mark completion and
    // notify waiters. The frame itself is reaped by the environment.
    proc->on_finished(pending_error);
  }
  void await_resume() const noexcept {}
};

struct Process::promise_type {
  ProcessPtr state = std::make_shared<ProcessState>();
  std::exception_ptr error;

  Process get_return_object() {
    state->handle_ =
        std::coroutine_handle<promise_type>::from_promise(*this);
    return Process(state);
  }
  std::suspend_always initial_suspend() noexcept { return {}; }
  auto final_suspend() noexcept {
    return ProcessState::FinalAwaiter{state.get(), error};
  }
  void return_void() noexcept {}
  void unhandled_exception() noexcept { error = std::current_exception(); }

  /// `co_await EventPtr`
  ProcessState::EventAwaiter await_transform(EventPtr ev) {
    return ProcessState::EventAwaiter{std::move(ev), state.get()};
  }
  /// `co_await Process` — waits for the child process's completion.
  ProcessState::EventAwaiter await_transform(const Process& p) {
    return ProcessState::EventAwaiter{p.done_event(), state.get()};
  }
  /// `co_await env.delay(dt)` — timed wait on the reusable timer event.
  ProcessState::DelayAwaiter await_transform(Delay d) {
    return ProcessState::DelayAwaiter{d.dt, state.get()};
  }
};

}  // namespace pckpt::sim
