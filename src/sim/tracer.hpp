#pragma once

#include <string>

#include "sim/types.hpp"

/// \file tracer.hpp
/// Optional kernel-level observability hook for the DES engine. An
/// attached `KernelTracer` sees every scheduling decision the
/// `Environment` makes: event scheduling, event firing, process spawns
/// and interrupts. The default state is "no tracer" and costs one
/// branch-on-null per kernel operation, so campaigns that do not trace
/// pay nothing measurable.
///
/// The hook is deliberately below the semantic layer: it reports kernel
/// mechanics (times, sequence numbers, process names), not C/R meaning.
/// The semantic events live in `src/obs/` (see docs/OBSERVABILITY.md);
/// `obs::KernelTraceBridge` adapts this interface onto an
/// `obs::TraceSink` when kernel-level traces are wanted.

namespace pckpt::sim {

/// Observer of kernel scheduling activity. All callbacks run on the
/// simulation thread, synchronously with the operation they describe;
/// implementations must not re-enter the environment.
class KernelTracer {
 public:
  virtual ~KernelTracer() = default;

  /// An event was pushed onto the heap to fire at `fire_at`.
  virtual void on_schedule(SimTime now, SimTime fire_at, EventSeq seq) {
    (void)now;
    (void)fire_at;
    (void)seq;
  }

  /// An event was popped from the heap and is about to be processed;
  /// `t` is the new simulation time.
  virtual void on_event(SimTime t, EventSeq seq) {
    (void)t;
    (void)seq;
  }

  /// A process coroutine was registered with the environment. The name
  /// may still be empty if `.named()` is applied after `spawn()`.
  virtual void on_spawn(SimTime now, const std::string& name) {
    (void)now;
    (void)name;
  }

  /// A process was interrupted (its pending await will throw).
  virtual void on_interrupt(SimTime now, const std::string& name) {
    (void)now;
    (void)name;
  }
};

}  // namespace pckpt::sim
