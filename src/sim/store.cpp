#include "sim/store.hpp"

#include "sim/environment.hpp"

namespace pckpt::sim {

void Store::put(std::any item) {
  if (!waiters_.empty()) {
    TicketPtr t = waiters_.front();
    waiters_.pop_front();
    t->item = std::move(item);
    t->fulfilled = true;
    t->ready->succeed();
    return;
  }
  items_.push_back(std::move(item));
}

Store::TicketPtr Store::get() {
  auto t = std::make_shared<Ticket>();
  t->ready = env_->event();
  if (!items_.empty()) {
    t->item = std::move(items_.front());
    items_.pop_front();
    t->fulfilled = true;
    t->ready->succeed();
  } else {
    waiters_.push_back(t);
  }
  return t;
}

}  // namespace pckpt::sim
