#pragma once

#include <vector>

#include "sim/event.hpp"

/// \file condition.hpp
/// Composite events: wait for any / all of a set of events.

namespace pckpt::sim {

class Environment;

/// Event that succeeds when the first of `events` succeeds. If a child
/// fails first, the condition fails with that child's error. An empty list
/// yields an immediately-succeeding event.
EventPtr any_of(Environment& env, std::vector<EventPtr> events);

/// Event that succeeds once every event in `events` has succeeded. Any
/// child failure fails the condition immediately. An empty list yields an
/// immediately-succeeding event.
EventPtr all_of(Environment& env, std::vector<EventPtr> events);

}  // namespace pckpt::sim
