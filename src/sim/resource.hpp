#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <utility>

#include "sim/event.hpp"

/// \file resource.hpp
/// Counted resources with FIFO or priority admission, in the style of
/// SimPy's `Resource` / `PriorityResource`.
///
/// Usage inside a process coroutine:
/// \code
///   auto req = res.request();        // or request(priority)
///   co_await req->granted;
///   ... use the resource ...
///   res.release(req);                // or let a ResourceGuard do it
/// \endcode
/// `release()` on a still-waiting request cancels it, so the pattern is
/// interrupt-safe: release in a catch/guard regardless of grant state.

namespace pckpt::sim {

class Environment;

namespace detail {
struct Request {
  EventPtr granted;
  double priority = 0.0;  ///< lower value = admitted first
  std::uint64_t id = 0;
  bool is_granted = false;
  bool cancelled = false;
};
}  // namespace detail

using RequestPtr = std::shared_ptr<detail::Request>;

/// Counted resource with priority admission (FIFO among equal priorities).
/// `Resource::request()` without a priority gives plain FIFO semantics.
class Resource {
 public:
  /// \param capacity number of concurrent holders (>= 1).
  Resource(Environment& env, std::size_t capacity);

  /// Request a slot with the given priority (lower = sooner). The returned
  /// request's `granted` event succeeds when the slot is assigned.
  RequestPtr request(double priority = 0.0);

  /// Release a granted slot, or cancel a waiting request. Safe to call
  /// exactly once per request in either state.
  void release(const RequestPtr& req);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t in_use() const noexcept { return in_use_; }
  std::size_t queue_length() const noexcept { return waiting_.size(); }
  Environment& env() const noexcept { return *env_; }

 private:
  void grant_next();

  Environment* env_;
  std::size_t capacity_;
  std::size_t in_use_ = 0;
  std::uint64_t next_id_ = 0;
  /// Waiting requests ordered by (priority, arrival id).
  std::map<std::pair<double, std::uint64_t>, RequestPtr> waiting_;
};

/// RAII holder: releases (or cancels) the request when destroyed, which in
/// coroutines also covers unwinding caused by `sim::Interrupted`.
class ResourceGuard {
 public:
  ResourceGuard(Resource& res, RequestPtr req)
      : res_(&res), req_(std::move(req)) {}
  ResourceGuard(const ResourceGuard&) = delete;
  ResourceGuard& operator=(const ResourceGuard&) = delete;
  ResourceGuard(ResourceGuard&& other) noexcept
      : res_(other.res_), req_(std::move(other.req_)) {
    other.res_ = nullptr;
  }
  ~ResourceGuard() { release(); }

  /// Release early (idempotent).
  void release() {
    if (res_ && req_) {
      res_->release(req_);
      req_.reset();
    }
  }

 private:
  Resource* res_;
  RequestPtr req_;
};

}  // namespace pckpt::sim
