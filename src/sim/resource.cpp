#include "sim/resource.hpp"

#include <stdexcept>

#include "sim/environment.hpp"

namespace pckpt::sim {

Resource::Resource(Environment& env, std::size_t capacity)
    : env_(&env), capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("Resource: capacity must be >= 1");
  }
}

RequestPtr Resource::request(double priority) {
  auto req = std::make_shared<detail::Request>();
  req->granted = env_->event();
  req->priority = priority;
  req->id = next_id_++;
  if (in_use_ < capacity_) {
    ++in_use_;
    req->is_granted = true;
    req->granted->succeed();
  } else {
    waiting_.emplace(std::make_pair(priority, req->id), req);
  }
  return req;
}

void Resource::release(const RequestPtr& req) {
  if (!req || req->cancelled) return;
  if (req->is_granted) {
    req->cancelled = true;  // marks "finished with" to make release idempotent
    --in_use_;
    grant_next();
  } else {
    req->cancelled = true;
    waiting_.erase(std::make_pair(req->priority, req->id));
  }
}

void Resource::grant_next() {
  while (in_use_ < capacity_ && !waiting_.empty()) {
    auto it = waiting_.begin();
    RequestPtr next = it->second;
    waiting_.erase(it);
    ++in_use_;
    next->is_granted = true;
    next->granted->succeed();
  }
}

}  // namespace pckpt::sim
