#include "sim/event.hpp"

#include <stdexcept>
#include <utility>

#include "sim/environment.hpp"

namespace pckpt::sim {

void EventCore::add_callback(Callback cb) {
  if (processed()) {
    cb(*this);
    return;
  }
  callbacks_.push_back(std::move(cb));
}

void EventCore::succeed() {
  if (triggered()) {
    throw std::logic_error("EventCore::succeed: event already triggered");
  }
  env_->schedule(shared_from_this(), 0.0);
}

void EventCore::fail(std::exception_ptr cause) {
  if (triggered()) {
    throw std::logic_error("EventCore::fail: event already triggered");
  }
  failed_ = true;
  error_ = std::move(cause);
  env_->schedule(shared_from_this(), 0.0);
}

void EventCore::process() {
  state_ = State::kProcessed;
  // Move callbacks out so callbacks registering further callbacks (or
  // events) cannot invalidate the iteration.
  auto cbs = std::move(callbacks_);
  callbacks_.clear();
  for (auto& cb : cbs) cb(*this);
}

}  // namespace pckpt::sim
