#include "sim/event.hpp"

#include <stdexcept>
#include <utility>

#include "sim/environment.hpp"
#include "sim/process.hpp"

namespace pckpt::sim {

void EventCore::add_callback(Callback cb) {
  if (processed()) {
    cb(*this);
    return;
  }
  callbacks_.push(std::move(cb));
}

void EventCore::succeed() {
  if (triggered()) {
    throw std::logic_error("EventCore::succeed: event already triggered");
  }
  env_->trigger_now(*this);
}

void EventCore::fail(std::exception_ptr cause) {
  if (triggered()) {
    throw std::logic_error("EventCore::fail: event already triggered");
  }
  failed_ = true;
  error_ = std::move(cause);
  env_->trigger_now(*this);
}

void EventCore::process() {
  state_ = State::kProcessed;
  // The intrusive waiter woke first (it registered first — later awaiters
  // spill to the callback list, preserving registration order overall).
  if (waiter_mode_ != WaiterMode::kNone) {
    const WaiterMode mode = waiter_mode_;
    waiter_mode_ = WaiterMode::kNone;
    ProcessPtr proc = std::move(waiter_);
    waiter_.reset();
    if (mode == WaiterMode::kKick) {
      if (!proc->finished_) proc->resume();
    } else if (!proc->finished_ && proc->awaiting_ &&
               proc->wait_epoch_ == waiter_epoch_) {
      proc->awaiting_ = false;
      proc->resume();
    }
  }
  if (!callbacks_.empty()) {
    // Move callbacks out so callbacks registering further callbacks cannot
    // invalidate the iteration.
    auto cbs = callbacks_.take();
    cbs.run(*this);
  }
}

void EventCore::await_by(ProcessPtr proc, std::uint64_t epoch) {
  if (waiter_mode_ == WaiterMode::kNone && callbacks_.empty()) {
    waiter_mode_ = WaiterMode::kAwait;
    waiter_ = std::move(proc);
    waiter_epoch_ = epoch;
    return;
  }
  // Later registrations spill behind whatever is already queued so wake-up
  // order matches registration order.
  callbacks_.push([st = std::move(proc), epoch](EventCore&) {
    if (st->finished_ || !st->awaiting_ || st->wait_epoch_ != epoch) return;
    st->awaiting_ = false;
    st->resume();
  });
}

void EventCore::rearm() noexcept {
  state_ = State::kPending;
  failed_ = false;
  error_ = nullptr;
}

EventCore* Event::checked() const {
  if (rec_ == nullptr || rec_->gen_ != gen_) {
    throw std::logic_error(
        "sim::Event: stale handle (event released, slot recycled)");
  }
  return rec_;
}

EventCore* EventObserver::operator->() const {
  if (rec_ == nullptr || rec_->gen_ != gen_) {
    throw std::logic_error(
        "sim::EventObserver: use-after-release (generation mismatch)");
  }
  return rec_;
}

}  // namespace pckpt::sim
