#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/event.hpp"
#include "sim/event_heap.hpp"
#include "sim/event_pool.hpp"
#include "sim/tracer.hpp"
#include "sim/types.hpp"

/// \file environment.hpp
/// The simulation environment: clock + event heap + process registry.

namespace pckpt::sim {

class ProcessState;
class Process;
class Environment;

/// Tag returned by Environment::delay(): an allocation-free suspension of
/// `dt` simulated seconds, usable only as `co_await env.delay(dt)` inside
/// a process. Unlike timeout(), no event is visible to the caller and the
/// process's reusable timer event is recycled, so the steady-state wait
/// path performs no allocation at all.
struct Delay {
  Environment* env;
  SimTime dt;
};

/// Discrete-event simulation environment (the SimPy `Environment`
/// equivalent). Owns the event pool, the event heap, and the set of live
/// processes.
///
/// Determinism: events fire in (time, insertion-sequence) order, so a given
/// program produces the identical trajectory on every run.
class Environment {
 public:
  Environment() = default;
  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;
  ~Environment();

  /// Current simulation time in seconds.
  SimTime now() const noexcept { return now_; }

  /// Create a fresh pending event.
  EventPtr event() {
    EventCore* rec = pool_.acquire(*this);
    return EventPtr(rec, rec->gen_);
  }

  /// Create an event that succeeds `delay` seconds from now.
  /// \throws std::invalid_argument for negative or NaN delay.
  EventPtr timeout(SimTime delay);

  /// Suspend the awaiting process for `dt` simulated seconds:
  /// `co_await env.delay(dt)`. The hot-path replacement for
  /// `co_await env.timeout(dt)` — reuses the process's timer event.
  /// Negative/NaN `dt` throws std::invalid_argument at the co_await.
  Delay delay(SimTime dt) noexcept { return Delay{this, dt}; }

  /// Schedule a triggered event for processing at absolute simulation
  /// time `at` (use `env.now() + dt` for a relative delay).
  /// \throws std::invalid_argument if `at` is in the past or NaN.
  /// \throws std::logic_error if the event was already processed.
  void schedule_at(const EventPtr& ev, SimTime at);

  /// Schedule a triggered event for processing at the current time, after
  /// already-queued same-time events.
  void post(const EventPtr& ev) { schedule_at(ev, now_); }

  /// Run a plain callable at the current time, after already-queued
  /// same-time events (deferred wake-ups). The closure rides inline in a
  /// pooled event's small-buffer callback.
  template <class Fn,
            class = std::enable_if_t<std::is_invocable_v<std::decay_t<Fn>&>>>
  void post(Fn&& fn) {
    EventPtr ev = event();
    ev->add_callback(
        [f = std::forward<Fn>(fn)](EventCore&) mutable { f(); });
    trigger_now(*ev);
  }

  /// Register a process coroutine and schedule its first resumption at the
  /// current simulation time. Returns the same handle for chaining.
  Process& spawn(Process& p);
  Process spawn(Process&& p);

  /// Process a single event. Returns false when the heap is empty.
  bool step();

  /// Run until the event heap drains.
  void run();

  /// Run until simulation time strictly exceeds `until` (events at exactly
  /// `until` are processed). The clock ends at max(now, until).
  void run_until(SimTime until);

  /// Number of events waiting in the heap.
  std::size_t pending_events() const noexcept { return heap_.size(); }

  /// Number of not-yet-finished processes.
  std::size_t live_processes() const noexcept { return processes_.size(); }

  /// Total events processed since construction (for micro-benchmarks).
  std::uint64_t events_processed() const noexcept { return processed_count_; }

  /// The slab pool backing this environment's events (diagnostics/tests).
  const EventPool& event_pool() const noexcept { return pool_; }

  /// Attach (or detach, with nullptr) a kernel tracer. The environment
  /// does not own the tracer; it must outlive the simulation. Tracing is
  /// off by default and costs one null check per kernel operation.
  void set_tracer(KernelTracer* tracer) noexcept { tracer_ = tracer; }
  KernelTracer* tracer() const noexcept { return tracer_; }

  /// Exceptions that escaped process coroutines, with the process name.
  /// A healthy simulation leaves this empty (or each entry is consumed by
  /// an awaiter of the process's done_event; entries are recorded either
  /// way so tests can assert no process died unexpectedly).
  const std::vector<std::pair<std::string, std::exception_ptr>>&
  process_errors() const noexcept {
    return process_errors_;
  }

 private:
  friend class ProcessState;
  friend class EventCore;

  /// Assign the next sequence number and push one heap entry for `rec`
  /// firing at absolute time `t`. The heap entry owns one reference.
  void push_entry(EventCore& rec, SimTime t) {
    const EventSeq seq = seq_++;
    ++rec.refs_;
    ++rec.sched_count_;
    heap_.push(HeapEntry{t, seq, rec.slot_});
    if (tracer_) tracer_->on_schedule(now_, t, seq);
  }

  /// Mark `rec` scheduled and queue it at the current time (the succeed/
  /// fail/kick path).
  void trigger_now(EventCore& rec) {
    rec.state_ = EventCore::State::kScheduled;
    push_entry(rec, now_);
  }

  void forget(ProcessState* ps);
  void reap(std::coroutine_handle<> h) { graveyard_.push_back(h); }
  void collect_garbage();
  void record_error(const std::string& name, std::exception_ptr e) {
    process_errors_.emplace_back(name, std::move(e));
  }

  // pool_ is declared first so it is destroyed *last*: frames, process
  // states, and heap entries all point into it.
  EventPool pool_;
  EventHeap heap_;
  // Per-process registry: touched on spawn/finish only, never per event,
  // and never iterated (lookup/erase by key). lint: hot-path-ok
  std::unordered_map<ProcessState*, std::shared_ptr<ProcessState>> processes_;
  std::vector<std::coroutine_handle<>> graveyard_;
  std::vector<std::pair<std::string, std::exception_ptr>> process_errors_;
  SimTime now_ = 0.0;
  EventSeq seq_ = 0;
  std::uint64_t processed_count_ = 0;
  KernelTracer* tracer_ = nullptr;
};

}  // namespace pckpt::sim
