#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/event.hpp"
#include "sim/tracer.hpp"
#include "sim/types.hpp"

/// \file environment.hpp
/// The simulation environment: clock + event heap + process registry.

namespace pckpt::sim {

class ProcessState;
class Process;

/// Discrete-event simulation environment (the SimPy `Environment`
/// equivalent). Owns the event heap and the set of live processes.
///
/// Determinism: events fire in (time, insertion-sequence) order, so a given
/// program produces the identical trajectory on every run.
class Environment {
 public:
  Environment() = default;
  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;
  ~Environment();

  /// Current simulation time in seconds.
  SimTime now() const noexcept { return now_; }

  /// Create a fresh pending event.
  EventPtr event();

  /// Create an event that succeeds `delay` seconds from now.
  /// \throws std::invalid_argument for negative or NaN delay.
  EventPtr timeout(SimTime delay);

  /// Schedule a triggered event for processing `delay` seconds from now.
  void schedule(EventPtr ev, SimTime delay = 0.0);

  /// Run a plain function at the current time, after already-queued
  /// same-time events (used for deferred wake-ups).
  void defer(std::function<void()> fn);

  /// Register a process coroutine and schedule its first resumption at the
  /// current simulation time. Returns the same handle for chaining.
  Process& spawn(Process& p);
  Process spawn(Process&& p);

  /// Process a single event. Returns false when the heap is empty.
  bool step();

  /// Run until the event heap drains.
  void run();

  /// Run until simulation time strictly exceeds `until` (events at exactly
  /// `until` are processed). The clock ends at max(now, until).
  void run_until(SimTime until);

  /// Number of events waiting in the heap.
  std::size_t pending_events() const noexcept { return heap_.size(); }

  /// Number of not-yet-finished processes.
  std::size_t live_processes() const noexcept { return processes_.size(); }

  /// Total events processed since construction (for micro-benchmarks).
  std::uint64_t events_processed() const noexcept { return processed_count_; }

  /// Attach (or detach, with nullptr) a kernel tracer. The environment
  /// does not own the tracer; it must outlive the simulation. Tracing is
  /// off by default and costs one null check per kernel operation.
  void set_tracer(KernelTracer* tracer) noexcept { tracer_ = tracer; }
  KernelTracer* tracer() const noexcept { return tracer_; }

  /// Exceptions that escaped process coroutines, with the process name.
  /// A healthy simulation leaves this empty (or each entry is consumed by
  /// an awaiter of the process's done_event; entries are recorded either
  /// way so tests can assert no process died unexpectedly).
  const std::vector<std::pair<std::string, std::exception_ptr>>&
  process_errors() const noexcept {
    return process_errors_;
  }

 private:
  friend class ProcessState;

  void forget(ProcessState* ps);
  void reap(std::coroutine_handle<> h) { graveyard_.push_back(h); }
  void collect_garbage();
  void record_error(const std::string& name, std::exception_ptr e) {
    process_errors_.emplace_back(name, std::move(e));
  }

  struct Entry {
    SimTime t;
    EventSeq seq;
    EventPtr ev;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, EntryLater> heap_;
  std::unordered_map<ProcessState*, std::shared_ptr<ProcessState>> processes_;
  std::vector<std::coroutine_handle<>> graveyard_;
  std::vector<std::pair<std::string, std::exception_ptr>> process_errors_;
  SimTime now_ = 0.0;
  EventSeq seq_ = 0;
  std::uint64_t processed_count_ = 0;
  KernelTracer* tracer_ = nullptr;
};

}  // namespace pckpt::sim
