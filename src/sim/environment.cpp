#include "sim/environment.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/profiler.hpp"
#include "sim/process.hpp"

namespace pckpt::sim {

Environment::~Environment() {
  // Destroy frames of processes that never finished; this breaks the
  // state<->frame ownership so everything is reclaimed. Dropping the
  // ProcessPtrs here (not in member destruction) keeps every pooled-event
  // release inside the pool's lifetime.
  auto procs = std::move(processes_);
  processes_.clear();
  for (const auto& [ptr, ps] : procs) ps->destroy_frame();
  procs.clear();
  collect_garbage();
}

void Environment::collect_garbage() {
  // Frames of finished coroutines are destroyed here, outside any coroutine
  // context, to avoid destroying a frame from within its own final awaiter.
  while (!graveyard_.empty()) {
    auto h = graveyard_.back();
    graveyard_.pop_back();
    h.destroy();
  }
}

EventPtr Environment::timeout(SimTime delay) {
  if (!(delay >= 0.0)) {
    throw std::invalid_argument("Environment::timeout: negative or NaN delay");
  }
  EventPtr ev = event();
  ev->state_ = EventCore::State::kScheduled;
  push_entry(*ev, now_ + delay);
  return ev;
}

void Environment::schedule_at(const EventPtr& ev, SimTime at) {
  if (!(at >= now_)) {
    throw std::invalid_argument(
        "Environment::schedule_at: time in the past or NaN");
  }
  EventCore& rec = *ev;
  if (rec.state_ == EventCore::State::kProcessed) {
    throw std::logic_error(
        "Environment::schedule_at: event already processed");
  }
  rec.state_ = EventCore::State::kScheduled;
  push_entry(rec, at);
}

Process& Environment::spawn(Process& p) {
  if (!p.valid()) throw std::invalid_argument("Environment::spawn: invalid");
  if (p.state()->spawned()) {
    throw std::logic_error("Environment::spawn: process already spawned");
  }
  p.state()->start(*this);
  processes_.emplace(p.state().get(), p.state());
  if (tracer_) tracer_->on_spawn(now_, p.state()->name());
  return p;
}

Process Environment::spawn(Process&& p) {
  spawn(p);
  return std::move(p);
}

bool Environment::step() {
  collect_garbage();
  if (heap_.empty()) return false;
  const HeapEntry e = heap_.pop();
  now_ = e.t;
  ++processed_count_;
  if (tracer_) tracer_->on_event(e.t, e.seq);
  EventCore& rec = pool_.record(e.slot);
  --rec.sched_count_;
  rec.process();
  rec.deref();  // the heap entry's reference
  return true;
}

void Environment::run() {
  obs::ScopedTimer prof_span("sim.kernel");
  while (step()) {
  }
  collect_garbage();
}

void Environment::run_until(SimTime until) {
  obs::ScopedTimer prof_span("sim.kernel");
  while (!heap_.empty() && heap_.top().t <= until) step();
  collect_garbage();
  if (until != kTimeInfinity && until > now_) now_ = until;
}

void Environment::forget(ProcessState* ps) { processes_.erase(ps); }

}  // namespace pckpt::sim
