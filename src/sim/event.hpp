#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/callback.hpp"
#include "sim/types.hpp"

/// \file event.hpp
/// SimPy-style events: one-shot occurrences with attached callbacks.
///
/// Life cycle: `pending` (created) -> `scheduled` (triggered, sitting in
/// the environment's heap) -> `processed` (callbacks ran). An event can
/// succeed or fail; failure carries an exception_ptr that is rethrown into
/// any process that awaits the event.
///
/// Storage model (the hot-path overhaul): events live in a slab pool owned
/// by their Environment instead of individual `shared_ptr` allocations.
/// `Event` is a generation-checked, intrusively refcounted handle — 16
/// bytes, non-atomic count (the kernel is single-threaded by design;
/// campaigns parallelize at the run level, one Environment per run). When
/// the last handle and the last heap reference drop, the slot returns to
/// the pool's free list and its generation counter bumps, so any stale
/// `EventObserver` (or buggy handle) trips a `std::logic_error` instead of
/// reading recycled state. Handles must not outlive their Environment —
/// the same contract the previous `shared_ptr<EventCore>` had in practice,
/// since events always pointed back at the environment that made them.

namespace pckpt::sim {

class Environment;
class EventCore;
class EventPool;
class Event;
class ProcessState;
// Shared ownership is per *process* (one coroutine frame per process,
// pinned by the environment registry and any awaiting events) — not
// per event. lint: hot-path-ok
using ProcessPtr = std::shared_ptr<ProcessState>;

namespace detail {

/// Callback storage tuned for the dominant shape: zero or one callback
/// per event. The first callback lives inline in the pool record; only
/// fan-in events (conditions, multi-waiter gates) touch the spill vector.
class CallbackList {
 public:
  bool empty() const noexcept { return !first_ && spill_.empty(); }

  void push(EventCallback cb) {
    if (!first_ && spill_.empty()) {
      first_ = std::move(cb);
    } else {
      spill_.push_back(std::move(cb));
    }
  }

  /// Move the whole list out (used by process(): callbacks registered
  /// while running must not invalidate the iteration).
  CallbackList take() noexcept {
    CallbackList out;
    out.first_ = std::move(first_);
    first_.reset();
    out.spill_ = std::move(spill_);
    spill_.clear();
    return out;
  }

  template <class EventRef>
  void run(EventRef& ev) {
    if (first_) first_(ev);
    for (EventCallback& cb : spill_) cb(ev);
  }

  /// Reset to the fully-trivial state: also frees spill capacity, so a
  /// cleared list owns no heap storage (the pool's teardown fast path
  /// relies on released records having only no-op destructors).
  void clear() noexcept {
    first_.reset();
    if (spill_.capacity() != 0) {
      std::vector<EventCallback>().swap(spill_);
    }
  }

 private:
  EventCallback first_;
  std::vector<EventCallback> spill_;
};

}  // namespace detail

/// One-shot simulation event, stored in the environment's event pool.
///
/// Created through Environment::event() / Environment::timeout() and
/// referenced through `Event` handles (the `EventPtr` alias is kept for
/// source compatibility). Not thread-safe: the kernel is single-threaded
/// by design (deterministic replay matters more than parallel speedup for
/// this simulator; campaigns parallelize at the run level instead).
class EventCore {
 public:
  using Callback = EventCallback;

  enum class State : std::uint8_t { kPending, kScheduled, kProcessed };

  EventCore() = default;
  EventCore(const EventCore&) = delete;
  EventCore& operator=(const EventCore&) = delete;

  Environment& env() const noexcept { return *env_; }
  State state() const noexcept { return state_; }

  /// True once the event has been triggered (scheduled or processed).
  bool triggered() const noexcept { return state_ != State::kPending; }
  /// True once callbacks have run.
  bool processed() const noexcept { return state_ == State::kProcessed; }
  /// True if the event completed with a failure.
  bool failed() const noexcept { return failed_; }
  /// The failure cause; null unless failed().
  std::exception_ptr error() const noexcept { return error_; }

  /// Register a callback to run when the event is processed. If the event
  /// is already processed the callback runs immediately.
  void add_callback(Callback cb);

  /// Trigger the event successfully; it will be processed at the current
  /// simulation time (after already-queued same-time events).
  /// \throws std::logic_error if the event was already triggered.
  void succeed();

  /// Trigger the event as failed with the given cause.
  /// \throws std::logic_error if the event was already triggered.
  void fail(std::exception_ptr cause);

 private:
  friend class Environment;
  friend class EventPool;
  friend class Event;
  friend class EventObserver;
  friend class ProcessState;

  enum class WaiterMode : std::uint8_t {
    kNone,   ///< no intrusive waiter armed
    kAwait,  ///< resume iff still awaiting this epoch (co_await path)
    kKick,   ///< resume unconditionally unless finished (spawn/interrupt)
  };

  /// Called by the environment's event loop: wakes the intrusive waiter,
  /// then runs callbacks in registration order.
  void process();

  /// Park `proc` on this event (the co_await fast path). Uses the
  /// intrusive waiter slot when this is the first registration, so the
  /// common single-waiter await allocates nothing; later registrations
  /// spill to the callback list to preserve registration order.
  void await_by(ProcessPtr proc, std::uint64_t epoch);

  /// Drop one reference; releases the slot back to the pool at zero.
  void deref() noexcept;

  /// Reset a just-processed event back to pending for reuse by its owner
  /// (the per-process timeout event). Precondition: no live heap entry.
  void rearm() noexcept;

  Environment* env_ = nullptr;
  EventPool* pool_ = nullptr;
  EventSlot slot_ = 0;
  std::uint32_t gen_ = 0;
  std::uint32_t refs_ = 0;
  std::uint32_t sched_count_ = 0;  ///< live heap entries for this slot
  State state_ = State::kPending;
  bool failed_ = false;
  WaiterMode waiter_mode_ = WaiterMode::kNone;
  std::uint64_t waiter_epoch_ = 0;
  ProcessPtr waiter_;
  std::exception_ptr error_;
  detail::CallbackList callbacks_;
};

/// Owning, generation-checked handle to a pooled event. Copying bumps a
/// plain (non-atomic) refcount; the slot is recycled when the last handle
/// and the last heap entry are gone. Pointer-like: `ev->succeed()`,
/// `ev->processed()`, ... Must not outlive the owning Environment.
class Event {
 public:
  Event() noexcept = default;

  Event(const Event& other) noexcept : rec_(other.rec_), gen_(other.gen_) {
    if (rec_ != nullptr) ++rec_->refs_;
  }
  Event(Event&& other) noexcept : rec_(other.rec_), gen_(other.gen_) {
    other.rec_ = nullptr;
  }
  Event& operator=(const Event& other) noexcept {
    Event tmp(other);
    swap(tmp);
    return *this;
  }
  Event& operator=(Event&& other) noexcept {
    if (this != &other) {
      release();
      rec_ = other.rec_;
      gen_ = other.gen_;
      other.rec_ = nullptr;
    }
    return *this;
  }
  ~Event() { release(); }

  /// True when the handle points at a live (same-generation) event.
  bool valid() const noexcept {
    return rec_ != nullptr && rec_->gen_ == gen_;
  }
  explicit operator bool() const noexcept { return rec_ != nullptr; }

  /// Access the event. \throws std::logic_error on a stale handle
  /// (use-after-release — the slot was recycled).
  EventCore* operator->() const { return checked(); }
  EventCore& operator*() const { return *checked(); }

  /// Non-owning observer for lifetime diagnostics and tests.
  class EventObserver observer() const noexcept;

  void reset() noexcept {
    release();
    rec_ = nullptr;
  }

 private:
  friend class Environment;
  friend class EventPool;
  friend class ProcessState;

  Event(EventCore* rec, std::uint32_t gen) noexcept : rec_(rec), gen_(gen) {
    ++rec_->refs_;
  }

  EventCore* checked() const;

  void release() noexcept {
    if (rec_ != nullptr) {
      rec_->deref();
      rec_ = nullptr;
    }
  }

  void swap(Event& other) noexcept {
    std::swap(rec_, other.rec_);
    std::swap(gen_, other.gen_);
  }

  EventCore* rec_ = nullptr;
  std::uint32_t gen_ = 0;
};

/// Non-owning observer of a pooled event. Does not keep the slot alive;
/// once the event is released and its generation bumps, any access throws
/// `std::logic_error` — this is the use-after-release tripwire the pool's
/// handle discipline is tested against.
class EventObserver {
 public:
  EventObserver() noexcept = default;

  /// True while the observed event's slot has not been recycled.
  bool alive() const noexcept {
    return rec_ != nullptr && rec_->gen_ == gen_;
  }

  /// \throws std::logic_error if the event was released (generation
  /// mismatch: use-after-release).
  EventCore* operator->() const;

 private:
  friend class Event;
  EventObserver(EventCore* rec, std::uint32_t gen) noexcept
      : rec_(rec), gen_(gen) {}

  EventCore* rec_ = nullptr;
  std::uint32_t gen_ = 0;
};

inline EventObserver Event::observer() const noexcept {
  return EventObserver(rec_, gen_);
}

/// Source-compat alias: `EventPtr` used to be `shared_ptr<EventCore>`;
/// it is now the pooled handle with the same pointer-like surface.
using EventPtr = Event;

// Compile-time contracts (docs/KERNEL.md): handles are passed and stored
// by value all over the kernel, so they must stay pointer+generation
// sized — 16 bytes, same as the shared_ptr they replaced, never larger.
static_assert(sizeof(Event) == 16);
static_assert(sizeof(EventObserver) == 16);
static_assert(std::is_nothrow_move_constructible_v<Event>);
static_assert(std::is_nothrow_move_assignable_v<Event>);

}  // namespace pckpt::sim
