#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "sim/types.hpp"

/// \file event.hpp
/// SimPy-style events: one-shot occurrences with attached callbacks.
///
/// Life cycle: `pending` (created) -> `scheduled` (triggered, sitting in the
/// environment's heap) -> `processed` (callbacks ran). An event can succeed
/// or fail; failure carries an exception_ptr that is rethrown into any
/// process that awaits the event.

namespace pckpt::sim {

class Environment;

class EventCore;
using EventPtr = std::shared_ptr<EventCore>;

/// One-shot simulation event.
///
/// Events are created through Environment::event() / Environment::timeout()
/// and referenced through shared_ptr (EventPtr). They are not thread-safe:
/// the kernel is single-threaded by design (deterministic replay matters
/// more than parallel speedup for this simulator; campaigns parallelize at
/// the run level instead).
class EventCore : public std::enable_shared_from_this<EventCore> {
 public:
  using Callback = std::function<void(EventCore&)>;

  enum class State { kPending, kScheduled, kProcessed };

  explicit EventCore(Environment& env) : env_(&env) {}
  EventCore(const EventCore&) = delete;
  EventCore& operator=(const EventCore&) = delete;

  Environment& env() const noexcept { return *env_; }
  State state() const noexcept { return state_; }

  /// True once the event has been triggered (scheduled or processed).
  bool triggered() const noexcept { return state_ != State::kPending; }
  /// True once callbacks have run.
  bool processed() const noexcept { return state_ == State::kProcessed; }
  /// True if the event completed with a failure.
  bool failed() const noexcept { return failed_; }
  /// The failure cause; null unless failed().
  std::exception_ptr error() const noexcept { return error_; }

  /// Register a callback to run when the event is processed. If the event
  /// is already processed the callback runs immediately.
  void add_callback(Callback cb);

  /// Trigger the event successfully; it will be processed at the current
  /// simulation time (after already-queued same-time events).
  /// \throws std::logic_error if the event was already triggered.
  void succeed();

  /// Trigger the event as failed with the given cause.
  /// \throws std::logic_error if the event was already triggered.
  void fail(std::exception_ptr cause);

 private:
  friend class Environment;

  /// Called by the environment's event loop: runs callbacks.
  void process();

  Environment* env_;
  State state_ = State::kPending;
  bool failed_ = false;
  std::exception_ptr error_;
  std::vector<Callback> callbacks_;
};

}  // namespace pckpt::sim
