#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "sim/event.hpp"
#include "sim/types.hpp"

/// \file event_pool.hpp
/// Slab/free-list storage for pooled events.
///
/// Records live in fixed-size slabs that are never moved or freed until
/// the pool dies, so `EventCore*` stays stable for a record's whole life.
/// Slabs are raw storage: a record is placement-constructed the first
/// time its slot is handed out (folding the zero-init into the first
/// touch) and thereafter recycled through a LIFO free list. Each recycle
/// bumps the record's generation counter, which is what lets stale
/// observers detect use-after-release (see event.hpp). Steady-state event
/// traffic touches only the free-list vector — no allocator calls.

namespace pckpt::sim {

class EventPool {
 public:
  /// Records per slab. Power of two so slot->record resolution is a
  /// shift+mask; 256 × ~160 B keeps a slab well under typical L2.
  static constexpr std::size_t kSlabSize = 256;

  EventPool() = default;
  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  ~EventPool() {
    // Fast path: every constructed record went back through release(),
    // which already scrubbed it (callbacks reset, spill storage freed,
    // waiter dropped) — nothing left with a non-trivial destructor.
    if (free_.size() != hwm_) {
      // Live records remain (handles held at environment teardown). Sever
      // cross-record references first, while every slab is still alive:
      // callbacks and waiter slots may own handles to *other* pooled
      // events (condition fan-ins do), and dropping those handles
      // re-enters release(). Only then run the destructors.
      for (std::size_t s = 0; s < hwm_; ++s) {
        EventCore& rec = record(static_cast<EventSlot>(s));
        ++rec.gen_;  // kill observers first so reentrant reads see "dead"
        rec.callbacks_.clear();
        rec.waiter_.reset();
        rec.error_ = nullptr;
      }
      for (std::size_t s = 0; s < hwm_; ++s) {
        record(static_cast<EventSlot>(s)).~EventCore();
      }
    }
    // Slabs now hold no live objects; park them for the next environment
    // on this thread. Campaigns build one Environment per trial, so slab
    // recycling keeps the event working set cache-warm across trials.
    auto& cache = slab_cache();
    for (auto& slab : slabs_) {
      if (cache.size() >= kMaxCachedSlabs) break;
      cache.push_back(std::move(slab));
    }
  }

  /// Take a slot (recycled from the free list, or freshly constructed at
  /// the high-water mark, growing by one slab when needed) and reset it
  /// to a pending event. The returned record has zero references — the
  /// caller wraps it in an Event handle immediately.
  EventCore* acquire(Environment& env) {
    EventCore* rec;
    if (!free_.empty()) {
      rec = &record(free_.back());
      free_.pop_back();
    } else {
      if (hwm_ == capacity()) grow();
      const EventSlot slot = static_cast<EventSlot>(hwm_++);
      rec = ::new (slot_storage(slot)) EventCore();
      rec->pool_ = this;
      rec->slot_ = slot;
    }
    rec->env_ = &env;
    rec->state_ = EventCore::State::kPending;
    rec->failed_ = false;
    return rec;
  }

  /// Return a slot to the free list once its last reference is gone.
  /// Bumps the generation (stale observers now throw) and drops whatever
  /// the record still owns; clearing callbacks may recursively release
  /// other records, which is safe — the free list never reallocates
  /// (capacity is reserved at grow time).
  void release(EventCore& rec) noexcept {
    ++rec.gen_;
    rec.callbacks_.clear();
    rec.waiter_.reset();
    rec.waiter_mode_ = EventCore::WaiterMode::kNone;
    rec.error_ = nullptr;
    free_.push_back(rec.slot_);
  }

  EventCore& record(EventSlot slot) noexcept {
    return *std::launder(
        reinterpret_cast<EventCore*>(slot_storage(slot)));
  }

  /// Slots constructed so far (live + free) — for tests/diagnostics.
  std::size_t slots_created() const noexcept { return hwm_; }
  std::size_t free_slots() const noexcept { return free_.size(); }

 private:
  std::size_t capacity() const noexcept {
    return slabs_.size() * kSlabSize;
  }

  void* slot_storage(EventSlot slot) const noexcept {
    return slabs_[slot / kSlabSize].get() +
           (slot % kSlabSize) * sizeof(EventCore);
  }

  /// Thread-local stash of retired slabs (all environments on a thread
  /// share it; exec workers each get their own). Bounded so a one-off
  /// huge simulation cannot pin memory forever.
  static constexpr std::size_t kMaxCachedSlabs = 16;
  static std::vector<std::unique_ptr<std::byte[]>>& slab_cache() {
    static thread_local std::vector<std::unique_ptr<std::byte[]>> cache;
    return cache;
  }

  void grow() {
    // new[] storage is aligned for any fundamental-alignment type, which
    // covers EventCore (alignof <= max_align_t).
    static_assert(alignof(EventCore) <= alignof(std::max_align_t));
    auto& cache = slab_cache();
    if (!cache.empty()) {
      slabs_.push_back(std::move(cache.back()));
      cache.pop_back();
    } else {
      slabs_.push_back(
          std::make_unique<std::byte[]>(kSlabSize * sizeof(EventCore)));
    }
    free_.reserve(capacity());  // release() may not reallocate (noexcept)
  }

  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::vector<EventSlot> free_;
  std::size_t hwm_ = 0;  ///< slots constructed so far; slab fill watermark
};

inline void EventCore::deref() noexcept {
  if (--refs_ == 0) pool_->release(*this);
}

// Compile-time contracts (docs/KERNEL.md): slot->record resolution is a
// shift+mask, so the slab size must stay a power of two; slabs are new[]
// byte storage, which only aligns to max_align_t; and the free list must
// hold trivially-destructible slot indices (release() is noexcept and
// may never allocate or destroy). The size budget keeps one slab
// (kSlabSize records) well under typical L2 — growing EventCore past it
// is a hot-path regression, not a tweak.
static_assert((EventPool::kSlabSize & (EventPool::kSlabSize - 1)) == 0);
static_assert(alignof(EventCore) <= alignof(std::max_align_t));
static_assert(std::is_trivially_destructible_v<EventSlot>);
static_assert(sizeof(EventCore) <= 192);

}  // namespace pckpt::sim
