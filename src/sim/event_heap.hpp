#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "sim/types.hpp"

/// \file event_heap.hpp
/// Flat 4-ary min-heap over POD `(fire_time, seq, slot)` entries — the
/// event queue of the DES kernel.
///
/// Why 4-ary instead of `std::priority_queue`'s implicit binary heap:
///   - entries are 24-byte PODs, so four children share one or two cache
///     lines and a sift-down level costs a single line fetch;
///   - the tree is half as deep, halving the number of dependent
///     compare-and-move rounds per pop on the ~10^5-event heaps the
///     campaign models build;
///   - no shared_ptr copies ride along with the sift moves (the payload
///     is a pool slot index, not an owning pointer).
///
/// Ordering is strict weak over `(fire_time, seq)`; `seq` is the kernel's
/// monotone schedule counter, so equal-time events pop FIFO and the heap
/// is fully deterministic (the PR-2 golden traces are the oracle for
/// this contract).

namespace pckpt::sim {

/// One scheduled occurrence. POD: moved with memcpy-class stores during
/// sifting; the slot is resolved against the environment's event pool
/// only at pop time.
struct HeapEntry {
  SimTime t;        ///< absolute fire time (seconds)
  EventSeq seq;     ///< FIFO tie-breaker among equal fire times
  EventSlot slot;   ///< event pool slot that fires
};

// Compile-time contracts (docs/KERNEL.md): sift moves are memcpy-class
// stores and pops never run destructors, so the entry must stay a
// trivially copyable/destructible standard-layout 24-byte record — four
// children per two cache lines is what pays for the 4-ary shape.
static_assert(std::is_trivially_copyable_v<HeapEntry>);
static_assert(std::is_trivially_destructible_v<HeapEntry>);
static_assert(std::is_standard_layout_v<HeapEntry>);
static_assert(sizeof(HeapEntry) == 24);

/// Flat array 4-ary min-heap of HeapEntry. Not a template: the kernel
/// needs exactly one instantiation and the concrete type keeps the
/// translation unit small.
class EventHeap {
 public:
  static constexpr std::size_t kArity = 4;

  bool empty() const noexcept { return v_.empty(); }
  std::size_t size() const noexcept { return v_.size(); }
  const HeapEntry& top() const noexcept { return v_.front(); }

  void reserve(std::size_t n) { v_.reserve(n); }
  void clear() noexcept { v_.clear(); }

  void push(HeapEntry e) {
    std::size_t i = v_.size();
    v_.push_back(e);
    // Sift up: shift parents down until e's position is found, then
    // store once (avoids per-level swaps).
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!before(e, v_[parent])) break;
      v_[i] = v_[parent];
      i = parent;
    }
    v_[i] = e;
  }

  /// Remove and return the minimum entry. Precondition: !empty().
  HeapEntry pop() {
    HeapEntry min = v_.front();
    HeapEntry last = v_.back();
    v_.pop_back();
    if (!v_.empty()) {
      std::size_t i = 0;
      const std::size_t n = v_.size();
      for (;;) {
        const std::size_t first = i * kArity + 1;
        if (first >= n) break;
        // Smallest of up to four children.
        std::size_t best = first;
        const std::size_t end =
            first + kArity < n ? first + kArity : n;
        for (std::size_t c = first + 1; c < end; ++c) {
          if (before(v_[c], v_[best])) best = c;
        }
        if (!before(v_[best], last)) break;
        v_[i] = v_[best];
        i = best;
      }
      v_[i] = last;
    }
    return min;
  }

 private:
  static bool before(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }

  std::vector<HeapEntry> v_;
};

}  // namespace pckpt::sim
