#pragma once

#include <any>
#include <deque>
#include <memory>
#include <utility>

#include "sim/event.hpp"

/// \file store.hpp
/// SimPy-style Store: an unbounded FIFO message channel between processes.
/// `put()` deposits an item; `get()` returns a ticket whose event fires
/// once an item is available (items are matched to tickets FIFO). Used by
/// the node-level p-ckpt protocol to model notification/broadcast message
/// exchange.

namespace pckpt::sim {

class Environment;

class Store {
 public:
  struct Ticket {
    EventPtr ready;   ///< fires when the item has been assigned
    std::any item;    ///< valid once `ready` is processed
    bool fulfilled = false;
  };
  using TicketPtr = std::shared_ptr<Ticket>;

  explicit Store(Environment& env) : env_(&env) {}
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Deposit an item; wakes the oldest waiting ticket, if any.
  void put(std::any item);

  /// Request the next item. Await `ticket->ready`, then read
  /// `ticket->item`.
  TicketPtr get();

  std::size_t items() const noexcept { return items_.size(); }
  std::size_t waiting() const noexcept { return waiters_.size(); }

 private:
  Environment* env_;
  std::deque<std::any> items_;
  std::deque<TicketPtr> waiters_;
};

}  // namespace pckpt::sim
