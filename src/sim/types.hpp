#pragma once

#include <cstdint>
#include <limits>

/// \file types.hpp
/// Fundamental scalar types for the discrete-event simulation kernel.

namespace pckpt::sim {

/// Simulation time in seconds. Double precision is sufficient for the
/// horizons simulated here (weeks at sub-millisecond resolution).
using SimTime = double;

/// Sentinel meaning "run forever" for Environment::run_until().
inline constexpr SimTime kTimeInfinity =
    std::numeric_limits<SimTime>::infinity();

/// Monotonically increasing tiebreaker for same-timestamp events, so the
/// event loop is fully deterministic (FIFO among simultaneous events).
using EventSeq = std::uint64_t;

/// Index of an event's slot in the environment's slab pool. Slots are
/// recycled through a free list; a paired generation counter detects
/// stale references (see event.hpp).
using EventSlot = std::uint32_t;

}  // namespace pckpt::sim
