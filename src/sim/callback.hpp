#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

/// \file callback.hpp
/// Small-buffer callback for the DES kernel's hot path.
///
/// `EventCallback` is a move-only, type-erased `void(EventCore&)` callable
/// that stores small captures inline (no heap allocation) and falls back
/// to the heap only for oversized or over-aligned callables. The kernel's
/// own wake-up closures (a ProcessPtr plus an epoch, a handful of words)
/// always fit inline, which is what keeps event processing allocation-free
/// steady-state — `std::function`'s 16-byte inline buffer spills exactly
/// those captures to the heap on every await.

namespace pckpt::sim {

class EventCore;

class EventCallback {
 public:
  /// Inline capture budget. Sized for the kernel's own closures (waiter
  /// wake-ups, condition fan-ins: an Event handle plus a shared_ptr) with
  /// headroom for typical user lambdas.
  static constexpr std::size_t kInlineSize = 48;

  EventCallback() noexcept = default;

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback>>>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_v<Fn&, EventCore&>,
                  "EventCallback requires a void(EventCore&) callable");
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &vtable_inline<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &vtable_heap<Fn>;
    }
  }

  EventCallback(EventCallback&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(buf_, other.buf_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { reset(); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  void operator()(EventCore& ev) { vt_->invoke(buf_, ev); }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void* storage, EventCore& ev);
    /// Move-construct into `dst` from `src`, then destroy `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <class Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <class Fn>
  static constexpr VTable vtable_inline = {
      [](void* storage, EventCore& ev) {
        (*std::launder(reinterpret_cast<Fn*>(storage)))(ev);
      },
      [](void* dst, void* src) noexcept {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* storage) noexcept {
        std::launder(reinterpret_cast<Fn*>(storage))->~Fn();
      },
  };

  template <class Fn>
  static constexpr VTable vtable_heap = {
      [](void* storage, EventCore& ev) {
        (**std::launder(reinterpret_cast<Fn**>(storage)))(ev);
      },
      [](void* dst, void* src) noexcept {
        // The stored pointer is trivially destructible; copying it over is
        // a complete relocation.
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* storage) noexcept {
        delete *std::launder(reinterpret_cast<Fn**>(storage));
      },
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const VTable* vt_ = nullptr;
};

// Compile-time contracts (docs/KERNEL.md): the 48-byte inline budget is
// what keeps the kernel's own wake-up closures (ProcessPtr + epoch, an
// Event handle + a shared_ptr) off the heap, and the callback must
// relocate nothrow because CallbackList::take()/clear() are noexcept.
static_assert(EventCallback::kInlineSize == 48);
static_assert(sizeof(EventCallback) == 64);
static_assert(std::is_nothrow_move_constructible_v<EventCallback>);
static_assert(std::is_nothrow_move_assignable_v<EventCallback>);

}  // namespace pckpt::sim
