#pragma once

/// \file sim.hpp
/// Umbrella header for the discrete-event simulation kernel.

#include "sim/condition.hpp"     // IWYU pragma: export
#include "sim/environment.hpp"   // IWYU pragma: export
#include "sim/event.hpp"         // IWYU pragma: export
#include "sim/process.hpp"       // IWYU pragma: export
#include "sim/resource.hpp"      // IWYU pragma: export
#include "sim/tracer.hpp"        // IWYU pragma: export
#include "sim/types.hpp"         // IWYU pragma: export
