#include "serve/result_store.hpp"

namespace pckpt::serve {

namespace {

/// On-disk size of one framed record: 32-byte header + payload
/// (ckpt/durable_log.hpp frame format).
constexpr std::uint64_t kFrameHeaderBytes = 32;

std::uint64_t frame_bytes(std::string_view payload) {
  return kFrameHeaderBytes + payload.size();
}

}  // namespace

void ResultStore::set_write_fault_budget(long long bytes) {
  ckpt::DurableLog::set_write_fault_budget(bytes);
}

ResultStore::ResultStore(std::string path, CompactionConfig compaction)
    : log_(std::move(path),
           [this](std::uint64_t key, std::string_view payload) {
             // Replay order: last put wins. A superseding frame retires
             // its predecessor's bytes from the live set.
             const auto it = index_.find(key);
             if (it != index_.end()) live_bytes_ -= frame_bytes(it->second);
             live_bytes_ += frame_bytes(payload);
             index_[key] = std::string(payload);
           }) {
  if (compaction.on_open_min_dead_bytes > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t dead = log_.stats().log_bytes - live_bytes_;
    if (dead >= compaction.on_open_min_dead_bytes) compact_locked();
  }
}

void ResultStore::put(std::uint64_t key, std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  log_.append(key, payload);
  const auto it = index_.find(key);
  if (it != index_.end()) live_bytes_ -= frame_bytes(it->second);
  live_bytes_ += frame_bytes(payload);
  index_[key] = std::string(payload);
}

void ResultStore::put_group(
    const std::vector<std::pair<std::uint64_t, std::string>>& group) {
  if (group.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  log_.append_group(group);
  for (const auto& [key, payload] : group) {
    const auto it = index_.find(key);
    if (it != index_.end()) live_bytes_ -= frame_bytes(it->second);
    live_bytes_ += frame_bytes(payload);
    index_[key] = payload;
  }
}

std::optional<std::string> ResultStore::lookup(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t ResultStore::compact() {
  std::lock_guard<std::mutex> lock(mu_);
  return compact_locked();
}

// requires(mu_)
std::uint64_t ResultStore::compact_locked() {
  const std::uint64_t before = log_.stats().log_bytes;
  if (before == live_bytes_) return 0;  // nothing superseded
  std::vector<std::pair<std::uint64_t, std::string>> live;
  live.reserve(index_.size());
  for (const auto& [key, payload] : index_) live.emplace_back(key, payload);
  log_.rewrite(live);
  const std::uint64_t reclaimed = before - log_.stats().log_bytes;
  ++compactions_;
  compacted_bytes_ += reclaimed;
  return reclaimed;
}

ResultStore::Stats ResultStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  const ckpt::DurableLog::Stats ls = log_.stats();
  Stats s;
  s.records = index_.size();
  s.log_records = ls.frames;
  s.log_bytes = ls.log_bytes;
  s.replayed_journal = ls.replayed_journal;
  s.truncated_bytes = ls.truncated_bytes;
  s.recover_us = ls.recover_us;
  s.live_records = index_.size();
  s.dead_bytes = ls.log_bytes - live_bytes_;
  s.compactions = compactions_;
  s.compacted_bytes = compacted_bytes_;
  return s;
}

}  // namespace pckpt::serve
