#include "serve/result_store.hpp"

namespace pckpt::serve {

void ResultStore::set_write_fault_budget(long long bytes) {
  ckpt::DurableLog::set_write_fault_budget(bytes);
}

ResultStore::ResultStore(std::string path)
    : log_(std::move(path), [this](std::uint64_t key, std::string_view payload) {
        index_[key] = std::string(payload);  // replay order: last put wins
      }) {}

void ResultStore::put(std::uint64_t key, std::string_view payload) {
  std::lock_guard<std::mutex> lock(mu_);
  log_.append(key, payload);
  index_[key] = std::string(payload);
}

void ResultStore::put_group(
    const std::vector<std::pair<std::uint64_t, std::string>>& group) {
  if (group.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  log_.append_group(group);
  for (const auto& [key, payload] : group) index_[key] = payload;
}

std::optional<std::string> ResultStore::lookup(std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

ResultStore::Stats ResultStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  const ckpt::DurableLog::Stats ls = log_.stats();
  Stats s;
  s.records = index_.size();
  s.log_records = ls.frames;
  s.log_bytes = ls.log_bytes;
  s.replayed_journal = ls.replayed_journal;
  s.truncated_bytes = ls.truncated_bytes;
  s.recover_us = ls.recover_us;
  return s;
}

}  // namespace pckpt::serve
