#include "serve/telemetry.hpp"

#include <cstdio>

#include "exec/result_sink.hpp"

namespace pckpt::serve {

namespace {

using obs::LatencyHist;
using obs::RequestSpan;

/// Prometheus metric name: `pckpt_` + the registry key with every
/// non-[a-zA-Z0-9_] byte mapped to '_'.
std::string prom_name(std::string_view name) {
  std::string out = "pckpt_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void prom_counter(std::string& out, std::string_view name,
                  std::uint64_t value) {
  const std::string n = prom_name(name);
  out += "# TYPE " + n + " counter\n";
  out += n + " " + std::to_string(value) + "\n";
}

void prom_gauge(std::string& out, std::string_view name, std::uint64_t value) {
  const std::string n = prom_name(name);
  out += "# TYPE " + n + " gauge\n";
  out += n + " " + std::to_string(value) + "\n";
}

void prom_quantile(std::string& out, const std::string& n, const char* q,
                   double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", value);
  out += n + "{quantile=\"" + q + "\"} " + buf + "\n";
}

/// One latency histogram as a Prometheus summary (quantiles in
/// microseconds, matching the `_us` registry names).
void prom_summary(std::string& out, std::string_view name,
                  const LatencyHist& h) {
  const std::string n = prom_name(name);
  out += "# TYPE " + n + " summary\n";
  prom_quantile(out, n, "0.5", h.p50());
  prom_quantile(out, n, "0.9", h.p90());
  prom_quantile(out, n, "0.99", h.p99());
  out += n + "_sum " + std::to_string(h.sum_us()) + "\n";
  out += n + "_count " + std::to_string(h.count()) + "\n";
}

/// JSON object for one latency histogram, embedded via add_raw.
std::string latency_json(const LatencyHist& h) {
  exec::JsonlRow row;
  row.add("count", h.count())
      .add("p50_us", h.p50())
      .add("p90_us", h.p90())
      .add("p99_us", h.p99())
      .add("max_us", h.max_us())
      .add("sum_us", h.sum_us());
  return row.str();
}

}  // namespace

Telemetry::Telemetry(obs::RuntimeLog& log, std::uint64_t slow_query_ms)
    : log_(log), slow_query_ms_(slow_query_ms) {
  // Register the stable surfaces eagerly: the metrics endpoint shows
  // every tier (and the error/slow counters) from the first scrape, in
  // a deterministic order independent of traffic.
  registry_.latency("req.us.hit");
  registry_.latency("req.us.estimate_miss");
  registry_.latency("req.us.exact_miss");
  registry_.counter("errors_total");
  registry_.counter("slow_total");
  registry_.counter("journal_replays");
}

void Telemetry::record_request(const obs::RequestSpan& span,
                               std::string_view op, int code) {
  const std::uint64_t total_ns = span.total_ns();
  const std::uint64_t total_us = total_ns / 1000;
  const RequestSpan::Tier tier = span.tier();
  const bool slow = slow_query_ms_ > 0 && total_us >= slow_query_ms_ * 1000;
  {
    std::lock_guard<std::mutex> lock(mu_);
    registry_.latency(std::string("op.us.").append(op)).record_us(total_us);
    if (tier != RequestSpan::Tier::kNone) {
      registry_
          .latency(std::string("req.us.").append(RequestSpan::tier_name(tier)))
          .record_us(total_us);
    }
    for (std::size_t i = 0; i < RequestSpan::kStages; ++i) {
      const auto stage = static_cast<RequestSpan::Stage>(i);
      const std::uint64_t ns = span.stage_ns(stage);
      if (ns == 0) continue;
      registry_
          .latency(
              std::string("stage.us.").append(RequestSpan::stage_name(stage)))
          .record_ns(ns);
    }
    if (code >= 400) ++registry_.counter("errors_total");
    if (slow) ++registry_.counter("slow_total");
  }
  log_.debug("serve", "request.done")
      .add("req", span.request_id())
      .add("op", op)
      .add("tier", RequestSpan::tier_name(tier))
      .add("code", code)
      .add("us", total_us);
  if (slow) {
    auto rec = log_.warn("serve", "request.slow");
    rec.add("req", span.request_id())
        .add("op", op)
        .add("tier", RequestSpan::tier_name(tier))
        .add("code", code)
        .add("us", total_us);
    for (std::size_t i = 0; i < RequestSpan::kStages; ++i) {
      const auto stage = static_cast<RequestSpan::Stage>(i);
      const std::uint64_t ns = span.stage_ns(stage);
      if (ns == 0) continue;
      rec.add(std::string(RequestSpan::stage_name(stage)) + "_us", ns / 1000);
    }
  }
}

void Telemetry::record_store_commit(std::size_t frames, std::uint64_t bytes,
                                    std::uint64_t us) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_.latency("store.commit.us").record_us(us);
  registry_.counter("store.commit.frames") += frames;
  registry_.counter("store.commit.bytes") += bytes;
}

void Telemetry::record_shard_commit(std::size_t /*shard*/, std::uint64_t us) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_.latency("ckpt.commit.us").record_us(us);
  ++registry_.counter("ckpt.commit.shards");
}

void Telemetry::record_recover(std::string_view component, bool replayed,
                               std::uint64_t truncated_bytes,
                               std::uint64_t frames, std::uint64_t us) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    registry_.latency(std::string("recover.us.").append(component))
        .record_us(us);
    if (replayed) ++registry_.counter("journal_replays");
  }
  log_.info(component, "journal.recover")
      .add("replayed", replayed)
      .add("truncated_bytes", truncated_bytes)
      .add("frames", frames)
      .add("us", us);
}

obs::MetricsRegistry Telemetry::snapshot() const {
  obs::MetricsRegistry out;
  std::lock_guard<std::mutex> lock(mu_);
  out.merge(registry_);
  return out;
}

std::string Telemetry::render_metrics_line(
    std::string_view version, std::uint64_t uptime_s,
    std::uint64_t requests_total, const Planner::Counters& counters,
    const ResultStore::Stats& store) const {
  const obs::MetricsRegistry snap = snapshot();

  exec::JsonlRow row;
  row.add("ev", "metrics");
  row.add("version", version);
  row.add("uptime_s", uptime_s);
  row.add("requests_total", requests_total);

  exec::JsonlRow planner_row;
  planner_row.add("hits", static_cast<std::uint64_t>(counters.hits))
      .add("estimate_misses",
           static_cast<std::uint64_t>(counters.estimate_misses))
      .add("exact_misses", static_cast<std::uint64_t>(counters.exact_misses))
      .add("rejected", static_cast<std::uint64_t>(counters.rejected))
      .add("inflight", static_cast<std::uint64_t>(counters.inflight))
      .add("shards_executed",
           static_cast<std::uint64_t>(counters.shards_executed))
      .add("shards_resumed",
           static_cast<std::uint64_t>(counters.shards_resumed))
      .add("dedup_hits", static_cast<std::uint64_t>(counters.dedup_hits));
  row.add_raw("planner", planner_row.str());

  exec::JsonlRow store_row;
  store_row.add("records", static_cast<std::uint64_t>(store.records))
      .add("log_bytes", store.log_bytes)
      .add("replayed_journal", store.replayed_journal)
      .add("recover_us", store.recover_us)
      .add("live_records", static_cast<std::uint64_t>(store.live_records))
      .add("dead_bytes", store.dead_bytes)
      .add("compactions", static_cast<std::uint64_t>(store.compactions))
      .add("compacted_bytes", store.compacted_bytes);
  row.add_raw("store", store_row.str());

  exec::JsonlRow counters_row;
  for (const auto& [name, value] : snap.counters()) {
    counters_row.add(name, value);
  }
  row.add_raw("counters", counters_row.str());

  exec::JsonlRow latencies_row;
  for (const auto& [name, h] : snap.latencies()) {
    latencies_row.add_raw(name, latency_json(h));
  }
  row.add_raw("latencies", latencies_row.str());

  // Prometheus text exposition, embedded as one escaped string member
  // (pckpt_query --metrics --prom unescapes and prints it verbatim).
  std::string prom;
  prom_gauge(prom, "uptime_seconds", uptime_s);
  prom_counter(prom, "requests_total", requests_total);
  prom_counter(prom, "hits_total", counters.hits);
  prom_counter(prom, "estimate_misses_total", counters.estimate_misses);
  prom_counter(prom, "exact_misses_total", counters.exact_misses);
  prom_counter(prom, "rejected_total", counters.rejected);
  prom_gauge(prom, "inflight", counters.inflight);
  prom_counter(prom, "shards_executed_total", counters.shards_executed);
  prom_counter(prom, "shards_resumed_total", counters.shards_resumed);
  prom_counter(prom, "dedup_hits_total", counters.dedup_hits);
  prom_gauge(prom, "store_records", store.records);
  prom_gauge(prom, "store_log_bytes", store.log_bytes);
  prom_gauge(prom, "store_live_records", store.live_records);
  prom_gauge(prom, "store_dead_bytes", store.dead_bytes);
  prom_counter(prom, "store_compactions_total", store.compactions);
  for (const auto& [name, value] : snap.counters()) {
    prom_counter(prom, name, value);
  }
  for (const auto& [name, h] : snap.latencies()) {
    prom_summary(prom, name, h);
  }
  row.add("prom", prom);
  return row.str();
}

}  // namespace pckpt::serve
