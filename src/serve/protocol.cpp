#include "serve/protocol.hpp"

#include <cmath>

#include "exec/result_sink.hpp"
#include "obs/json_value.hpp"

namespace pckpt::serve {

namespace {

using obs::JsonValue;

[[noreturn]] void bad_request(const std::string& message) {
  throw ServeError(400, message);
}

double require_finite_number(const JsonValue& v, const std::string& key) {
  if (!v.is_number()) bad_request("member '" + key + "' must be a number");
  if (!std::isfinite(v.number)) {
    bad_request("member '" + key + "' must be finite");
  }
  return v.number;
}

std::uint64_t require_u64(const JsonValue& v, const std::string& key) {
  const double d = require_finite_number(v, key);
  if (d < 0 || d != std::floor(d) || d >= 1.8446744073709552e19) {
    bad_request("member '" + key + "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(d);
}

std::string require_string(const JsonValue& v, const std::string& key) {
  if (!v.is_string()) bad_request("member '" + key + "' must be a string");
  return v.string;
}

bool require_bool(const JsonValue& v, const std::string& key) {
  if (v.kind != JsonValue::Kind::kBool) {
    bad_request("member '" + key + "' must be a boolean");
  }
  return v.boolean;
}

/// Apply one query member. Returns false for names it does not know —
/// the caller turns that into a 400 so typos never silently fall back
/// to defaults.
bool apply_query_member(QuerySpec& q, const std::string& key,
                        const JsonValue& v) {
  if (key == "mode") {
    q.mode = require_string(v, key);
    if (q.mode != "estimate" && q.mode != "exact") {
      bad_request("mode must be 'estimate' or 'exact'");
    }
  } else if (key == "model") {
    q.model = require_string(v, key);
  } else if (key == "app") {
    q.app = require_string(v, key);
  } else if (key == "system") {
    q.system = require_string(v, key);
  } else if (key == "runs") {
    q.runs = require_u64(v, key);
    if (q.runs == 0) bad_request("runs must be >= 1");
  } else if (key == "seed") {
    q.seed = require_u64(v, key);
  } else if (key == "progress") {
    q.progress = require_bool(v, key);
  } else if (key == "recall") {
    q.recall = require_finite_number(v, key);
  } else if (key == "false_positive_rate") {
    q.false_positive_rate = require_finite_number(v, key);
  } else if (key == "lead_scale") {
    q.lead_scale = require_finite_number(v, key);
  } else if (key == "lead_error_sigma") {
    q.lead_error_sigma = require_finite_number(v, key);
  } else if (key == "lm_transfer_factor") {
    q.lm_transfer_factor = require_finite_number(v, key);
  } else if (key == "lm_safety_margin") {
    q.lm_safety_margin = require_finite_number(v, key);
  } else if (key == "lm_runtime_dilation") {
    q.lm_runtime_dilation = require_finite_number(v, key);
  } else if (key == "restart_seconds") {
    q.restart_seconds = require_finite_number(v, key);
  } else if (key == "min_oci_seconds") {
    q.min_oci_seconds = require_finite_number(v, key);
  } else if (key == "node_repair_hours") {
    q.node_repair_hours = require_finite_number(v, key);
  } else if (key == "drain_concurrency") {
    q.drain_concurrency = require_u64(v, key);
  } else if (key == "spare_nodes") {
    q.spare_nodes = require_finite_number(v, key);
  } else {
    return false;
  }
  return true;
}

/// Parse one batch entry object into a QuerySpec. Strict like the
/// top-level query parse; `progress` is additionally rejected (batch
/// entries do not stream).
QuerySpec parse_batch_entry(const JsonValue& v, std::size_t index) {
  const std::string where = "queries[" + std::to_string(index) + "]";
  if (!v.is_object()) bad_request(where + " must be a JSON object");
  QuerySpec q;
  for (const auto& [key, value] : v.object) {
    if (key == "progress") {
      bad_request(where + ": batch entries do not support 'progress'");
    }
    if (!apply_query_member(q, key, value)) {
      bad_request(where + ": unknown member '" + key + "'");
    }
  }
  if (q.model.empty()) bad_request(where + ": missing member 'model'");
  if (q.app.empty()) bad_request(where + ": missing member 'app'");
  return q;
}

}  // namespace

Request parse_request(std::string_view line) {
  JsonValue root;
  try {
    root = obs::parse_json(line);
  } catch (const std::exception& e) {
    bad_request(std::string("malformed JSON: ") + e.what());
  }
  if (!root.is_object()) bad_request("request must be a JSON object");

  const JsonValue* op = root.get("op");
  if (op == nullptr || !op->is_string()) {
    bad_request("missing string member 'op'");
  }

  Request req;
  if (op->string == "ping") {
    req.op = Op::kPing;
  } else if (op->string == "stats") {
    req.op = Op::kStats;
  } else if (op->string == "metrics") {
    req.op = Op::kMetrics;
  } else if (op->string == "shutdown") {
    req.op = Op::kShutdown;
  } else if (op->string == "query") {
    req.op = Op::kQuery;
  } else if (op->string == "batch") {
    req.op = Op::kBatch;
  } else {
    bad_request("unknown op '" + op->string + "'");
  }

  if (req.op == Op::kBatch) {
    // Exactly {"op":"batch","queries":[...]} — a parse error anywhere
    // in the request fails the whole request before anything runs.
    const JsonValue* queries = root.get("queries");
    if (queries == nullptr || queries->kind != JsonValue::Kind::kArray) {
      bad_request("op 'batch' requires array member 'queries'");
    }
    if (root.object.size() != 2) {
      bad_request("op 'batch' takes only member 'queries'");
    }
    if (queries->array.empty()) {
      bad_request("'queries' must not be empty");
    }
    req.batch.reserve(queries->array.size());
    for (std::size_t i = 0; i < queries->array.size(); ++i) {
      req.batch.push_back(parse_batch_entry(queries->array[i], i));
    }
    return req;
  }

  if (req.op != Op::kQuery) {
    // Non-query ops take no other members.
    if (root.object.size() != 1) {
      bad_request("op '" + op->string + "' takes no other members");
    }
    return req;
  }

  for (const auto& [key, value] : root.object) {
    if (key == "op") continue;
    if (!apply_query_member(req.query, key, value)) {
      bad_request("unknown member '" + key + "'");
    }
  }
  if (req.query.model.empty()) bad_request("missing member 'model'");
  if (req.query.app.empty()) bad_request("missing member 'app'");
  return req;
}

std::string render_error_line(int code, std::string_view message) {
  exec::JsonlRow row;
  row.add("ev", "error");
  row.add("code", code);
  row.add("message", message);
  return row.str();
}

std::string render_progress_line(std::string_view key_hex,
                                 const exec::ShardProgress& p) {
  exec::JsonlRow row;
  row.add("ev", "progress");
  row.add("key", key_hex);
  row.add("shards_done", static_cast<std::uint64_t>(p.shards_done));
  row.add("shards_total", static_cast<std::uint64_t>(p.shards_total));
  row.add("items_done", static_cast<std::uint64_t>(p.items_done));
  row.add("items_total", static_cast<std::uint64_t>(p.items_total));
  return row.str();
}

std::string render_pong_line(std::string_view version) {
  exec::JsonlRow row;
  row.add("ev", "pong");
  row.add("version", version);
  return row.str();
}

std::string render_result_line(std::string_view key_hex,
                               std::string_view tier, bool cached,
                               std::string_view payload_json) {
  exec::JsonlRow row;
  row.add("ev", "result");
  row.add("key", key_hex);
  row.add("tier", tier);
  row.add("cached", cached);
  row.add_raw("payload", payload_json);  // MUST stay the last member
  return row.str();
}

std::string render_entry_line(std::uint64_t index, std::string_view key_hex,
                              std::string_view tier, bool cached,
                              std::string_view payload_json) {
  exec::JsonlRow row;
  row.add("ev", "entry");
  row.add("i", index);
  row.add("status", 200);
  row.add("key", key_hex);
  row.add("tier", tier);
  row.add("cached", cached);
  row.add_raw("payload", payload_json);  // MUST stay the last member
  return row.str();
}

std::string render_entry_error_line(std::uint64_t index, int code,
                                    std::string_view message) {
  exec::JsonlRow row;
  row.add("ev", "entry");
  row.add("i", index);
  row.add("status", code);
  row.add("message", message);
  return row.str();
}

std::string render_batch_line(std::uint64_t n, std::uint64_t ok) {
  exec::JsonlRow row;
  row.add("ev", "batch");
  row.add("n", n);
  row.add("ok", ok);
  return row.str();
}

std::optional<std::string_view> extract_payload(std::string_view line) {
  constexpr std::string_view kResultPrefix = "{\"ev\":\"result\"";
  constexpr std::string_view kEntryPrefix = "{\"ev\":\"entry\"";
  constexpr std::string_view kMarker = "\"payload\":";
  if (line.substr(0, kResultPrefix.size()) != kResultPrefix &&
      line.substr(0, kEntryPrefix.size()) != kEntryPrefix) {
    return std::nullopt;
  }
  const std::size_t at = line.rfind(kMarker);
  if (at == std::string_view::npos) return std::nullopt;
  const std::size_t begin = at + kMarker.size();
  if (line.empty() || line.back() != '}' || begin >= line.size() - 1) {
    return std::nullopt;
  }
  return line.substr(begin, line.size() - 1 - begin);
}

}  // namespace pckpt::serve
