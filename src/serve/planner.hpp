#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/scenario.hpp"
#include "failure/lead_time_model.hpp"
#include "obs/request_span.hpp"
#include "serve/cache_key.hpp"
#include "serve/protocol.hpp"
#include "serve/result_store.hpp"

/// \file planner.hpp
/// The two-tier query planner behind pckpt_serve (docs/SERVING.md).
///
/// Every query is first canonicalized (serve/cache_key.hpp) and looked
/// up in the ResultStore; a hit returns the memoized payload bytes
/// untouched. A miss is answered by one of two tiers:
///
///  - tier A (`mode=estimate`): the closed-form waste model of Eqs. 1-8
///    (analysis/) evaluated in-process — microseconds, no admission
///    control. First-order: mitigation fractions come from the analytic
///    sigma/beta, not the DES.
///  - tier B (`mode=exact`): a full paired DES campaign via
///    core::run_campaign, scheduled under an admission gate (at most
///    `max_inflight` concurrent campaigns; excess waiters are bounded by
///    `queue_limit` and `admission_wait_ms`, beyond which the request is
///    rejected with a 429-style ServeError instead of queueing without
///    bound).
///
/// Determinism contract: for a given canonical query, the exact-tier
/// payload bytes equal render_exact_payload(run_campaign(...)) of a
/// standalone run with the same config and seed — campaigns inherit the
/// engine's jobs-independence, and payload rendering is a pure function
/// of the CampaignResult. Tests assert hit == miss == standalone bytes.

namespace pckpt::exec {
class FairShareScheduler;
}  // namespace pckpt::exec

namespace pckpt::serve {

class Telemetry;

/// Bounded concurrency for tier-B campaigns.
struct AdmissionConfig {
  std::size_t max_inflight = 1;   ///< concurrent exact campaigns
  std::size_t queue_limit = 4;    ///< waiters allowed beyond inflight
  std::uint64_t wait_ms = 0;      ///< max queue wait before a 429
};

/// Counting gate implementing AdmissionConfig. acquire() either admits
/// within the deadline or throws ServeError(429).
class AdmissionGate {
 public:
  explicit AdmissionGate(AdmissionConfig cfg) : cfg_(cfg) {}

  void acquire();
  void release();

  std::size_t inflight() const;
  std::size_t rejected() const;

 private:
  AdmissionConfig cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t inflight_ = 0;  // guarded_by(mu_)
  std::size_t waiting_ = 0;   // guarded_by(mu_)
  std::size_t rejected_ = 0;  // guarded_by(mu_)
};

/// RAII admission ticket.
class AdmissionTicket {
 public:
  explicit AdmissionTicket(AdmissionGate& gate) : gate_(gate) {
    gate_.acquire();
  }
  ~AdmissionTicket() { gate_.release(); }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

 private:
  AdmissionGate& gate_;
};

class Planner {
 public:
  struct Outcome {
    std::string payload;  ///< deterministic JSON object (payload bytes)
    std::uint64_t key = 0;
    bool cached = false;
    std::string tier;  ///< "estimate" or "exact"
  };

  struct Counters {
    std::size_t hits = 0;
    std::size_t estimate_misses = 0;
    std::size_t exact_misses = 0;
    std::size_t rejected = 0;
    std::size_t inflight = 0;
    std::size_t shards_executed = 0;  ///< tier-B shards simulated
    std::size_t shards_resumed = 0;   ///< tier-B shards loaded from checkpoint
    std::size_t dedup_hits = 0;  ///< misses coalesced onto in-flight campaigns
  };

  /// `scenario`: a core::Scenario the daemon serves (its machine,
  /// default CrConfig and failure system; its applications joined with
  /// the built-in Summit workload table for name resolution).
  /// A non-empty `checkpoint_dir` enables campaign checkpointing
  /// (docs/CHECKPOINTING.md): tier-B campaigns commit each shard to
  /// `checkpoint_dir` and, after a daemon crash/restart, resume from the
  /// committed prefix instead of re-simulating it. The checkpoint is
  /// removed once the finished payload is in the ResultStore.
  /// A non-null `scheduler` runs tier-B campaigns on the daemon-wide
  /// fair-share pool (exec/fair_share.hpp) instead of a per-request
  /// serial executor; it must outlive the planner. Payload bytes are
  /// identical either way (engine determinism contract).
  Planner(core::Scenario scenario, AdmissionConfig admission,
          ResultStore& store, std::string checkpoint_dir = {},
          exec::FairShareScheduler* scheduler = nullptr);

  /// Resolved, validated form of a QuerySpec.
  struct Resolved {
    CanonicalQuery canonical;
    std::uint64_t key = 0;
    workload::Application app;
    failure::FailureSystem system;
    core::CrConfig cr;
  };

  /// Resolve names against the catalogs and apply overrides.
  /// \throws ServeError 404 (unknown app/system/model) or 400 (override
  /// rejected by CrConfig::validate).
  Resolved resolve(const QuerySpec& spec) const;

  /// Answer a query: cache hit, tier-A estimate, or tier-B campaign.
  /// `progress` (may be empty) receives shard completions of a tier-B
  /// miss. A non-null `span` gets the staged timeline (key-resolve,
  /// store-lookup, admission-wait, campaign-exec, ckpt-commit, render)
  /// and the resolved tier. Thread-safe. \throws ServeError (429 on
  /// admission rejection).
  Outcome answer(const QuerySpec& spec,
                 const exec::ProgressHook& progress = {},
                 obs::RequestSpan* span = nullptr);

  Counters counters() const;
  const ResultStore& store() const noexcept { return store_; }

  /// Attach the daemon's telemetry (docs/OBSERVABILITY.md): checkpoint
  /// open/resume log records and per-shard commit samples. Null (the
  /// default) keeps every call site a single pointer test. Set before
  /// serving begins.
  void set_telemetry(Telemetry* telemetry) noexcept {
    telemetry_ = telemetry;
  }

 private:
  /// One in-flight exact-tier campaign that identical concurrent
  /// queries coalesce onto. The first requester (the leader) runs the
  /// campaign; later identical requests (followers) park here until the
  /// leader publishes the payload — or the failure — and wakes them.
  /// Follower progress hooks receive the leader's shard completions.
  struct Inflight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::string payload;
    std::exception_ptr error;
    std::vector<exec::ProgressHook> followers;
  };

  core::Scenario scenario_;
  iomodel::StorageModel storage_;
  failure::LeadTimeModel leads_;
  AdmissionGate gate_;
  ResultStore& store_;
  std::string checkpoint_dir_;
  exec::FairShareScheduler* scheduler_ = nullptr;
  Telemetry* telemetry_ = nullptr;
  std::mutex inflight_mu_;
  // guarded_by(inflight_mu_) — the map; each Inflight has its own mu.
  std::map<std::uint64_t, std::shared_ptr<Inflight>> inflight_;
  mutable std::mutex counters_mu_;
  Counters counters_;  // guarded_by(counters_mu_)
};

/// Deterministic payload rendering — pure functions of their inputs,
/// shared by the planner, the tests and the byte-identity checks.
std::string render_exact_payload(const CanonicalQuery& q,
                                 const core::CampaignResult& r);

/// Tier-A closed-form answer.
struct EstimateBreakdown {
  double oci_s = 0;
  double sigma = 0;          ///< LM-eligible failure fraction (Eq. 2)
  double beta = 0;           ///< p-ckpt-mitigable fraction (Eq. 6)
  double mitigated_fraction = 0;  ///< applied per model kind
  double checkpoint_h = 0;
  double recomputation_h = 0;
  double recovery_h = 0;
  double total_h = 0;
  double expected_failures = 0;
};

std::string render_estimate_payload(const CanonicalQuery& q,
                                    const EstimateBreakdown& e);

/// Evaluate tier A for a resolved query on the given machine/storage.
EstimateBreakdown estimate_query(const Planner::Resolved& r,
                                 const workload::Machine& machine,
                                 const iomodel::StorageModel& storage,
                                 const failure::LeadTimeModel& leads);

}  // namespace pckpt::serve
