#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/cr_config.hpp"
#include "failure/system_catalog.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

/// \file cache_key.hpp
/// Deterministic cache keys for the campaign service (docs/SERVING.md).
///
/// A query is canonicalized into the *resolved physical tuple* that fully
/// determines its answer — machine geometry, workload, failure system,
/// C/R policy knobs, seed and trial count — rendered as a sorted
/// `key=value` text block and hashed with FNV-1a/64. Hashing resolved
/// numbers rather than preset names means `system=titan` and an explicit
/// Weibull(0.51, 7.45h, 18688) spec share one cache entry, and a changed
/// catalog constant naturally invalidates old entries.
///
/// Portability contract (pinned by tests/serve/cache_key_test.cpp):
///  - doubles are rendered with round-trippable `%.17g`
///    (max_digits10 for IEEE-754 binary64), so the same bit pattern
///    canonicalizes identically under every compiler/libc;
///  - NaN and infinities are rejected with std::invalid_argument naming
///    the offending field — they must never reach the store;
///  - fields are emitted in fixed sorted order; adding a field is a
///    schema change and must bump kCacheKeySchema.

namespace pckpt::serve {

/// Schema tag mixed into every canonical text (first line). Bump when
/// the field set changes so stale stores miss instead of mismatching.
inline constexpr std::string_view kCacheKeySchema = "pckpt-query/1";

/// Everything that determines a query's answer, fully resolved (no
/// names that require a catalog to interpret — except the informational
/// app/system labels, which are hashed too so distinct presets with
/// coincidentally equal numbers stay distinguishable in stats output).
struct CanonicalQuery {
  // Query.
  std::string mode;   ///< "estimate" (tier A) or "exact" (tier B)
  std::string model;  ///< B | M1 | M2 | P1 | P2
  std::uint64_t runs = 0;
  std::uint64_t seed = 0;

  // Machine geometry.
  int machine_nodes = 0;
  double dram_gb = 0;
  double interconnect_gbps = 0;
  double bb_write_gbps = 0;
  double bb_read_gbps = 0;
  double bb_capacity_gb = 0;
  double pfs_ceiling_gbps = 0;
  double node_pfs_gbps = 0;

  // Workload.
  std::string app;
  int app_nodes = 0;
  double ckpt_total_gb = 0;
  double compute_hours = 0;

  // Failure system.
  std::string system;
  double weibull_shape = 0;
  double weibull_scale_hours = 0;
  int system_nodes = 0;

  // C/R policy.
  double recall = 0;
  double false_positive_rate = 0;
  double lead_scale = 0;
  double lead_error_sigma = 0;
  double lm_transfer_factor = 0;
  double lm_safety_margin = 0;
  double lm_runtime_dilation = 0;
  double restart_seconds = 0;
  double min_oci_seconds = 0;
  double node_repair_hours = 0;
  int drain_concurrency = 0;
  int spare_nodes = 0;
};

/// Build the canonical tuple from typed scenario pieces.
CanonicalQuery canonicalize(std::string_view mode, std::string_view model,
                            std::uint64_t runs, std::uint64_t seed,
                            const workload::Machine& machine,
                            const workload::Application& app,
                            const failure::FailureSystem& system,
                            const core::CrConfig& cr);

/// Render a double for hashing: shortest fixed `%.17g`, locale-free.
/// \throws std::invalid_argument (naming `field`) on NaN/inf.
std::string canonical_double(std::string_view field, double value);

/// The canonical text block (schema line + sorted `key=value` lines,
/// '\n'-terminated). This is what gets hashed; it is also stored in the
/// record payload header for post-mortem debugging of collisions.
std::string canonical_text(const CanonicalQuery& q);

/// FNV-1a over arbitrary bytes (64-bit, offset 0xcbf29ce484222325,
/// prime 0x100000001b3).
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// fnv1a64(canonical_text(q)) — the ResultStore key.
std::uint64_t cache_key(const CanonicalQuery& q);

/// Fixed-width lowercase hex rendering of a key (16 chars, no prefix) —
/// the wire and log spelling of keys.
std::string key_hex(std::uint64_t key);

}  // namespace pckpt::serve
