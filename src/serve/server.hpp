#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/planner.hpp"

/// \file server.hpp
/// The pckpt_serve daemon core: a unix-domain-socket server speaking
/// the NDJSON protocol of serve/protocol.hpp, one handler thread per
/// connection, all queries funneled through one Planner (which owns the
/// admission gate) and one crash-safe ResultStore.
///
/// Lifecycle: the constructor binds and listens (unlinking a stale
/// socket file first); run() accepts until a `shutdown` op arrives or
/// stop() is called, then drains handler threads and unlinks the
/// socket. stop() is thread-safe and idempotent.

namespace pckpt::serve {

/// Protocol/version banner returned by `ping`. v2 adds the `batch` op
/// (additively — every v1 request and response line is unchanged, so v1
/// clients keep working). Stored payload bytes keep their own `schema`
/// pin ("pckpt-serve/1") untouched: memoized results are byte-stable
/// across the banner bump.
inline constexpr std::string_view kServeVersion = "pckpt-serve/2";

class Server {
 public:
  /// Binds `socket_path` and listens. A non-null `telemetry` enables
  /// runtime telemetry (docs/OBSERVABILITY.md): request spans folded
  /// into latency histograms, the `metrics` op, and slow-query records.
  /// \throws std::system_error.
  Server(std::string socket_path, Planner& planner,
         Telemetry* telemetry = nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Accept loop; blocks until a shutdown request or stop(). Joins all
  /// connection handlers before returning and unlinks the socket file.
  void run();

  /// Request termination from another thread: wakes the accept loop and
  /// nudges open connections closed.
  void stop();

  const std::string& socket_path() const noexcept { return socket_path_; }

 private:
  void handle_connection(int fd);
  /// Process one request line; writes response line(s) to `fd`.
  /// Returns false when the connection should close (shutdown op).
  bool handle_line(std::string_view line, int fd);

  /// Whole seconds since the server was constructed (steady clock).
  std::uint64_t uptime_s() const noexcept;

  std::string socket_path_;
  Planner& planner_;
  Telemetry* telemetry_;
  std::uint64_t start_ns_;  ///< construction time, ProfClock
  std::atomic<std::uint64_t> requests_total_{0};
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::mutex conn_mu_;
  std::set<int> conn_fds_;  // guarded_by(conn_mu_)
  std::vector<std::thread> handlers_;
};

/// Minimal blocking client for the same protocol — used by pckpt_query
/// and the tests.
class Client {
 public:
  /// Connects to `socket_path`. \throws std::system_error.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request line (newline appended).
  void send_line(std::string_view line);

  /// Next response line (without the newline), or nullopt on EOF.
  std::optional<std::string> read_line();

 private:
  int fd_ = -1;
  std::string buf_;
};

}  // namespace pckpt::serve
