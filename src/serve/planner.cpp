#include "serve/planner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>

#include "analysis/analytic_model.hpp"
#include "ckpt/campaign_ckpt.hpp"
#include "analysis/waste_model.hpp"
#include "core/oci.hpp"
#include "core/simulation.hpp"
#include "exec/executor.hpp"
#include "exec/fair_share.hpp"
#include "exec/result_sink.hpp"
#include "serve/telemetry.hpp"

namespace pckpt::serve {

// ---------------------------------------------------------------------
// Admission gate.
// ---------------------------------------------------------------------

void AdmissionGate::acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  if (inflight_ < cfg_.max_inflight) {
    ++inflight_;
    return;
  }
  if (cfg_.wait_ms == 0 || waiting_ >= cfg_.queue_limit) {
    ++rejected_;
    throw ServeError(429, "admission queue full; retry later");
  }
  ++waiting_;
  // A *bounded* wait for a campaign slot. Monotonic time: the deadline
  // only decides when a queued client gets its 429, and steady_clock
  // is immune to the wall clock stepping under the wait.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(cfg_.wait_ms);
  const bool admitted = cv_.wait_until(
      lock, deadline, [this] { return inflight_ < cfg_.max_inflight; });
  --waiting_;
  if (!admitted) {
    ++rejected_;
    throw ServeError(429, "admission wait timed out; retry later");
  }
  ++inflight_;
}

void AdmissionGate::release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
  }
  cv_.notify_one();
}

std::size_t AdmissionGate::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

std::size_t AdmissionGate::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

// ---------------------------------------------------------------------
// Payload rendering.
// ---------------------------------------------------------------------

namespace {

void add_query_fields(exec::JsonlRow& row, const CanonicalQuery& q) {
  row.add("schema", "pckpt-serve/1");
  row.add("mode", q.mode);
  row.add("model", q.model);
  row.add("app", q.app);
  row.add("system", q.system);
  row.add("runs", q.runs);
  row.add("seed", q.seed);
}

}  // namespace

std::string render_exact_payload(const CanonicalQuery& q,
                                 const core::CampaignResult& r) {
  // Metric names match the pckpt_sim --jsonl row schema so the e2e
  // byte-identity test can compare field strings one-to-one (both sides
  // render through JsonlRow's %.12g).
  exec::JsonlRow row;
  add_query_fields(row, q);
  row.add("ckpt_h", r.checkpoint_h());
  row.add("recomp_h", r.recomputation_h());
  row.add("recov_h", r.recovery_h());
  row.add("migr_h", r.migration_h());
  row.add("total_h", r.total_overhead_h());
  row.add("ft_ratio", r.pooled_ft_ratio());
  row.add("failures_per_run", r.failures_per_run());
  row.add("makespan_h", r.makespan_s.mean() / 3600.0);
  return row.str();
}

std::string render_estimate_payload(const CanonicalQuery& q,
                                    const EstimateBreakdown& e) {
  exec::JsonlRow row;
  add_query_fields(row, q);
  row.add("oci_s", e.oci_s);
  row.add("sigma", e.sigma);
  row.add("beta", e.beta);
  row.add("mitigated_fraction", e.mitigated_fraction);
  row.add("ckpt_h", e.checkpoint_h);
  row.add("recomp_h", e.recomputation_h);
  row.add("recov_h", e.recovery_h);
  row.add("total_h", e.total_h);
  row.add("expected_failures", e.expected_failures);
  return row.str();
}

// ---------------------------------------------------------------------
// Tier A: the closed-form estimate.
// ---------------------------------------------------------------------

EstimateBreakdown estimate_query(const Planner::Resolved& r,
                                 const workload::Machine& machine,
                                 const iomodel::StorageModel& storage,
                                 const failure::LeadTimeModel& leads) {
  const workload::Application& app = r.app;
  const double per_node_gb = app.ckpt_per_node_gb();
  const double t_ckpt = storage.bb_write_seconds(per_node_gb);
  const double rate = r.system.job_rate_per_second(app.nodes);

  // sigma (Eq. 2) from the failure-analysis model; beta (Eq. 6) from the
  // alpha the policy configures. beta can go negative for small alpha —
  // clamp into [0, 1] as the paper does implicitly.
  const double theta =
      core::lm_theta_seconds(app, machine, storage, r.cr.lm_transfer_factor);
  const double sigma = core::estimate_sigma(leads, r.cr.predictor, theta,
                                            r.cr.lm_safety_margin);
  const double beta = std::clamp(
      analysis::beta_fraction(r.cr.lm_transfer_factor, sigma), 0.0, 1.0);

  // First-order mitigation fraction per model: B mitigates nothing, the
  // LM-only model avoids the sigma fraction, the proactive-checkpoint
  // models the beta fraction, and the hybrid takes the better of the
  // two per failure.
  double mitigated = 0.0;
  switch (r.cr.kind) {
    case core::ModelKind::kB:
      break;
    case core::ModelKind::kM1:
    case core::ModelKind::kP1:
      mitigated = beta;
      break;
    case core::ModelKind::kM2:
      mitigated = sigma;
      break;
    case core::ModelKind::kP2:
      mitigated = std::max(sigma, beta);
      break;
  }

  // LM-capable models run the sigma-extended interval of Eq. 2; all
  // others use Young's Eq. 1. Both respect the configured floor.
  double oci = core::uses_lm(r.cr.kind)
                   ? core::sigma_extended_oci_seconds(t_ckpt, rate, sigma)
                   : core::young_oci_seconds(t_ckpt, rate);
  oci = std::max(oci, r.cr.min_oci_seconds);

  analysis::WasteInputs in;
  in.compute_s = app.compute_seconds();
  in.t_ckpt_bb_s = t_ckpt;
  in.oci_s = oci;
  in.rate_per_s = rate;
  in.recovery_s = storage.bb_read_seconds(per_node_gb) + r.cr.restart_seconds;
  in.weibull_shape = r.system.weibull_shape;
  const analysis::WasteBreakdown waste = analysis::expected_waste(in);

  EstimateBreakdown e;
  e.oci_s = oci;
  e.sigma = sigma;
  e.beta = beta;
  e.mitigated_fraction = mitigated;
  e.checkpoint_h = waste.checkpoint_s / 3600.0;
  // Mitigated failures restore from state persisted at the prediction
  // instead of the last periodic checkpoint: their recomputation loss is
  // avoided at first order, the recovery/restart cost is not.
  e.recomputation_h = waste.recomputation_s * (1.0 - mitigated) / 3600.0;
  e.recovery_h = waste.recovery_s / 3600.0;
  e.total_h = e.checkpoint_h + e.recomputation_h + e.recovery_h;
  e.expected_failures = waste.expected_failures;
  return e;
}

// ---------------------------------------------------------------------
// Planner.
// ---------------------------------------------------------------------

Planner::Planner(core::Scenario scenario, AdmissionConfig admission,
                 ResultStore& store, std::string checkpoint_dir,
                 exec::FairShareScheduler* scheduler)
    : scenario_(std::move(scenario)),
      storage_(scenario_.machine.make_storage()),
      leads_(failure::LeadTimeModel::summit_default()),
      gate_(admission),
      store_(store),
      checkpoint_dir_(std::move(checkpoint_dir)),
      scheduler_(scheduler) {}

Planner::Resolved Planner::resolve(const QuerySpec& spec) const {
  Resolved r;

  core::ModelKind kind;
  try {
    kind = core::model_from_string(spec.model);
  } catch (const std::exception&) {
    throw ServeError(404, "unknown model '" + spec.model + "'");
  }

  // Scenario applications first (they may shadow the built-in table),
  // then the Summit workload catalog.
  const workload::Application* app = nullptr;
  for (const auto& a : scenario_.applications) {
    if (a.name == spec.app) app = &a;
  }
  if (app == nullptr) {
    try {
      app = &workload::workload_by_name(spec.app);
    } catch (const std::out_of_range&) {
      throw ServeError(404, "unknown application '" + spec.app + "'");
    }
  }
  r.app = *app;

  if (spec.system.empty()) {
    r.system = scenario_.system;
  } else {
    try {
      r.system = failure::system_by_name(spec.system);
    } catch (const std::out_of_range&) {
      throw ServeError(404, "unknown failure system '" + spec.system + "'");
    }
  }

  r.cr = scenario_.cr;
  r.cr.kind = kind;
  if (spec.recall) r.cr.predictor.recall = *spec.recall;
  if (spec.false_positive_rate) {
    r.cr.predictor.false_positive_rate = *spec.false_positive_rate;
  }
  if (spec.lead_scale) r.cr.predictor.lead_scale = *spec.lead_scale;
  if (spec.lead_error_sigma) {
    r.cr.predictor.lead_error_sigma = *spec.lead_error_sigma;
  }
  if (spec.lm_transfer_factor) {
    r.cr.lm_transfer_factor = *spec.lm_transfer_factor;
  }
  if (spec.lm_safety_margin) r.cr.lm_safety_margin = *spec.lm_safety_margin;
  if (spec.lm_runtime_dilation) {
    r.cr.lm_runtime_dilation = *spec.lm_runtime_dilation;
  }
  if (spec.restart_seconds) r.cr.restart_seconds = *spec.restart_seconds;
  if (spec.min_oci_seconds) r.cr.min_oci_seconds = *spec.min_oci_seconds;
  if (spec.node_repair_hours) r.cr.node_repair_hours = *spec.node_repair_hours;
  if (spec.drain_concurrency) {
    r.cr.drain_concurrency = static_cast<int>(*spec.drain_concurrency);
  }
  if (spec.spare_nodes) {
    const double s = *spec.spare_nodes;
    if (s != std::floor(s)) {
      throw ServeError(400, "spare_nodes must be an integer");
    }
    r.cr.spare_nodes = static_cast<int>(s);
  }
  try {
    r.cr.validate();
  } catch (const std::exception& e) {
    throw ServeError(400, e.what());
  }

  // Estimate-tier answers do not depend on the trial count or seed:
  // normalize them to zero so every estimate of the same physics shares
  // one cache entry.
  const bool estimate = spec.mode == "estimate";
  r.canonical = canonicalize(
      spec.mode, core::to_string(kind), estimate ? 0 : spec.runs,
      estimate ? 0 : spec.seed, scenario_.machine, r.app, r.system, r.cr);
  r.key = cache_key(r.canonical);
  return r;
}

Planner::Outcome Planner::answer(const QuerySpec& spec,
                                 const exec::ProgressHook& progress,
                                 obs::RequestSpan* span) {
  using Stage = obs::RequestSpan::Stage;
  using Tier = obs::RequestSpan::Tier;

  obs::RequestSpan::StageTimer resolve_timer(span, Stage::kKeyResolve);
  const Resolved r = resolve(spec);
  resolve_timer.stop();

  Outcome out;
  out.key = r.key;
  out.tier = spec.mode;

  obs::RequestSpan::StageTimer lookup_timer(span, Stage::kStoreLookup);
  auto hit = store_.lookup(r.key);
  lookup_timer.stop();
  if (hit) {
    if (span != nullptr) span->set_tier(Tier::kHit);
    out.payload = std::move(*hit);
    out.cached = true;
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.hits;
    return out;
  }

  if (spec.mode == "estimate") {
    if (span != nullptr) span->set_tier(Tier::kEstimateMiss);
    obs::RequestSpan::StageTimer exec_timer(span, Stage::kCampaignExec);
    const EstimateBreakdown e =
        estimate_query(r, scenario_.machine, storage_, leads_);
    exec_timer.stop();
    {
      obs::RequestSpan::StageTimer render_timer(span, Stage::kRender);
      out.payload = render_estimate_payload(r.canonical, e);
    }
    {
      obs::RequestSpan::StageTimer commit_timer(span, Stage::kCkptCommit);
      store_.put(r.key, out.payload);
    }
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.estimate_misses;
    return out;
  }

  // Tier B: a full DES campaign. Per-key in-flight dedup first: when an
  // identical exact query is already being simulated, this request
  // attaches to it as a follower — the leader's shard completions
  // stream to every follower's progress hook and all of them receive
  // the same payload bytes. Followers register before admission, so N
  // identical concurrent queries consume one admission slot, not N.
  if (span != nullptr) span->set_tier(Tier::kExactMiss);
  std::shared_ptr<Inflight> entry;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto [it, inserted] = inflight_.try_emplace(r.key);
    if (inserted) it->second = std::make_shared<Inflight>();
    entry = it->second;
    leader = inserted;
  }
  if (!leader) {
    obs::RequestSpan::StageTimer wait_timer(span, Stage::kAdmissionWait);
    {
      std::unique_lock<std::mutex> lock(entry->mu);
      if (!entry->done && progress) entry->followers.push_back(progress);
      entry->cv.wait(lock, [&entry] { return entry->done; });
      // The leader's failure (e.g. its 429) is every follower's failure.
      if (entry->error) std::rethrow_exception(entry->error);
      out.payload = entry->payload;
    }
    wait_timer.stop();
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.dedup_hits;
    return out;
  }

  // Leader: publish the outcome — payload or exception — to every
  // follower and retire the in-flight entry. On success the payload is
  // already durably memoized before the entry leaves the map, so a
  // request can never miss both the store and the dedup map.
  auto publish = [this, &entry, &r, &out](std::exception_ptr error) {
    {
      std::lock_guard<std::mutex> lock(entry->mu);
      entry->error = error;
      if (error == nullptr) entry->payload = out.payload;
      entry->done = true;
      entry->followers.clear();
    }
    entry->cv.notify_all();
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(r.key);
  };

  // Fan shard completions out to the requester and every follower that
  // attached while the campaign runs.
  const exec::ProgressHook fan = [&progress,
                                  entry](const exec::ShardProgress& p) {
    if (progress) progress(p);
    std::vector<exec::ProgressHook> followers;
    {
      std::lock_guard<std::mutex> lock(entry->mu);
      followers = entry->followers;
    }
    for (const auto& f : followers) f(p);
  };

  try {
    obs::RequestSpan::StageTimer wait_timer(span, Stage::kAdmissionWait);
    AdmissionTicket ticket(gate_);
    wait_timer.stop();
    core::RunSetup setup;
    setup.app = &r.app;
    setup.machine = &scenario_.machine;
    setup.storage = &storage_;
    setup.system = &r.system;
    setup.leads = &leads_;

    // Admitted campaigns share the daemon-wide fair-share pool when one
    // is configured (shard interleaving round-robin across campaigns);
    // otherwise each runs on a private serial executor. Payload bytes
    // are identical either way — determinism is owned by the shard plan
    // and ascending merge, never by the executor.
    exec::SerialExecutor serial;
    std::optional<exec::CampaignExecutor> shared;
    exec::Executor* ex = &serial;
    if (scheduler_ != nullptr) {
      shared.emplace(*scheduler_);
      ex = &*shared;
    }

    // With checkpointing on, the campaign commits each shard as it goes
    // and resumes a killed daemon's committed prefix. The checkpoint is
    // keyed by the canonical query text, so only the same exact query
    // resumes it; it is discarded once the payload is durably memoized.
    std::optional<ckpt::CampaignCheckpointer> checkpointer;
    if (!checkpoint_dir_.empty()) {
      checkpointer.emplace(checkpoint_dir_, canonical_text(r.canonical),
                           static_cast<std::size_t>(spec.runs),
                           /*resume=*/true);
      if (telemetry_ != nullptr) {
        const auto cs = checkpointer->stats();
        telemetry_->record_recover("ckpt", cs.replayed_journal,
                                   cs.truncated_bytes, cs.committed_prefix,
                                   cs.recover_us);
        if (cs.committed_prefix > 0) {
          telemetry_->log()
              .info("ckpt", "ckpt.resume")
              .add("req", span != nullptr ? span->request_id() : 0)
              .add("key", key_hex(r.key))
              .add("shards_resumed",
                   static_cast<std::uint64_t>(cs.committed_prefix))
              .add("shards_total",
                   static_cast<std::uint64_t>(cs.shards_total));
        }
        Telemetry* telemetry = telemetry_;
        checkpointer->set_commit_hook(
            [telemetry, span](std::size_t shard, std::uint64_t us) {
              telemetry->record_shard_commit(shard, us);
              if (span != nullptr) {
                span->add_ns(Stage::kCkptCommit, us * 1000);
              }
            });
      }
    }
    obs::RequestSpan::StageTimer exec_timer(span, Stage::kCampaignExec);
    const core::CampaignResult result = core::run_campaign(
        setup, r.cr, static_cast<std::size_t>(spec.runs), spec.seed, *ex, fan,
        /*trace=*/nullptr, checkpointer ? &*checkpointer : nullptr);
    exec_timer.stop();
    {
      obs::RequestSpan::StageTimer render_timer(span, Stage::kRender);
      out.payload = render_exact_payload(r.canonical, result);
    }
    {
      obs::RequestSpan::StageTimer commit_timer(span, Stage::kCkptCommit);
      store_.put(r.key, out.payload);
    }
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.exact_misses;
    if (checkpointer) {
      const auto cs = checkpointer->stats();
      counters_.shards_resumed += cs.resumed;
      counters_.shards_executed += cs.committed;
      checkpointer->remove();
      if (telemetry_ != nullptr) {
        telemetry_->log()
            .info("ckpt", "ckpt.done")
            .add("req", span != nullptr ? span->request_id() : 0)
            .add("key", key_hex(r.key))
            .add("shards_resumed", static_cast<std::uint64_t>(cs.resumed))
            .add("shards_executed", static_cast<std::uint64_t>(cs.committed));
      }
    }
  } catch (...) {
    publish(std::current_exception());
    throw;
  }
  publish(nullptr);
  return out;
}

Planner::Counters Planner::counters() const {
  Counters c;
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    c = counters_;
  }
  c.rejected = gate_.rejected();
  c.inflight = gate_.inflight();
  return c;
}

}  // namespace pckpt::serve
