#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file result_store.hpp
/// Crash-safe memoized result store for the campaign service
/// (docs/SERVING.md). The design goal is the classic doublewrite
/// contract: a torn final write must never corrupt records that were
/// already committed, and `put()` returning means the record survives
/// any subsequent crash.
///
/// On-disk layout — two files:
///
///  - `PATH` — the record log: a sequence of framed records, each
///    `[32-byte header][payload bytes]`. Header (all integers
///    little-endian): magic "PCKR", payload length (u32), cache key
///    (u64), FNV-1a/64 of the payload (u64), FNV-1a/64 of the first
///    24 header bytes (u64). Records are append-only; a re-`put` of an
///    existing key appends a superseding record (last one wins on
///    replay), so the log doubles as an audit trail.
///
///  - `PATH.journal` — the doublewrite journal: a 40-byte header
///    (magic "PCKJ", state word, log size before the group, group
///    length, group FNV, header FNV) followed by the exact group bytes
///    about to be appended to the log.
///
/// Commit protocol (group commit — one fsync pair for N records):
///   1. frame the group in memory;
///   2. write header+group to the journal, fsync — *the commit point*;
///   3. append the group to the log at `log_size_before`, fsync;
///   4. truncate the journal to zero, fsync.
/// A crash before (2) completes leaves a torn journal and an untouched
/// log: the group is simply lost, prior records intact. A crash after
/// (2) leaves an armed journal: recovery replays the group into the
/// log (idempotently — it truncates to `log_size_before` first), so
/// the group is durable the moment the journal fsync returns.
///
/// Recovery on open: replay an armed journal if its checksums hold
/// (discard it otherwise — the log was never touched), then scan the
/// log frame by frame and truncate at the first bad frame (torn tail
/// from pre-journal crashes or external truncation). Committed records
/// are never dropped by recovery; the tests inject write faults at
/// randomized byte offsets to prove it (tests/serve/result_store_test).

namespace pckpt::serve {

class ResultStore {
 public:
  struct Stats {
    std::size_t records = 0;        ///< live (deduplicated) keys
    std::size_t log_records = 0;    ///< frames in the log incl. superseded
    std::uint64_t log_bytes = 0;    ///< current log size
    bool replayed_journal = false;  ///< recovery replayed an armed journal
    std::uint64_t truncated_bytes = 0;  ///< torn tail discarded on open
  };

  /// Opens (creating if absent) and recovers the store at `path`.
  /// \throws std::runtime_error on I/O errors.
  explicit ResultStore(std::string path);
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// Payload for `key`, or nullopt. Byte-exact copy of what was put.
  std::optional<std::string> lookup(std::uint64_t key) const;

  /// Durably record `key -> payload`. When this returns, the record
  /// survives any crash. Thread-safe.
  void put(std::uint64_t key, std::string_view payload);

  /// Group commit: all records become durable together with a single
  /// journal-fsync/log-fsync pair. Either the whole group survives a
  /// crash or none of it does.
  void put_group(
      const std::vector<std::pair<std::uint64_t, std::string>>& group);

  Stats stats() const;
  const std::string& path() const noexcept { return path_; }

  /// Test hook: after `bytes` further bytes have been physically
  /// written (across log and journal), the writing process `_exit(42)`s
  /// mid-write, leaving a torn file exactly at that offset. Pass a
  /// negative value to disable (the default). Used by the fork-based
  /// crash-injection tests; never enabled in the daemon.
  static void set_write_fault_budget(long long bytes);

 private:
  void recover();
  void append_group_locked(std::string_view group_bytes);

  std::string path_;
  std::string journal_path_;
  int log_fd_ = -1;
  int journal_fd_ = -1;
  std::uint64_t log_size_ = 0;
  std::size_t log_records_ = 0;
  bool replayed_journal_ = false;
  std::uint64_t truncated_bytes_ = 0;
  // Ordered map: deterministic iteration for stats/debug dumps.
  std::map<std::uint64_t, std::string> index_;
  mutable std::mutex mu_;
};

}  // namespace pckpt::serve
