#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ckpt/durable_log.hpp"

/// \file result_store.hpp
/// Crash-safe memoized result store for the campaign service
/// (docs/SERVING.md): an in-memory key -> payload index on top of the
/// shared `ckpt::DurableLog` (src/ckpt/durable_log.hpp), which owns the
/// doublewrite commit protocol, torn-tail recovery, and the on-disk
/// frame format. The store adds last-wins indexing — a re-`put` of an
/// existing key appends a superseding record, so the log doubles as an
/// audit trail — and `put()` returning still means the record survives
/// any subsequent crash.
///
/// Live/dead accounting rides on the index: `live_records` counts the
/// distinct keys, `dead_bytes` the log bytes held by superseded frames.
/// `compact()` rewrites the log to exactly the live set through the
/// same doublewrite journal (commit point and torn-tail semantics
/// unchanged — see `ckpt::DurableLog::rewrite`); a `CompactionConfig`
/// can trigger the rewrite automatically on open.
///
/// The format is unchanged from the pre-refactor store (PR 6), so
/// existing store files reopen as-is; the campaign checkpointer
/// (src/ckpt/campaign_ckpt.hpp) shares the same machinery and the same
/// crash-injection test harness.

namespace pckpt::serve {

/// On-open compaction policy. Default: never compact automatically —
/// the log stays a full audit trail unless the operator opts in.
struct CompactionConfig {
  /// Rewrite on open when at least this many bytes are dead. 0 disables
  /// on-open compaction.
  std::uint64_t on_open_min_dead_bytes = 0;
};

class ResultStore {
 public:
  struct Stats {
    std::size_t records = 0;        ///< live (deduplicated) keys
    std::size_t log_records = 0;    ///< frames in the log incl. superseded
    std::uint64_t log_bytes = 0;    ///< current log size
    bool replayed_journal = false;  ///< recovery replayed an armed journal
    std::uint64_t truncated_bytes = 0;  ///< torn tail discarded on open
    std::uint64_t recover_us = 0;  ///< DurableLog open-time recovery cost
    std::size_t live_records = 0;  ///< distinct keys (== records)
    std::uint64_t dead_bytes = 0;  ///< log bytes held by superseded frames
    std::size_t compactions = 0;   ///< rewrites since open (incl. on-open)
    std::uint64_t compacted_bytes = 0;  ///< total bytes reclaimed
  };

  /// Opens (creating if absent) and recovers the store at `path`, then
  /// applies the on-open compaction policy (default: none).
  /// \throws std::runtime_error on I/O errors.
  explicit ResultStore(std::string path, CompactionConfig compaction = {});

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// Payload for `key`, or nullopt. Byte-exact copy of what was put.
  std::optional<std::string> lookup(std::uint64_t key) const;

  /// Durably record `key -> payload`. When this returns, the record
  /// survives any crash. Thread-safe.
  void put(std::uint64_t key, std::string_view payload);

  /// Group commit: all records become durable together with a single
  /// journal-fsync/log-fsync pair. Either the whole group survives a
  /// crash or none of it does.
  void put_group(
      const std::vector<std::pair<std::uint64_t, std::string>>& group);

  /// Rewrite the log to exactly the live set (ascending key order),
  /// dropping every superseded frame through the doublewrite journal —
  /// crash-safe at any byte offset, byte-preserving for every live
  /// payload. Returns the log bytes reclaimed (0 when nothing was
  /// dead). Thread-safe; concurrent lookups/puts simply serialize
  /// around the rewrite.
  std::uint64_t compact();

  Stats stats() const;
  const std::string& path() const noexcept { return log_.path(); }

  /// Forwarded to `ckpt::DurableLog::set_commit_hook` — fires after
  /// every durable put with frame count, framed bytes, and commit
  /// microseconds. Set before concurrent puts begin.
  void set_commit_hook(ckpt::DurableLog::CommitHook hook) {
    log_.set_commit_hook(std::move(hook));
  }

  /// Test hook, forwarded to `ckpt::DurableLog::set_write_fault_budget`:
  /// kills the process mid-write once `bytes` further bytes have been
  /// physically written. Negative disables (the default).
  static void set_write_fault_budget(long long bytes);

 private:
  std::uint64_t compact_locked();  // requires(mu_)

  // Ordered map: deterministic iteration for stats/debug dumps and the
  // compaction rewrite order. Declared before log_ — the replay
  // callback fills it while log_ is being constructed.
  std::map<std::uint64_t, std::string> index_;  // guarded_by(mu_)
  std::uint64_t live_bytes_ = 0;  // guarded_by(mu_) framed live-set bytes
  std::size_t compactions_ = 0;        // guarded_by(mu_)
  std::uint64_t compacted_bytes_ = 0;  // guarded_by(mu_)
  ckpt::DurableLog log_;
  mutable std::mutex mu_;
};

}  // namespace pckpt::serve
