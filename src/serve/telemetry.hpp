#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/request_span.hpp"
#include "obs/runtime_log.hpp"
#include "serve/planner.hpp"
#include "serve/result_store.hpp"

/// \file telemetry.hpp
/// Daemon-lifetime telemetry for pckpt_serve (docs/OBSERVABILITY.md,
/// "Runtime telemetry"): one `obs::RuntimeLog` plus one mutex-wrapped
/// `obs::MetricsRegistry` that every handler thread folds finished
/// `obs::RequestSpan`s and commit/recovery timings into. The registry
/// keys:
///
///   req.us.{hit,estimate_miss,exact_miss}  per-tier request latency
///   op.us.{query,ping,stats,metrics,...}   per-op request latency
///   stage.us.{parse,...,render}            per-stage latency
///   store.commit.us / ckpt.commit.us       durable-commit latency
///   recover.us.{store,ckpt}                journal-replay-on-open cost
///
/// all as log-bucketed `LatencyHist`s (p50/p90/p99 per the documented
/// quantile semantics), plus counters (errors_total, slow_total,
/// journal_replays, ...).
///
/// Disabled path: the planner and server hold a `Telemetry*` that may
/// be null and guard every call site with one pointer test — the
/// telemetry-off daemon must stay within the 2% `micro_serve` budget.

namespace pckpt::serve {

class Telemetry {
 public:
  /// `slow_query_ms` = 0 disables slow-query records.
  explicit Telemetry(obs::RuntimeLog& log, std::uint64_t slow_query_ms = 0);

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  obs::RuntimeLog& log() noexcept { return log_; }
  std::uint64_t slow_query_ms() const noexcept { return slow_query_ms_; }

  /// Daemon-unique request id (1-based; 0 means "no request").
  std::uint64_t next_request_id() noexcept {
    return request_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Fold one finished request into the registry; emits a debug
  /// `request.done` record and, past the slow-query threshold, a warn
  /// `request.slow` record with the full stage breakdown.
  void record_request(const obs::RequestSpan& span, std::string_view op,
                      int code);

  /// Result-store durable-commit sample (DurableLog commit hook shape).
  void record_store_commit(std::size_t frames, std::uint64_t bytes,
                           std::uint64_t us);

  /// Campaign-checkpoint per-shard commit sample.
  void record_shard_commit(std::size_t shard, std::uint64_t us);

  /// Journal-replay-on-open outcome for `component` ("store" / "ckpt").
  /// Always emits a `journal.recover` log record — emitted on the clean
  /// path too (replayed=false), so restart telemetry is deterministic.
  void record_recover(std::string_view component, bool replayed,
                      std::uint64_t truncated_bytes, std::uint64_t frames,
                      std::uint64_t us);

  /// Copy of the registry (consistent snapshot under the lock).
  obs::MetricsRegistry snapshot() const;

  /// The complete `{"ev":"metrics",...}` reply line: JSON snapshot
  /// (counters + per-tier/per-op/per-stage quantiles) with the
  /// Prometheus text exposition embedded as the escaped `prom` member.
  std::string render_metrics_line(std::string_view version,
                                  std::uint64_t uptime_s,
                                  std::uint64_t requests_total,
                                  const Planner::Counters& counters,
                                  const ResultStore::Stats& store) const;

 private:
  obs::RuntimeLog& log_;
  std::uint64_t slow_query_ms_;
  std::atomic<std::uint64_t> request_seq_{0};
  mutable std::mutex mu_;
  obs::MetricsRegistry registry_;  // guarded_by(mu_)
};

}  // namespace pckpt::serve
