#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include "exec/result_sink.hpp"
#include "obs/profiler.hpp"
#include "obs/request_span.hpp"
#include "serve/protocol.hpp"
#include "serve/telemetry.hpp"

namespace pckpt::serve {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), "serve: " + what);
}

int make_unix_socket(const std::string& path, sockaddr_un& addr) {
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("serve: socket path empty or longer than " +
                                std::to_string(sizeof(addr.sun_path) - 1) +
                                " bytes: '" + path + "'");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) fail("socket");
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return fd;
}

/// Write the line plus '\n'; returns false once the peer is gone
/// (EPIPE/ECONNRESET) so handlers can stop streaming to dead clients.
bool write_line(int fd, std::string_view line) {
  std::string framed(line);
  framed.push_back('\n');
  const char* p = framed.data();
  std::size_t left = framed.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------
// Server.
// ---------------------------------------------------------------------

Server::Server(std::string socket_path, Planner& planner,
               Telemetry* telemetry)
    : socket_path_(std::move(socket_path)),
      planner_(planner),
      telemetry_(telemetry),
      start_ns_(obs::ProfClock::now_ns()) {
  planner_.set_telemetry(telemetry_);
  sockaddr_un addr;
  listen_fd_ = make_unix_socket(socket_path_, addr);
  // A previous daemon instance that crashed leaves the socket file
  // behind; binding over it needs the unlink. A *live* daemon is not
  // protected against — the store's journal makes concurrent writers
  // the only real hazard, and the tools document one daemon per store.
  ::unlink(socket_path_.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    fail("bind " + socket_path_);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    ::unlink(socket_path_.c_str());
    errno = saved;
    fail("listen " + socket_path_);
  }
}

Server::~Server() {
  stop();
  for (auto& t : handlers_) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(socket_path_.c_str());
}

void Server::stop() {
  if (stopping_.exchange(true)) return;
  // Wake the accept loop and any handler blocked in recv. The fds stay
  // open (owned by their threads); shutdown() just unblocks them.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
}

void Server::run() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (stop()) or fatal
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fds_.insert(fd);
    }
    handlers_.emplace_back([this, fd] { handle_connection(fd); });
  }
  stop();
  for (auto& t : handlers_) {
    if (t.joinable()) t.join();
  }
  handlers_.clear();
}

void Server::handle_connection(int fd) {
  std::string buf;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // client closed
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buf.find('\n', start); nl != std::string::npos;
         nl = buf.find('\n', start)) {
      const std::string_view line(buf.data() + start, nl - start);
      if (!line.empty() && !handle_line(line, fd)) {
        open = false;
        break;
      }
      start = nl + 1;
    }
    buf.erase(0, start);
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(fd);
  }
  ::close(fd);
}

std::uint64_t Server::uptime_s() const noexcept {
  return (obs::ProfClock::now_ns() - start_ns_) / 1000000000ull;
}

bool Server::handle_line(std::string_view line, int fd) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);

  // Telemetry-off daemons never construct a span: the entire disabled
  // path is this one null test plus null StageTimers (no clock reads).
  std::optional<obs::RequestSpan> span_storage;
  obs::RequestSpan* span = nullptr;
  if (telemetry_ != nullptr) {
    span_storage.emplace(telemetry_->next_request_id());
    span = &*span_storage;
  }
  const auto finish = [&](std::string_view op, int code) {
    if (telemetry_ != nullptr) telemetry_->record_request(*span, op, code);
  };

  Request req;
  {
    obs::RequestSpan::StageTimer parse_timer(span,
                                             obs::RequestSpan::Stage::kParse);
    try {
      req = parse_request(line);
    } catch (const ServeError& e) {
      parse_timer.stop();
      finish("?", e.code());
      return write_line(fd, render_error_line(e.code(), e.what()));
    }
  }

  switch (req.op) {
    case Op::kPing:
      finish("ping", 200);
      return write_line(fd, render_pong_line(kServeVersion));
    case Op::kShutdown:
      finish("shutdown", 200);
      write_line(fd, "{\"ev\":\"bye\"}");
      stop();
      return false;
    case Op::kStats: {
      const ResultStore::Stats s = planner_.store().stats();
      const Planner::Counters c = planner_.counters();
      exec::JsonlRow row;
      row.add("ev", "stats");
      row.add("version", kServeVersion);
      row.add("uptime_s", uptime_s());
      row.add("requests_total",
              requests_total_.load(std::memory_order_relaxed));
      row.add("records", static_cast<std::uint64_t>(s.records));
      row.add("log_records", static_cast<std::uint64_t>(s.log_records));
      row.add("log_bytes", s.log_bytes);
      row.add("replayed_journal", s.replayed_journal);
      row.add("truncated_bytes", s.truncated_bytes);
      row.add("live_records", static_cast<std::uint64_t>(s.live_records));
      row.add("dead_bytes", s.dead_bytes);
      row.add("compactions", static_cast<std::uint64_t>(s.compactions));
      row.add("hits", static_cast<std::uint64_t>(c.hits));
      row.add("estimate_misses",
              static_cast<std::uint64_t>(c.estimate_misses));
      row.add("exact_misses", static_cast<std::uint64_t>(c.exact_misses));
      row.add("rejected", static_cast<std::uint64_t>(c.rejected));
      row.add("inflight", static_cast<std::uint64_t>(c.inflight));
      row.add("shards_executed",
              static_cast<std::uint64_t>(c.shards_executed));
      row.add("shards_resumed", static_cast<std::uint64_t>(c.shards_resumed));
      row.add("dedup_hits", static_cast<std::uint64_t>(c.dedup_hits));
      finish("stats", 200);
      return write_line(fd, row.str());
    }
    case Op::kMetrics: {
      if (telemetry_ == nullptr) {
        return write_line(
            fd, render_error_line(503, "telemetry disabled on this daemon"));
      }
      const std::string reply = telemetry_->render_metrics_line(
          kServeVersion, uptime_s(),
          requests_total_.load(std::memory_order_relaxed),
          planner_.counters(), planner_.store().stats());
      finish("metrics", 200);
      return write_line(fd, reply);
    }
    case Op::kQuery:
    case Op::kBatch:
      break;
  }

  if (req.op == Op::kBatch) {
    // One round trip, per-entry status: each query answers (or fails)
    // independently, in request order, then the terminal batch line
    // reports the tally. The shared span folds the whole batch into one
    // request record.
    std::uint64_t ok = 0;
    bool alive = true;
    for (std::size_t i = 0; i < req.batch.size() && alive; ++i) {
      const auto index = static_cast<std::uint64_t>(i);
      try {
        const Planner::Outcome out = planner_.answer(req.batch[i], {}, span);
        alive = write_line(fd, render_entry_line(index, key_hex(out.key),
                                                 out.tier, out.cached,
                                                 out.payload));
        ++ok;
      } catch (const ServeError& e) {
        alive = write_line(fd, render_entry_error_line(index, e.code(),
                                                       e.what()));
      } catch (const std::exception& e) {
        alive = write_line(fd, render_entry_error_line(index, 500, e.what()));
      }
    }
    finish("batch", 200);
    return alive &&
           write_line(fd, render_batch_line(
                              static_cast<std::uint64_t>(req.batch.size()),
                              ok));
  }

  try {
    exec::ProgressHook hook;
    if (req.query.progress) {
      // Pre-resolve just to learn the key for progress lines; answer()
      // re-resolves (cheap) — keeping resolve() const and answer()'s
      // signature simple beats threading the key through.
      const std::uint64_t key = planner_.resolve(req.query).key;
      const std::string hex = key_hex(key);
      hook = [fd, hex](const exec::ShardProgress& p) {
        write_line(fd, render_progress_line(hex, p));
      };
    }
    const Planner::Outcome out = planner_.answer(req.query, hook, span);
    {
      obs::RequestSpan::StageTimer render_timer(
          span, obs::RequestSpan::Stage::kRender);
      const std::string reply = render_result_line(key_hex(out.key), out.tier,
                                                   out.cached, out.payload);
      render_timer.stop();
      finish("query", 200);
      return write_line(fd, reply);
    }
  } catch (const ServeError& e) {
    finish("query", e.code());
    return write_line(fd, render_error_line(e.code(), e.what()));
  } catch (const std::exception& e) {
    finish("query", 500);
    return write_line(fd, render_error_line(500, e.what()));
  }
}

// ---------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------

Client::Client(const std::string& socket_path) {
  sockaddr_un addr;
  fd_ = make_unix_socket(socket_path, addr);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail("connect " + socket_path);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_line(std::string_view line) {
  if (!write_line(fd_, line)) fail("send");
}

std::optional<std::string> Client::read_line() {
  while (true) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("recv");
    }
    if (n == 0) {
      if (buf_.empty()) return std::nullopt;
      std::string line = std::move(buf_);
      buf_.clear();
      return line;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace pckpt::serve
