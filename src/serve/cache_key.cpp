#include "serve/cache_key.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "ckpt/durable_log.hpp"

namespace pckpt::serve {

CanonicalQuery canonicalize(std::string_view mode, std::string_view model,
                            std::uint64_t runs, std::uint64_t seed,
                            const workload::Machine& machine,
                            const workload::Application& app,
                            const failure::FailureSystem& system,
                            const core::CrConfig& cr) {
  CanonicalQuery q;
  q.mode = std::string(mode);
  q.model = std::string(model);
  q.runs = runs;
  q.seed = seed;

  q.machine_nodes = machine.total_nodes;
  q.dram_gb = machine.dram_gb;
  q.interconnect_gbps = machine.interconnect_gbps;
  q.bb_write_gbps = machine.burst_buffer.write_gbps;
  q.bb_read_gbps = machine.burst_buffer.read_gbps;
  q.bb_capacity_gb = machine.burst_buffer.capacity_gb;
  q.pfs_ceiling_gbps = machine.io.pfs_ceiling_gbps;
  q.node_pfs_gbps = machine.io.peak_node_bw_gbps;

  q.app = app.name;
  q.app_nodes = app.nodes;
  q.ckpt_total_gb = app.ckpt_total_gb;
  q.compute_hours = app.compute_hours;

  q.system = system.name;
  q.weibull_shape = system.weibull_shape;
  q.weibull_scale_hours = system.weibull_scale_hours;
  q.system_nodes = system.total_nodes;

  q.recall = cr.predictor.recall;
  q.false_positive_rate = cr.predictor.false_positive_rate;
  q.lead_scale = cr.predictor.lead_scale;
  q.lead_error_sigma = cr.predictor.lead_error_sigma;
  q.lm_transfer_factor = cr.lm_transfer_factor;
  q.lm_safety_margin = cr.lm_safety_margin;
  q.lm_runtime_dilation = cr.lm_runtime_dilation;
  q.restart_seconds = cr.restart_seconds;
  q.min_oci_seconds = cr.min_oci_seconds;
  q.node_repair_hours = cr.node_repair_hours;
  q.drain_concurrency = cr.drain_concurrency;
  q.spare_nodes = cr.spare_nodes;
  return q;
}

std::string canonical_double(std::string_view field, double value) {
  if (!std::isfinite(value)) {
    throw std::invalid_argument("cache key: non-finite value for '" +
                                std::string(field) + "'");
  }
  // %.17g (max_digits10) is the shortest format guaranteed to round-trip
  // every IEEE-754 binary64 — identical bits canonicalize identically on
  // every conforming platform. printf %g never consults the locale for
  // the decimal point on the classic "C" locale these tools run under;
  // the tests pin known renderings to catch any drift.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

namespace {

void emit(std::string& out, std::string_view key, std::string_view value) {
  out.append(key);
  out.push_back('=');
  out.append(value);
  out.push_back('\n');
}

void emit_d(std::string& out, std::string_view key, double value) {
  emit(out, key, canonical_double(key, value));
}

void emit_i(std::string& out, std::string_view key, long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  emit(out, key, buf);
}

void emit_u(std::string& out, std::string_view key, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  emit(out, key, buf);
}

}  // namespace

std::string canonical_text(const CanonicalQuery& q) {
  // Keys in lexicographic order — the order is part of the schema and
  // pinned by the hash tests; a new field must keep the sort and bump
  // kCacheKeySchema.
  std::string out;
  out.reserve(768);
  out.append(kCacheKeySchema);
  out.push_back('\n');
  emit(out, "app", q.app);
  emit_i(out, "app_nodes", q.app_nodes);
  emit_d(out, "bb_capacity_gb", q.bb_capacity_gb);
  emit_d(out, "bb_read_gbps", q.bb_read_gbps);
  emit_d(out, "bb_write_gbps", q.bb_write_gbps);
  emit_d(out, "ckpt_total_gb", q.ckpt_total_gb);
  emit_d(out, "compute_hours", q.compute_hours);
  emit_d(out, "dram_gb", q.dram_gb);
  emit_i(out, "drain_concurrency", q.drain_concurrency);
  emit_d(out, "false_positive_rate", q.false_positive_rate);
  emit_d(out, "interconnect_gbps", q.interconnect_gbps);
  emit_d(out, "lead_error_sigma", q.lead_error_sigma);
  emit_d(out, "lead_scale", q.lead_scale);
  emit_d(out, "lm_runtime_dilation", q.lm_runtime_dilation);
  emit_d(out, "lm_safety_margin", q.lm_safety_margin);
  emit_d(out, "lm_transfer_factor", q.lm_transfer_factor);
  emit_i(out, "machine_nodes", q.machine_nodes);
  emit_d(out, "min_oci_seconds", q.min_oci_seconds);
  emit(out, "mode", q.mode);
  emit(out, "model", q.model);
  emit_d(out, "node_pfs_gbps", q.node_pfs_gbps);
  emit_d(out, "node_repair_hours", q.node_repair_hours);
  emit_d(out, "pfs_ceiling_gbps", q.pfs_ceiling_gbps);
  emit_d(out, "recall", q.recall);
  emit_d(out, "restart_seconds", q.restart_seconds);
  emit_u(out, "runs", q.runs);
  emit_u(out, "seed", q.seed);
  emit_i(out, "spare_nodes", q.spare_nodes);
  emit(out, "system", q.system);
  emit_i(out, "system_nodes", q.system_nodes);
  emit_d(out, "weibull_scale_hours", q.weibull_scale_hours);
  emit_d(out, "weibull_shape", q.weibull_shape);
  return out;
}

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  // One hash for the whole project: frames, cache keys, and checkpoint
  // manifest keys all use the ckpt layer's implementation.
  return ckpt::fnv1a64(bytes);
}

std::uint64_t cache_key(const CanonicalQuery& q) {
  return fnv1a64(canonical_text(q));
}

std::string key_hex(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

}  // namespace pckpt::serve
