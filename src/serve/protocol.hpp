#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "exec/parallel_campaign.hpp"

/// \file protocol.hpp
/// The pckpt_serve wire protocol (docs/SERVING.md): newline-delimited
/// JSON over a unix-domain socket. Every request is one JSON object on
/// one line; the daemon answers with one or more lines, each a JSON
/// object whose `ev` member names its kind:
///
///   {"op":"ping"}                            -> {"ev":"pong",...}
///   {"op":"stats"}                           -> {"ev":"stats",...}
///   {"op":"metrics"}                         -> {"ev":"metrics",...}
///   {"op":"shutdown"}                        -> {"ev":"bye"}
///   {"op":"query","model":"P1","app":...}    -> [{"ev":"progress",...}]*
///                                               {"ev":"result",...}
///   {"op":"batch","queries":[{...},...]}     -> {"ev":"entry","i":0,...}
///                                               ... one per query ...
///                                               {"ev":"batch","n":K,"ok":J}
/// Any failure yields a single {"ev":"error","code":N,"message":...}
/// line; `code` follows HTTP conventions (400 malformed request, 404
/// unknown preset, 429 admission queue full, 500 internal).
///
/// `batch` (pckpt-serve/2) answers many queries in one round trip with
/// partial-failure semantics: a parse error anywhere in the request is
/// a whole-request 400 (nothing runs), while a semantic failure of one
/// entry (unknown preset, admission rejection) yields that entry's
/// `ev:entry` line with its error status and message — the other
/// entries still answer. Successful entries carry `status:200` and the
/// payload object LAST, exactly like a v1 result line; the terminal
/// `ev:batch` line counts entries (`n`) and successes (`ok`). Batch
/// entries do not stream progress.
///
/// Result lines place the memoized payload object LAST:
///   {"ev":"result","key":"<16-hex>","tier":"exact","cached":false,
///    "payload":{...}}
/// so `extract_payload` can recover the payload's exact bytes — the
/// byte-identity contract (cache hit == fresh run == standalone
/// pckpt_sim) is asserted on those raw bytes, not on reparsed values.

namespace pckpt::serve {

/// Error carrying a wire code. Thrown by parse/plan stages; the server
/// renders it as an `ev:error` line instead of tearing down the
/// connection.
class ServeError : public std::runtime_error {
 public:
  ServeError(int code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  int code() const noexcept { return code_; }

 private:
  int code_;
};

/// A parsed `op:query` request. Names are resolved against the
/// catalogs (workload_by_name / system_by_name) by the planner; the
/// optional members override the daemon's scenario CrConfig.
struct QuerySpec {
  std::string mode = "estimate";  ///< "estimate" (tier A) | "exact" (tier B)
  std::string model;              ///< B | M1 | M2 | P1 | P2 (required)
  std::string app;                ///< workload name (required)
  std::string system;             ///< failure system; empty = scenario's
  std::uint64_t runs = 200;       ///< exact-tier trials
  std::uint64_t seed = 2022;
  bool progress = false;          ///< stream ev:progress during exact runs

  // C/R policy overrides (absent = scenario defaults).
  std::optional<double> recall;
  std::optional<double> false_positive_rate;
  std::optional<double> lead_scale;
  std::optional<double> lead_error_sigma;
  std::optional<double> lm_transfer_factor;
  std::optional<double> lm_safety_margin;
  std::optional<double> lm_runtime_dilation;
  std::optional<double> restart_seconds;
  std::optional<double> min_oci_seconds;
  std::optional<double> node_repair_hours;
  std::optional<std::uint64_t> drain_concurrency;
  std::optional<double> spare_nodes;  ///< -1 = unbounded (catalog default)
};

enum class Op { kQuery, kBatch, kPing, kStats, kMetrics, kShutdown };

struct Request {
  Op op = Op::kPing;
  QuerySpec query;                ///< meaningful only when op == kQuery
  std::vector<QuerySpec> batch;   ///< meaningful only when op == kBatch
};

/// Parse one request line. \throws ServeError(400, ...) on malformed
/// JSON, unknown op, unknown member, or a type mismatch — unknown
/// members are rejected (not ignored) so a typoed override can never
/// silently query the default policy.
Request parse_request(std::string_view line);

/// Render one `ev:error` line (no trailing newline).
std::string render_error_line(int code, std::string_view message);

/// Render one `ev:progress` line for a shard completion.
std::string render_progress_line(std::string_view key_hex,
                                 const exec::ShardProgress& p);

std::string render_pong_line(std::string_view version);

/// Render the final `ev:result` line. `payload_json` must be a complete
/// JSON object; it is embedded verbatim as the LAST member.
std::string render_result_line(std::string_view key_hex,
                               std::string_view tier, bool cached,
                               std::string_view payload_json);

/// Render one successful batch `ev:entry` line (status 200, payload
/// LAST — same convention as a result line).
std::string render_entry_line(std::uint64_t index, std::string_view key_hex,
                              std::string_view tier, bool cached,
                              std::string_view payload_json);

/// Render one failed batch `ev:entry` line (per-entry status + message).
std::string render_entry_error_line(std::uint64_t index, int code,
                                    std::string_view message);

/// Render the terminal `ev:batch` line: `n` entries, `ok` successes.
std::string render_batch_line(std::uint64_t n, std::uint64_t ok);

/// Recover the exact payload bytes from a `render_result_line` or
/// successful `render_entry_line` output (anything following the
/// payload-last convention). Returns nullopt if `line` carries no
/// payload.
std::optional<std::string_view> extract_payload(std::string_view line);

}  // namespace pckpt::serve
