#include "lint/project.hpp"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

/// \file project.cpp
/// ProjectContext construction (annotation parsing, include-graph
/// resolution, layer classification) and the project-level rule catalog:
/// `layering`, `guarded-by`, `lock-order`.

namespace pckpt::lint {

namespace {

struct Layer {
  int rank;
  std::string_view name;
};

Layer classify(std::string_view p) {
  const auto starts = [&](std::string_view pre) {
    return p.size() >= pre.size() && p.substr(0, pre.size()) == pre;
  };
  if (starts("src/")) {
    const std::string_view rest = p.substr(4);
    const std::size_t slash = rest.find('/');
    const std::string_view sub =
        slash == std::string_view::npos ? rest : rest.substr(0, slash);
    if (sub == "obs") {
      const std::string_view base =
          slash == std::string_view::npos ? "" : rest.substr(slash + 1);
      if (base == "profiler.hpp" || base == "profiler.cpp") {
        return {0, "prof"};  // the pckpt_prof CMake carve-out
      }
      return {4, "obs"};
    }
    if (sub == "random") return {0, "random"};
    if (sub == "stats") return {0, "stats"};
    if (sub == "exec") return {1, "exec"};
    if (sub == "sim") return {2, "sim"};
    if (sub == "iomodel") return {3, "iomodel"};
    if (sub == "failure") return {3, "failure"};
    if (sub == "workload") return {3, "workload"};
    if (sub == "core") return {5, "core"};
    if (sub == "analysis") return {5, "analysis"};
    if (sub == "ckpt") return {6, "ckpt"};
    if (sub == "serve") return {7, "serve"};
    if (sub == "lint") return {8, "lint"};
    return {-1, ""};
  }
  if (starts("tools/") || starts("bench/") || starts("tests/") ||
      starts("examples/")) {
    return {9, "top"};
  }
  return {-1, ""};
}

/// Parse `// <marker>name[, name...])` annotations out of the lexed
/// comments (the lexer already skips string literals, so prose and
/// strings that merely *mention* the syntax never match). The
/// annotation must start the comment — trailing prose after the `)` is
/// fine. Returns effective-target-line -> names: a comment-only line
/// annotates the next line, a trailing comment its own line.
std::map<int, std::vector<std::string>> parse_annotations(
    const std::vector<Comment>& comments, std::string_view marker) {
  std::map<int, std::vector<std::string>> out;
  for (const Comment& c : comments) {
    std::string_view text = c.text;
    const std::size_t b = text.find_first_not_of("/!< \t");
    if (b == std::string_view::npos) continue;
    text = text.substr(b);
    if (text.substr(0, marker.size()) != marker) continue;
    std::vector<std::string> names;
    std::string cur;
    for (std::size_t at = marker.size();
         at < text.size() && text[at] != ')'; ++at) {
      const char ch = text[at];
      if ((ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
          (ch >= '0' && ch <= '9') || ch == '_') {
        cur.push_back(ch);
      } else if (!cur.empty()) {
        names.push_back(std::move(cur));
        cur.clear();
      }
    }
    if (!cur.empty()) names.push_back(std::move(cur));
    if (names.empty()) continue;
    const int target = c.owns_line ? c.line_end + 1 : c.line_begin;
    auto& dst = out[target];
    dst.insert(dst.end(), names.begin(), names.end());
  }
  return out;
}

bool is_punct_at(const std::vector<Token>& ts, std::size_t i,
                 std::string_view text) {
  return i < ts.size() && ts[i].kind == TokKind::kPunct && ts[i].text == text;
}

std::size_t prev_code_tok(const std::vector<Token>& ts, std::size_t i) {
  while (i-- > 0) {
    if (!ts[i].preproc) return i;
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

int ProjectContext::layer_of(std::string_view path) {
  return classify(path).rank;
}

std::string_view ProjectContext::layer_name(std::string_view path) {
  return classify(path).name;
}

bool ProjectContext::waived(std::string_view path, int line,
                            std::string_view slug) const {
  const auto it = index_.find(path);
  return it != index_.end() && files_[it->second].ctx.waived(line, slug);
}

ProjectContext::ProjectContext(
    const std::vector<std::pair<std::string, std::string>>& files) {
  files_.reserve(files.size());
  for (const auto& [path, source] : files) {
    files_.emplace_back(path, source);
    const std::size_t fi = files_.size() - 1;
    index_.emplace(path, fi);
    ProjectFile& pf = files_.back();
    pf.scopes = analyze_scopes(
        pf.ctx.tokens(), parse_annotations(pf.ctx.comments(), "requires("));
    const auto guarded_map =
        parse_annotations(pf.ctx.comments(), "guarded_by(");

    // Resolve each guarded_by annotation to the field declared on its
    // target line: the last identifier before the first `;`, `=` or `{`.
    const auto& ts = pf.ctx.tokens();
    for (const auto& [line, mutexes] : guarded_map) {
      std::size_t field_tok = static_cast<std::size_t>(-1);
      for (std::size_t i = 0; i < ts.size(); ++i) {
        if (ts[i].preproc || ts[i].line != line) continue;
        if (ts[i].kind == TokKind::kIdent) field_tok = i;
        if (is_punct_at(ts, i, ";") || is_punct_at(ts, i, "=") ||
            is_punct_at(ts, i, "{")) {
          break;
        }
      }
      if (field_tok == static_cast<std::size_t>(-1)) continue;
      GuardedField gf;
      gf.file = fi;
      gf.class_name = pf.scopes.class_of(field_tok);
      gf.field = std::string(ts[field_tok].text);
      gf.mutex = mutexes.front();
      gf.line = line;
      guarded_.push_back(std::move(gf));
    }
  }

  // Include-graph resolution: each file is registered under its path and
  // the path minus a leading src/ or tests/ (the tree's include styles:
  // `sim/types.hpp`, `support/crash_harness.hpp`, `bench/bench_common.hpp`).
  std::map<std::string, std::size_t, std::less<>> by_name;
  for (std::size_t i = 0; i < files_.size(); ++i) {
    const std::string& p = files_[i].ctx.path();
    by_name.emplace(p, i);
    if (p.rfind("src/", 0) == 0) by_name.emplace(p.substr(4), i);
    if (p.rfind("tests/", 0) == 0) by_name.emplace(p.substr(6), i);
  }
  for (std::size_t i = 0; i < files_.size(); ++i) {
    for (const Include& inc : files_[i].ctx.includes()) {
      const auto it = by_name.find(inc.target);
      if (it == by_name.end() || it->second == i) continue;
      edges_.push_back({i, it->second, inc.line});
    }
  }
}

// ---------------------------------------------------------------------------
// Project rules
// ---------------------------------------------------------------------------

namespace {

/// Enforces the committed layering contract over the include graph:
/// lower layers must not include higher layers, and the graph must be
/// acyclic. See project.hpp for the contract table.
class LayeringRule final : public ProjectRule {
 public:
  std::string_view id() const override { return "layering"; }
  std::string_view waiver_slug() const override { return "layering-ok"; }
  std::string_view summary() const override {
    return "include graph must respect the committed layering contract "
           "(no lower->higher includes, no cycles)";
  }
  void check(const ProjectContext& p,
             std::vector<Finding>& out) const override {
    const auto& files = p.files();

    // Cross-layer edges.
    for (const IncludeEdge& e : p.edges()) {
      const std::string& from = files[e.from].ctx.path();
      const std::string& to = files[e.to].ctx.path();
      const int la = ProjectContext::layer_of(from);
      const int lb = ProjectContext::layer_of(to);
      if (la < 0 || lb < 0 || la >= lb) continue;
      std::ostringstream msg;
      msg << "'" << from << "' (layer " << ProjectContext::layer_name(from)
          << ") includes '" << to << "' (layer "
          << ProjectContext::layer_name(to)
          << "): lower layers must not include higher layers";
      out.push_back({std::string(id()), severity(), from, e.line, 1,
                     msg.str()});
    }

    // Include cycles: DFS with gray/black coloring; report each cycle
    // once (canonicalized on its node set) with the full edge path.
    std::vector<std::vector<std::pair<std::size_t, int>>> adj(files.size());
    for (const IncludeEdge& e : p.edges()) {
      adj[e.from].push_back({e.to, e.line});
    }
    std::vector<int> color(files.size(), 0);  // 0 white, 1 gray, 2 black
    std::vector<std::size_t> path;
    std::vector<int> path_line;  // line of the include edge into path[i+1]
    std::set<std::string> reported;

    const std::function<void(std::size_t)> dfs = [&](std::size_t u) {
      color[u] = 1;
      path.push_back(u);
      for (const auto& [v, line] : adj[u]) {
        if (color[v] == 2) continue;
        if (color[v] == 1) {
          // Back edge: the cycle is path[pos(v)..end] + (u -> v).
          const auto it = std::find(path.begin(), path.end(), v);
          std::vector<std::size_t> cyc(it, path.end());
          std::vector<std::size_t> key = cyc;
          std::sort(key.begin(), key.end());
          std::ostringstream keys;
          for (std::size_t n : key) keys << n << ',';
          if (!reported.insert(keys.str()).second) continue;
          std::ostringstream msg;
          msg << "include cycle: ";
          for (std::size_t n : cyc) msg << files[n].ctx.path() << " -> ";
          msg << files[v].ctx.path();
          const std::size_t pos =
              static_cast<std::size_t>(it - path.begin());
          const int at_line =
              cyc.size() > 1 ? path_line[pos] : line;  // self-include
          out.push_back({std::string(id()), severity(),
                         files[cyc.front()].ctx.path(), at_line, 1,
                         msg.str()});
          continue;
        }
        path_line.push_back(line);
        dfs(v);
        path_line.pop_back();
      }
      path.pop_back();
      color[u] = 2;
    };
    for (std::size_t i = 0; i < files.size(); ++i) {
      if (color[i] == 0) dfs(i);
    }
  }
};

/// Fields annotated `// guarded_by(mu)` may only be touched inside a
/// scope holding a lock on `mu` (or in a function annotated
/// `// requires(mu)`, or in constructors/destructors, where the object
/// is not yet / no longer shared).
class GuardedByRule final : public ProjectRule {
 public:
  std::string_view id() const override { return "guarded-by"; }
  std::string_view waiver_slug() const override { return "guarded-by-ok"; }
  std::string_view summary() const override {
    return "fields annotated // guarded_by(mu) must only be accessed "
           "while holding a lock on mu";
  }
  void check(const ProjectContext& p,
             std::vector<Finding>& out) const override {
    // Registry: class -> field -> guarding mutex (cross-TU: the header
    // declares, the .cpp's out-of-line methods are checked too).
    std::map<std::string, std::map<std::string, std::string, std::less<>>,
             std::less<>>
        registry;
    for (const GuardedField& g : p.guarded_fields()) {
      if (g.class_name.empty()) continue;
      registry[g.class_name][g.field] = g.mutex;
    }
    if (registry.empty()) return;

    for (const ProjectFile& f : p.files()) {
      const auto& ts = f.ctx.tokens();
      for (std::size_t i = 0; i < ts.size(); ++i) {
        if (ts[i].preproc || ts[i].kind != TokKind::kIdent) continue;
        const std::string& cls = f.scopes.class_of(i);
        if (cls.empty()) continue;
        const auto cit = registry.find(cls);
        if (cit == registry.end()) continue;
        const auto fit = cit->second.find(ts[i].text);
        if (fit == cit->second.end()) continue;

        const std::size_t fn = f.scopes.func_of(i);
        if (fn == kNoFunc) continue;  // declaration / initializer list
        if (f.scopes.funcs()[fn].ctor_dtor) continue;

        // Only unqualified and this-> accesses name *this* object's
        // field; `other.field_` is out of scope for this checker.
        const std::size_t pv = prev_code_tok(ts, i);
        if (pv != static_cast<std::size_t>(-1)) {
          if (is_punct_at(ts, pv, "::")) continue;
          if (is_punct_at(ts, pv, ".") || is_punct_at(ts, pv, "->")) {
            const std::size_t pv2 = prev_code_tok(ts, pv);
            const bool via_this = pv2 != static_cast<std::size_t>(-1) &&
                                  ts[pv2].kind == TokKind::kIdent &&
                                  ts[pv2].text == "this";
            if (!via_this) continue;
          }
        }
        if (f.scopes.holds(i, fit->second)) continue;
        std::ostringstream msg;
        msg << "field '" << ts[i].text << "' is guarded_by(" << fit->second
            << ") but accessed without holding '" << fit->second << "' (in "
            << f.scopes.funcs()[fn].name << ")";
        out.push_back({std::string(id()), severity(), f.ctx.path(),
                       ts[i].line, ts[i].col, msg.str()});
      }
    }
  }
};

/// Cross-TU lock-order checking: every acquisition that happens while
/// other locks are held contributes ordered pairs; a cycle in the
/// resulting graph is a potential deadlock.
class LockOrderRule final : public ProjectRule {
 public:
  std::string_view id() const override { return "lock-order"; }
  std::string_view waiver_slug() const override { return "lock-order-ok"; }
  std::string_view summary() const override {
    return "nested lock acquisitions must form a consistent global "
           "order (cycles are potential deadlocks)";
  }
  void check(const ProjectContext& p,
             std::vector<Finding>& out) const override {
    struct Site {
      std::string path;
      int line;
      int col;
      std::string func;
    };
    std::map<std::pair<std::string, std::string>, Site> edges;
    for (const ProjectFile& f : p.files()) {
      for (const LockInterval& l : f.scopes.locks()) {
        const std::string key = lock_order_key(l, f.scopes.funcs());
        for (const std::string& held : l.held_before) {
          if (held == key) continue;
          const auto e = std::make_pair(held, key);
          if (edges.count(e) != 0) continue;
          const std::string fname =
              l.func == kNoFunc ? "" : f.scopes.funcs()[l.func].name;
          edges.emplace(e, Site{f.ctx.path(), l.line, l.col, fname});
        }
      }
    }
    if (edges.empty()) return;

    std::map<std::string, std::vector<std::string>, std::less<>> adj;
    for (const auto& [e, site] : edges) adj[e.first].push_back(e.second);

    std::map<std::string, int, std::less<>> color;
    std::vector<std::string> path;
    std::set<std::string> reported;
    const std::function<void(const std::string&)> dfs =
        [&](const std::string& u) {
          color[u] = 1;
          path.push_back(u);
          const auto it = adj.find(u);
          if (it != adj.end()) {
            for (const std::string& v : it->second) {
              if (color[v] == 2) continue;
              if (color[v] == 1) {
                const auto at = std::find(path.begin(), path.end(), v);
                std::vector<std::string> cyc(at, path.end());
                std::vector<std::string> key = cyc;
                std::sort(key.begin(), key.end());
                std::string keys;
                for (const auto& k : key) keys += k + "|";
                if (!reported.insert(keys).second) continue;
                report_cycle(cyc, edges, out);
                continue;
              }
              dfs(v);
            }
          }
          path.pop_back();
          color[u] = 2;
        };
    for (const auto& [e, site] : edges) {
      if (color[e.first] == 0) dfs(e.first);
    }
  }

 private:
  template <typename Edges>
  void report_cycle(const std::vector<std::string>& cyc, const Edges& edges,
                    std::vector<Finding>& out) const {
    std::ostringstream order;
    for (const std::string& n : cyc) order << n << " -> ";
    order << cyc.front();
    // One finding per acquisition site participating in the cycle, so
    // each site can be reviewed (or waived) independently.
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      const std::string& a = cyc[i];
      const std::string& b = cyc[(i + 1) % cyc.size()];
      const auto it = edges.find(std::make_pair(a, b));
      if (it == edges.end()) continue;
      const auto& site = it->second;
      std::ostringstream msg;
      msg << "lock-order cycle: " << order.str() << ": '" << b
          << "' acquired while holding '" << a << "'";
      if (!site.func.empty()) msg << " (in " << site.func << ")";
      out.push_back({std::string(id()), severity(), site.path, site.line,
                     site.col, msg.str()});
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<ProjectRule>> make_default_project_rules() {
  std::vector<std::unique_ptr<ProjectRule>> rules;
  rules.push_back(std::make_unique<LayeringRule>());
  rules.push_back(std::make_unique<GuardedByRule>());
  rules.push_back(std::make_unique<LockOrderRule>());
  return rules;
}

}  // namespace pckpt::lint
