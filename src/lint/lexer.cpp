#include "lint/token.hpp"

#include <cctype>
#include <string>

namespace pckpt::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Cursor over the source buffer tracking line/column.
class Cursor {
 public:
  explicit Cursor(std::string_view s) : s_(s) {}

  bool eof() const { return i_ >= s_.size(); }
  char peek(std::size_t ahead = 0) const {
    return i_ + ahead < s_.size() ? s_[i_ + ahead] : '\0';
  }
  std::size_t pos() const { return i_; }
  int line() const { return line_; }
  int col() const { return col_; }

  void advance() {
    if (s_[i_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++i_;
  }
  void advance(std::size_t n) {
    while (n-- > 0 && !eof()) advance();
  }

  std::string_view slice(std::size_t from) const {
    return s_.substr(from, i_ - from);
  }

 private:
  std::string_view s_;
  std::size_t i_ = 0;
  int line_ = 1;
  int col_ = 1;
};

/// Longest-first operator table so `::`/`->`/`+=`/`<<=` lex as one token.
constexpr std::string_view kOps3[] = {"<<=", ">>=", "...", "->*"};
constexpr std::string_view kOps2[] = {"::", "->", "++", "--", "+=", "-=",
                                      "*=", "/=", "%=", "&=", "|=", "^=",
                                      "==", "!=", "<=", ">=", "&&", "||",
                                      "<<", ">>"};

}  // namespace

LexResult lex(std::string_view source) {
  LexResult out;
  Cursor c(source);
  bool in_preproc = false;     // inside a directive, until unescaped newline
  bool line_has_code = false;  // any token seen on the current line yet

  while (!c.eof()) {
    const char ch = c.peek();

    if (ch == '\n') {
      in_preproc = false;
      line_has_code = false;
      c.advance();
      continue;
    }
    if (ch == '\\' && c.peek(1) == '\n') {  // line continuation
      c.advance(2);
      continue;
    }
    if (ch == ' ' || ch == '\t' || ch == '\r' || ch == '\v' || ch == '\f') {
      c.advance();
      continue;
    }

    // Comments.
    if (ch == '/' && c.peek(1) == '/') {
      const int line = c.line();
      const bool owns = !line_has_code;
      c.advance(2);
      const std::size_t from = c.pos();
      while (!c.eof() && c.peek() != '\n') c.advance();
      out.comments.push_back({line, line, owns, c.slice(from)});
      continue;
    }
    if (ch == '/' && c.peek(1) == '*') {
      const int line = c.line();
      const bool owns = !line_has_code;
      c.advance(2);
      const std::size_t from = c.pos();
      std::size_t to = from;
      while (!c.eof()) {
        if (c.peek() == '*' && c.peek(1) == '/') {
          to = c.pos();
          c.advance(2);
          break;
        }
        to = c.pos() + 1;
        c.advance();
      }
      out.comments.push_back({line, c.line(), owns,
                              source.substr(from, to - from)});
      continue;
    }

    const int line = c.line();
    const int col = c.col();
    const std::size_t from = c.pos();
    line_has_code = true;

    // Preprocessor directive start: `#` as first token on the line.
    if (ch == '#' && !in_preproc) {
      in_preproc = true;
      c.advance();
      out.tokens.push_back({TokKind::kPunct, true, line, col, c.slice(from)});
      continue;
    }

    // Raw string literal R"delim( ... )delim".
    if (ch == 'R' && c.peek(1) == '"') {
      c.advance(2);
      std::string delim;
      while (!c.eof() && c.peek() != '(' && delim.size() < 16) {
        delim.push_back(c.peek());
        c.advance();
      }
      if (!c.eof()) c.advance();  // '('
      const std::string close = ")" + delim + "\"";
      while (!c.eof()) {
        if (c.peek() == close[0] &&
            source.substr(c.pos(), close.size()) == close) {
          c.advance(close.size());
          break;
        }
        c.advance();
      }
      out.tokens.push_back(
          {TokKind::kString, in_preproc, line, col, c.slice(from)});
      continue;
    }

    // String / char literals (with escape handling).
    if (ch == '"' || ch == '\'') {
      const char quote = ch;
      c.advance();
      while (!c.eof() && c.peek() != '\n') {
        if (c.peek() == '\\') {
          c.advance(2);
          continue;
        }
        if (c.peek() == quote) {
          c.advance();
          break;
        }
        c.advance();
      }
      out.tokens.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                            in_preproc, line, col, c.slice(from)});
      continue;
    }

    // Identifiers / keywords. A string prefix like u8"..." lexes as an
    // identifier followed by a string, which is fine for rule matching.
    if (ident_start(ch)) {
      while (!c.eof() && ident_char(c.peek())) c.advance();
      out.tokens.push_back(
          {TokKind::kIdent, in_preproc, line, col, c.slice(from)});
      continue;
    }

    // pp-numbers: digits, idents, quotes-as-separators, exponent signs.
    if (digit(ch) || (ch == '.' && digit(c.peek(1)))) {
      while (!c.eof()) {
        const char n = c.peek();
        if (ident_char(n) || n == '.' || n == '\'') {
          c.advance();
          continue;
        }
        if (n == '+' || n == '-') {
          const char prev = source[c.pos() - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            c.advance();
            continue;
          }
        }
        break;
      }
      out.tokens.push_back(
          {TokKind::kNumber, in_preproc, line, col, c.slice(from)});
      continue;
    }

    // Punctuation, maximal munch.
    std::size_t n = 1;
    const std::string_view rest = source.substr(c.pos());
    for (std::string_view op : kOps3) {
      if (rest.substr(0, 3) == op) {
        n = 3;
        break;
      }
    }
    if (n == 1) {
      for (std::string_view op : kOps2) {
        if (rest.substr(0, 2) == op) {
          n = 2;
          break;
        }
      }
    }
    c.advance(n);
    out.tokens.push_back(
        {TokKind::kPunct, in_preproc, line, col, c.slice(from)});
  }

  return out;
}

}  // namespace pckpt::lint
