#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "lint/project.hpp"

/// \file engine.cpp
/// FileContext construction (waiver map, include list), the engine
/// driver, and the CLI runner behind tools/pckpt_lint.

namespace pckpt::lint {

namespace fs = std::filesystem;

std::string_view to_string(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

std::string format_finding(const Finding& f) {
  std::ostringstream os;
  os << f.path << ':' << f.line << ':' << f.col << ": " << to_string(f.severity)
     << ": [" << f.rule << "] " << f.message;
  return os.str();
}

namespace {

/// Parse waiver slugs out of a comment body: everything after a
/// `lint:` marker, comma/space-separated, [a-z0-9-]+.
std::vector<std::string> parse_waiver_slugs(std::string_view text) {
  std::vector<std::string> slugs;
  const std::size_t at = text.find("lint:");
  if (at == std::string_view::npos) return slugs;
  std::string_view rest = text.substr(at + 5);
  std::string cur;
  for (char c : rest) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-') {
      cur.push_back(c);
    } else if (!cur.empty()) {
      slugs.push_back(std::move(cur));
      cur.clear();
      if (c != ',' && c != ' ' && c != '\t') break;  // prose resumed
    }
  }
  if (!cur.empty()) slugs.push_back(std::move(cur));
  return slugs;
}

/// Parse `#include <x>` / `#include "x"` targets line by line (the
/// token stream splits `<vector>` into three tokens; raw-line parsing
/// is simpler and exact for this).
std::vector<Include> parse_includes(std::string_view source) {
  std::vector<Include> out;
  std::size_t pos = 0;
  int ln = 0;
  while (pos < source.size()) {
    ++ln;
    std::size_t eol = source.find('\n', pos);
    if (eol == std::string_view::npos) eol = source.size();
    std::string_view line = source.substr(pos, eol - pos);
    pos = eol + 1;
    std::size_t i = line.find_first_not_of(" \t");
    if (i == std::string_view::npos || line[i] != '#') continue;
    i = line.find_first_not_of(" \t", i + 1);
    if (i == std::string_view::npos || line.substr(i, 7) != "include") continue;
    i = line.find_first_not_of(" \t", i + 7);
    if (i == std::string_view::npos) continue;
    const char open = line[i];
    const char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
    if (close == '\0') continue;
    const std::size_t end = line.find(close, i + 1);
    if (end == std::string_view::npos) continue;
    out.push_back({std::string(line.substr(i + 1, end - i - 1)), ln});
  }
  return out;
}

}  // namespace

FileContext::FileContext(std::string path, std::string_view source)
    : path_(std::move(path)),
      lex_(lex(source)),
      includes_(parse_includes(source)) {
  for (const Comment& c : lex_.comments) {
    const auto slugs = parse_waiver_slugs(c.text);
    if (slugs.empty()) continue;
    waiver_slug_count_ += slugs.size();
    for (const auto& slug : slugs) {
      for (int line = c.line_begin; line <= c.line_end; ++line) {
        waivers_[line].insert(slug);
      }
      // A comment that owns its line(s) also covers the next line of
      // code below it.
      if (c.owns_line) waivers_[c.line_end + 1].insert(slug);
    }
  }
}

bool FileContext::is_header() const {
  return path_.size() >= 2 && (path_.ends_with(".hpp") || path_.ends_with(".h"));
}

bool FileContext::in_dir(std::string_view dir) const {
  return path_.find(dir) != std::string::npos;
}

bool FileContext::is_kernel_file() const {
  if (!in_dir("src/sim/")) return false;
  const std::size_t slash = path_.find_last_of('/');
  const std::string_view base =
      slash == std::string::npos
          ? std::string_view(path_)
          : std::string_view(path_).substr(slash + 1);
  for (std::string_view k :
       {"callback.hpp", "event.hpp", "event.cpp", "event_heap.hpp",
        "event_pool.hpp", "environment.hpp", "environment.cpp"}) {
    if (base == k) return true;
  }
  return false;
}

bool FileContext::waived(int line, std::string_view slug) const {
  const auto it = waivers_.find(line);
  return it != waivers_.end() && it->second.count(slug) != 0;
}

LintEngine::LintEngine()
    : rules_(make_default_rules()),
      project_rules_(make_default_project_rules()) {}

bool LintEngine::restrict_rules(const std::vector<std::string>& ids) {
  if (ids.empty()) return true;
  std::vector<std::unique_ptr<Rule>> kept;
  std::vector<std::unique_ptr<ProjectRule>> kept_project;
  for (auto& rule : rules_) {
    if (std::find(ids.begin(), ids.end(), rule->id()) != ids.end()) {
      kept.push_back(std::move(rule));
    }
  }
  for (auto& rule : project_rules_) {
    if (std::find(ids.begin(), ids.end(), rule->id()) != ids.end()) {
      kept_project.push_back(std::move(rule));
    }
  }
  if (kept.size() + kept_project.size() != ids.size()) return false;
  rules_ = std::move(kept);
  project_rules_ = std::move(kept_project);
  return true;
}

bool LintEngine::disable_rules(const std::vector<std::string>& ids) {
  for (const std::string& id : ids) {
    bool known = false;
    for (const auto& rule : rules_) known = known || rule->id() == id;
    for (const auto& rule : project_rules_) known = known || rule->id() == id;
    if (!known) return false;
  }
  const auto drop = [&ids](const auto& rule) {
    return std::find(ids.begin(), ids.end(), rule->id()) != ids.end();
  };
  rules_.erase(std::remove_if(rules_.begin(), rules_.end(), drop),
               rules_.end());
  project_rules_.erase(
      std::remove_if(project_rules_.begin(), project_rules_.end(), drop),
      project_rules_.end());
  return true;
}

std::vector<Finding> LintEngine::lint_project(
    const std::vector<std::pair<std::string, std::string>>& files,
    LintStats* stats) {
  std::vector<Finding> raw;
  if (project_rules_.empty() || files.empty()) return raw;
  ProjectContext project(files);
  for (const auto& rule : project_rules_) {
    const std::size_t before = raw.size();
    rule->check(project, raw);
    std::size_t kept = before;
    for (std::size_t i = before; i < raw.size(); ++i) {
      if (project.waived(raw[i].path, raw[i].line, rule->waiver_slug())) {
        if (stats != nullptr) ++stats->waived;
      } else {
        if (kept != i) raw[kept] = std::move(raw[i]);
        ++kept;
      }
    }
    raw.resize(kept);
  }
  std::sort(raw.begin(), raw.end(), [](const Finding& a, const Finding& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    if (a.col != b.col) return a.col < b.col;
    return a.rule < b.rule;
  });
  if (stats != nullptr) {
    for (const Finding& f : raw) {
      if (f.severity == Severity::kError) ++stats->errors;
      else ++stats->warnings;
    }
  }
  return raw;
}

std::vector<Finding> LintEngine::lint_source(std::string path,
                                             std::string_view source,
                                             LintStats* stats) {
  FileContext ctx(std::move(path), source);
  std::vector<Finding> raw;
  for (const auto& rule : rules_) {
    const std::size_t before = raw.size();
    rule->check(ctx, raw);
    // Drop waived findings, counting them.
    std::size_t kept = before;
    for (std::size_t i = before; i < raw.size(); ++i) {
      if (ctx.waived(raw[i].line, rule->waiver_slug())) {
        if (stats != nullptr) ++stats->waived;
      } else {
        if (kept != i) raw[kept] = std::move(raw[i]);
        ++kept;
      }
    }
    raw.resize(kept);
  }
  std::sort(raw.begin(), raw.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    if (a.col != b.col) return a.col < b.col;
    return a.rule < b.rule;
  });
  if (stats != nullptr) {
    ++stats->files;
    for (const Finding& f : raw) {
      if (f.severity == Severity::kError) ++stats->errors;
      else ++stats->warnings;
    }
  }
  return raw;
}

namespace {

bool lintable_file(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp";
}

bool skip_dir(const fs::path& p) {
  const auto name = p.filename().string();
  return name == ".git" || name.rfind("build", 0) == 0 ||
         name == "fixtures";  // lint fixtures violate rules on purpose
}

/// Path relative to root when under it, '/'-separated, else generic.
std::string display_path(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  if (!ec && !rel.empty() && rel.native()[0] != '.') {
    return rel.generic_string();
  }
  return p.generic_string();
}

/// Minimal JSON string escape (kept local: lint has no deps on the
/// rest of the tree — it sits above everything it checks).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// `pckpt-lint/1` machine-readable report.
void write_json(std::ostream& out, const std::vector<Finding>& findings,
                const LintStats& stats, long long elapsed_ms) {
  out << "{\"schema\":\"pckpt-lint/1\",\"files\":" << stats.files
      << ",\"errors\":" << stats.errors << ",\"warnings\":" << stats.warnings
      << ",\"waived\":" << stats.waived << ",\"elapsed_ms\":" << elapsed_ms
      << ",\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) out << ',';
    out << "{\"rule\":\"" << json_escape(f.rule) << "\",\"severity\":\""
        << to_string(f.severity) << "\",\"path\":\"" << json_escape(f.path)
        << "\",\"line\":" << f.line << ",\"col\":" << f.col
        << ",\"message\":\"" << json_escape(f.message) << "\"}";
  }
  out << "]}\n";
}

/// SARIF 2.1.0 log (the minimal subset GitHub code scanning ingests:
/// driver name + rule metadata, results with physical locations).
void write_sarif(std::ostream& out, const LintEngine& engine,
                 const std::vector<Finding>& findings) {
  out << "{\"$schema\":"
         "\"https://json.schemastore.org/sarif-2.1.0.json\","
         "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
         "\"name\":\"pckpt-lint\",\"rules\":[";
  bool first = true;
  const auto emit_rule = [&](std::string_view id, std::string_view summary) {
    if (!first) out << ',';
    first = false;
    out << "{\"id\":\"" << json_escape(id)
        << "\",\"shortDescription\":{\"text\":\"" << json_escape(summary)
        << "\"}}";
  };
  for (const auto& rule : engine.rules()) {
    emit_rule(rule->id(), rule->summary());
  }
  for (const auto& rule : engine.project_rules()) {
    emit_rule(rule->id(), rule->summary());
  }
  out << "]}},\"results\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) out << ',';
    out << "{\"ruleId\":\"" << json_escape(f.rule) << "\",\"level\":\""
        << to_string(f.severity) << "\",\"message\":{\"text\":\""
        << json_escape(f.message)
        << "\"},\"locations\":[{\"physicalLocation\":{"
           "\"artifactLocation\":{\"uri\":\""
        << json_escape(f.path) << "\"},\"region\":{\"startLine\":" << f.line
        << ",\"startColumn\":" << f.col << "}}}]}";
  }
  out << "]}]}\n";
}

}  // namespace

int run_pckpt_lint(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err) {
  const auto t0 = std::chrono::steady_clock::now();
  fs::path root = fs::current_path();
  std::vector<std::string> rule_ids;
  std::vector<std::string> no_rule_ids;
  std::vector<std::string> paths;
  bool list_rules = false;
  enum class Format { kText, kJson, kSarif };
  Format format = Format::kText;

  for (const std::string& a : args) {
    if (a == "--list-rules") {
      list_rules = true;
    } else if (a.rfind("--root=", 0) == 0) {
      root = fs::path(a.substr(7));
    } else if (a.rfind("--rule=", 0) == 0) {
      rule_ids.push_back(a.substr(7));
    } else if (a.rfind("--no-rule=", 0) == 0) {
      no_rule_ids.push_back(a.substr(10));
    } else if (a.rfind("--format=", 0) == 0) {
      const std::string f = a.substr(9);
      if (f == "text") format = Format::kText;
      else if (f == "json") format = Format::kJson;
      else if (f == "sarif") format = Format::kSarif;
      else {
        err << "pckpt_lint: unknown format '" << f
            << "' (text, json, sarif)\n";
        return 2;
      }
    } else if (a == "--help" || a == "-h") {
      out << "usage: pckpt_lint [--root=DIR] [--rule=ID]... [--no-rule=ID]..."
             " [--format=text|json|sarif] [--list-rules] PATH...\n";
      return 0;
    } else if (a.rfind("--", 0) == 0) {
      err << "pckpt_lint: unknown option '" << a << "'\n";
      return 2;
    } else {
      paths.push_back(a);
    }
  }

  LintEngine engine;
  if (!engine.restrict_rules(rule_ids)) {
    err << "pckpt_lint: unknown rule id in --rule= (see --list-rules)\n";
    return 2;
  }
  if (!engine.disable_rules(no_rule_ids)) {
    err << "pckpt_lint: unknown rule id in --no-rule= (see --list-rules)\n";
    return 2;
  }

  if (list_rules) {
    for (const auto& rule : engine.rules()) {
      out << rule->id() << " (waive: // lint: " << rule->waiver_slug()
          << ")\n    " << rule->summary() << "\n";
    }
    for (const auto& rule : engine.project_rules()) {
      out << rule->id() << " (project-wide; waive: // lint: "
          << rule->waiver_slug() << ")\n    " << rule->summary() << "\n";
    }
    if (paths.empty()) return 0;
  }

  if (paths.empty()) {
    err << "pckpt_lint: no paths given (try: pckpt_lint src tools bench)\n";
    return 2;
  }

  // Collect files: each PATH is a file or a directory to recurse.
  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    fs::path abs = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    std::error_code ec;
    if (fs::is_directory(abs, ec)) {
      for (fs::recursive_directory_iterator it(abs, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_directory() && skip_dir(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && lintable_file(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(abs, ec)) {
      files.push_back(abs);
    } else {
      err << "pckpt_lint: no such file or directory: " << p << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Read everything up front: the project pass needs the whole tree,
  // and the per-file pass reuses the same buffers.
  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(files.size());
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      err << "pckpt_lint: cannot read " << file.generic_string() << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    sources.emplace_back(display_path(file, root), buf.str());
  }

  LintStats stats;
  std::vector<Finding> findings;
  for (const auto& [path, source] : sources) {
    auto file_findings = engine.lint_source(path, source, &stats);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  auto project_findings = engine.lint_project(sources, &stats);
  findings.insert(findings.end(),
                  std::make_move_iterator(project_findings.begin()),
                  std::make_move_iterator(project_findings.end()));
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              return a.rule < b.rule;
            });

  bool failed = false;
  for (const Finding& f : findings) {
    failed = failed || f.severity == Severity::kError;
  }
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();

  switch (format) {
    case Format::kText:
      for (const Finding& f : findings) err << format_finding(f) << "\n";
      out << "pckpt-lint: " << stats.files << " files, " << stats.errors
          << " errors, " << stats.warnings << " warnings, " << stats.waived
          << " waived (" << elapsed_ms << " ms)\n";
      break;
    case Format::kJson:
      write_json(out, findings, stats, elapsed_ms);
      break;
    case Format::kSarif:
      write_sarif(out, engine, findings);
      break;
  }
  return failed ? 1 : 0;
}

}  // namespace pckpt::lint
