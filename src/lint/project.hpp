#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/lint.hpp"
#include "lint/scope.hpp"

/// \file project.hpp
/// Whole-tree analysis for pckpt-lint: a ProjectContext built once over
/// every file in the run, powering project-level rules that no single
/// FileContext can check — the include-graph layering contract and the
/// lock-discipline family (guarded_by fields, cross-TU lock order).
///
/// ## The layering contract
///
/// The committed contract mirrors the tested CMake link DAG (each
/// subsystem may include its own layer and anything below, never above):
///
///   0 prof      src/obs/profiler.{hpp,cpp} (the pckpt_prof carve-out),
///               src/random/, src/stats/
///   1 exec      src/exec/   (dependency-free thread pool / scheduler)
///   2 sim       src/sim/
///   3 models    src/iomodel/, src/failure/, src/workload/
///   4 obs       src/obs/    (trace sinks, metrics, runtime log)
///   5 core      src/core/, src/analysis/
///   6 ckpt      src/ckpt/
///   7 serve     src/serve/
///   8 lint      src/lint/
///   9 top       tools/, bench/, tests/, examples/
///
/// This deliberately differs from the issue's shorthand chain in two
/// places, both forced by code that exists and is tested: `core` links
/// `obs` and `exec` as PUBLIC deps (so obs/exec sit *below* core), and
/// `src/obs/profiler.*` is already carved out as the dependency-free
/// `pckpt_prof` library that sim/iomodel/failure include — the file-level
/// override mirrors that CMake reality. docs/STATIC_ANALYSIS.md records
/// the contract and the rationale.

namespace pckpt::lint {

/// A field declaration annotated `// guarded_by(mu)`.
struct GuardedField {
  std::size_t file = 0;    ///< index into ProjectContext::files()
  std::string class_name;  ///< innermost class of the declaration
  std::string field;       ///< field identifier, e.g. "campaigns_"
  std::string mutex;       ///< bare mutex name, e.g. "mu_"
  int line = 0;            ///< declaration line
};

/// One resolved `#include` edge between two project files.
struct IncludeEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  int line = 0;  ///< line of the #include directive in `from`
};

/// One file of the project pass: the per-file context plus its scope
/// analysis (functions, classes, lock intervals). The scope pass runs
/// after construction so `// requires(mu)` annotations can be parsed
/// out of the lexed comments first.
struct ProjectFile {
  FileContext ctx;
  ScopeAnalysis scopes;

  ProjectFile(std::string path, std::string_view source)
      : ctx(std::move(path), source) {}
};

/// Everything a project rule may inspect: all files, the resolved
/// include graph, and the guarded-field registry.
class ProjectContext {
 public:
  /// Build from (repo-relative path, source) pairs — the CLI reads the
  /// tree, tests pass fixture bodies under virtual paths.
  explicit ProjectContext(
      const std::vector<std::pair<std::string, std::string>>& files);

  const std::vector<ProjectFile>& files() const { return files_; }
  const std::vector<IncludeEdge>& edges() const { return edges_; }
  const std::vector<GuardedField>& guarded_fields() const { return guarded_; }

  /// Layer rank of a repo-relative path per the committed contract, or
  /// -1 for paths outside it (external headers, unknown dirs).
  static int layer_of(std::string_view path);

  /// Human-readable layer name ("sim", "serve", "top", ...) or "".
  static std::string_view layer_name(std::string_view path);

  /// Waiver lookup by path (delegates to the file's `// lint:` map).
  bool waived(std::string_view path, int line, std::string_view slug) const;

 private:
  std::vector<ProjectFile> files_;
  std::vector<IncludeEdge> edges_;
  std::vector<GuardedField> guarded_;
  std::map<std::string, std::size_t, std::less<>> index_;  // path -> file
};

}  // namespace pckpt::lint
