#include "lint/scope.hpp"

#include <algorithm>
#include <initializer_list>
#include <unordered_map>

/// \file scope.cpp
/// The scope pass: a single forward walk over the token stream keeping a
/// stack of open brace scopes (namespace / class / function / block),
/// classifying each `{` from the statement head that precedes it, and
/// tracking RAII lock-guard lifetimes inside function bodies.

namespace pckpt::lint {

namespace {

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}
bool ident_in(const Token& t, std::initializer_list<std::string_view> set) {
  if (t.kind != TokKind::kIdent) return false;
  return std::find(set.begin(), set.end(), t.text) != set.end();
}

constexpr std::size_t npos = static_cast<std::size_t>(-1);

enum class ScopeKind { kGlobal, kNamespace, kClass, kFunction, kBlock };

struct Scope {
  ScopeKind kind;
  std::size_t class_idx;          ///< class_names_ index, npos outside classes
  std::size_t func;               ///< funcs_ index, kNoFunc outside functions
  std::vector<std::size_t> open_locks;  ///< LockInterval indices to close
  std::vector<std::pair<std::string, std::vector<std::string>>>
      guards;  ///< guard var -> mutex exprs declared in this scope
};

/// Skip a balanced `<...>` template argument list (token-level; `>>`
/// counts as two closers). Returns index past the closing `>`.
std::size_t skip_template_args(const std::vector<Token>& ts, std::size_t i) {
  if (i >= ts.size() || !is_punct(ts[i], "<")) return i;
  int depth = 0;
  for (; i < ts.size(); ++i) {
    if (is_punct(ts[i], "<")) ++depth;
    else if (is_punct(ts[i], ">")) --depth;
    else if (is_punct(ts[i], ">>")) depth -= 2;
    if (depth <= 0) return i + 1;
  }
  return i;
}

}  // namespace

const std::string& ScopeAnalysis::class_of(std::size_t tok) const {
  static const std::string kEmpty;
  if (tok >= class_of_.size() || class_of_[tok] == npos) return kEmpty;
  return class_names_[class_of_[tok]];
}

bool ScopeAnalysis::holds(std::size_t tok, std::string_view bare) const {
  for (const LockInterval& l : locks_) {
    if (l.bare == bare && tok >= l.begin_tok && tok < l.end_tok) return true;
  }
  const std::size_t f = func_of(tok);
  if (f != kNoFunc) {
    const auto& req = funcs_[f].required;
    if (std::find(req.begin(), req.end(), bare) != req.end()) return true;
  }
  return false;
}

std::string lock_order_key(const LockInterval& lock,
                           const std::vector<FuncScope>& funcs) {
  const bool member_chain =
      lock.expr.find("->") != std::string::npos ||
      lock.expr.find('.') != std::string::npos;
  if (member_chain) return lock.expr;
  if (lock.func != kNoFunc && !funcs[lock.func].class_name.empty()) {
    return funcs[lock.func].class_name + "::" + lock.expr;
  }
  return lock.expr;
}

ScopeAnalysis analyze_scopes(
    const std::vector<Token>& ts,
    const std::map<int, std::vector<std::string>>& requires_by_line) {
  ScopeAnalysis out;
  out.func_of_.assign(ts.size(), kNoFunc);
  out.class_of_.assign(ts.size(), npos);

  std::vector<Scope> stack;
  stack.push_back({ScopeKind::kGlobal, npos, kNoFunc, {}, {}});

  std::unordered_map<std::string, std::size_t> class_idx_by_name;
  const auto intern_class = [&](const std::string& name) -> std::size_t {
    auto it = class_idx_by_name.find(name);
    if (it != class_idx_by_name.end()) return it->second;
    out.class_names_.push_back(name);
    const std::size_t idx = out.class_names_.size() - 1;
    class_idx_by_name.emplace(name, idx);
    return idx;
  };

  std::size_t head_start = 0;        // first token of the current statement
  std::vector<std::size_t> parens;   // open-paren token indices
  std::unordered_map<std::size_t, std::size_t> paren_match;  // close -> open

  const auto mark = [&](std::size_t i) {
    out.func_of_[i] = stack.back().func;
    out.class_of_[i] = stack.back().class_idx;
  };

  /// Skip an inert balanced `{...}` region (brace-init, array init),
  /// marking its tokens with the current scope. Returns index past `}`.
  const auto skip_inert_braces = [&](std::size_t i) -> std::size_t {
    int depth = 0;
    for (; i < ts.size(); ++i) {
      mark(i);
      if (ts[i].preproc) continue;
      if (is_punct(ts[i], "{")) ++depth;
      else if (is_punct(ts[i], "}")) {
        if (--depth == 0) return i + 1;
      }
    }
    return i;
  };

  /// Index of the previous non-preprocessor token before `i`, or npos.
  const auto prev_tok = [&](std::size_t i) -> std::size_t {
    while (i-- > 0) {
      if (!ts[i].preproc) return i;
    }
    return npos;
  };

  /// True when the `{` at `i` opens a lambda body: preceded by `]`, or
  /// by a parameter list / qualifier run whose `(` follows `]`.
  const auto is_lambda_brace = [&](std::size_t i) -> bool {
    std::size_t j = prev_tok(i);
    // Walk back over trailing-return / qualifier tokens.
    int guard = 0;
    while (j != npos && guard++ < 16 &&
           (ts[j].kind == TokKind::kIdent || is_punct(ts[j], "::") ||
            is_punct(ts[j], "->") || is_punct(ts[j], "*") ||
            is_punct(ts[j], "&") || is_punct(ts[j], ">") ||
            is_punct(ts[j], ">>") || is_punct(ts[j], "<"))) {
      j = prev_tok(j);
    }
    if (j == npos) return false;
    if (is_punct(ts[j], "]")) return true;
    if (is_punct(ts[j], ")")) {
      const auto it = paren_match.find(j);
      if (it == paren_match.end()) return false;
      const std::size_t before_open = prev_tok(it->second);
      return before_open != npos && is_punct(ts[before_open], "]");
    }
    return false;
  };

  /// Record a new lock interval for each mutex expression, held from
  /// `from_tok` until the enclosing scope closes (or .unlock()).
  const auto open_intervals = [&](const std::vector<std::string>& exprs,
                                  int line, int col, std::size_t from_tok) {
    std::vector<std::string> held;
    for (const LockInterval& l : out.locks_) {
      if (l.end_tok == npos) held.push_back(lock_order_key(l, out.funcs_));
    }
    for (const std::string& expr : exprs) {
      LockInterval li;
      li.expr = expr;
      const std::size_t cut = expr.find_last_of(">.:");
      li.bare = cut == std::string::npos ? expr : expr.substr(cut + 1);
      li.line = line;
      li.col = col;
      li.func = stack.back().func;
      li.begin_tok = from_tok;
      li.end_tok = npos;  // open
      li.held_before = held;
      out.locks_.push_back(li);
      stack.back().open_locks.push_back(out.locks_.size() - 1);
    }
  };

  for (std::size_t i = 0; i < ts.size(); ++i) {
    mark(i);
    const Token& t = ts[i];
    if (t.preproc) continue;

    if (is_punct(t, "(")) {
      parens.push_back(i);
      continue;
    }
    if (is_punct(t, ")")) {
      if (!parens.empty()) {
        paren_match.emplace(i, parens.back());
        parens.pop_back();
      }
      continue;
    }
    if (is_punct(t, ";")) {
      if (parens.empty()) head_start = i + 1;
      continue;
    }

    // ---- RAII lock guards --------------------------------------------
    if (ident_in(t, {"lock_guard", "scoped_lock", "unique_lock",
                     "shared_lock"})) {
      const std::size_t p = prev_tok(i);
      if (p != npos && (is_punct(ts[p], ".") || is_punct(ts[p], "->"))) {
        continue;  // member named like a guard type
      }
      std::size_t j = skip_template_args(ts, i + 1);
      if (j < ts.size() && ts[j].kind == TokKind::kIdent &&
          j + 1 < ts.size() && is_punct(ts[j + 1], "(")) {
        const std::string guard_var(ts[j].text);
        // Parse the constructor arguments.
        std::size_t k = j + 1;
        int depth = 0;
        std::vector<std::vector<std::size_t>> args(1);
        std::size_t close = npos;
        for (; k < ts.size(); ++k) {
          if (ts[k].preproc) continue;
          if (is_punct(ts[k], "(")) {
            if (depth++ > 0) args.back().push_back(k);
            continue;
          }
          if (is_punct(ts[k], ")")) {
            if (--depth == 0) {
              close = k;
              break;
            }
            args.back().push_back(k);
            continue;
          }
          if (depth == 1 && is_punct(ts[k], ",")) {
            args.emplace_back();
            continue;
          }
          args.back().push_back(k);
        }
        bool deferred = false;
        std::vector<std::string> exprs;
        for (const auto& arg : args) {
          if (arg.empty()) continue;
          std::string expr;
          std::string_view last_ident;
          for (std::size_t ai : arg) {
            expr += ts[ai].text;
            if (ts[ai].kind == TokKind::kIdent) last_ident = ts[ai].text;
          }
          if (last_ident == "defer_lock") {
            deferred = true;
            continue;
          }
          if (last_ident == "try_to_lock" || last_ident == "adopt_lock" ||
              last_ident.empty()) {
            continue;
          }
          exprs.push_back(expr);
        }
        if (!exprs.empty() && close != npos) {
          for (std::size_t m = i; m <= close && m < ts.size(); ++m) mark(m);
          if (!deferred) {
            open_intervals(exprs, t.line, t.col, close + 1);
          }
          stack.back().guards.emplace_back(guard_var, exprs);
          i = close;  // resume after the declaration
          continue;
        }
      }
    }

    // ---- guard.unlock() / guard.lock() -------------------------------
    if (t.kind == TokKind::kIdent && i + 3 < ts.size() &&
        is_punct(ts[i + 1], ".") &&
        (is_ident(ts[i + 2], "unlock") || is_ident(ts[i + 2], "lock")) &&
        is_punct(ts[i + 3], "(")) {
      const std::vector<std::string>* exprs = nullptr;
      for (auto it = stack.rbegin(); it != stack.rend() && !exprs; ++it) {
        for (const auto& g : it->guards) {
          if (g.first == t.text) {
            exprs = &g.second;
            break;
          }
        }
      }
      if (exprs != nullptr) {
        if (is_ident(ts[i + 2], "unlock")) {
          for (LockInterval& l : out.locks_) {
            if (l.end_tok != npos) continue;
            if (std::find(exprs->begin(), exprs->end(), l.expr) !=
                exprs->end()) {
              l.end_tok = i;
            }
          }
        } else {
          open_intervals(*exprs, t.line, t.col, i + 4);
        }
      }
    }

    // ---- brace classification ----------------------------------------
    if (is_punct(t, "{")) {
      const std::size_t p = prev_tok(i);
      const ScopeKind ctx = stack.back().kind;
      const bool in_func =
          ctx == ScopeKind::kFunction || ctx == ScopeKind::kBlock;

      // Lambda bodies inherit the lexical scope (locks included).
      if (is_lambda_brace(i)) {
        stack.push_back({ScopeKind::kBlock, stack.back().class_idx,
                         stack.back().func, {}, {}});
        head_start = i + 1;
        continue;
      }
      // Braces inside an unclosed paren are aggregate literals.
      if (!parens.empty()) {
        i = skip_inert_braces(i) - 1;
        continue;
      }

      // Inspect the statement head [head_start, i).
      bool head_namespace = false, head_class = false, head_paren = false,
           head_init_list = false, head_control = false;
      std::string_view first_ident;
      std::size_t first_tok = npos;
      bool seen_paren_close = false;
      int pd = 0;
      int td = 0;  // template-angle depth, approximate
      for (std::size_t h = head_start; h < i; ++h) {
        const Token& ht = ts[h];
        if (ht.preproc) continue;
        if (first_tok == npos) first_tok = h;
        if (ht.kind == TokKind::kIdent && first_ident.empty()) {
          first_ident = ht.text;
        }
        if (is_punct(ht, "(")) {
          ++pd;
          head_paren = true;
        } else if (is_punct(ht, ")")) {
          --pd;
          if (pd == 0) seen_paren_close = true;
        } else if (is_punct(ht, "<")) {
          ++td;
        } else if (is_punct(ht, ">")) {
          --td;
        } else if (pd == 0 && td <= 0 && ht.kind == TokKind::kIdent) {
          if (ht.text == "namespace") head_namespace = true;
          if (ht.text == "class" || ht.text == "struct" ||
              ht.text == "union" || ht.text == "enum") {
            if (!head_paren) head_class = true;
          }
        } else if (pd == 0 && is_punct(ht, ":") && seen_paren_close) {
          head_init_list = true;
        }
      }
      if (first_ident == "if" || first_ident == "for" ||
          first_ident == "while" || first_ident == "switch" ||
          first_ident == "do" || first_ident == "else" ||
          first_ident == "try" || first_ident == "catch") {
        head_control = true;
      }

      if (head_namespace) {
        stack.push_back({ScopeKind::kNamespace, stack.back().class_idx,
                         kNoFunc, {}, {}});
        head_start = i + 1;
        continue;
      }
      if (head_class) {
        // Class name: first identifier after the class keyword.
        std::string name;
        for (std::size_t h = head_start; h < i; ++h) {
          if (ts[h].preproc) continue;
          if (ident_in(ts[h], {"class", "struct", "union", "enum"})) {
            for (std::size_t n = h + 1; n < i; ++n) {
              if (ts[n].preproc) continue;
              if (ident_in(ts[n], {"class", "struct", "final", "alignas"}))
                continue;
              if (ts[n].kind == TokKind::kIdent) {
                name = std::string(ts[n].text);
              }
              break;
            }
            break;
          }
        }
        stack.push_back({ScopeKind::kClass,
                         name.empty() ? stack.back().class_idx
                                      : intern_class(name),
                         kNoFunc, {}, {}});
        head_start = i + 1;
        continue;
      }

      const bool function_context_block =
          in_func &&
          (head_control || first_tok == npos ||
           (p != npos && (is_punct(ts[p], ")") || is_punct(ts[p], ":"))));
      const bool inert =
          p != npos &&
          (is_punct(ts[p], "=") || is_punct(ts[p], ",") ||
           is_ident(ts[p], "return") ||
           (in_func && !function_context_block &&
            (ts[p].kind == TokKind::kIdent || is_punct(ts[p], ">"))) ||
           (!in_func && head_init_list &&
            (ts[p].kind == TokKind::kIdent || is_punct(ts[p], ">"))) ||
           (!in_func && !head_paren && ts[p].kind == TokKind::kIdent));
      if (inert && !head_control) {
        i = skip_inert_braces(i) - 1;
        continue;
      }

      if (!in_func && head_paren && !head_control) {
        // Function body at namespace/class scope: extract the name from
        // the identifier chain before the first top-level `(`.
        std::size_t sig_open = npos;
        int d = 0;
        for (std::size_t h = head_start; h < i; ++h) {
          if (ts[h].preproc) continue;
          if (is_punct(ts[h], "(")) {
            if (d == 0) {
              sig_open = h;
              break;
            }
            ++d;
          }
        }
        std::string fname;
        std::string qual_class;
        if (sig_open != npos) {
          std::vector<std::string> parts;  // reversed ident chain
          std::size_t j = prev_tok(sig_open);
          std::string cur;
          int guard = 0;
          while (j != npos && guard++ < 32) {
            if (ts[j].kind == TokKind::kIdent) {
              if (ts[j].text == "operator") {
                cur = "operator" + cur;
                break;
              }
              cur = std::string(ts[j].text) + cur;
              const std::size_t q = prev_tok(j);
              if (q != npos && is_punct(ts[q], "~")) {
                cur = "~" + cur;
                j = prev_tok(q);
              } else {
                j = q;
              }
              if (j != npos && is_punct(ts[j], "::")) {
                parts.push_back(cur);
                cur.clear();
                j = prev_tok(j);
                // Skip template args of a qualifier, e.g. Foo<T>::bar.
                continue;
              }
              break;
            }
            if (is_punct(ts[j], "=") || is_punct(ts[j], "==") ||
                is_punct(ts[j], "!=") || is_punct(ts[j], "<") ||
                is_punct(ts[j], ">") || is_punct(ts[j], "[") ||
                is_punct(ts[j], "]") || is_punct(ts[j], "(") ||
                is_punct(ts[j], ")") || is_punct(ts[j], "*") ||
                is_punct(ts[j], "&")) {
              // operator symbol run, keep walking to find `operator`.
              cur = std::string(ts[j].text) + cur;
              j = prev_tok(j);
              continue;
            }
            break;
          }
          if (!cur.empty() && parts.empty()) {
            fname = cur;
          } else if (!parts.empty()) {
            fname = parts.front();  // innermost name (chain built reversed)
            // parts holds [name]; qualifiers ended up in `cur`.
            if (!cur.empty()) qual_class = cur;
          }
          if (fname.empty()) fname = cur;
        }
        std::string class_name = qual_class;
        if (class_name.empty() && stack.back().kind == ScopeKind::kClass &&
            stack.back().class_idx != npos) {
          class_name = out.class_names_[stack.back().class_idx];
        }
        std::string bare = fname;
        const bool dtor = !bare.empty() && bare[0] == '~';
        if (dtor) bare = bare.substr(1);

        FuncScope f;
        f.name = class_name.empty() ? fname : class_name + "::" + fname;
        f.class_name = class_name;
        f.ctor_dtor = dtor || (!class_name.empty() && bare == class_name);
        f.line = t.line;
        f.body_begin = i;
        f.body_end = ts.size();
        // Attach `// requires(mu)` annotations covering the signature.
        const int head_line =
            first_tok != npos ? ts[first_tok].line : t.line;
        for (int ln = head_line; ln <= t.line; ++ln) {
          const auto it = requires_by_line.find(ln);
          if (it == requires_by_line.end()) continue;
          for (const auto& mu : it->second) f.required.push_back(mu);
        }
        out.funcs_.push_back(std::move(f));
        const std::size_t func_idx = out.funcs_.size() - 1;
        stack.push_back({ScopeKind::kFunction,
                         class_name.empty() ? stack.back().class_idx
                                            : intern_class(class_name),
                         func_idx, {}, {}});
        head_start = i + 1;
        continue;
      }

      // Everything else: plain block (control flow, bare scope block).
      stack.push_back({ScopeKind::kBlock, stack.back().class_idx,
                       stack.back().func, {}, {}});
      head_start = i + 1;
      continue;
    }

    if (is_punct(t, "}")) {
      if (stack.size() > 1) {
        for (std::size_t li : stack.back().open_locks) {
          if (out.locks_[li].end_tok == npos) out.locks_[li].end_tok = i;
        }
        if (stack.back().kind == ScopeKind::kFunction &&
            stack.back().func != kNoFunc) {
          out.funcs_[stack.back().func].body_end = i + 1;
        }
        stack.pop_back();
      }
      head_start = i + 1;
      continue;
    }
  }

  // Close anything left open (unterminated input).
  for (LockInterval& l : out.locks_) {
    if (l.end_tok == npos) l.end_tok = ts.size();
  }
  return out;
}

}  // namespace pckpt::lint
