#include <algorithm>
#include <initializer_list>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lint/lint.hpp"

/// \file rules.cpp
/// The built-in pckpt-lint rule catalog. Token-level heuristics, tuned
/// so the real tree lints clean (docs/STATIC_ANALYSIS.md documents each
/// rule's rationale, scope, and waiver slug).

namespace pckpt::lint {

namespace {

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}
bool ident_in(const Token& t, std::initializer_list<std::string_view> set) {
  if (t.kind != TokKind::kIdent) return false;
  return std::find(set.begin(), set.end(), t.text) != set.end();
}

/// True when tokens[i] is written as a member access (`x.f`, `x->f`).
bool member_access(const std::vector<Token>& ts, std::size_t i) {
  return i > 0 && (is_punct(ts[i - 1], ".") || is_punct(ts[i - 1], "->"));
}

/// True when tokens[i] is qualified as `std::tokens[i]`.
bool std_qualified(const std::vector<Token>& ts, std::size_t i) {
  return i >= 2 && is_punct(ts[i - 1], "::") && is_ident(ts[i - 2], "std");
}

Finding make_finding(const Rule& rule, const FileContext& ctx,
                     const Token& at, std::string message) {
  return Finding{std::string(rule.id()), rule.severity(), ctx.path(),
                 at.line, at.col, std::move(message)};
}

/// Skip a balanced template argument list starting at `<`; returns the
/// index just past the matching `>`. Token-level: treats `>>` as two
/// closers, which is correct for type contexts.
std::size_t skip_template_args(const std::vector<Token>& ts, std::size_t i) {
  if (i >= ts.size() || !is_punct(ts[i], "<")) return i;
  int depth = 0;
  for (; i < ts.size(); ++i) {
    if (is_punct(ts[i], "<")) ++depth;
    else if (is_punct(ts[i], ">")) --depth;
    else if (is_punct(ts[i], ">>")) depth -= 2;
    if (depth <= 0) return i + 1;
  }
  return i;
}

/// Names of variables declared in this file with a type named in `types`
/// (`std::unordered_map<K, V> name`, `double name = 0;`, ...).
std::set<std::string, std::less<>> declared_names(
    const FileContext& ctx, std::initializer_list<std::string_view> types) {
  std::set<std::string, std::less<>> names;
  const auto& ts = ctx.tokens();
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i].preproc || !ident_in(ts[i], types)) continue;
    if (member_access(ts, i)) continue;
    std::size_t j = skip_template_args(ts, i + 1);
    while (j < ts.size() &&
           (is_punct(ts[j], "*") || is_punct(ts[j], "&") ||
            is_ident(ts[j], "const")))
      ++j;
    if (j < ts.size() && ts[j].kind == TokKind::kIdent) {
      names.insert(std::string(ts[j].text));
    }
  }
  return names;
}

// ---------------------------------------------------------------------
// Determinism rules.
// ---------------------------------------------------------------------

/// determinism/wall-clock: real-time sources make runs irreproducible —
/// a trace byte that depends on the host clock breaks the golden-trace
/// contract. steady_clock is allowed (monotonic, used only for
/// profiling/benchmarks, never feeds simulation state).
class WallClockRule final : public Rule {
 public:
  std::string_view id() const override { return "wall-clock"; }
  std::string_view waiver_slug() const override { return "wall-clock-ok"; }
  std::string_view summary() const override {
    return "ban wall-clock/real-time sources (system_clock, gettimeofday, "
           "time(), localtime, ...)";
  }
  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    const auto& ts = ctx.tokens();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ident_in(ts[i], {"system_clock", "high_resolution_clock",
                           "gettimeofday", "timespec_get", "localtime",
                           "gmtime", "strftime", "CLOCK_REALTIME"})) {
        out.push_back(make_finding(
            *this, ctx, ts[i],
            std::string("wall-clock source '") + std::string(ts[i].text) +
                "' is nondeterministic; use simulation time or "
                "steady_clock (waive: // lint: wall-clock-ok)"));
        continue;
      }
      // `time(...)` / `std::time(...)` the C library call, not members
      // or declarations named `time`.
      if (is_ident(ts[i], "time") && i + 1 < ts.size() &&
          is_punct(ts[i + 1], "(") && !member_access(ts, i) &&
          (i == 0 || ts[i - 1].kind != TokKind::kIdent)) {
        out.push_back(make_finding(
            *this, ctx, ts[i],
            "C time() reads the wall clock; simulations must be "
            "reproducible (waive: // lint: wall-clock-ok)"));
      }
    }
  }
};

/// determinism/raw-rng: all randomness flows through src/random/
/// (xoshiro256** + explicit seed derivation). std engines differ across
/// platforms and rand()/random_device are unseedable/nondeterministic.
class RawRngRule final : public Rule {
 public:
  std::string_view id() const override { return "raw-rng"; }
  std::string_view waiver_slug() const override { return "raw-rng-ok"; }
  std::string_view summary() const override {
    return "ban rand()/random_device/std engines outside src/random/";
  }
  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    if (ctx.in_dir("src/random/")) return;
    const auto& ts = ctx.tokens();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      const bool engine =
          ident_in(ts[i], {"random_device", "default_random_engine",
                           "mt19937", "mt19937_64", "minstd_rand",
                           "minstd_rand0", "ranlux24", "ranlux48", "knuth_b"});
      const bool c_call = ident_in(ts[i], {"rand", "srand"}) &&
                          i + 1 < ts.size() && is_punct(ts[i + 1], "(") &&
                          !member_access(ts, i);
      if (!engine && !c_call) continue;
      out.push_back(make_finding(
          *this, ctx, ts[i],
          std::string("raw RNG '") + std::string(ts[i].text) +
              "': seedable, platform-stable randomness lives in "
              "src/random/ (waive: // lint: raw-rng-ok)"));
    }
  }
};

/// determinism/unordered-iter: iteration order of unordered containers
/// is implementation- and seed-dependent; anything trace-visible in the
/// kernel/model/observability trees must not be produced by it. Lookups
/// (`find`, `count`, `erase(key)`) stay fine.
class UnorderedIterRule final : public Rule {
 public:
  std::string_view id() const override { return "unordered-iter"; }
  std::string_view waiver_slug() const override { return "unordered-iter-ok"; }
  std::string_view summary() const override {
    return "ban iterating unordered containers in "
           "src/sim|core|obs|serve|ckpt";
  }
  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    // src/serve/ and src/ckpt/ are in scope because their payloads are
    // persisted byte-for-byte: any iteration-order wobble would poison
    // the store — or the resume path — forever.
    if (!ctx.in_dir("src/sim/") && !ctx.in_dir("src/core/") &&
        !ctx.in_dir("src/obs/") && !ctx.in_dir("src/serve/") &&
        !ctx.in_dir("src/ckpt/"))
      return;
    const auto names =
        declared_names(ctx, {"unordered_map", "unordered_set",
                             "unordered_multimap", "unordered_multiset"});
    const auto& ts = ctx.tokens();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      // `for (decl : expr)` where expr mentions an unordered variable.
      if (is_ident(ts[i], "for") && i + 1 < ts.size() &&
          is_punct(ts[i + 1], "(")) {
        int depth = 0;
        std::size_t colon = 0, close = 0;
        for (std::size_t j = i + 1; j < ts.size(); ++j) {
          if (is_punct(ts[j], "(")) ++depth;
          else if (is_punct(ts[j], ")")) {
            if (--depth == 0) {
              close = j;
              break;
            }
          } else if (depth == 1 && is_punct(ts[j], ":")) {
            colon = j;
          }
        }
        if (colon != 0 && close != 0) {
          for (std::size_t j = colon + 1; j < close; ++j) {
            if (ts[j].kind == TokKind::kIdent &&
                (names.count(ts[j].text) != 0 ||
                 ts[j].text.find("unordered_") == 0)) {
              out.push_back(make_finding(
                  *this, ctx, ts[i],
                  std::string("range-for over unordered container '") +
                      std::string(ts[j].text) +
                      "': iteration order is not deterministic (waive: "
                      "// lint: unordered-iter-ok)"));
              break;
            }
          }
        }
      }
      // `name.begin()` / `name->cbegin()` on an unordered variable.
      if (ts[i].kind == TokKind::kIdent && names.count(ts[i].text) != 0 &&
          i + 3 < ts.size() &&
          (is_punct(ts[i + 1], ".") || is_punct(ts[i + 1], "->")) &&
          ident_in(ts[i + 2], {"begin", "cbegin", "rbegin", "crbegin"}) &&
          is_punct(ts[i + 3], "(")) {
        out.push_back(make_finding(
            *this, ctx, ts[i],
            std::string("iterator over unordered container '") + std::string(ts[i].text) +
                "': iteration order is not deterministic (waive: "
                "// lint: unordered-iter-ok)"));
      }
    }
  }
};

/// determinism/fp-accum: floating-point accumulation is order-sensitive;
/// in the observability/statistics trees the accumulated values are
/// trace- and report-visible, so every compound accumulation must carry
/// a waiver asserting its order is deterministic (e.g. serialized in
/// ascending trial order).
class FpAccumRule final : public Rule {
 public:
  std::string_view id() const override { return "fp-accum"; }
  std::string_view waiver_slug() const override { return "fp-order-ok"; }
  std::string_view summary() const override {
    return "float/double += into trace-visible state needs an "
           "fp-order-ok waiver (src/obs, src/stats)";
  }
  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    if (!ctx.in_dir("src/obs/") && !ctx.in_dir("src/stats/")) return;
    const auto names = declared_names(ctx, {"double", "float"});
    const auto& ts = ctx.tokens();
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
      if (ts[i].kind == TokKind::kIdent && names.count(ts[i].text) != 0 &&
          (is_punct(ts[i + 1], "+=") || is_punct(ts[i + 1], "-="))) {
        out.push_back(make_finding(
            *this, ctx, ts[i],
            std::string("floating-point accumulation into '") + std::string(ts[i].text) +
                "' is order-sensitive; assert deterministic order with "
                "// lint: fp-order-ok"));
      }
    }
  }
};

// ---------------------------------------------------------------------
// Hot-path rules (scoped to the DES kernel files, see docs/KERNEL.md).
// ---------------------------------------------------------------------

/// hot-path/std-function: the kernel replaced std::function with the
/// 48-byte-inline EventCallback precisely because std::function heap-
/// allocates the kernel's own wake-up closures on every await.
class StdFunctionRule final : public Rule {
 public:
  std::string_view id() const override { return "hot-path-function"; }
  std::string_view waiver_slug() const override { return "hot-path-ok"; }
  std::string_view summary() const override {
    return "ban std::function in DES kernel files (use EventCallback)";
  }
  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    if (!ctx.is_kernel_file()) return;
    const auto& ts = ctx.tokens();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (is_ident(ts[i], "function") && std_qualified(ts, i)) {
        out.push_back(make_finding(
            *this, ctx, ts[i],
            "std::function in a kernel file: spills small captures to the "
            "heap; use sim::EventCallback (waive: // lint: hot-path-ok)"));
      }
    }
  }
};

/// hot-path/shared-ptr: per-event shared_ptr traffic is what the pooled
/// handle overhaul removed; only per-process state may be shared-owned,
/// and each such use carries a waiver explaining why.
class SharedPtrRule final : public Rule {
 public:
  std::string_view id() const override { return "hot-path-shared-ptr"; }
  std::string_view waiver_slug() const override { return "hot-path-ok"; }
  std::string_view summary() const override {
    return "ban shared_ptr/make_shared in DES kernel files";
  }
  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    if (!ctx.is_kernel_file()) return;
    const auto& ts = ctx.tokens();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ident_in(ts[i], {"shared_ptr", "make_shared", "weak_ptr"})) {
        out.push_back(make_finding(
            *this, ctx, ts[i],
            std::string("'") + std::string(ts[i].text) +
                "' in a kernel file: events are pooled handles, not "
                "shared-owned (waive: // lint: hot-path-ok)"));
      }
    }
  }
};

/// hot-path/heap-container: node-based std containers allocate per
/// element; kernel storage is flat (EventHeap over a vector, slab pool).
/// vector/array stay allowed — flat storage is the point.
class HeapContainerRule final : public Rule {
 public:
  std::string_view id() const override { return "hot-path-container"; }
  std::string_view waiver_slug() const override { return "hot-path-ok"; }
  std::string_view summary() const override {
    return "ban node-based std containers in DES kernel files";
  }
  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    if (!ctx.is_kernel_file()) return;
    const auto& ts = ctx.tokens();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ident_in(ts[i], {"map", "set", "multimap", "multiset", "list",
                           "deque", "unordered_map", "unordered_set",
                           "unordered_multimap", "unordered_multiset",
                           "priority_queue"}) &&
          std_qualified(ts, i)) {
        out.push_back(make_finding(
            *this, ctx, ts[i],
            std::string("std::") + std::string(ts[i].text) +
                " in a kernel file: node-based/per-element allocation; "
                "kernel storage is flat (waive: // lint: hot-path-ok)"));
      }
    }
  }
};

/// hot-path/deprecated-shim: the `schedule(ev, dt)` and `defer(fn)`
/// shims are gone — `sim::Environment` only offers the typed
/// schedule_at/post/delay API. The rule applies repo-wide (no exempt
/// suite) so a reintroduced call site fails lint everywhere.
class DeprecatedShimRule final : public Rule {
 public:
  std::string_view id() const override { return "deprecated-shim"; }
  std::string_view waiver_slug() const override { return "deprecated-shim-ok"; }
  std::string_view summary() const override {
    return "ban calls to the removed schedule(ev, dt)/defer(fn) shims";
  }
  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    const auto& ts = ctx.tokens();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ident_in(ts[i], {"schedule", "defer"}) && member_access(ts, i) &&
          i + 1 < ts.size() && is_punct(ts[i + 1], "(")) {
        const bool sched = ts[i].text == "schedule";
        out.push_back(make_finding(
            *this, ctx, ts[i],
            std::string("removed shim '") +
                (sched ? "schedule(ev, dt)" : "defer(fn)") + "': use " +
                (sched ? "schedule_at(ev, env.now() + dt) or post(ev)"
                       : "post(fn)") +
                " (waive: // lint: deprecated-shim-ok)"));
      }
    }
  }
};

// ---------------------------------------------------------------------
// Observability rules.
// ---------------------------------------------------------------------

/// obs/stderr-log: the serving/checkpoint/exec trees emit runtime
/// diagnostics through obs::RuntimeLog (structured NDJSON, leveled,
/// machine-parseable — docs/OBSERVABILITY.md). A stray std::cerr or
/// fprintf(stderr, ...) bypasses the sink, interleaves with the
/// daemon's telemetry stream, and is invisible to log-based tests.
/// CLI front-ends (tools/) and usage errors stay out of scope.
class StderrLogRule final : public Rule {
 public:
  std::string_view id() const override { return "stderr-log"; }
  std::string_view waiver_slug() const override { return "stderr-log-ok"; }
  std::string_view summary() const override {
    return "ban std::cerr/fprintf(stderr,...) in src/serve|ckpt|exec "
           "(use obs::RuntimeLog)";
  }
  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    if (!ctx.in_dir("src/serve/") && !ctx.in_dir("src/ckpt/") &&
        !ctx.in_dir("src/exec/"))
      return;
    const auto& ts = ctx.tokens();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ts[i].preproc) continue;
      if (ident_in(ts[i], {"cerr", "clog"}) && !member_access(ts, i)) {
        out.push_back(make_finding(
            *this, ctx, ts[i],
            std::string("std::") + std::string(ts[i].text) +
                " bypasses obs::RuntimeLog; emit a structured record "
                "instead (waive: // lint: stderr-log-ok)"));
        continue;
      }
      if (is_ident(ts[i], "perror") && i + 1 < ts.size() &&
          is_punct(ts[i + 1], "(") && !member_access(ts, i)) {
        out.push_back(make_finding(
            *this, ctx, ts[i],
            "perror() writes unstructured text to stderr; emit an "
            "obs::RuntimeLog record (waive: // lint: stderr-log-ok)"));
        continue;
      }
      // Any other use of the raw stderr stream (fprintf, fputs, fwrite,
      // vfprintf, ...): the stream token itself is the violation.
      if (is_ident(ts[i], "stderr") && !member_access(ts, i)) {
        out.push_back(make_finding(
            *this, ctx, ts[i],
            "raw stderr write bypasses obs::RuntimeLog; emit a "
            "structured record instead (waive: // lint: stderr-log-ok)"));
      }
    }
  }
};

// ---------------------------------------------------------------------
// Hygiene rules.
// ---------------------------------------------------------------------

/// hygiene/pragma-once: every header starts with `#pragma once` before
/// any code token.
class PragmaOnceRule final : public Rule {
 public:
  std::string_view id() const override { return "pragma-once"; }
  std::string_view waiver_slug() const override { return "pragma-once-ok"; }
  std::string_view summary() const override {
    return "headers must open with #pragma once";
  }
  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    if (!ctx.is_header()) return;
    const auto& ts = ctx.tokens();
    for (std::size_t i = 0; i + 2 < ts.size(); ++i) {
      if (is_punct(ts[i], "#") && is_ident(ts[i + 1], "pragma") &&
          is_ident(ts[i + 2], "once")) {
        if (i == 0) return;  // first tokens in the file: compliant
        out.push_back(make_finding(
            *this, ctx, ts[i],
            "#pragma once must be the first directive in the header"));
        return;
      }
      if (!ts[i].preproc) break;  // code before any `#pragma once`
    }
    const Token at =
        ts.empty() ? Token{TokKind::kPunct, false, 1, 1, ""} : ts.front();
    out.push_back(
        make_finding(*this, ctx, at, "header is missing #pragma once"));
  }
};

/// hygiene/using-namespace: a `using namespace` in a header leaks into
/// every includer.
class UsingNamespaceRule final : public Rule {
 public:
  std::string_view id() const override { return "using-namespace"; }
  std::string_view waiver_slug() const override { return "using-namespace-ok"; }
  std::string_view summary() const override {
    return "no `using namespace` in headers";
  }
  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    if (!ctx.is_header()) return;
    const auto& ts = ctx.tokens();
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
      if (is_ident(ts[i], "using") && is_ident(ts[i + 1], "namespace")) {
        out.push_back(make_finding(
            *this, ctx, ts[i],
            "`using namespace` in a header leaks into every includer"));
      }
    }
  }
};

/// hygiene/std-include: header self-sufficiency for a curated set of
/// std:: symbols — if a header names std::X it must directly include
/// the header that provides X rather than lean on transitive includes.
class StdIncludeRule final : public Rule {
 public:
  std::string_view id() const override { return "std-include"; }
  std::string_view waiver_slug() const override { return "std-include-ok"; }
  std::string_view summary() const override {
    return "headers must directly include what they use (curated std:: "
           "symbol map)";
  }
  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    if (!ctx.is_header() || !ctx.in_dir("src/")) return;
    const auto& inc = ctx.includes();
    const auto has_any = [&inc](const std::vector<std::string_view>& hs) {
      for (std::string_view h : hs) {
        for (const Include& have : inc) {
          if (have.target == h) return true;
        }
      }
      return false;
    };
    std::set<std::string, std::less<>> reported;
    const auto& ts = ctx.tokens();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ts[i].preproc || !std_qualified(ts, i) ||
          ts[i].kind != TokKind::kIdent)
        continue;
      const std::string_view sym = ts[i].text;
      const auto needed = required_headers(sym);
      if (needed.empty() || has_any(needed)) continue;
      if (!reported.insert(std::string(sym)).second) continue;
      out.push_back(make_finding(
          *this, ctx, ts[i],
          std::string("std::") + std::string(sym) + " used but <" +
              std::string(needed.front()) +
              "> is not directly included (header self-sufficiency)"));
    }
  }

 private:
  /// The headers (any one suffices) a symbol requires. Curated: only
  /// symbols whose home header is unambiguous are listed.
  static std::vector<std::string_view> required_headers(
      std::string_view sym) {
    if (sym == "vector") return {"vector"};
    if (sym == "string") return {"string"};
    if (sym == "string_view") return {"string_view"};
    if (sym == "unordered_map" || sym == "unordered_multimap")
      return {"unordered_map"};
    if (sym == "unordered_set" || sym == "unordered_multiset")
      return {"unordered_set"};
    if (sym == "map" || sym == "multimap") return {"map"};
    if (sym == "deque") return {"deque"};
    if (sym == "array") return {"array"};
    if (sym == "optional") return {"optional"};
    if (sym == "variant" || sym == "monostate") return {"variant"};
    if (sym == "tuple") return {"tuple"};
    if (sym == "function") return {"functional"};
    if (sym == "shared_ptr" || sym == "unique_ptr" || sym == "weak_ptr" ||
        sym == "make_shared" || sym == "make_unique")
      return {"memory"};
    if (sym == "uint8_t" || sym == "uint16_t" || sym == "uint32_t" ||
        sym == "uint64_t" || sym == "int8_t" || sym == "int16_t" ||
        sym == "int32_t" || sym == "int64_t" || sym == "uintptr_t" ||
        sym == "intptr_t")
      return {"cstdint"};
    if (sym == "byte") return {"cstddef"};
    if (sym == "ostringstream" || sym == "istringstream" ||
        sym == "stringstream")
      return {"sstream"};
    if (sym == "ofstream" || sym == "ifstream" || sym == "fstream")
      return {"fstream"};
    if (sym == "exception_ptr" || sym == "current_exception" ||
        sym == "rethrow_exception" || sym == "make_exception_ptr")
      return {"exception"};
    if (sym == "runtime_error" || sym == "logic_error" ||
        sym == "invalid_argument" || sym == "out_of_range" ||
        sym == "domain_error" || sym == "length_error")
      return {"stdexcept"};
    if (sym == "numeric_limits") return {"limits"};
    if (sym == "thread" || sym == "jthread") return {"thread"};
    if (sym == "mutex" || sym == "lock_guard" || sym == "unique_lock" ||
        sym == "scoped_lock")
      return {"mutex"};
    if (sym == "condition_variable") return {"condition_variable"};
    if (sym == "atomic") return {"atomic"};
    if (sym == "coroutine_handle" || sym == "suspend_always" ||
        sym == "suspend_never")
      return {"coroutine"};
    if (sym == "chrono") return {"chrono"};
    return {};
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> make_default_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<WallClockRule>());
  rules.push_back(std::make_unique<RawRngRule>());
  rules.push_back(std::make_unique<UnorderedIterRule>());
  rules.push_back(std::make_unique<FpAccumRule>());
  rules.push_back(std::make_unique<StdFunctionRule>());
  rules.push_back(std::make_unique<SharedPtrRule>());
  rules.push_back(std::make_unique<HeapContainerRule>());
  rules.push_back(std::make_unique<DeprecatedShimRule>());
  rules.push_back(std::make_unique<StderrLogRule>());
  rules.push_back(std::make_unique<PragmaOnceRule>());
  rules.push_back(std::make_unique<UsingNamespaceRule>());
  rules.push_back(std::make_unique<StdIncludeRule>());
  return rules;
}

}  // namespace pckpt::lint
