#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/token.hpp"

/// \file lint.hpp
/// pckpt-lint: project-specific static analysis for the p-ckpt tree.
///
/// The engine runs a fixed catalog of token-level rules over C++ sources
/// and reports file:line:col findings. Three rule families exist
/// (docs/STATIC_ANALYSIS.md has the full catalog and rationale):
///
///   - determinism: the golden traces are bit-identical at any --jobs
///     only because no code consults wall clocks, raw RNGs, or the
///     iteration order of unordered containers. These rules make that a
///     machine-checked property instead of reviewer folklore.
///   - hot-path: the kernel overhaul removed std::function, shared_ptr
///     and node-based containers from the DES kernel files; these rules
///     keep them out.
///   - hygiene: `#pragma once`, no `using namespace` in headers, and a
///     curated direct-include check for std:: symbols in headers.
///
/// Waivers: a finding is suppressed by a comment `// lint: <slug>` on
/// the same line, or on a comment-only line directly above. Each rule
/// names the slug it honors (e.g. `fp-order-ok`); several hot-path rules
/// share `hot-path-ok`. Waivers are counted and reported so they stay
/// visible in review.

namespace pckpt::lint {

enum class Severity : unsigned char { kWarning, kError };

std::string_view to_string(Severity s);

/// One diagnostic. `path` is the path the file was linted under (rule
/// scoping matches on it, so it is repo-relative in normal use).
struct Finding {
  std::string rule;
  Severity severity;
  std::string path;
  int line;
  int col;
  std::string message;
};

/// Format as `path:line:col: error: [rule] message`.
std::string format_finding(const Finding& f);

/// One `#include` directive: the target ("vector", "sim/types.hpp")
/// and the line it sits on.
struct Include {
  std::string target;
  int line = 0;
};

/// Everything a rule may inspect about one file.
class FileContext {
 public:
  FileContext(std::string path, std::string_view source);

  const std::string& path() const { return path_; }
  const std::vector<Token>& tokens() const { return lex_.tokens; }
  const std::vector<Comment>& comments() const { return lex_.comments; }

  /// Directive-free view: `#include` targets in source order, e.g.
  /// "vector" or "sim/types.hpp" (no angle brackets / quotes), each with
  /// the line of its directive (the project pass reports on it).
  const std::vector<Include>& includes() const { return includes_; }

  bool is_header() const;
  /// True when the (generic, '/'-separated) path contains `dir` — use
  /// trailing-slash forms like "src/sim/" to scope rules to a subtree.
  bool in_dir(std::string_view dir) const;
  /// The DES kernel files the hot-path rules police (docs/KERNEL.md).
  bool is_kernel_file() const;

  /// True when line `line` carries (or sits under) a `// lint: <slug>`
  /// waiver naming `slug`.
  bool waived(int line, std::string_view slug) const;

  /// Number of distinct waiver slugs parsed in this file (reporting).
  std::size_t waiver_count() const { return waiver_slug_count_; }

 private:
  std::string path_;
  LexResult lex_;
  std::vector<Include> includes_;
  std::map<int, std::set<std::string, std::less<>>> waivers_;  // by line
  std::size_t waiver_slug_count_ = 0;
};

/// One lint rule. Stateless; `check` appends findings (the engine
/// filters waived ones afterwards so rules never reimplement waivers).
class Rule {
 public:
  virtual ~Rule() = default;
  virtual std::string_view id() const = 0;
  virtual std::string_view waiver_slug() const = 0;
  virtual std::string_view summary() const = 0;
  virtual Severity severity() const { return Severity::kError; }
  virtual void check(const FileContext& ctx,
                     std::vector<Finding>& out) const = 0;
};

/// The built-in rule catalog, in report order.
std::vector<std::unique_ptr<Rule>> make_default_rules();

class ProjectContext;  // lint/project.hpp

/// A whole-tree rule: sees every file of the run at once via the
/// ProjectContext (include graph, scope analyses, guarded fields).
/// Waivers still apply per finding through the owning file's
/// `// lint: <slug>` map, exactly like file rules.
class ProjectRule {
 public:
  virtual ~ProjectRule() = default;
  virtual std::string_view id() const = 0;
  virtual std::string_view waiver_slug() const = 0;
  virtual std::string_view summary() const = 0;
  virtual Severity severity() const { return Severity::kError; }
  virtual void check(const ProjectContext& project,
                     std::vector<Finding>& out) const = 0;
};

/// The built-in project-rule catalog: layering, guarded-by, lock-order.
std::vector<std::unique_ptr<ProjectRule>> make_default_project_rules();

struct LintStats {
  std::size_t files = 0;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t waived = 0;  ///< findings suppressed by honored waivers
};

/// Lint engine over the default (or a restricted) rule catalog — both
/// the per-file rules and the whole-tree project rules.
class LintEngine {
 public:
  LintEngine();

  /// Restrict to the given rule ids (file and project rules together).
  /// Returns false (and leaves the catalogs untouched) if any id is
  /// unknown.
  bool restrict_rules(const std::vector<std::string>& ids);

  /// Remove the given rule ids from the catalogs. Returns false if any
  /// id is unknown.
  bool disable_rules(const std::vector<std::string>& ids);

  const std::vector<std::unique_ptr<Rule>>& rules() const { return rules_; }
  const std::vector<std::unique_ptr<ProjectRule>>& project_rules() const {
    return project_rules_;
  }

  /// Lint one in-memory source under `path` (tests lint fixture bodies
  /// under virtual paths like "src/sim/x.cpp" to exercise scoped rules).
  /// Runs the per-file rules only.
  std::vector<Finding> lint_source(std::string path, std::string_view source,
                                   LintStats* stats = nullptr);

  /// Run the whole-tree project pass over (path, source) pairs. The
  /// sources must outlive the call (token views point into them).
  /// Waived findings are dropped and counted like in lint_source.
  std::vector<Finding> lint_project(
      const std::vector<std::pair<std::string, std::string>>& files,
      LintStats* stats = nullptr);

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
  std::vector<std::unique_ptr<ProjectRule>> project_rules_;
};

/// CLI entry point (the `tools/pckpt_lint` shell calls this; tests call
/// it directly). Usage:
///
///   pckpt_lint [--root=DIR] [--rule=ID]... [--no-rule=ID]...
///              [--format=text|json|sarif] [--list-rules] PATH...
///
/// PATHs are files or directories (recursed for *.hpp/*.h/*.cpp),
/// resolved against --root (default: current directory); findings are
/// reported with root-relative paths so rule scoping matches the repo
/// layout. Both the per-file rules and the whole-tree project pass run
/// over the collected set. `--format=json` emits a `pckpt-lint/1`
/// document, `--format=sarif` a SARIF 2.1.0 log (both on stdout; the
/// human-readable findings stay on stderr in text mode only). Exit
/// codes mirror bench_report: 0 = clean, 1 = findings at error
/// severity, 2 = usage or I/O error.
int run_pckpt_lint(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err);

}  // namespace pckpt::lint
