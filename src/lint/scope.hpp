#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint/token.hpp"

/// \file scope.hpp
/// Scope-aware analysis pass for pckpt-lint: brace/namespace/class/
/// function tracking plus lock-scope inference, layered on top of the
/// token stream from `lint/token.hpp`.
///
/// The pass is still heuristic (pckpt-lint does not parse C++), but it
/// is exact for the subset of the language this tree actually writes:
/// namespace blocks, class/struct bodies, out-of-line qualified method
/// definitions, constructors/destructors with member-init lists, and
/// RAII lock guards (`std::lock_guard` / `std::scoped_lock` /
/// `std::unique_lock`, including `.unlock()` / `.lock()` on the guard
/// variable). Lambdas inherit the lexical scope — a `cv_.wait(lock,
/// [&]{ ... })` predicate body counts as running under `lock`, which
/// matches the condition_variable contract. The known blind spot (a
/// lambda that *escapes* its lock scope and runs later) is documented
/// in docs/STATIC_ANALYSIS.md.

namespace pckpt::lint {

constexpr std::size_t kNoFunc = static_cast<std::size_t>(-1);

/// One function body found in the file: free function, member function
/// (in-class or out-of-line `Class::method`), constructor or destructor.
struct FuncScope {
  std::string name;        ///< display name, e.g. "FairShareScheduler::queued"
  std::string class_name;  ///< innermost class, "" for free functions
  bool ctor_dtor = false;  ///< constructor or destructor body
  int line = 0;            ///< line of the body's opening brace
  std::size_t body_begin = 0;  ///< token index of the opening `{`
  std::size_t body_end = 0;    ///< token index one past the closing `}`
  std::vector<std::string> required;  ///< `// requires(mu)` mutex names
};

/// One RAII lock-guard hold interval. A guard that is `.unlock()`ed and
/// re-`.lock()`ed produces several intervals for the same site.
struct LockInterval {
  std::string expr;  ///< mutex expression as written, e.g. "entry->mu"
  std::string bare;  ///< last identifier of the expression, e.g. "mu"
  int line = 0;      ///< acquisition site
  int col = 0;
  std::size_t func = kNoFunc;  ///< index into funcs()
  std::size_t begin_tok = 0;   ///< first token index covered
  std::size_t end_tok = 0;     ///< one past the last token covered
  /// Lock-order keys already held when this lock was acquired, in
  /// acquisition order (see `LockInterval::order_key`).
  std::vector<std::string> held_before;
};

/// Result of the scope pass over one file's token stream.
class ScopeAnalysis {
 public:
  const std::vector<FuncScope>& funcs() const { return funcs_; }
  const std::vector<LockInterval>& locks() const { return locks_; }

  /// Enclosing function of token `tok`, or kNoFunc (namespace/class
  /// scope). Lambdas report the lexically enclosing named function.
  std::size_t func_of(std::size_t tok) const {
    return tok < func_of_.size() ? func_of_[tok] : kNoFunc;
  }

  /// Innermost class enclosing token `tok` ("" outside any class).
  /// Inside a member-function *body* this is the member's class even for
  /// out-of-line `Class::method` definitions.
  const std::string& class_of(std::size_t tok) const;

  /// True when a lock on a mutex whose bare name is `bare` is held at
  /// token `tok` — via a live guard interval or a `// requires(bare)`
  /// annotation on the enclosing function.
  bool holds(std::size_t tok, std::string_view bare) const;

 private:
  friend ScopeAnalysis analyze_scopes(
      const std::vector<Token>& tokens,
      const std::map<int, std::vector<std::string>>& requires_by_line);

  std::vector<FuncScope> funcs_;
  std::vector<LockInterval> locks_;
  std::vector<std::size_t> func_of_;   // per token
  std::vector<std::size_t> class_of_;  // per token, index into class_names_
  std::vector<std::string> class_names_;
};

/// Run the scope pass. `requires_by_line` maps source lines carrying a
/// `// requires(mu)` annotation to the named mutexes; annotations whose
/// line falls inside a function signature attach to that function. All
/// results are value types (strings copied out of the token views).
ScopeAnalysis analyze_scopes(
    const std::vector<Token>& tokens,
    const std::map<int, std::vector<std::string>>& requires_by_line);

/// The cross-TU lock-order key for a lock site: bare member mutexes are
/// qualified by the enclosing class (`FairShareScheduler::mu_`), free
/// mutexes keep their name, and member-chain expressions (`entry->mu`)
/// keep the expression text so identical spellings in different TUs
/// coalesce.
std::string lock_order_key(const LockInterval& lock,
                           const std::vector<FuncScope>& funcs);

}  // namespace pckpt::lint
