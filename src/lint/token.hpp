#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

/// \file token.hpp
/// Minimal C++ lexer for pckpt-lint.
///
/// The lint engine does not parse C++ — it pattern-matches over a token
/// stream. The lexer therefore only needs to be exact about the things
/// that would otherwise cause false findings: comments (rule patterns
/// must never match prose), string/char literals (including raw
/// strings), and preprocessor directives (tokens inside a directive are
/// flagged so rules can reason about `#pragma once` and `#include`
/// separately from code).

namespace pckpt::lint {

enum class TokKind : unsigned char {
  kIdent,    ///< identifier or keyword
  kNumber,   ///< numeric literal (pp-numbers, so 0x1p-3 is one token)
  kString,   ///< "..." or R"delim(...)delim" (prefixes folded in)
  kChar,     ///< '...'
  kPunct,    ///< operator / punctuation, maximal munch for ::, ->, +=, ...
};

struct Token {
  TokKind kind;
  bool preproc;           ///< inside a preprocessor directive line
  int line;               ///< 1-based
  int col;                ///< 1-based
  std::string_view text;  ///< view into the source buffer
};

/// One comment, `//...` or `/*...*/`.
struct Comment {
  int line_begin;   ///< 1-based first line
  int line_end;     ///< 1-based last line (== line_begin for `//`)
  bool owns_line;   ///< only whitespace precedes it on its first line
  std::string_view text;  ///< comment body without the delimiters
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenize `source`. Never fails: unterminated literals and comments
/// lex to end-of-file, and unknown bytes become single-char punctuation.
/// The returned views point into `source`, which must outlive the result.
LexResult lex(std::string_view source);

}  // namespace pckpt::lint
