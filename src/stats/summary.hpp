#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <vector>

/// \file summary.hpp
/// Small statistics toolkit: online moments, percentiles, box-plot stats.

namespace pckpt::stats {

/// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    // Callers feed samples serially in trial order; the campaign engine
    // merges shard accumulators in fixed shard order (deterministic).
    mean_ += delta / static_cast<double>(n_);  // lint: fp-order-ok
    m2_ += delta * (x - mean_);                // lint: fp-order-ok
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Standard error of the mean.
  double sem() const noexcept {
    return n_ ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }
  /// Half-width of the ~95% confidence interval for the mean.
  double ci95_half_width() const noexcept { return 1.96 * sem(); }

  /// Raw second central moment (sum of squared deviations from the
  /// mean). Exposed so the checkpoint layer (src/ckpt/) can serialize
  /// the accumulator exactly: (count, mean, m2, min, max) round-trips
  /// bit-for-bit through from_moments(), where variance() alone would
  /// not (it divides by n-1).
  double m2() const noexcept { return m2_; }

  /// Rebuild an accumulator from moments captured via the accessors
  /// above. With `n == 0` every other argument is ignored and the
  /// result equals a default-constructed object, matching what mean()/
  /// min()/max() reported for the original.
  static OnlineStats from_moments(std::size_t n, double mean_v, double m2_v,
                                  double min_v, double max_v) noexcept {
    OnlineStats s;
    if (n == 0) return s;
    s.n_ = n;
    s.mean_ = mean_v;
    s.m2_ = m2_v;
    s.min_ = min_v;
    s.max_ = max_v;
    return s;
  }

  void merge(const OnlineStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    // merge() runs over shards in fixed ascending shard order.
    mean_ += delta * nb / (na + nb);                       // lint: fp-order-ok
    m2_ += o.m2_ + delta * delta * na * nb / (na + nb);    // lint: fp-order-ok
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Linear-interpolation percentile of a sample (q in [0,1]).
/// Sorts a copy; use `percentile_sorted` for pre-sorted data.
double percentile(std::vector<double> values, double q);

/// Percentile over already-sorted data.
double percentile_sorted(const std::vector<double>& sorted, double q);

/// Five-number summary plus mean/count, matching the structure of the
/// paper's Fig. 2a box plots.
struct BoxStats {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double whisker_lo = 0.0;  ///< lowest sample >= q1 - 1.5 IQR
  double whisker_hi = 0.0;  ///< highest sample <= q3 + 1.5 IQR
  std::size_t count = 0;
  std::size_t outliers = 0;  ///< samples outside the whiskers
};

BoxStats box_stats(std::vector<double> values);

/// Fixed-width histogram for sanity-checking generated distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t total() const noexcept { return total_; }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  double bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  double bin_width() const noexcept { return width_; }

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0, underflow_ = 0, overflow_ = 0;
};

}  // namespace pckpt::stats
