#include "stats/summary.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace pckpt::stats {

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    throw std::invalid_argument("percentile: empty sample");
  }
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("percentile: q must be in [0,1]");
  }
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double percentile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, q);
}

BoxStats box_stats(std::vector<double> values) {
  if (values.empty()) {
    throw std::invalid_argument("box_stats: empty sample");
  }
  std::sort(values.begin(), values.end());
  BoxStats b;
  b.count = values.size();
  b.min = values.front();
  b.max = values.back();
  b.q1 = percentile_sorted(values, 0.25);
  b.median = percentile_sorted(values, 0.50);
  b.q3 = percentile_sorted(values, 0.75);
  b.mean = std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
  const double iqr = b.q3 - b.q1;
  const double lo_fence = b.q1 - 1.5 * iqr;
  const double hi_fence = b.q3 + 1.5 * iqr;
  b.whisker_lo = b.max;
  b.whisker_hi = b.min;
  for (double v : values) {
    if (v >= lo_fence) {
      b.whisker_lo = v;
      break;
    }
  }
  for (auto it = values.rbegin(); it != values.rend(); ++it) {
    if (*it <= hi_fence) {
      b.whisker_hi = *it;
      break;
    }
  }
  for (double v : values) {
    if (v < lo_fence || v > hi_fence) ++b.outliers;
  }
  return b;
}

namespace {

// Validate before the member-init list runs: width_ divides by `bins`,
// so the check must happen before the division, not in the ctor body.
double checked_bin_width(double lo, double hi, std::size_t bins) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
  return (hi - lo) / static_cast<double>(bins);
}

}  // namespace

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_(checked_bin_width(lo, hi, bins)),
      counts_(bins, 0) {}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
  ++counts_[idx];
}

}  // namespace pckpt::stats
