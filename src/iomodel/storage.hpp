#pragma once

#include <stdexcept>

#include "iomodel/perf_matrix.hpp"
#include "iomodel/summit_io.hpp"

/// \file storage.hpp
/// Burst-buffer model and the storage façade the C/R models price their
/// I/O against.

namespace pckpt::iomodel {

/// Per-node NVMe burst buffer (Summit: 1.6 TB, 2.1 GB/s write, 5.5 GB/s
/// read — Sec. II).
struct BurstBuffer {
  double write_gbps = 2.1;
  double read_gbps = 5.5;
  double capacity_gb = 1600.0;

  double write_seconds(double gb) const {
    check(gb);
    return gb / write_gbps;
  }
  double read_seconds(double gb) const {
    check(gb);
    return gb / read_gbps;
  }

 private:
  void check(double gb) const {
    if (!(gb >= 0.0)) {
      throw std::invalid_argument("BurstBuffer: negative transfer");
    }
    if (gb > capacity_gb) {
      throw std::invalid_argument(
          "BurstBuffer: transfer exceeds device capacity");
    }
  }
};

/// Storage façade combining BBs, the PFS performance matrix and the
/// interconnect. All C/R model I/O costs go through this type so a single
/// substitution point controls the machine being simulated.
class StorageModel {
 public:
  StorageModel(PerfMatrix matrix, BurstBuffer bb, SummitIOConfig io_cfg,
               double interconnect_gbps = 12.5)
      : matrix_(std::move(matrix)),
        bb_(bb),
        io_cfg_(io_cfg),
        interconnect_gbps_(interconnect_gbps) {
    if (!(interconnect_gbps > 0.0)) {
      throw std::invalid_argument("StorageModel: interconnect must be > 0");
    }
  }

  /// Synchronous per-node checkpoint to the local BB (all nodes write
  /// concurrently to their own device, so job time = per-node time).
  double bb_write_seconds(double per_node_gb) const {
    return bb_.write_seconds(per_node_gb);
  }
  double bb_read_seconds(double per_node_gb) const {
    return bb_.read_seconds(per_node_gb);
  }

  /// All `nodes` nodes writing `per_node_gb` each straight to the PFS
  /// (safeguard checkpoints, p-ckpt phase 2, proactive recovery reads —
  /// the paper assumes the same matrix for reads, Sec. IV).
  double pfs_aggregate_seconds(double nodes, double per_node_gb) const {
    return matrix_.transfer_seconds(nodes, per_node_gb);
  }

  /// Resolve the PFS operating point once and reuse the handle per
  /// checkpoint (see BandwidthQuery). Equivalent to calling
  /// pfs_aggregate_seconds with the same arguments every time.
  BandwidthQuery pfs_aggregate_query(double nodes, double per_node_gb) const {
    return matrix_.query(nodes, per_node_gb);
  }

  /// One node writing/reading `gb` to/from the PFS contention-free (p-ckpt
  /// phase 1, replacement-node recovery).
  double pfs_single_node_seconds(double gb) const {
    if (!(gb >= 0.0)) {
      throw std::invalid_argument("pfs_single_node_seconds: negative size");
    }
    if (gb == 0.0) return 0.0;
    return gb / node_bandwidth(gb, io_cfg_);
  }

  /// Node-to-node live-migration transfer of `gb` over the interconnect.
  double lm_transfer_seconds(double gb) const {
    if (!(gb >= 0.0)) {
      throw std::invalid_argument("lm_transfer_seconds: negative size");
    }
    return gb / interconnect_gbps_;
  }

  const PerfMatrix& matrix() const noexcept { return matrix_; }
  const BurstBuffer& burst_buffer() const noexcept { return bb_; }
  const SummitIOConfig& io_config() const noexcept { return io_cfg_; }
  double interconnect_gbps() const noexcept { return interconnect_gbps_; }

 private:
  PerfMatrix matrix_;
  BurstBuffer bb_;
  SummitIOConfig io_cfg_;
  double interconnect_gbps_;
};

}  // namespace pckpt::iomodel
