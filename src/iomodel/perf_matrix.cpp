#include "iomodel/perf_matrix.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "obs/profiler.hpp"

namespace pckpt::iomodel {

namespace {

void check_axis(const std::vector<double>& axis, const char* what) {
  if (axis.empty()) {
    throw std::invalid_argument(std::string("PerfMatrix: empty ") + what);
  }
  for (std::size_t i = 0; i < axis.size(); ++i) {
    if (!(axis[i] > 0.0)) {
      throw std::invalid_argument(std::string("PerfMatrix: non-positive ") +
                                  what);
    }
    if (i > 0 && !(axis[i] > axis[i - 1])) {
      throw std::invalid_argument(std::string("PerfMatrix: ") + what +
                                  " not strictly increasing");
    }
  }
}

/// Find interpolation bracket for x on axis: returns (index, weight) such
/// that value = (1-w)*axis[i] + w*axis[i+1] in log space; clamps at edges.
std::pair<std::size_t, double> bracket(const std::vector<double>& axis,
                                       double x) {
  if (x <= axis.front() || axis.size() == 1) return {0, 0.0};
  if (x >= axis.back()) return {axis.size() - 2, 1.0};
  const auto it = std::upper_bound(axis.begin(), axis.end(), x);
  const auto hi = static_cast<std::size_t>(it - axis.begin());
  const std::size_t lo = hi - 1;
  const double w = (std::log(x) - std::log(axis[lo])) /
                   (std::log(axis[hi]) - std::log(axis[lo]));
  return {lo, w};
}

/// Direct-mapped memo cell for bandwidth(). The simulator prices the same
/// handful of operating points millions of times per campaign (one per
/// checkpoint per trial), so even a tiny cache hits almost always.
struct MemoCell {
  std::uint64_t matrix_id = 0;  // 0 = empty (ids start at 1)
  double nodes = 0.0;
  double per_node_gb = 0.0;
  double bw_gbps = 0.0;
};

constexpr std::size_t kMemoSlots = 16;  // power of two: mask indexing

std::size_t memo_index(std::uint64_t id, double nodes, double gb) {
  std::uint64_t h = std::bit_cast<std::uint64_t>(nodes);
  h = (h ^ std::bit_cast<std::uint64_t>(gb)) * 0x9E3779B97F4A7C15ull;
  h ^= id;
  return static_cast<std::size_t>((h >> 32) & (kMemoSlots - 1));
}

std::uint64_t next_memo_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

PerfMatrix::PerfMatrix(std::vector<double> node_counts,
                       std::vector<double> sizes_gb,
                       std::vector<double> bandwidth_gbps)
    : nodes_(std::move(node_counts)),
      sizes_(std::move(sizes_gb)),
      bw_(std::move(bandwidth_gbps)),
      memo_id_(next_memo_id()) {
  check_axis(nodes_, "node axis");
  check_axis(sizes_, "size axis");
  if (bw_.size() != nodes_.size() * sizes_.size()) {
    throw std::invalid_argument("PerfMatrix: bandwidth grid size mismatch");
  }
  for (double b : bw_) {
    if (!(b > 0.0)) {
      throw std::invalid_argument("PerfMatrix: non-positive bandwidth");
    }
  }
}

double PerfMatrix::bandwidth(double nodes, double per_node_gb) const {
  if (!(nodes > 0.0) || !(per_node_gb > 0.0)) {
    throw std::invalid_argument("PerfMatrix::bandwidth: arguments must be > 0");
  }
  // The cache is keyed by matrix identity + exact argument bits; a hit
  // returns the exact value interpolate() would produce, so results (and
  // hence simulated trajectories) are independent of cache state.
  static thread_local MemoCell memo[kMemoSlots];
  MemoCell& cell = memo[memo_index(memo_id_, nodes, per_node_gb)];
  if (cell.matrix_id == memo_id_ && cell.nodes == nodes &&
      cell.per_node_gb == per_node_gb) {
    return cell.bw_gbps;
  }
  obs::ScopedTimer prof_span("iomodel.lookup");
  const double bw = interpolate(nodes, per_node_gb);
  cell = MemoCell{memo_id_, nodes, per_node_gb, bw};
  return bw;
}

double PerfMatrix::interpolate(double nodes, double per_node_gb) const {
  const auto [ni, nw] = bracket(nodes_, nodes);
  const auto [si, sw] = bracket(sizes_, per_node_gb);
  const std::size_t ncols = sizes_.size();
  const std::size_t ni2 = std::min(ni + 1, nodes_.size() - 1);
  const std::size_t si2 = std::min(si + 1, ncols - 1);
  // Interpolate log-bandwidth bilinearly for smooth scaling behaviour.
  const double b00 = std::log(bw_[ni * ncols + si]);
  const double b01 = std::log(bw_[ni * ncols + si2]);
  const double b10 = std::log(bw_[ni2 * ncols + si]);
  const double b11 = std::log(bw_[ni2 * ncols + si2]);
  const double lo = b00 * (1.0 - sw) + b01 * sw;
  const double hi = b10 * (1.0 - sw) + b11 * sw;
  return std::exp(lo * (1.0 - nw) + hi * nw);
}

double PerfMatrix::transfer_seconds(double nodes, double per_node_gb) const {
  return nodes * per_node_gb / bandwidth(nodes, per_node_gb);
}

}  // namespace pckpt::iomodel
