#pragma once

#include <cstddef>
#include <vector>

#include "iomodel/perf_matrix.hpp"

/// \file summit_io.hpp
/// Synthetic Summit-calibrated GPFS performance model. The paper measured
/// these curves on the real machine (Figs. 2b, 2c); without access to
/// Summit we generate them from a parametric model anchored to the numbers
/// the paper quotes:
///   - single-node PFS write peaks at ~13-13.5 GB/s with 8 MPI tasks,
///   - per-task efficiency drops on both sides of 8 tasks,
///   - small transfers are latency-bound (saturating size efficiency),
///   - aggregate bandwidth saturates well below the 2.5 TB/s server-side
///     ceiling for application-visible I/O.

namespace pckpt::iomodel {

struct SummitIOConfig {
  /// Peak single-node PFS write bandwidth (GB/s), reached at `peak_tasks`
  /// MPI tasks per node with large transfers. Paper: 13-13.5 GB/s.
  double peak_node_bw_gbps = 13.4;
  /// Task count per node at which node bandwidth peaks (paper: 8).
  int peak_tasks = 8;
  /// Max tasks per node explored in Fig. 2b (physical cores on Summit).
  int max_tasks = 42;
  /// Application-realizable aggregate PFS ceiling (GB/s). Server-side
  /// capability is ~2500 GB/s; applications see less.
  double pfs_ceiling_gbps = 1500.0;
  /// Transfer size (GB per node) at which size efficiency reaches 50%.
  double half_speed_size_gb = 0.25;
  /// Efficiency ratio at 1 task relative to peak (Fig. 2b left edge).
  double single_task_eff = 0.26;
  /// Efficiency ratio at max_tasks relative to peak (oversubscription).
  double max_tasks_eff = 0.70;
};

/// Size-dependent efficiency in (0,1]: saturating in transfer size
/// (latency-dominated for small writes).
double size_efficiency(double per_node_gb, const SummitIOConfig& cfg = {});

/// Single-node aggregate bandwidth for `tasks` MPI tasks moving a total of
/// `total_gb` from one node (the Fig. 2b family of curves).
double node_bandwidth_for_tasks(int tasks, double total_gb,
                                const SummitIOConfig& cfg = {});

/// Best single-node bandwidth (at cfg.peak_tasks) for a transfer size —
/// what the C/R models use for single-node PFS writes/reads.
double node_bandwidth(double per_node_gb, const SummitIOConfig& cfg = {});

/// Aggregate bandwidth of `nodes` nodes each moving `per_node_gb`
/// (harmonic saturation toward the application ceiling) — the generator
/// behind the Fig. 2c heat map.
double aggregate_bandwidth(double nodes, double per_node_gb,
                           const SummitIOConfig& cfg = {});

/// Build the Fig. 2c performance matrix on a log grid.
/// \param max_nodes largest node count row to generate (>= 1).
PerfMatrix make_summit_matrix(const SummitIOConfig& cfg = {},
                              double max_nodes = 4096.0,
                              std::size_t node_steps = 13,
                              std::size_t size_steps = 12);

}  // namespace pckpt::iomodel
