#include "iomodel/summit_io.hpp"

#include <cmath>
#include <stdexcept>

namespace pckpt::iomodel {

double size_efficiency(double per_node_gb, const SummitIOConfig& cfg) {
  if (!(per_node_gb > 0.0)) {
    throw std::invalid_argument("size_efficiency: size must be > 0");
  }
  return per_node_gb / (per_node_gb + cfg.half_speed_size_gb);
}

namespace {

/// Task-count efficiency relative to the peak: rises as a power law up to
/// `peak_tasks`, then declines linearly toward `max_tasks_eff` at
/// `max_tasks` (socket/adapter contention).
double task_efficiency(int tasks, const SummitIOConfig& cfg) {
  if (tasks < 1 || tasks > cfg.max_tasks) {
    throw std::invalid_argument("task_efficiency: tasks out of range");
  }
  if (tasks <= cfg.peak_tasks) {
    // f(1) = single_task_eff, f(peak) = 1, power-law in between.
    const double a = -std::log(cfg.single_task_eff) /
                     std::log(static_cast<double>(cfg.peak_tasks));
    return std::pow(static_cast<double>(tasks) /
                        static_cast<double>(cfg.peak_tasks),
                    a);
  }
  const double frac = static_cast<double>(tasks - cfg.peak_tasks) /
                      static_cast<double>(cfg.max_tasks - cfg.peak_tasks);
  return 1.0 - (1.0 - cfg.max_tasks_eff) * frac;
}

}  // namespace

double node_bandwidth_for_tasks(int tasks, double total_gb,
                                const SummitIOConfig& cfg) {
  return cfg.peak_node_bw_gbps * task_efficiency(tasks, cfg) *
         size_efficiency(total_gb, cfg);
}

double node_bandwidth(double per_node_gb, const SummitIOConfig& cfg) {
  return cfg.peak_node_bw_gbps * size_efficiency(per_node_gb, cfg);
}

double aggregate_bandwidth(double nodes, double per_node_gb,
                           const SummitIOConfig& cfg) {
  if (!(nodes >= 1.0)) {
    throw std::invalid_argument("aggregate_bandwidth: nodes must be >= 1");
  }
  const double linear = nodes * node_bandwidth(per_node_gb, cfg);
  // Harmonic saturation: smooth transition from linear scaling to the
  // application-visible ceiling (matches the measured heat-map shape where
  // adding nodes has diminishing returns).
  return 1.0 / (1.0 / linear + 1.0 / cfg.pfs_ceiling_gbps);
}

PerfMatrix make_summit_matrix(const SummitIOConfig& cfg, double max_nodes,
                              std::size_t node_steps,
                              std::size_t size_steps) {
  if (!(max_nodes >= 1.0) || node_steps < 2 || size_steps < 2) {
    throw std::invalid_argument("make_summit_matrix: bad grid spec");
  }
  std::vector<double> nodes(node_steps);
  for (std::size_t i = 0; i < node_steps; ++i) {
    nodes[i] = std::exp(std::log(max_nodes) * static_cast<double>(i) /
                        static_cast<double>(node_steps - 1));
  }
  // Per-node sizes from 1 MB to 512 GB (the DRAM bound of Sec. II).
  const double lo = 0.001, hi = 512.0;
  std::vector<double> sizes(size_steps);
  for (std::size_t j = 0; j < size_steps; ++j) {
    sizes[j] = lo * std::pow(hi / lo, static_cast<double>(j) /
                                          static_cast<double>(size_steps - 1));
  }
  std::vector<double> bw;
  bw.reserve(node_steps * size_steps);
  for (double n : nodes) {
    for (double s : sizes) bw.push_back(aggregate_bandwidth(n, s, cfg));
  }
  return PerfMatrix(std::move(nodes), std::move(sizes), std::move(bw));
}

}  // namespace pckpt::iomodel
