#pragma once

#include <cstddef>
#include <vector>

/// \file perf_matrix.hpp
/// The GPFS I/O performance matrix of the paper's Sec. IV: aggregate write
/// bandwidth as a function of (node count, per-node transfer size). The
/// simulation uses it to price every PFS checkpoint write and proactive
/// recovery read.

namespace pckpt::iomodel {

/// Dense grid of measured (or synthesized) aggregate bandwidths with
/// log-bilinear interpolation between grid points and clamping outside the
/// grid. Rows are node counts, columns are per-node transfer sizes in GB,
/// cells are aggregate GB/s.
class PerfMatrix {
 public:
  /// \param node_counts strictly increasing, >= 1 entry
  /// \param sizes_gb    strictly increasing per-node transfer sizes (GB)
  /// \param bandwidth_gbps row-major [node][size], all > 0
  PerfMatrix(std::vector<double> node_counts, std::vector<double> sizes_gb,
             std::vector<double> bandwidth_gbps);

  /// Aggregate bandwidth (GB/s) for `nodes` nodes each moving
  /// `per_node_gb` GB. Interpolates bilinearly in log(nodes), log(size);
  /// clamps to the grid edges.
  double bandwidth(double nodes, double per_node_gb) const;

  /// Seconds to move `nodes * per_node_gb` GB at the matrix bandwidth.
  double transfer_seconds(double nodes, double per_node_gb) const;

  const std::vector<double>& node_counts() const noexcept { return nodes_; }
  const std::vector<double>& sizes_gb() const noexcept { return sizes_; }
  double cell(std::size_t node_idx, std::size_t size_idx) const {
    return bw_.at(node_idx * sizes_.size() + size_idx);
  }

 private:
  std::vector<double> nodes_;
  std::vector<double> sizes_;
  std::vector<double> bw_;
};

}  // namespace pckpt::iomodel
