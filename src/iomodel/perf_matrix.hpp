#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file perf_matrix.hpp
/// The GPFS I/O performance matrix of the paper's Sec. IV: aggregate write
/// bandwidth as a function of (node count, per-node transfer size). The
/// simulation uses it to price every PFS checkpoint write and proactive
/// recovery read.

namespace pckpt::iomodel {

class PerfMatrix;

/// A resolved bandwidth lookup: one (nodes, per-node GB) operating point,
/// interpolated once via PerfMatrix::query() and then reused for every
/// checkpoint priced at that point. Callers that price the same transfer
/// repeatedly (periodic checkpoints, recovery reads, BB drains) should
/// resolve a query per phase instead of calling PerfMatrix::bandwidth in
/// the per-checkpoint path.
class BandwidthQuery {
 public:
  /// Default-constructed queries are unresolved (bandwidth 0, not valid()).
  BandwidthQuery() = default;

  bool valid() const noexcept { return bw_gbps_ > 0.0; }
  double nodes() const noexcept { return nodes_; }
  double per_node_gb() const noexcept { return per_node_gb_; }
  /// Aggregate bandwidth (GB/s) at the resolved operating point.
  double bandwidth_gbps() const noexcept { return bw_gbps_; }
  /// Seconds to move nodes() * per_node_gb() GB at the resolved bandwidth.
  double transfer_seconds() const noexcept { return seconds_; }

 private:
  friend class PerfMatrix;
  BandwidthQuery(double nodes, double per_node_gb, double bw_gbps)
      : nodes_(nodes),
        per_node_gb_(per_node_gb),
        bw_gbps_(bw_gbps),
        seconds_(nodes * per_node_gb / bw_gbps) {}

  double nodes_ = 0.0;
  double per_node_gb_ = 0.0;
  double bw_gbps_ = 0.0;
  double seconds_ = 0.0;
};

/// Dense grid of measured (or synthesized) aggregate bandwidths with
/// log-bilinear interpolation between grid points and clamping outside the
/// grid. Rows are node counts, columns are per-node transfer sizes in GB,
/// cells are aggregate GB/s.
class PerfMatrix {
 public:
  /// \param node_counts strictly increasing, >= 1 entry
  /// \param sizes_gb    strictly increasing per-node transfer sizes (GB)
  /// \param bandwidth_gbps row-major [node][size], all > 0
  PerfMatrix(std::vector<double> node_counts, std::vector<double> sizes_gb,
             std::vector<double> bandwidth_gbps);

  /// Aggregate bandwidth (GB/s) for `nodes` nodes each moving
  /// `per_node_gb` GB. Interpolates bilinearly in log(nodes), log(size);
  /// clamps to the grid edges. Repeated lookups at the same operating
  /// point hit a small thread-local memo cache (results are identical to
  /// the uncached interpolation — the cache affects timing only).
  double bandwidth(double nodes, double per_node_gb) const;

  /// Resolve one operating point into a reusable handle (see
  /// BandwidthQuery). Same validation/clamping as bandwidth().
  BandwidthQuery query(double nodes, double per_node_gb) const {
    return BandwidthQuery(nodes, per_node_gb, bandwidth(nodes, per_node_gb));
  }

  /// Seconds to move `nodes * per_node_gb` GB at the matrix bandwidth.
  double transfer_seconds(double nodes, double per_node_gb) const;

  const std::vector<double>& node_counts() const noexcept { return nodes_; }
  const std::vector<double>& sizes_gb() const noexcept { return sizes_; }
  double cell(std::size_t node_idx, std::size_t size_idx) const {
    return bw_.at(node_idx * sizes_.size() + size_idx);
  }

 private:
  double interpolate(double nodes, double per_node_gb) const;

  std::vector<double> nodes_;
  std::vector<double> sizes_;
  std::vector<double> bw_;
  /// Content identity for the lookup memo cache: fresh per construction,
  /// shared by copies/moves (identical grids). Keying the cache on this
  /// instead of `this` makes a recycled allocation unable to alias a
  /// stale cell.
  std::uint64_t memo_id_;
};

}  // namespace pckpt::iomodel
