#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file durable_log.hpp
/// The crash-safe append-only record log shared by the serving layer's
/// `ResultStore` and the campaign checkpointer (docs/CHECKPOINTING.md,
/// docs/SERVING.md). Extracted from the PR-6 result store so both
/// subsystems run the *same* doublewrite machinery and the same
/// crash-injection tests.
///
/// On-disk layout — two files:
///
///  - `PATH` — the record log: a sequence of framed records, each
///    `[32-byte header][payload bytes]`. Header (all integers
///    little-endian): magic "PCKR", payload length (u32), record key
///    (u64), FNV-1a/64 of the payload (u64), FNV-1a/64 of the first
///    24 header bytes (u64). Records are append-only; re-appending a
///    key adds a superseding frame (callers decide last-wins or reject).
///
///  - `PATH.journal` — the doublewrite journal: a 40-byte header
///    (magic "PCKJ", state word, log size before the group, group
///    length, group FNV, header FNV) followed by the exact group bytes
///    about to be appended to the log.
///
/// Commit protocol (group commit — one fsync pair for N records):
///   1. frame the group in memory;
///   2. write header+group to the journal, fsync — *the commit point*;
///   3. append the group to the log at `log_size_before`, fsync;
///   4. truncate the journal to zero, fsync.
/// A crash before (2) completes leaves a torn journal and an untouched
/// log: the group is simply lost, prior records intact. A crash after
/// (2) leaves an armed journal: recovery replays the group into the
/// log (idempotently — it truncates to `log_size_before` first), so
/// the group is durable the moment the journal fsync returns.
///
/// Recovery on open: replay an armed journal if its checksums hold
/// (discard it otherwise — the log was never touched), then scan the
/// log frame by frame, invoking the replay callback per intact frame,
/// and truncate at the first bad frame (torn tail). Committed records
/// are never dropped by recovery; the fork-based crash harness
/// (tests/support/crash_harness.hpp) injects write faults at randomized
/// byte offsets to prove it for both client subsystems.

namespace pckpt::ckpt {

/// FNV-1a over arbitrary bytes (64-bit, offset 0xcbf29ce484222325,
/// prime 0x100000001b3). The checksum of every frame and the hash
/// behind serve's cache keys and the checkpointer's manifest keys.
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Exit status of a process killed by the write-fault injection hook
/// (`set_write_fault_budget`); the crash harness keys on it.
inline constexpr int kWriteFaultExitCode = 42;

/// Little-endian byte (de)serialization helpers shared by the log
/// framing and the checkpointer's shard payload codec. Doubles travel
/// as their IEEE-754 bit patterns so round trips are bit-exact.
namespace wire {

inline void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xffu));
  out.push_back(static_cast<char>((v >> 8) & 0xffu));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

inline void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

inline std::uint16_t get_u16(const char* p) {
  return static_cast<std::uint16_t>(
      static_cast<unsigned char>(p[0]) |
      (static_cast<std::uint16_t>(static_cast<unsigned char>(p[1])) << 8));
}

inline std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

inline std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

inline double get_f64(const char* p) {
  const std::uint64_t bits = get_u64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace wire

class DurableLog {
 public:
  struct Stats {
    std::size_t frames = 0;         ///< intact frames (replayed + appended)
    std::uint64_t log_bytes = 0;    ///< current log size
    bool replayed_journal = false;  ///< recovery replayed an armed journal
    std::uint64_t truncated_bytes = 0;  ///< torn tail discarded on open
    std::uint64_t recover_us = 0;  ///< journal replay + log scan on open
  };

  /// Invoked once per intact frame during recovery, in log order (so a
  /// superseding re-append of a key arrives after the frame it
  /// supersedes — last-wins for map-building callers).
  using ReplayFn =
      std::function<void(std::uint64_t key, std::string_view payload)>;

  /// Opens (creating if absent) and recovers the log at `path`;
  /// `PATH.journal` sits beside it. `on_record` may be empty.
  /// \throws std::system_error on I/O errors.
  explicit DurableLog(std::string path, const ReplayFn& on_record = {});
  ~DurableLog();

  DurableLog(const DurableLog&) = delete;
  DurableLog& operator=(const DurableLog&) = delete;

  /// Durably append one framed record. When this returns, the record
  /// survives any crash. Thread-safe.
  void append(std::uint64_t key, std::string_view payload);

  /// Group commit: all records become durable together with a single
  /// journal-fsync/log-fsync pair. Either the whole group survives a
  /// crash or none of it does.
  void append_group(
      const std::vector<std::pair<std::uint64_t, std::string>>& group);

  /// Compaction: atomically replace the entire log with exactly
  /// `records` (framed in order), dropping every superseded frame. Runs
  /// through the same doublewrite journal with `log_size_before = 0`,
  /// so the commit point and torn-tail semantics are unchanged: a crash
  /// before the journal fsync leaves the old log intact; a crash after
  /// it replays the full live set on reopen (truncate-to-zero plus group
  /// rewrite — idempotent). Thread-safe.
  void rewrite(
      const std::vector<std::pair<std::uint64_t, std::string>>& records);

  Stats stats() const;
  const std::string& path() const noexcept { return path_; }

  /// Invoked after every durable commit (append / append_group) with
  /// the frame count, framed byte size, and host microseconds the
  /// journal-write + double-fsync pair took — the serve layer's
  /// per-commit latency feed (docs/OBSERVABILITY.md). Called outside
  /// the log's lock; an empty hook (the default) costs one branch.
  using CommitHook = std::function<void(
      std::size_t frames, std::uint64_t bytes, std::uint64_t us)>;
  void set_commit_hook(CommitHook hook);

  /// Close the descriptors and unlink both files. The log is unusable
  /// afterwards (appends throw); used to discard a finished checkpoint.
  void remove_files();

  /// Test hook: after `bytes` further bytes have been physically
  /// written (across log and journal), the writing process exits with
  /// `kWriteFaultExitCode` mid-write, leaving a torn file exactly at
  /// that offset. Negative disables (the default). Driven by the
  /// fork-based crash harness; never enabled in production processes.
  static void set_write_fault_budget(long long bytes);

 private:
  void recover(const ReplayFn& on_record);  ///< construction only
  void append_group_locked(std::string_view group_bytes, std::size_t frames,
                           bool replace = false);

  std::string path_;          ///< immutable after construction
  std::string journal_path_;  ///< immutable after construction
  int log_fd_ = -1;      // guarded_by(mu_)
  int journal_fd_ = -1;  // guarded_by(mu_)
  std::uint64_t log_size_ = 0;  // guarded_by(mu_)
  std::size_t frames_ = 0;      // guarded_by(mu_)
  bool replayed_journal_ = false;      // guarded_by(mu_)
  std::uint64_t truncated_bytes_ = 0;  // guarded_by(mu_)
  std::uint64_t recover_us_ = 0;       // guarded_by(mu_)
  CommitHook commit_hook_;  // guarded_by(mu_)
  mutable std::mutex mu_;
};

}  // namespace pckpt::ckpt
