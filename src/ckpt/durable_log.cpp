#include "ckpt/durable_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include "obs/profiler.hpp"

namespace pckpt::ckpt {

namespace {

constexpr char kRecordMagic[4] = {'P', 'C', 'K', 'R'};
constexpr char kJournalMagic[4] = {'P', 'C', 'K', 'J'};
constexpr std::size_t kRecordHeader = 32;   // magic, len, key, 2 checksums
constexpr std::size_t kJournalHeader = 40;  // + state word and log size
constexpr std::uint32_t kJournalArmed = 1;

// Test hook: bytes of physical writes remaining before the process is
// killed mid-write. Negative = disabled.
std::atomic<long long> g_write_fault_budget{-1};

[[noreturn]] void fail(const std::string& what) {
  throw std::system_error(errno, std::generic_category(),
                          "DurableLog: " + what);
}

/// pwrite that honors the crash-injection budget: when the budget runs
/// out mid-buffer, the written prefix is left on disk (a torn write at
/// an arbitrary byte offset) and the process exits immediately — the
/// closest userspace approximation of power loss the tests can stage.
void xpwrite(int fd, const char* data, std::size_t len, std::uint64_t off) {
  while (len > 0) {
    std::size_t chunk = len;
    bool fault = false;
    const long long budget = g_write_fault_budget.load();
    if (budget >= 0 && static_cast<unsigned long long>(budget) < chunk) {
      chunk = static_cast<std::size_t>(budget);
      fault = true;
    }
    if (chunk > 0) {
      const ssize_t n = ::pwrite(fd, data, chunk, static_cast<off_t>(off));
      if (n < 0) {
        if (errno == EINTR) continue;
        fail("pwrite");
      }
      const auto wrote = static_cast<std::size_t>(n);
      data += wrote;
      len -= wrote;
      off += wrote;
      if (budget >= 0) {
        g_write_fault_budget.fetch_sub(static_cast<long long>(wrote));
      }
    }
    if (fault) {
      ::fsync(fd);
      ::_exit(kWriteFaultExitCode);
    }
  }
}

void xfsync(int fd) {
  if (::fsync(fd) != 0) fail("fsync");
}

void xtruncate(int fd, std::uint64_t size) {
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) fail("ftruncate");
}

std::uint64_t file_size(int fd) {
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) fail("lseek");
  return static_cast<std::uint64_t>(end);
}

std::string read_all(int fd, std::uint64_t size) {
  std::string out(static_cast<std::size_t>(size), '\0');
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n = ::pread(fd, out.data() + got, out.size() - got,
                              static_cast<off_t>(got));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("pread");
    }
    if (n == 0) break;  // racing truncation: treat the rest as torn
    got += static_cast<std::size_t>(n);
  }
  out.resize(got);
  return out;
}

/// Frame one record: 32-byte header + payload.
void frame_record(std::string& out, std::uint64_t key,
                  std::string_view payload) {
  if (payload.size() > 0xffffffffull) {
    throw std::invalid_argument("DurableLog: payload too large");
  }
  const std::size_t header_at = out.size();
  out.append(kRecordMagic, sizeof(kRecordMagic));
  wire::put_u32(out, static_cast<std::uint32_t>(payload.size()));
  wire::put_u64(out, key);
  wire::put_u64(out, fnv1a64(payload));
  wire::put_u64(out, fnv1a64(std::string_view(out.data() + header_at, 24)));
  out.append(payload);
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

void DurableLog::set_write_fault_budget(long long bytes) {
  g_write_fault_budget.store(bytes);
}

DurableLog::DurableLog(std::string path, const ReplayFn& on_record)
    : path_(std::move(path)), journal_path_(path_ + ".journal") {
  log_fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (log_fd_ < 0) fail("open " + path_);
  journal_fd_ =
      ::open(journal_path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (journal_fd_ < 0) fail("open " + journal_path_);
  const std::uint64_t t0 = obs::ProfClock::now_ns();
  recover(on_record);
  recover_us_ = (obs::ProfClock::now_ns() - t0) / 1000;
}

DurableLog::~DurableLog() {
  if (log_fd_ >= 0) ::close(log_fd_);
  if (journal_fd_ >= 0) ::close(journal_fd_);
}

// Construction-time only: no other thread can hold a reference yet, so
// the constructor call counts as exclusive access.
// requires(mu_)
void DurableLog::recover(const ReplayFn& on_record) {
  // Phase 1: replay an armed, checksum-valid journal. A journal that
  // fails validation was torn while being written, which means the log
  // append never started — discarding it loses only the uncommitted
  // group.
  const std::uint64_t jsize = file_size(journal_fd_);
  if (jsize >= kJournalHeader) {
    const std::string j = read_all(journal_fd_, jsize);
    const bool header_ok =
        j.size() >= kJournalHeader &&
        std::memcmp(j.data(), kJournalMagic, sizeof(kJournalMagic)) == 0 &&
        wire::get_u64(j.data() + 32) ==
            fnv1a64(std::string_view(j.data(), 32));
    if (header_ok && wire::get_u32(j.data() + 4) == kJournalArmed) {
      const std::uint64_t log_size_before = wire::get_u64(j.data() + 8);
      const std::uint64_t group_len = wire::get_u64(j.data() + 16);
      const std::uint64_t group_fnv = wire::get_u64(j.data() + 24);
      if (j.size() >= kJournalHeader + group_len &&
          fnv1a64(std::string_view(j.data() + kJournalHeader,
                                   static_cast<std::size_t>(group_len))) ==
              group_fnv) {
        // The commit point was reached: make the log reflect exactly
        // log-before + group, regardless of how far the crashed append
        // got. Idempotent — safe to repeat on every reopen.
        xtruncate(log_fd_, log_size_before);
        xpwrite(log_fd_, j.data() + kJournalHeader,
                static_cast<std::size_t>(group_len), log_size_before);
        xfsync(log_fd_);
        replayed_journal_ = true;
      }
    }
  }
  xtruncate(journal_fd_, 0);
  xfsync(journal_fd_);

  // Phase 2: scan the log, handing every intact frame to the replay
  // callback; truncate at the first bad one (torn tail from a crash
  // that never reached the journal commit point).
  const std::uint64_t size = file_size(log_fd_);
  const std::string log = read_all(log_fd_, size);
  std::size_t off = 0;
  while (true) {
    if (log.size() - off < kRecordHeader) break;
    const char* h = log.data() + off;
    if (std::memcmp(h, kRecordMagic, sizeof(kRecordMagic)) != 0) break;
    if (wire::get_u64(h + 24) != fnv1a64(std::string_view(h, 24))) break;
    const std::uint32_t len = wire::get_u32(h + 4);
    if (log.size() - off - kRecordHeader < len) break;
    const std::string_view payload(h + kRecordHeader, len);
    if (fnv1a64(payload) != wire::get_u64(h + 16)) break;
    if (on_record) on_record(wire::get_u64(h + 8), payload);
    ++frames_;
    off += kRecordHeader + len;
  }
  if (off < log.size()) {
    truncated_bytes_ = log.size() - off;
    xtruncate(log_fd_, off);
    xfsync(log_fd_);
  }
  log_size_ = off;
}

// requires(mu_)
void DurableLog::append_group_locked(std::string_view group_bytes,
                                     std::size_t frames, bool replace) {
  if (log_fd_ < 0) {
    throw std::logic_error("DurableLog: append after remove_files()");
  }
  // Step 1-2: journal header + group bytes, one fsync. This fsync is
  // the commit point. A compaction rewrite journals the group against
  // `log_size_before = 0`, so crash replay truncates the log to zero
  // and writes the full live set — the same idempotent recovery path
  // as an ordinary append.
  const std::uint64_t base = replace ? 0 : log_size_;
  std::string j;
  j.reserve(kJournalHeader + group_bytes.size());
  j.append(kJournalMagic, sizeof(kJournalMagic));
  wire::put_u32(j, kJournalArmed);
  wire::put_u64(j, base);
  wire::put_u64(j, group_bytes.size());
  wire::put_u64(j, fnv1a64(group_bytes));
  wire::put_u64(j, fnv1a64(std::string_view(j.data(), 32)));
  j.append(group_bytes);
  xpwrite(journal_fd_, j.data(), j.size(), 0);
  xfsync(journal_fd_);

  // Step 3: the real write. A rewrite drops the old log first; the
  // armed journal covers a crash anywhere in between.
  if (replace) xtruncate(log_fd_, 0);
  xpwrite(log_fd_, group_bytes.data(), group_bytes.size(), base);
  xfsync(log_fd_);
  log_size_ = base + group_bytes.size();
  frames_ = replace ? frames : frames_ + frames;

  // Step 4: disarm. A crash between 3 and 4 just replays the identical
  // group on reopen.
  xtruncate(journal_fd_, 0);
  xfsync(journal_fd_);
}

void DurableLog::set_commit_hook(CommitHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  commit_hook_ = std::move(hook);
}

void DurableLog::append(std::uint64_t key, std::string_view payload) {
  std::string group;
  frame_record(group, key, payload);
  const std::uint64_t t0 = obs::ProfClock::now_ns();
  CommitHook hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    append_group_locked(group, 1);
    hook = commit_hook_;
  }
  if (hook) hook(1, group.size(), (obs::ProfClock::now_ns() - t0) / 1000);
}

void DurableLog::append_group(
    const std::vector<std::pair<std::uint64_t, std::string>>& group) {
  if (group.empty()) return;
  std::string bytes;
  for (const auto& [key, payload] : group) {
    frame_record(bytes, key, payload);
  }
  const std::uint64_t t0 = obs::ProfClock::now_ns();
  CommitHook hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    append_group_locked(bytes, group.size());
    hook = commit_hook_;
  }
  if (hook) {
    hook(group.size(), bytes.size(), (obs::ProfClock::now_ns() - t0) / 1000);
  }
}

void DurableLog::rewrite(
    const std::vector<std::pair<std::uint64_t, std::string>>& records) {
  std::string bytes;
  for (const auto& [key, payload] : records) {
    frame_record(bytes, key, payload);
  }
  const std::uint64_t t0 = obs::ProfClock::now_ns();
  CommitHook hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    append_group_locked(bytes, records.size(), /*replace=*/true);
    hook = commit_hook_;
  }
  if (hook) {
    hook(records.size(), bytes.size(), (obs::ProfClock::now_ns() - t0) / 1000);
  }
}

DurableLog::Stats DurableLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.frames = frames_;
  s.log_bytes = log_size_;
  s.replayed_journal = replayed_journal_;
  s.truncated_bytes = truncated_bytes_;
  s.recover_us = recover_us_;
  return s;
}

void DurableLog::remove_files() {
  std::lock_guard<std::mutex> lock(mu_);
  if (log_fd_ >= 0) ::close(log_fd_);
  if (journal_fd_ >= 0) ::close(journal_fd_);
  log_fd_ = -1;
  journal_fd_ = -1;
  ::unlink(path_.c_str());
  ::unlink(journal_path_.c_str());
}

}  // namespace pckpt::ckpt
