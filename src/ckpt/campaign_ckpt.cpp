#include "ckpt/campaign_ckpt.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include "obs/collector.hpp"
#include "obs/profiler.hpp"

namespace pckpt::ckpt {

namespace {

constexpr std::uint8_t kShardVersion = 1;

/// Sanity caps for decode: a hostile or corrupted payload must not
/// drive allocations. Every event needs at least this many bytes.
constexpr std::size_t kMinEventBytes = 8 + 8 + 8 + 4 + 1 + 1 + 2;

void make_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw std::system_error(errno, std::generic_category(),
                            "CampaignCheckpointer: mkdir " + dir);
  }
}

/// Bounds-checked little-endian cursor over a payload.
struct Reader {
  const char* p = nullptr;
  std::size_t left = 0;
  bool ok = true;

  bool need(std::size_t n) {
    if (left < n) ok = false;
    return ok;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    const auto v = static_cast<std::uint8_t>(static_cast<unsigned char>(*p));
    ++p;
    --left;
    return v;
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    const auto v = wire::get_u16(p);
    p += 2;
    left -= 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    const auto v = wire::get_u32(p);
    p += 4;
    left -= 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    const auto v = wire::get_u64(p);
    p += 8;
    left -= 8;
    return v;
  }
  double f64() {
    if (!need(8)) return 0.0;
    const double v = wire::get_f64(p);
    p += 8;
    left -= 8;
    return v;
  }
  std::string_view bytes(std::size_t n) {
    if (!need(n)) return {};
    const std::string_view v(p, n);
    p += n;
    left -= n;
    return v;
  }
};

void put_stats(std::string& out, const stats::OnlineStats& s) {
  wire::put_u64(out, static_cast<std::uint64_t>(s.count()));
  wire::put_f64(out, s.mean());
  wire::put_f64(out, s.m2());
  wire::put_f64(out, s.min());
  wire::put_f64(out, s.max());
}

stats::OnlineStats get_stats(Reader& r) {
  const auto n = static_cast<std::size_t>(r.u64());
  const double mean_v = r.f64();
  const double m2_v = r.f64();
  const double min_v = r.f64();
  const double max_v = r.f64();
  return stats::OnlineStats::from_moments(n, mean_v, m2_v, min_v, max_v);
}

void put_string(std::string& out, std::string_view s) {
  if (s.size() > 0xffffu) {
    throw std::invalid_argument(
        "CampaignCheckpointer: event name/key longer than 64 KiB");
  }
  wire::put_u16(out, static_cast<std::uint16_t>(s.size()));
  out.append(s);
}

void put_event(std::string& out, const obs::Event& e) {
  wire::put_f64(out, e.t0_s);
  wire::put_f64(out, e.t1_s);
  wire::put_u64(out, e.run_id);
  wire::put_u32(out, static_cast<std::uint32_t>(e.track));
  out.push_back(static_cast<char>(static_cast<std::uint8_t>(e.category)));
  out.push_back(static_cast<char>(static_cast<std::uint8_t>(e.field_count)));
  put_string(out, e.name);
  for (std::size_t i = 0; i < e.field_count; ++i) {
    put_string(out, e.fields[i].key);
    wire::put_f64(out, e.fields[i].value);
  }
}

bool get_event(Reader& r, StringInterner& names, obs::Event& e) {
  e.t0_s = r.f64();
  e.t1_s = r.f64();
  e.run_id = r.u64();
  e.track = static_cast<std::int32_t>(r.u32());
  const std::uint8_t cat = r.u8();
  const std::uint8_t nfields = r.u8();
  if (!r.ok || cat > static_cast<std::uint8_t>(obs::Category::kKernel) ||
      nfields > obs::Event::kMaxFields) {
    return false;
  }
  e.category = static_cast<obs::Category>(cat);
  const std::uint16_t name_len = r.u16();
  const std::string_view name = r.bytes(name_len);
  if (!r.ok) return false;
  e.name = names.intern(name);
  e.field_count = nfields;
  for (std::size_t i = 0; i < nfields; ++i) {
    const std::uint16_t key_len = r.u16();
    const std::string_view key = r.bytes(key_len);
    const double value = r.f64();
    if (!r.ok) return false;
    e.fields[i] = obs::Event::Field{names.intern(key), value};
  }
  return true;
}

}  // namespace

std::string hex_key(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

std::string encode_shard(const core::CampaignResult& result,
                         const obs::CampaignTraceCollector* trace,
                         std::size_t first_run, std::size_t last_run) {
  std::string out;
  out.push_back(static_cast<char>(kShardVersion));
  out.push_back(static_cast<char>(static_cast<std::uint8_t>(result.kind)));
  out.push_back(trace != nullptr ? '\x01' : '\x00');
  wire::put_u64(out, static_cast<std::uint64_t>(result.runs));
  put_stats(out, result.checkpoint_s);
  put_stats(out, result.recomputation_s);
  put_stats(out, result.recovery_s);
  put_stats(out, result.migration_s);
  put_stats(out, result.total_overhead_s);
  put_stats(out, result.makespan_s);
  put_stats(out, result.ft_ratio);
  put_stats(out, result.mean_oci_s);
  wire::put_f64(out, result.failures);
  wire::put_f64(out, result.predicted);
  wire::put_f64(out, result.mitigated_ckpt);
  wire::put_f64(out, result.mitigated_lm);
  wire::put_f64(out, result.unhandled);
  wire::put_f64(out, result.false_positives);
  if (trace != nullptr) {
    wire::put_u64(out, static_cast<std::uint64_t>(last_run - first_run));
    for (std::size_t i = first_run; i < last_run; ++i) {
      const auto& events = trace->events_for(i);
      wire::put_u64(out, static_cast<std::uint64_t>(events.size()));
      for (const obs::Event& e : events) put_event(out, e);
    }
  }
  return out;
}

bool decode_shard(std::string_view bytes, StringInterner& names,
                  DecodedShard& out) {
  Reader r{bytes.data(), bytes.size()};
  if (r.u8() != kShardVersion) return false;
  const std::uint8_t kind = r.u8();
  const std::uint8_t has_trace = r.u8();
  if (!r.ok || kind > static_cast<std::uint8_t>(core::ModelKind::kP2) ||
      has_trace > 1) {
    return false;
  }
  out.result = core::CampaignResult{};
  out.result.kind = static_cast<core::ModelKind>(kind);
  out.result.runs = static_cast<std::size_t>(r.u64());
  out.result.checkpoint_s = get_stats(r);
  out.result.recomputation_s = get_stats(r);
  out.result.recovery_s = get_stats(r);
  out.result.migration_s = get_stats(r);
  out.result.total_overhead_s = get_stats(r);
  out.result.makespan_s = get_stats(r);
  out.result.ft_ratio = get_stats(r);
  out.result.mean_oci_s = get_stats(r);
  out.result.failures = r.f64();
  out.result.predicted = r.f64();
  out.result.mitigated_ckpt = r.f64();
  out.result.mitigated_lm = r.f64();
  out.result.unhandled = r.f64();
  out.result.false_positives = r.f64();
  out.has_trace = has_trace == 1;
  out.trial_events.clear();
  if (out.has_trace) {
    const std::uint64_t trials = r.u64();
    if (!r.ok || trials > r.left / 8 + 1) return false;
    out.trial_events.resize(static_cast<std::size_t>(trials));
    for (auto& trial : out.trial_events) {
      const std::uint64_t count = r.u64();
      if (!r.ok || count > r.left / kMinEventBytes + 1) return false;
      trial.resize(static_cast<std::size_t>(count));
      for (obs::Event& e : trial) {
        if (!get_event(r, names, e)) return false;
      }
    }
  }
  return r.ok && r.left == 0;
}

CampaignCheckpointer::CampaignCheckpointer(const std::string& dir,
                                           std::string manifest_text,
                                           std::size_t runs, bool resume)
    : dir_(dir),
      manifest_text_(std::move(manifest_text)),
      key_(fnv1a64(manifest_text_)),
      plan_(exec::plan_shards(runs)) {
  manifest_payload_ = std::string(kCkptSchema) + "\n" +
                      "total=" + std::to_string(plan_.total) + "\n" +
                      "shard_size=" + std::to_string(plan_.shard_size) +
                      "\n----\n" + manifest_text_;
  make_dir(dir_);
  const std::string path = dir_ + "/" + hex_key(key_) + ".ckpt";
  if (!resume) {
    ::unlink(path.c_str());
    ::unlink((path + ".journal").c_str());
  }
  payloads_.assign(plan_.count(), std::string());
  bool have_manifest = false;
  std::string found_manifest;
  log_.emplace(path, [&](std::uint64_t k, std::string_view p) {
    if (k == 0) {
      found_manifest.assign(p);
      have_manifest = true;
      return;
    }
    const std::uint64_t idx = k - 1;
    if (idx < payloads_.size()) payloads_[idx] = std::string(p);
  });
  if (have_manifest && found_manifest != manifest_payload_) {
    // A different campaign's file (key collision) or a stale plan:
    // discard everything and start over — resuming into it would merge
    // foreign shards.
    log_->remove_files();
    log_.reset();
    std::fill(payloads_.begin(), payloads_.end(), std::string());
    log_.emplace(path, DurableLog::ReplayFn{});
    have_manifest = false;
  }
  if (have_manifest) {
    reused_ = true;
  } else {
    log_->append(0, manifest_payload_);
  }
  while (prefix_ < payloads_.size() && !payloads_[prefix_].empty()) {
    ++prefix_;
  }
}

bool CampaignCheckpointer::load_shard(std::size_t shard,
                                      core::CampaignResult& out,
                                      obs::CampaignTraceCollector* trace) {
  if (shard >= prefix_) return false;
  DecodedShard d;
  if (!decode_shard(payloads_[shard], names_, d)) return false;
  if (trace != nullptr) {
    // A shard committed without a trace section cannot satisfy a traced
    // resume: report it missing so the engine re-executes (and then
    // re-commits, with trace) from here on.
    if (!d.has_trace) return false;
    const std::size_t first = plan_.begin(shard);
    if (d.trial_events.size() != plan_.end(shard) - first) return false;
    for (std::size_t t = 0; t < d.trial_events.size(); ++t) {
      auto& sink = trace->sink_for(first + t);
      for (const obs::Event& e : d.trial_events[t]) sink.emit(e);
    }
  }
  out = d.result;
  ++resumed_;
  return true;
}

void CampaignCheckpointer::commit_shard(
    std::size_t shard, const core::CampaignResult& result,
    std::size_t first_run, std::size_t last_run,
    const obs::CampaignTraceCollector* trace) {
  const std::uint64_t t0 = obs::ProfClock::now_ns();
  log_->append(1 + static_cast<std::uint64_t>(shard),
               encode_shard(result, trace, first_run, last_run));
  ++committed_;
  if (commit_hook_) {
    commit_hook_(shard, (obs::ProfClock::now_ns() - t0) / 1000);
  }
}

CampaignCheckpointer::Stats CampaignCheckpointer::stats() const {
  Stats s;
  s.shards_total = plan_.count();
  s.committed_prefix = prefix_;
  s.resumed = resumed_;
  s.committed = committed_;
  s.reused = reused_;
  const DurableLog::Stats ls = log_->stats();
  s.replayed_journal = ls.replayed_journal;
  s.truncated_bytes = ls.truncated_bytes;
  s.recover_us = ls.recover_us;
  return s;
}

void CampaignCheckpointer::remove() { log_->remove_files(); }

}  // namespace pckpt::ckpt
