#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/durable_log.hpp"
#include "core/campaign.hpp"
#include "exec/parallel_campaign.hpp"
#include "obs/event.hpp"

/// \file campaign_ckpt.hpp
/// Campaign snapshot/resume (docs/CHECKPOINTING.md): a
/// `CampaignCheckpointer` persists a campaign manifest plus every
/// completed shard's `CampaignResult` (and, when tracing, the shard's
/// trial events) into a `DurableLog`, so an interrupted campaign
/// resumes from the last committed shard and merges to byte-identical
/// `--jsonl`/trace output at any `--jobs`.
///
/// Record keys within the log:
///  - key 0: the manifest — schema line, shard plan, and the caller's
///    manifest text (canonical query text in the tools). Validated on
///    reopen; a mismatch discards the file and starts fresh.
///  - key 1+i: shard `i`'s payload (encode_shard below). Shards are
///    committed in ascending order by the engine, so the committed set
///    on disk is always a prefix; a superseding re-append (e.g. after
///    a trace-availability mismatch forces re-execution) wins on
///    replay like any DurableLog record.
///
/// Determinism contract: a shard payload stores the OnlineStats
/// moments and event doubles as IEEE-754 bit patterns, so a loaded
/// shard is indistinguishable — bit for bit — from a freshly executed
/// one, and the ascending-order merge of mixed loaded/executed shards
/// equals the uninterrupted run's.

namespace pckpt::ckpt {

/// Schema tag of the manifest record; bump when the payload format
/// changes so stale checkpoints restart instead of misparsing.
inline constexpr std::string_view kCkptSchema = "pckpt-ckpt/1";

/// Fixed-width lowercase hex rendering of a manifest key (16 chars, no
/// prefix) — the checkpoint file's name stem.
std::string hex_key(std::uint64_t key);

/// Stable-address string pool. `obs::Event` carries non-owning
/// `const char*` names and field keys (static literals when emitted
/// live); decoded events point into this pool instead, which must
/// outlive every event that references it.
class StringInterner {
 public:
  const char* intern(std::string_view s) {
    return set_.emplace(s).first->c_str();
  }

 private:
  std::set<std::string, std::less<>> set_;
};

/// Serialize one shard: the result's moments, counters, and (when
/// `trace` is non-null) the events of trials `[first_run, last_run)`.
/// Pure function of its inputs — the byte-identity tests compare
/// encodings to assert bitwise result equality.
std::string encode_shard(const core::CampaignResult& result,
                         const obs::CampaignTraceCollector* trace,
                         std::size_t first_run, std::size_t last_run);

/// A decoded shard payload. `trial_events` is empty unless the payload
/// carried a trace section; event names/keys are interned via the
/// caller's pool.
struct DecodedShard {
  core::CampaignResult result;
  bool has_trace = false;
  std::vector<std::vector<obs::Event>> trial_events;
};

/// Decode `bytes`; returns false (leaving `out` unspecified) on any
/// malformed or version-mismatched payload.
bool decode_shard(std::string_view bytes, StringInterner& names,
                  DecodedShard& out);

class CampaignCheckpointer final : public core::CampaignCheckpointSink {
 public:
  struct Stats {
    std::size_t shards_total = 0;
    std::size_t committed_prefix = 0;  ///< committed shards found on open
    std::size_t resumed = 0;           ///< shards served to the engine
    std::size_t committed = 0;         ///< shards committed this run
    bool reused = false;               ///< a matching manifest was found
    bool replayed_journal = false;
    std::uint64_t truncated_bytes = 0;
    std::uint64_t recover_us = 0;  ///< DurableLog open-time recovery cost
  };

  /// Opens (resuming or creating) the checkpoint for the campaign
  /// identified by `manifest_text` under `dir` (created if missing,
  /// one level). The file is `DIR/<fnv1a64(manifest_text) hex>.ckpt`.
  /// `runs` must equal the campaign's trial count — the shard plan is
  /// derived exactly as `run_campaign` derives it. With `resume`
  /// false, or when the existing file's manifest does not match,
  /// any previous state is discarded and a fresh manifest is written.
  /// \throws std::system_error on I/O errors.
  CampaignCheckpointer(const std::string& dir, std::string manifest_text,
                       std::size_t runs, bool resume);

  bool load_shard(std::size_t shard, core::CampaignResult& out,
                  obs::CampaignTraceCollector* trace) override;
  void commit_shard(std::size_t shard, const core::CampaignResult& result,
                    std::size_t first_run, std::size_t last_run,
                    const obs::CampaignTraceCollector* trace) override;

  std::uint64_t key() const noexcept { return key_; }
  const std::string& path() const noexcept { return log_->path(); }
  const exec::ShardPlan& plan() const noexcept { return plan_; }

  /// Committed shards found on disk at open time (always a prefix).
  std::size_t committed_prefix() const noexcept { return prefix_; }

  Stats stats() const;

  /// Invoked after every durable shard commit with the shard index and
  /// the host microseconds the journal/log fsync pair took — feeds the
  /// serve layer's per-shard ckpt-commit histogram. Set before handing
  /// the sink to the engine; an empty hook (the default) is one branch.
  using CommitHook = std::function<void(std::size_t shard, std::uint64_t us)>;
  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }

  /// Discard the checkpoint files — the campaign completed and its
  /// result was persisted upstream (JSONL, result store).
  void remove();

 private:
  std::string dir_;
  std::string manifest_text_;
  std::string manifest_payload_;
  std::uint64_t key_ = 0;
  exec::ShardPlan plan_;
  std::optional<DurableLog> log_;
  std::vector<std::string> payloads_;  ///< replayed shard payloads by index
  std::size_t prefix_ = 0;
  bool reused_ = false;
  std::size_t resumed_ = 0;
  std::size_t committed_ = 0;
  CommitHook commit_hook_;
  StringInterner names_;
};

}  // namespace pckpt::ckpt
