#include "failure/trace.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/profiler.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"

namespace pckpt::failure {

FailureTrace::FailureTrace(const FailureSystem& system, int job_nodes,
                           const LeadTimeModel& leads,
                           const PredictorConfig& predictor,
                           std::uint64_t seed, double horizon_s)
    : system_(&system),
      job_nodes_(job_nodes),
      leads_(&leads),
      predictor_(predictor),
      seed_(seed),
      horizon_s_(horizon_s),
      rate_per_s_(system.job_rate_per_second(job_nodes)) {
  predictor_.validate();
  if (job_nodes < 1) {
    throw std::invalid_argument("FailureTrace: job_nodes must be >= 1");
  }
  if (!(horizon_s > 0.0)) {
    throw std::invalid_argument("FailureTrace: horizon must be > 0");
  }
  generate();
}

void FailureTrace::ensure_horizon(double t_s) {
  if (t_s <= horizon_s_) return;
  horizon_s_ = std::max(t_s, horizon_s_ * 2.0);
  generate();
}

void FailureTrace::generate() {
  obs::ScopedTimer prof_span("failure.trace_gen");
  failures_.clear();
  events_.clear();

  // Stream 0: the failure renewal process (each failure consumes a fixed
  // draw pattern, so a longer horizon reproduces the same prefix).
  rnd::Xoshiro256 fail_rng(rnd::derive_seed(seed_, 0));
  // Stream 1: the independent false-positive process.
  rnd::Xoshiro256 fp_rng(rnd::derive_seed(seed_, 1));

  const rnd::Weibull interarrival(system_->weibull_shape,
                                  system_->job_scale_hours(job_nodes_) *
                                      3600.0);
  const rnd::Bernoulli predicted(predictor_.recall);
  const rnd::LogNormal lead_error(0.0, predictor_.lead_error_sigma);
  // Stream 2: lead-estimation noise (separate stream so enabling it does
  // not perturb the failure schedule).
  rnd::Xoshiro256 noise_rng(rnd::derive_seed(seed_, 2));
  auto estimate = [&](double actual_lead) {
    if (predictor_.lead_error_sigma == 0.0) return actual_lead;
    return actual_lead * lead_error(noise_rng);
  };

  double t = 0.0;
  while (true) {
    t += interarrival(fail_rng);
    const int node =
        static_cast<int>(rnd::uniform_index(fail_rng, job_nodes_));
    const auto lead = leads_->sample(fail_rng);
    const bool is_predicted = predicted(fail_rng);
    if (t > horizon_s_) break;  // draws above consumed for determinism
    Failure f;
    f.time_s = t;
    f.node = node;
    f.sequence_id = lead.sequence_id;
    f.lead_s = lead.lead_seconds * predictor_.lead_scale;
    f.predicted = is_predicted;
    failures_.push_back(f);
  }

  for (std::size_t i = 0; i < failures_.size(); ++i) {
    const Failure& f = failures_[i];
    if (f.predicted) {
      TraceEvent pred;
      pred.kind = TraceEvent::Kind::kPrediction;
      pred.time_s = std::max(0.0, f.time_s - f.lead_s);
      pred.node = f.node;
      pred.lead_s = f.time_s - pred.time_s;
      pred.predicted_lead_s = estimate(pred.lead_s);
      pred.failure_index = i;
      events_.push_back(pred);
    }
    TraceEvent fail;
    fail.kind = TraceEvent::Kind::kFailure;
    fail.time_s = f.time_s;
    fail.node = f.node;
    fail.lead_s = f.lead_s;
    fail.predicted_lead_s = f.lead_s;
    fail.failure_index = i;
    events_.push_back(fail);
  }

  // False positives: Poisson stream whose rate makes FPs the configured
  // fraction of all predictions (see PredictorConfig::fp_stream_factor).
  const double fp_rate = rate_per_s_ * predictor_.fp_stream_factor();
  if (fp_rate > 0.0) {
    const rnd::Exponential fp_gap(fp_rate);
    double tf = 0.0;
    while (true) {
      tf += fp_gap(fp_rng);
      const int node =
          static_cast<int>(rnd::uniform_index(fp_rng, job_nodes_));
      const auto lead = leads_->sample(fp_rng);
      if (tf > horizon_s_) break;
      TraceEvent pred;
      pred.kind = TraceEvent::Kind::kPrediction;
      pred.time_s = tf;
      pred.node = node;
      pred.lead_s = lead.lead_seconds * predictor_.lead_scale;
      pred.predicted_lead_s = pred.lead_s;  // FP leads are pure estimates
      pred.failure_index = TraceEvent::kNoFailure;
      events_.push_back(pred);
    }
  }

  std::sort(events_.begin(), events_.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.time_s != b.time_s) return a.time_s < b.time_s;
              // Predictions before failures at identical timestamps.
              if (a.kind != b.kind) {
                return a.kind == TraceEvent::Kind::kPrediction;
              }
              return a.failure_index < b.failure_index;
            });
}

}  // namespace pckpt::failure
