#pragma once

#include <string>
#include <string_view>
#include <vector>

/// \file system_catalog.hpp
/// The Weibull failure distributions of the paper's Table III, plus the
/// system-to-job rescaling used to derive per-job failure processes.

namespace pckpt::failure {

/// One HPC system's fitted failure inter-arrival distribution.
/// `scale_hours` is the Weibull scale of the *system-wide* inter-arrival
/// process over `total_nodes` nodes.
struct FailureSystem {
  std::string name;
  double weibull_shape;
  double weibull_scale_hours;
  int total_nodes;

  /// System-wide mean time between failures in hours.
  double system_mtbf_hours() const;

  /// Weibull scale for a job running on `job_nodes` of the system's nodes.
  /// Failures hit nodes uniformly at random (Sec. III), so the job sees the
  /// system stream thinned by c/N: rate scales linearly with the node
  /// share, shape is preserved (the standard approximation, cf. Tiwari et
  /// al.): scale_job = scale_sys * N_sys / c.
  double job_scale_hours(int job_nodes) const;

  /// Mean time between failures hitting the job, in hours.
  double job_mtbf_hours(int job_nodes) const;

  /// Long-run failure rate for the job in failures per second (the
  /// "lambda * c" of Young's formula, Eq. 1).
  double job_rate_per_second(int job_nodes) const;
};

/// Table III: LANL System 8, LANL System 18, OLCF Titan.
const std::vector<FailureSystem>& system_catalog();

/// Lookup by name ("lanl8", "lanl18", "titan" — case-insensitive, also
/// accepts the full names used in the paper). Throws std::out_of_range for
/// unknown systems.
const FailureSystem& system_by_name(std::string_view name);

}  // namespace pckpt::failure
