#include "failure/log_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "random/distributions.hpp"

namespace pckpt::failure {

void ChainTemplate::validate() const {
  if (phrases.size() < 2) {
    throw std::invalid_argument(
        "ChainTemplate: need at least two phrases (precursor + failure)");
  }
  for (const auto& p : phrases) {
    if (p.empty()) {
      throw std::invalid_argument("ChainTemplate: empty phrase");
    }
  }
  if (!(median_gap_s > 0.0) || !(gap_sigma >= 0.0) || !(weight > 0.0)) {
    throw std::invalid_argument("ChainTemplate: bad gap/weight parameters");
  }
}

GeneratedLog generate_log(const std::vector<ChainTemplate>& templates,
                          const LogGenConfig& cfg) {
  if (templates.empty()) {
    throw std::invalid_argument("generate_log: no templates");
  }
  for (const auto& t : templates) t.validate();
  if (cfg.nodes < 1 || !(cfg.horizon_s > 0.0) ||
      !(cfg.chains_per_hour > 0.0) || !(cfg.noise_per_hour >= 0.0)) {
    throw std::invalid_argument("generate_log: bad config");
  }

  rnd::Xoshiro256 rng(cfg.seed);
  std::vector<double> weights;
  weights.reserve(templates.size());
  for (const auto& t : templates) weights.push_back(t.weight);
  const rnd::DiscreteWeights pick(weights);

  GeneratedLog out;

  // Chain instances: Poisson arrivals over the horizon.
  const rnd::Exponential chain_gap(cfg.chains_per_hour / 3600.0);
  double t = 0.0;
  while (true) {
    t += chain_gap(rng);
    if (t > cfg.horizon_s) break;
    const auto& tmpl = templates[pick(rng)];
    const int node = static_cast<int>(rnd::uniform_index(
        rng, static_cast<std::uint64_t>(cfg.nodes)));
    const rnd::LogNormal gap =
        rnd::LogNormal::from_median(tmpl.median_gap_s, tmpl.gap_sigma);
    ChainInstance inst;
    inst.template_id = tmpl.id;
    inst.node = node;
    inst.start_s = t;
    double at = t;
    for (std::size_t i = 0; i < tmpl.phrases.size(); ++i) {
      if (i > 0) at += gap(rng);
      out.events.push_back(LogEvent{at, node, tmpl.phrases[i]});
    }
    inst.end_s = at;
    out.truth.push_back(inst);
  }

  // Background noise.
  if (cfg.noise_per_hour > 0.0) {
    const rnd::Exponential noise_gap(cfg.noise_per_hour / 3600.0);
    static const char* kNoise[] = {
        "sshd session opened",   "nfs client renew",
        "cron job finished",     "lustre stats rollover",
        "thermal reading ok",    "scheduler heartbeat",
    };
    double tn = 0.0;
    while (true) {
      tn += noise_gap(rng);
      if (tn > cfg.horizon_s) break;
      const int node = static_cast<int>(rnd::uniform_index(
          rng, static_cast<std::uint64_t>(cfg.nodes)));
      out.events.push_back(LogEvent{
          tn, node, kNoise[rnd::uniform_index(rng, 6)]});
    }
  }

  std::sort(out.events.begin(), out.events.end(),
            [](const LogEvent& a, const LogEvent& b) {
              return a.time_s < b.time_s;
            });
  std::sort(out.truth.begin(), out.truth.end(),
            [](const ChainInstance& a, const ChainInstance& b) {
              return a.start_s < b.start_s;
            });
  return out;
}

std::vector<ChainInstance> detect_chains(
    const std::vector<LogEvent>& events,
    const std::vector<ChainTemplate>& templates, double max_gap_s) {
  for (const auto& t : templates) t.validate();
  if (!(max_gap_s > 0.0)) {
    throw std::invalid_argument("detect_chains: max_gap_s must be > 0");
  }

  struct Partial {
    std::size_t next_phrase = 0;
    double start_s = 0;
    double last_s = 0;
    bool active = false;
  };
  // State per (node, template).
  std::map<std::pair<int, std::size_t>, Partial> state;
  std::vector<ChainInstance> found;

  for (const auto& ev : events) {
    for (std::size_t ti = 0; ti < templates.size(); ++ti) {
      const auto& tmpl = templates[ti];
      auto& p = state[{ev.node, ti}];
      if (p.active && ev.time_s - p.last_s > max_gap_s) {
        p = Partial{};  // stale partial match abandoned
      }
      const std::size_t want = p.active ? p.next_phrase : 0;
      if (ev.phrase != tmpl.phrases[want]) continue;
      if (!p.active) {
        p.active = true;
        p.start_s = ev.time_s;
        p.next_phrase = 0;
      }
      p.last_s = ev.time_s;
      ++p.next_phrase;
      if (p.next_phrase == tmpl.phrases.size()) {
        ChainInstance inst;
        inst.template_id = tmpl.id;
        inst.node = ev.node;
        inst.start_s = p.start_s;
        inst.end_s = ev.time_s;
        found.push_back(inst);
        p = Partial{};
      }
    }
  }
  std::sort(found.begin(), found.end(),
            [](const ChainInstance& a, const ChainInstance& b) {
              return a.start_s < b.start_s;
            });
  return found;
}

LeadTimeModel fit_lead_time_model(
    const std::vector<ChainInstance>& chains,
    const std::vector<ChainTemplate>& templates) {
  std::map<int, std::vector<double>> by_template;
  for (const auto& c : chains) {
    if (c.lead_s() > 0.0) by_template[c.template_id].push_back(c.lead_s());
  }
  std::vector<LeadTimeSequence> seqs;
  for (const auto& tmpl : templates) {
    auto it = by_template.find(tmpl.id);
    if (it == by_template.end() || it->second.size() < 2) continue;
    const auto& leads = it->second;
    double log_mean = 0.0;
    for (double x : leads) log_mean += std::log(x);
    log_mean /= static_cast<double>(leads.size());
    double log_var = 0.0;
    for (double x : leads) {
      const double d = std::log(x) - log_mean;
      log_var += d * d;
    }
    log_var /= static_cast<double>(leads.size() - 1);
    LeadTimeSequence s;
    s.id = tmpl.id;
    s.description = tmpl.phrases.front() + " ... " + tmpl.phrases.back();
    s.median_seconds = std::exp(log_mean);
    s.sigma = std::sqrt(log_var);
    s.weight = static_cast<double>(leads.size());
    seqs.push_back(s);
  }
  if (seqs.empty()) {
    throw std::invalid_argument(
        "fit_lead_time_model: no template has enough detections");
  }
  return LeadTimeModel(std::move(seqs));
}

std::vector<ChainTemplate> example_chain_templates() {
  return {
      {1,
       {"EDAC MC0 correctable error", "EDAC MC0 error burst",
        "kernel panic - MCE"},
       12.0,
       0.25,
       5.0},
      {2,
       {"ib0 link flapping", "ib0 excessive retries", "node unreachable"},
       20.0,
       0.30,
       3.0},
      {3,
       {"ps0 voltage droop", "ps0 undervoltage alarm", "ps0 shutdown",
        "node power loss"},
       8.0,
       0.20,
       2.0},
  };
}

}  // namespace pckpt::failure
