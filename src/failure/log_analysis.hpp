#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "failure/lead_time_model.hpp"
#include "random/rng.hpp"

/// \file log_analysis.hpp
/// A miniature Desh-style log analysis pipeline (paper Sec. II): the
/// paper's lead-time distribution comes from mining HPC system logs for
/// recurring phrase sequences ("failure chains") and measuring the time
/// between a chain's first phrase and the failure it ends in. The real
/// logs are not public, so this module provides the full loop in
/// miniature: a synthetic log generator that injects chain instances and
/// background noise, a chain detector that recovers them, and a fitter
/// that turns detected chains into a LeadTimeModel for the simulator.

namespace pckpt::failure {

/// One log line.
struct LogEvent {
  double time_s = 0;
  int node = 0;
  std::string phrase;
};

/// A failure-chain class: an ordered phrase sequence whose last phrase is
/// the failure itself; consecutive phrases are separated by lognormal
/// gaps. The chain's lead time is the sum of its gaps.
struct ChainTemplate {
  int id = 0;
  std::vector<std::string> phrases;  ///< >= 2 entries; last is the failure
  double median_gap_s = 10.0;        ///< lognormal median of each gap
  double gap_sigma = 0.3;            ///< lognormal sigma of each gap
  double weight = 1.0;               ///< relative occurrence frequency

  void validate() const;
};

/// A chain instance found in (or injected into) a log.
struct ChainInstance {
  int template_id = 0;
  int node = 0;
  double start_s = 0;  ///< first phrase (prediction point)
  double end_s = 0;    ///< failure phrase
  double lead_s() const { return end_s - start_s; }
};

/// Synthetic log generation config.
struct LogGenConfig {
  double horizon_s = 24.0 * 3600.0;
  int nodes = 64;
  /// Mean chain instances injected per hour (over the whole system).
  double chains_per_hour = 6.0;
  /// Background noise lines per hour (phrases that match no template).
  double noise_per_hour = 600.0;
  std::uint64_t seed = 1;
};

/// Generate a time-ordered synthetic log plus the ground-truth instances.
struct GeneratedLog {
  std::vector<LogEvent> events;
  std::vector<ChainInstance> truth;
};
GeneratedLog generate_log(const std::vector<ChainTemplate>& templates,
                          const LogGenConfig& cfg);

/// Scan a time-ordered log and recover chain instances: per (node,
/// template) the phrases must appear in order; unrelated lines may
/// interleave. A chain whose inter-phrase gap exceeds `max_gap_s` is
/// abandoned (stale partial match).
std::vector<ChainInstance> detect_chains(
    const std::vector<LogEvent>& events,
    const std::vector<ChainTemplate>& templates, double max_gap_s = 3600.0);

/// Fit a LeadTimeModel from detected chains: per template, a lognormal is
/// fitted to the observed lead times (log-space mean/sd) with the
/// occurrence count as the weight. Templates with fewer than two
/// detections are dropped.
/// \throws std::invalid_argument if nothing can be fitted.
LeadTimeModel fit_lead_time_model(
    const std::vector<ChainInstance>& chains,
    const std::vector<ChainTemplate>& templates);

/// A small default template set (used by tests/benches as ground truth).
std::vector<ChainTemplate> example_chain_templates();

}  // namespace pckpt::failure
