#include "failure/system_catalog.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

namespace pckpt::failure {

double FailureSystem::system_mtbf_hours() const {
  return weibull_scale_hours * std::tgamma(1.0 + 1.0 / weibull_shape);
}

double FailureSystem::job_scale_hours(int job_nodes) const {
  // Jobs larger than the reference system are allowed: the paper applies
  // small-system distributions (LANL) to Summit-scale jobs, extrapolating
  // the per-node rate (ratio < 1 => more frequent failures).
  if (job_nodes < 1) {
    throw std::invalid_argument(
        "FailureSystem::job_scale_hours: job_nodes must be >= 1");
  }
  const double ratio =
      static_cast<double>(total_nodes) / static_cast<double>(job_nodes);
  return weibull_scale_hours * ratio;
}

double FailureSystem::job_mtbf_hours(int job_nodes) const {
  return job_scale_hours(job_nodes) * std::tgamma(1.0 + 1.0 / weibull_shape);
}

double FailureSystem::job_rate_per_second(int job_nodes) const {
  return 1.0 / (job_mtbf_hours(job_nodes) * 3600.0);
}

const std::vector<FailureSystem>& system_catalog() {
  static const std::vector<FailureSystem> kSystems = {
      {"LANL System 8", 0.7111, 67.375, 164},
      {"LANL System 18", 0.8170, 6.6293, 1024},
      {"OLCF Titan", 0.6885, 5.4527, 18868},
  };
  return kSystems;
}

const FailureSystem& system_by_name(std::string_view name) {
  std::string key(name);
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  key.erase(std::remove_if(key.begin(), key.end(),
                           [](unsigned char c) { return std::isspace(c); }),
            key.end());
  const auto& systems = system_catalog();
  if (key == "lanl8" || key == "lanlsystem8") return systems[0];
  if (key == "lanl18" || key == "lanlsystem18") return systems[1];
  if (key == "titan" || key == "olcftitan" || key == "summit") {
    // The paper applies Titan's distribution to Summit (Sec. V).
    return systems[2];
  }
  throw std::out_of_range("system_by_name: unknown system '" +
                          std::string(name) + "'");
}

}  // namespace pckpt::failure
