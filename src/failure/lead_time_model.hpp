#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "random/distributions.hpp"
#include "random/rng.hpp"

/// \file lead_time_model.hpp
/// Lead-time-to-failure model: the distribution of time between a failure
/// chain's first log phrase (prediction point) and the failure itself.
///
/// The paper derives this from Desh's failure-chain analysis of three real
/// HPC systems' logs, summarized as ten box plots (Fig. 2a). The raw logs
/// are not public, so we substitute a ten-sequence lognormal mixture whose
/// qualitative structure matches the paper: a dominant tight cluster in the
/// low-40s-of-seconds range, secondary clusters between ~15 s and ~27 s,
/// and two sequences (3 and 4 in the paper) with heavy upper tails. The
/// mixture is the only thing the C/R models see (`sample()` /
/// `ccdf()`), so any recalibration is a data change, not a code change.

namespace pckpt::failure {

/// One failure chain class: a lognormal lead-time distribution plus its
/// relative occurrence frequency in the logs.
struct LeadTimeSequence {
  int id = 0;                 ///< sequence id (1-10, as in Fig. 2a)
  std::string description;    ///< log-chain flavour (documentation only)
  double median_seconds = 0;  ///< lognormal median
  double sigma = 0;           ///< lognormal log-space sigma
  double weight = 0;          ///< occurrence weight (relative)
};

/// Mixture model over failure sequences.
class LeadTimeModel {
 public:
  /// Build from an explicit sequence table (validated: positive medians,
  /// non-negative sigma/weights, at least one positive weight).
  explicit LeadTimeModel(std::vector<LeadTimeSequence> sequences);

  /// The default Summit-calibrated mixture described above.
  static LeadTimeModel summit_default();

  /// Draw (sequence id, lead seconds).
  struct Sample {
    int sequence_id;
    double lead_seconds;
  };
  Sample sample(rnd::Xoshiro256& rng) const;

  /// Complementary CDF: probability a lead time exceeds `seconds`
  /// (computed analytically from the mixture). This is what the hybrid
  /// model's failure-analysis component uses to estimate the LM-eligible
  /// fraction sigma of Eq. 2.
  double ccdf(double seconds) const;

  /// Mean lead time of the mixture in seconds.
  double mean() const;

  const std::vector<LeadTimeSequence>& sequences() const noexcept {
    return sequences_;
  }

 private:
  std::vector<LeadTimeSequence> sequences_;
  std::vector<rnd::LogNormal> dists_;
  rnd::DiscreteWeights picker_;
};

}  // namespace pckpt::failure
