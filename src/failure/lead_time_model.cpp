#include "failure/lead_time_model.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/profiler.hpp"

namespace pckpt::failure {

namespace {

std::vector<double> extract_weights(
    const std::vector<LeadTimeSequence>& seqs) {
  std::vector<double> w;
  w.reserve(seqs.size());
  for (const auto& s : seqs) w.push_back(s.weight);
  return w;
}

/// Standard normal CDF.
double phi(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace

LeadTimeModel::LeadTimeModel(std::vector<LeadTimeSequence> sequences)
    : sequences_(std::move(sequences)),
      picker_(extract_weights(sequences_)) {
  dists_.reserve(sequences_.size());
  for (const auto& s : sequences_) {
    if (!(s.median_seconds > 0.0)) {
      throw std::invalid_argument("LeadTimeModel: median must be > 0");
    }
    dists_.push_back(rnd::LogNormal::from_median(s.median_seconds, s.sigma));
  }
}

LeadTimeModel LeadTimeModel::summit_default() {
  // Synthetic stand-in for the paper's Fig. 2a (see file comment).
  // Weights are occurrence counts scaled to sum to ~100.
  return LeadTimeModel({
      {1, "node heartbeat loss chain", 17.0, 0.12, 17.0},
      {2, "GPU XID error chain", 22.3, 0.05, 7.0},
      {3, "fabric retry storm (heavy tail)", 25.3, 0.05, 8.0},
      {4, "MCE correctable-burst chain (heavy tail)", 300.0, 0.90, 2.5},
      {5, "power-supply droop chain", 43.2, 0.022, 30.0},
      {6, "NVM wear alarm chain", 43.8, 0.020, 20.0},
      {7, "fan/thermal excursion chain", 18.7, 0.08, 1.0},
      {8, "kernel soft-lockup chain", 90.0, 0.60, 3.0},
      {9, "Lustre/GPFS client eviction chain", 39.3, 0.04, 10.0},
      {10, "voltage-regulator fault chain", 44.5, 0.25, 1.5},
  });
}

LeadTimeModel::Sample LeadTimeModel::sample(rnd::Xoshiro256& rng) const {
  obs::ScopedTimer prof_span("rng.lead_sample");
  const std::size_t idx = picker_(rng);
  return Sample{sequences_[idx].id, dists_[idx](rng)};
}

double LeadTimeModel::ccdf(double seconds) const {
  if (seconds <= 0.0) return 1.0;
  double total_weight = 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < sequences_.size(); ++i) {
    const auto& s = sequences_[i];
    total_weight += s.weight;
    // P(LogNormal(median, sigma) > x) = 1 - Phi((ln x - ln median)/sigma).
    double p;
    if (s.sigma == 0.0) {
      p = seconds < s.median_seconds ? 1.0 : 0.0;
    } else {
      const double z =
          (std::log(seconds) - std::log(s.median_seconds)) / s.sigma;
      p = 1.0 - phi(z);
    }
    acc += s.weight * p;
  }
  return acc / total_weight;
}

double LeadTimeModel::mean() const {
  double total_weight = 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < sequences_.size(); ++i) {
    total_weight += sequences_[i].weight;
    acc += sequences_[i].weight * dists_[i].mean();
  }
  return acc / total_weight;
}

}  // namespace pckpt::failure
