#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "failure/lead_time_model.hpp"
#include "failure/predictor.hpp"
#include "failure/system_catalog.hpp"

/// \file trace.hpp
/// Pre-generated failure traces: the concrete sequence of (prediction,
/// failure) events one simulation run replays. A trace depends only on the
/// failure environment (system distribution, job size, lead-time model,
/// predictor quality) and a seed — never on the C/R model — so the same
/// trace can be replayed against every model for a paired comparison.

namespace pckpt::failure {

/// One real failure drawn from the renewal process.
struct Failure {
  double time_s = 0;      ///< occurrence time (simulation seconds)
  int node = 0;           ///< victim node index within the job
  int sequence_id = 0;    ///< failure-chain class (Fig. 2a)
  double lead_s = 0;      ///< actual (scaled) lead time
  bool predicted = false; ///< false => unannounced (false negative)
};

/// One event the simulation reacts to, in time order.
struct TraceEvent {
  enum class Kind { kPrediction, kFailure };
  Kind kind = Kind::kFailure;
  double time_s = 0;
  int node = 0;
  /// For predictions: actual time-to-failure from `time_s`.
  double lead_s = 0;
  /// For predictions: the predictor's lead estimate (== lead_s unless
  /// PredictorConfig::lead_error_sigma > 0). Decisions use this; the
  /// failure still strikes at time_s + lead_s.
  double predicted_lead_s = 0;
  /// Index into failures(); kNoFailure for false positives.
  std::size_t failure_index = kNoFailure;

  static constexpr std::size_t kNoFailure = static_cast<std::size_t>(-1);
  bool is_false_positive() const { return failure_index == kNoFailure; }
};

/// Deterministic failure/prediction schedule for one run.
class FailureTrace {
 public:
  /// \param horizon_s initial generation horizon; extendable later.
  FailureTrace(const FailureSystem& system, int job_nodes,
               const LeadTimeModel& leads, const PredictorConfig& predictor,
               std::uint64_t seed, double horizon_s);

  /// Guarantee events exist up to time `t_s`. Extending regenerates
  /// deterministically: the existing prefix is bit-identical.
  void ensure_horizon(double t_s);

  std::size_t event_count() const noexcept { return events_.size(); }
  const TraceEvent& event(std::size_t i) const { return events_.at(i); }

  const std::vector<Failure>& failures() const noexcept { return failures_; }
  double horizon() const noexcept { return horizon_s_; }

  /// Job-level failure rate (per second) implied by the generator; used by
  /// the C/R models' OCI calculation.
  double job_rate_per_second() const noexcept { return rate_per_s_; }

 private:
  void generate();

  const FailureSystem* system_;
  int job_nodes_;
  const LeadTimeModel* leads_;
  PredictorConfig predictor_;
  std::uint64_t seed_;
  double horizon_s_;
  double rate_per_s_;

  std::vector<Failure> failures_;
  std::vector<TraceEvent> events_;
};

}  // namespace pckpt::failure
