#pragma once

#include <stdexcept>

/// \file predictor.hpp
/// Failure-predictor quality model (an Aarohi/Desh-style online predictor
/// summarized by its confusion-matrix rates — Sec. II and Observation 9).

namespace pckpt::failure {

struct PredictorConfig {
  /// Probability that a real failure is predicted at all (= 1 - false
  /// negative rate). Desh-class predictors achieve ~85% recall; the
  /// FT-ratio plateaus of Tables II/IV (~0.84-0.88) pin the baseline here.
  double recall = 0.85;

  /// Fraction of emitted predictions that are false positives (paper keeps
  /// this at 18% while sweeping the false-negative rate in Observation 9).
  double false_positive_rate = 0.18;

  /// Multiplier applied to every actual lead time — the "lead time
  /// variability" axis of Figs. 4, 7, 8 (1.5 = 50% longer leads).
  double lead_scale = 1.0;

  /// Log-space sigma of multiplicative noise on the *predicted* lead time
  /// (the estimate handed to the C/R model's decision logic); the actual
  /// failure timing is unaffected. 0 = oracle-quality lead estimates, the
  /// paper's setting. The extension experiment `ext_lead_noise` sweeps
  /// this to quantify the accuracy sensitivity the paper lists as future
  /// work.
  double lead_error_sigma = 0.0;

  void validate() const {
    if (!(recall >= 0.0 && recall <= 1.0)) {
      throw std::invalid_argument("PredictorConfig: recall must be in [0,1]");
    }
    if (!(false_positive_rate >= 0.0 && false_positive_rate < 1.0)) {
      throw std::invalid_argument(
          "PredictorConfig: false_positive_rate must be in [0,1)");
    }
    if (!(lead_scale > 0.0)) {
      throw std::invalid_argument("PredictorConfig: lead_scale must be > 0");
    }
    if (!(lead_error_sigma >= 0.0)) {
      throw std::invalid_argument(
          "PredictorConfig: lead_error_sigma must be >= 0");
    }
  }

  double false_negative_rate() const { return 1.0 - recall; }

  /// Rate multiplier for the independent false-positive stream: with
  /// true-prediction rate r, an FP stream of rate r * fp/(1-fp) makes FPs
  /// an `false_positive_rate` fraction of all predictions.
  double fp_stream_factor() const {
    return recall * false_positive_rate / (1.0 - false_positive_rate);
  }
};

}  // namespace pckpt::failure
