#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "random/rng.hpp"

/// \file distributions.hpp
/// Hand-rolled distribution samplers over Xoshiro256 (portable and
/// deterministic; see rng.hpp). Each sampler validates its parameters at
/// construction so model-configuration errors fail fast.

namespace pckpt::rnd {

/// Uniform real on [lo, hi).
class Uniform {
 public:
  Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
    if (!(lo < hi)) throw std::invalid_argument("Uniform: lo must be < hi");
  }
  double operator()(Xoshiro256& g) const {
    return lo_ + (hi_ - lo_) * g.uniform01();
  }

 private:
  double lo_, hi_;
};

/// Bernoulli with probability p of `true`.
class Bernoulli {
 public:
  explicit Bernoulli(double p) : p_(p) {
    if (!(p >= 0.0 && p <= 1.0)) {
      throw std::invalid_argument("Bernoulli: p must be in [0,1]");
    }
  }
  bool operator()(Xoshiro256& g) const { return g.uniform01() < p_; }
  double p() const noexcept { return p_; }

 private:
  double p_;
};

/// Exponential with rate lambda (mean 1/lambda).
class Exponential {
 public:
  explicit Exponential(double lambda) : lambda_(lambda) {
    if (!(lambda > 0.0)) {
      throw std::invalid_argument("Exponential: lambda must be > 0");
    }
  }
  double operator()(Xoshiro256& g) const {
    double u;
    do {
      u = g.uniform01();
    } while (u == 0.0);
    return -std::log(u) / lambda_;
  }

 private:
  double lambda_;
};

/// Weibull with shape k and scale lambda, via inverse transform:
/// X = scale * (-ln U)^(1/k).
class Weibull {
 public:
  Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
    if (!(shape > 0.0) || !(scale > 0.0)) {
      throw std::invalid_argument("Weibull: shape and scale must be > 0");
    }
  }
  double operator()(Xoshiro256& g) const {
    double u;
    do {
      u = g.uniform01();
    } while (u == 0.0);
    return scale_ * std::pow(-std::log(u), 1.0 / shape_);
  }

  double shape() const noexcept { return shape_; }
  double scale() const noexcept { return scale_; }

  /// Mean = scale * Gamma(1 + 1/shape).
  double mean() const { return scale_ * std::tgamma(1.0 + 1.0 / shape_); }

  /// CDF F(x) = 1 - exp(-(x/scale)^shape).
  double cdf(double x) const {
    if (x <= 0.0) return 0.0;
    return 1.0 - std::exp(-std::pow(x / scale_, shape_));
  }

  /// Hazard rate h(x) = (k/λ) (x/λ)^(k-1); decreasing for k < 1 (infant
  /// mortality — the regime of all three Table-III systems).
  double hazard(double x) const {
    if (x <= 0.0) x = 1e-12;
    return (shape_ / scale_) * std::pow(x / scale_, shape_ - 1.0);
  }

 private:
  double shape_, scale_;
};

/// Standard normal via Box–Muller (deterministic two-draw variant).
class Normal {
 public:
  Normal(double mean, double stddev) : mean_(mean), sd_(stddev) {
    if (!(stddev >= 0.0)) {
      throw std::invalid_argument("Normal: stddev must be >= 0");
    }
  }
  double operator()(Xoshiro256& g) const {
    double u1;
    do {
      u1 = g.uniform01();
    } while (u1 == 0.0);
    const double u2 = g.uniform01();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean_ + sd_ * r * std::cos(2.0 * std::numbers::pi * u2);
  }

 private:
  double mean_, sd_;
};

/// Lognormal: exp(Normal(mu, sigma)). Parameterized by the *underlying*
/// normal's mu/sigma; helpers convert from a desired median and shape.
class LogNormal {
 public:
  LogNormal(double mu, double sigma) : normal_(mu, sigma), mu_(mu),
                                       sigma_(sigma) {
    if (!(sigma >= 0.0)) {
      throw std::invalid_argument("LogNormal: sigma must be >= 0");
    }
  }

  /// Construct from the distribution's median and the log-space sigma.
  static LogNormal from_median(double median, double sigma) {
    if (!(median > 0.0)) {
      throw std::invalid_argument("LogNormal: median must be > 0");
    }
    return LogNormal(std::log(median), sigma);
  }

  double operator()(Xoshiro256& g) const { return std::exp(normal_(g)); }

  double median() const { return std::exp(mu_); }
  double mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

 private:
  Normal normal_;
  double mu_, sigma_;
};

/// Discrete distribution over indices 0..n-1 with given non-negative
/// weights (need not be normalized).
class DiscreteWeights {
 public:
  explicit DiscreteWeights(std::vector<double> weights)
      : cumulative_(std::move(weights)) {
    if (cumulative_.empty()) {
      throw std::invalid_argument("DiscreteWeights: empty weights");
    }
    double total = 0.0;
    for (auto& w : cumulative_) {
      if (!(w >= 0.0)) {
        throw std::invalid_argument("DiscreteWeights: negative weight");
      }
      total += w;
      w = total;
    }
    if (!(total > 0.0)) {
      throw std::invalid_argument("DiscreteWeights: all weights zero");
    }
    total_ = total;
  }

  std::size_t operator()(Xoshiro256& g) const {
    const double x = g.uniform01() * total_;
    std::size_t lo = 0, hi = cumulative_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cumulative_[mid] <= x) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  std::size_t size() const noexcept { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
  double total_ = 0.0;
};

/// Uniform integer on [0, n).
inline std::uint64_t uniform_index(Xoshiro256& g, std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform_index: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0}) - ((~std::uint64_t{0}) % n);
  std::uint64_t x;
  do {
    x = g();
  } while (x >= limit);
  return x % n;
}

}  // namespace pckpt::rnd
