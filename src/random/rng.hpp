#pragma once

#include <array>
#include <cstdint>

/// \file rng.hpp
/// xoshiro256** pseudo-random generator with splitmix64 seeding.
///
/// Deterministic across platforms (unlike std::mt19937 + std::*_distribution
/// whose algorithms are implementation-defined for some distributions); all
/// distribution sampling in `distributions.hpp` is written against this
/// engine so campaign results are bit-reproducible everywhere.

namespace pckpt::rnd {

/// splitmix64 step — used to expand a single 64-bit seed into engine state
/// and to derive hierarchical sub-seeds (run -> component -> draw).
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Derive a child seed from a parent seed and a stream index. Used to give
/// every simulation run and every stochastic component its own independent
/// stream while keeping one top-level seed.
constexpr std::uint64_t derive_seed(std::uint64_t parent,
                                    std::uint64_t stream) {
  std::uint64_t s = parent ^ (0x9E3779B97F4A7C15ULL * (stream + 1));
  (void)splitmix64(s);
  return splitmix64(s);
}

/// xoshiro256** engine (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853C49E6748FEA9BULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace pckpt::rnd
