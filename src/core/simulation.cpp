#include "core/simulation.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/oci.hpp"
#include "obs/trace_sink.hpp"

namespace pckpt::core {

double lm_transfer_gb(const workload::Application& app,
                      const workload::Machine& machine, double factor) {
  return std::min(factor * app.ckpt_per_node_gb(), machine.dram_gb);
}

double lm_theta_seconds(const workload::Application& app,
                        const workload::Machine& machine,
                        const iomodel::StorageModel& storage, double factor) {
  return storage.lm_transfer_seconds(lm_transfer_gb(app, machine, factor));
}

double estimate_sigma(const failure::LeadTimeModel& leads,
                      const failure::PredictorConfig& predictor,
                      double theta_s, double margin) {
  // P(scaled lead > margin * theta) = ccdf(margin * theta / lead_scale).
  const double sigma =
      predictor.recall *
      leads.ccdf(margin * theta_s / predictor.lead_scale);
  return std::min(sigma, 0.99);
}

namespace {

using detail::FailureStrike;
using detail::kFpBase;
using detail::VulnerableEntry;

constexpr double kEps = 1e-9;

enum class Phase { kCompute, kBbCkpt, kProactive, kRecovery, kStall, kDone };

/// Why the application process was interrupted (derived from controller
/// state rather than the interrupt payload, so overlapping interrupts at
/// the same timestamp cannot shadow each other).
enum class Wake { kStrike, kProactive, kStall, kSpurious };

struct RecoveryPlan {
  double restore_progress = 0;
  bool from_proactive = false;
  double duration_s = 0;
};

/// One live-migration attempt in flight (keyed by prediction key).
struct LmInfo {
  std::uint64_t generation = 0;
  double start_s = 0;
  int node = 0;
};

/// A pending prediction: the estimated failure deadline plus the victim
/// node (the node is what lets trace events land on per-node tracks).
struct PendingPrediction {
  double deadline_s = 0;
  int node = 0;
};

class Run {
 public:
  Run(const RunSetup& setup, const CrConfig& config)
      : setup_(setup),
        cfg_(config),
        sink_(setup.trace),
        run_id_(setup.run_id),
        trace_(*setup.system, setup.app->nodes, *setup.leads,
               config.predictor, setup.seed,
               setup.app->compute_seconds() * 1.5 + 48.0 * 3600.0),
        total_work_(setup.app->compute_seconds()),
        per_node_gb_(setup.app->ckpt_per_node_gb()),
        nodes_(static_cast<double>(setup.app->nodes)),
        theta_lm_s_(lm_theta_seconds(*setup.app, *setup.machine,
                                     *setup.storage, cfg_.lm_transfer_factor)),
        sigma_(uses_lm(cfg_.kind)
                   ? estimate_sigma(*setup.leads, cfg_.predictor, theta_lm_s_,
                                    cfg_.lm_safety_margin)
                   : 0.0),
        // Per-checkpoint I/O costs depend only on run-constant operating
        // points; resolve them once here instead of per checkpoint.
        t_bb_write_s_(setup.storage->bb_write_seconds(per_node_gb_)),
        t_bb_read_s_(setup.storage->bb_read_seconds(per_node_gb_)),
        pfs_single_s_(setup.storage->pfs_single_node_seconds(per_node_gb_)),
        all_nodes_query_(
            setup.storage->pfs_aggregate_query(nodes_, per_node_gb_)),
        drain_query_(setup.storage->matrix().query(
            std::min(nodes_, static_cast<double>(cfg_.drain_concurrency)),
            per_node_gb_)) {
    if (cfg_.spare_nodes >= 0) {
      spares_available_ = static_cast<std::size_t>(cfg_.spare_nodes);
    }
    // A run whose overheads dwarf the useful work by orders of magnitude
    // indicates an infeasible configuration (e.g. repairs slower than the
    // failure rate); fail loudly instead of simulating forever.
    makespan_guard_s_ = total_work_ * 100.0 + 1000.0 * 3600.0;
  }

  RunResult execute() {
    std::unique_ptr<obs::KernelTraceBridge> kernel_bridge;
    if (sink_ != nullptr && setup_.trace_kernel) {
      kernel_bridge =
          std::make_unique<obs::KernelTraceBridge>(*sink_, run_id_);
      env_.set_tracer(kernel_bridge.get());
    }
    if (sink_ != nullptr) {
      emit(obs::Event::instant(obs::Category::kRun, "run_begin", 0.0,
                               obs::kTrackApp)
               .with("nodes", nodes_)
               .with("work_s", total_work_)
               .with("model", static_cast<double>(cfg_.kind))
               .with("theta_lm_s", theta_lm_s_)
               .with("sigma", sigma_));
    }
    auto app = env_.spawn(app_process()).named("app");
    app_ = app.state();
    auto injector = env_.spawn(injector_process()).named("injector");
    injector_ = injector.state();
    env_.run();
    env_.set_tracer(nullptr);
    if (!env_.process_errors().empty()) {
      std::rethrow_exception(env_.process_errors().front().second);
    }
    result_.compute_s = total_work_;
    return result_;
  }

 private:
  // ------------------------------------------------------------------
  // Controller: reacts to trace events per the configured model.
  // ------------------------------------------------------------------

  void on_prediction(const failure::TraceEvent& ev) {
    if (done_) return;
    const std::size_t key = ev.is_false_positive()
                                ? kFpBase + fp_counter_++
                                : ev.failure_index;
    // All decisions run on the predictor's ESTIMATE of the lead; the
    // actual failure timing comes from the trace's failure event.
    const double deadline = env_.now() + ev.predicted_lead_s;
    if (sink_ != nullptr) {
      emit(instant(obs::Category::kPrediction,
                   ev.is_false_positive() ? "prediction_fp" : "prediction_tp",
                   node_track(ev.node))
               .with("node", ev.node)
               .with("lead_s", ev.lead_s)
               .with("predicted_lead_s", ev.predicted_lead_s)
               .with("deadline_s", deadline));
    }
    if (cfg_.kind == ModelKind::kB) return;  // base model: no prediction use
    if (ev.is_false_positive()) ++result_.false_positives;
    mark_event(ev.is_false_positive() ? MarkerKind::kFalsePositive
                                      : MarkerKind::kPrediction);
    pending_predictions_[key] = PendingPrediction{deadline, ev.node};
    decide(key, deadline, ev.predicted_lead_s, ev.node);
  }

  void decide(std::size_t key, double deadline, double lead_s, int node) {
    switch (cfg_.kind) {
      case ModelKind::kB:
        return;
      case ModelKind::kM1:
      case ModelKind::kP1:
        enqueue_proactive(key, deadline);
        return;
      case ModelKind::kM2:
        if (lead_s >= cfg_.lm_safety_margin * theta_lm_s_) {
          start_lm(key, node);
        }
        // M2 has no fallback for short leads (the gap p-ckpt fills).
        return;
      case ModelKind::kP2:
        if (lead_s >= cfg_.lm_safety_margin * theta_lm_s_) {
          start_lm(key, node);
        } else {
          abort_inflight_lms_into_queue();
          enqueue_proactive(key, deadline);
        }
        return;
    }
  }

  void enqueue_proactive(std::size_t key, double deadline) {
    if (phase_ == Phase::kRecovery) return;  // nothing new to save
    if (proactive_active_) {
      if (round_phase_ == 1 && uses_pckpt(cfg_.kind)) {
        queue_.insert(VulnerableEntry{deadline, key});
      } else {
        // Joins the bulk write already in flight; commits when it ends.
        phase2_pending_.insert(key);
      }
      return;
    }
    queue_.insert(VulnerableEntry{deadline, key});
    if (!proactive_needed_) {
      proactive_needed_ = true;
      app_->interrupt();
    }
  }

  // ---------------------------------------------------------------
  // Replacement-node pool (paper assumption: unlimited; finite with
  // cfg_.spare_nodes >= 0). A failed (or migrated-from) node enters
  // repair and returns to the pool after node_repair_hours, so recovery
  // can always eventually proceed; it may have to wait for a return when
  // the pool is drained.
  // ---------------------------------------------------------------

  /// Move completed repairs back into the pool.
  void refresh_pool() {
    auto it = repair_ends_.begin();
    while (it != repair_ends_.end()) {
      if (*it <= env_.now()) {
        ++spares_available_;
        it = repair_ends_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// A node died (or was drained by LM): it goes into repair and rejoins
  /// the pool later.
  void node_enters_repair() {
    if (cfg_.spare_nodes < 0) return;
    repair_ends_.push_back(env_.now() + cfg_.node_repair_hours * 3600.0);
  }

  /// Try to take a spare immediately (LM targets do not wait).
  bool try_acquire_spare() {
    if (cfg_.spare_nodes < 0) return true;  // unlimited
    refresh_pool();
    if (spares_available_ == 0) return false;
    --spares_available_;
    return true;
  }

  /// Seconds until a replacement can be taken (taking it at that time);
  /// 0 when one is free now. Callers guarantee a repair is in flight
  /// (every strike enqueues one), so this never deadlocks.
  double acquire_spare_wait() {
    if (try_acquire_spare()) return 0.0;
    if (repair_ends_.empty()) return 0.0;  // defensive: nothing to wait on
    auto it = std::min_element(repair_ends_.begin(), repair_ends_.end());
    const double wait = std::max(0.0, *it - env_.now());
    repair_ends_.erase(it);  // that returning node is the replacement
    return wait;
  }

  void start_lm(std::size_t key, int node) {
    if (!try_acquire_spare()) {
      // No migration target available: fall back to p-ckpt in the hybrid
      // model; M2 has no fallback.
      if (cfg_.kind == ModelKind::kP2) {
        auto it = pending_predictions_.find(key);
        if (it != pending_predictions_.end() &&
            it->second.deadline_s > env_.now()) {
          enqueue_proactive(key, it->second.deadline_s);
        }
      }
      return;
    }
    ++result_.lm_attempts;
    mark_event(MarkerKind::kLmStart);
    if (sink_ != nullptr) {
      emit(instant(obs::Category::kMigration, "lm_begin", node_track(node))
               .with("node", node)
               .with("theta_s", theta_lm_s_));
    }
    const auto generation = ++lm_generation_;
    lm_active_[key] = LmInfo{generation, env_.now(), node};
    auto ev = env_.timeout(theta_lm_s_);
    ev->add_callback([this, key, generation](sim::EventCore&) {
      if (done_) return;
      auto it = lm_active_.find(key);
      if (it == lm_active_.end() || it->second.generation != generation) {
        return;  // aborted, or overtaken by the failure
      }
      const LmInfo info = it->second;
      lm_active_.erase(it);
      lm_done_.insert(key);
      pending_predictions_.erase(key);
      mark_event(MarkerKind::kLmComplete);
      if (sink_ != nullptr) {
        emit(obs::Event::span(obs::Category::kMigration, "lm_migrate",
                              info.start_s, env_.now(),
                              node_track(info.node))
                 .with("node", info.node));
      }
      node_enters_repair();  // the drained node is checked out / repaired
      const double stall = cfg_.lm_runtime_dilation * theta_lm_s_;
      if (stall > 0.0 && phase_ == Phase::kCompute) {
        pending_stall_s_ += stall;
        app_->interrupt();
      }
    });
  }

  /// Fig. 5: a short-lead prediction aborts in-flight LMs; the nodes being
  /// migrated are still vulnerable and join the p-ckpt priority queue.
  void abort_inflight_lms_into_queue() {
    for (const auto& [key, info] : lm_active_) {
      ++result_.lm_aborts;
      if (sink_ != nullptr) {
        emit(instant(obs::Category::kMigration, "lm_abort",
                     node_track(info.node))
                 .with("node", info.node));
      }
      auto it = pending_predictions_.find(key);
      const double deadline = it != pending_predictions_.end()
                                  ? it->second.deadline_s
                                  : env_.now();
      if (deadline > env_.now()) {
        queue_.insert(VulnerableEntry{deadline, key});
      }
    }
    lm_active_.clear();
  }

  void on_failure(std::size_t fi) {
    if (done_) return;
    const failure::Failure& f = trace_.failures()[fi];
    if (lm_done_.count(fi) > 0) {
      // The process left the node before it died: failure avoided.
      ++result_.failures;
      if (f.predicted) ++result_.predicted;
      ++result_.mitigated_lm;
      lm_done_.erase(fi);
      if (sink_ != nullptr) {
        emit(instant(obs::Category::kFailure, "failure", node_track(f.node))
                 .with("fi", static_cast<double>(fi))
                 .with("node", f.node)
                 .with("predicted", f.predicted ? 1 : 0)
                 .with("committed", 0)
                 .with("outcome", 2));  // mitigated by live migration
      }
      return;
    }
    ++result_.failures;
    if (f.predicted) ++result_.predicted;
    mark_event(MarkerKind::kFailure);
    node_enters_repair();  // the struck node goes to repair
    lm_active_.erase(fi);  // an in-flight LM loses the race
    pending_predictions_.erase(fi);
    erase_from_queues(fi);
    const bool committed = committed_.count(fi) > 0;
    if (committed) {
      ++result_.mitigated_ckpt;
    } else {
      ++result_.unhandled;
    }
    if (sink_ != nullptr) {
      emit(instant(obs::Category::kFailure, "failure", node_track(f.node))
               .with("fi", static_cast<double>(fi))
               .with("node", f.node)
               .with("predicted", f.predicted ? 1 : 0)
               .with("committed", committed ? 1 : 0)
               .with("outcome", committed ? 1 : 0));
    }
    strikes_.push_back(FailureStrike{fi, committed});
    app_->interrupt();
  }

  void erase_from_queues(std::size_t key) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->key == key) {
        queue_.erase(it);
        break;
      }
    }
    phase2_pending_.erase(key);
  }

  Wake wake_reason() const {
    if (!strikes_.empty()) return Wake::kStrike;
    if (proactive_needed_) return Wake::kProactive;
    if (pending_stall_s_ > 0.0) return Wake::kStall;
    return Wake::kSpurious;
  }

  bool has_uncommitted_strike() const {
    for (const auto& s : strikes_) {
      if (!s.committed) return true;
    }
    return false;
  }

  /// Timeline instrumentation (no-ops unless cfg_.record_timeline).
  /// When a trace sink is attached, the same points also emit phase
  /// spans — the two instruments stay in lockstep by construction.
  void mark(PhaseKind kind, double t0) {
    if (cfg_.record_timeline) {
      result_.timeline.add_segment(kind, t0, env_.now());
    }
    if (sink_ != nullptr && env_.now() > t0) {
      static constexpr struct {
        const char* name;
        obs::Category cat;
      } kPhaseEvent[] = {
          {"compute", obs::Category::kPhase},
          {"ckpt_bb", obs::Category::kCheckpoint},
          {"pckpt_phase1", obs::Category::kCheckpoint},
          {"pckpt_phase2", obs::Category::kCheckpoint},
          {"recovery", obs::Category::kRecovery},
          {"stall", obs::Category::kMigration},
      };
      const auto& ev = kPhaseEvent[static_cast<std::size_t>(kind)];
      emit(obs::Event::span(ev.cat, ev.name, t0, env_.now(), obs::kTrackApp));
    }
  }
  void mark_event(MarkerKind kind) {
    if (cfg_.record_timeline) {
      result_.timeline.add_marker(kind, env_.now());
    }
  }

  // ------------------------------------------------------------------
  // Semantic trace emission (docs/OBSERVABILITY.md). All helpers are
  // no-ops when no sink is attached; the hot path pays one null check.
  // ------------------------------------------------------------------

  void emit(obs::Event e) {
    e.run_id = run_id_;
    sink_->emit(e);
  }

  obs::Event instant(obs::Category cat, const char* name,
                     std::int32_t track) const {
    return obs::Event::instant(cat, name, env_.now(), track);
  }

  static std::int32_t node_track(int node) {
    return obs::kTrackNodeBase + node;
  }

  /// Victim node for a prediction key (failure index or FP key); falls
  /// back to -kTrackNodeBase (track 0 would collide with the app lane)
  /// when the pending entry is already gone.
  int node_of_key(std::size_t key) const {
    if (key < kFpBase) return trace_.failures()[key].node;
    auto it = pending_predictions_.find(key);
    return it != pending_predictions_.end() ? it->second.node
                                            : -obs::kTrackNodeBase;
  }

  RecoveryPlan plan_recovery() const {
    RecoveryPlan plan;
    plan.from_proactive = proactive_restore_ > periodic_restore_;
    plan.restore_progress = std::max(periodic_restore_, proactive_restore_);
    if (plan.from_proactive) {
      // All nodes reload their slice from the PFS (Sec. II checkpoint
      // model) — the expensive path that shows up in P1's recovery bars.
      plan.duration_s = all_nodes_query_.transfer_seconds();
    } else {
      // Healthy nodes restore from their BBs; only the replacement node
      // touches the PFS, contention-free.
      plan.duration_s = std::max(t_bb_read_s_, pfs_single_s_);
    }
    plan.duration_s += cfg_.restart_seconds;
    return plan;
  }

  void check_makespan_guard() {
    if (env_.now() > makespan_guard_s_) {
      // Silence the injector before unwinding so the event loop drains.
      done_ = true;
      if (injector_) injector_->interrupt();
      throw std::runtime_error(
          "simulate_run: makespan guard exceeded — the configuration "
          "cannot make progress (failure rate outruns repair/recovery); "
          "check spare_nodes/node_repair_hours");
    }
  }

  double current_oci() {
    const double t_bb = t_bb_write_s_;
    const double analytic = trace_.job_rate_per_second();
    double rate = analytic;
    if (cfg_.rate_estimation == RateEstimation::kObserved) {
      // Smoothed online estimate: one analytic-rate pseudo-observation,
      // then the empirical count takes over as the run progresses.
      rate = (static_cast<double>(result_.failures) + 1.0) /
             (env_.now() + 1.0 / analytic);
    }
    const double oci =
        uses_lm(cfg_.kind)
            ? sigma_extended_oci_seconds(t_bb, rate, sigma_)
            : young_oci_seconds(t_bb, rate);
    return std::max(cfg_.min_oci_seconds, oci);
  }

  /// Revisit predictions that were pending when a failure tore down an
  /// in-progress proactive action: nodes still expected to fail get a new
  /// chance at mitigation (LM or p-ckpt) with their remaining lead time.
  void reinitiate_pending_predictions() {
    std::vector<std::pair<std::size_t, PendingPrediction>> live;
    for (auto it = pending_predictions_.begin();
         it != pending_predictions_.end();) {
      if (it->second.deadline_s <= env_.now() + kEps) {
        it = pending_predictions_.erase(it);  // stale (FP deadline passed)
      } else {
        live.emplace_back(it->first, it->second);
        ++it;
      }
    }
    for (const auto& [key, pending] : live) {
      if (lm_active_.count(key) || lm_done_.count(key) ||
          committed_.count(key)) {
        continue;  // already being handled
      }
      bool queued = phase2_pending_.count(key) > 0;
      for (const auto& e : queue_) queued = queued || e.key == key;
      if (queued) continue;
      decide(key, pending.deadline_s, pending.deadline_s - env_.now(),
             pending.node);
    }
  }

  // ------------------------------------------------------------------
  // Processes.
  // ------------------------------------------------------------------

  sim::Process injector_process() {
    std::size_t i = 0;
    try {
      while (!done_) {
        if (i >= trace_.event_count()) {
          trace_.ensure_horizon(trace_.horizon() + 720.0 * 3600.0);
          continue;
        }
        const failure::TraceEvent ev = trace_.event(i);  // copy: may realloc
        if (ev.time_s > env_.now()) {
          co_await env_.delay(ev.time_s - env_.now());
        }
        if (done_) break;
        if (ev.kind == failure::TraceEvent::Kind::kPrediction) {
          on_prediction(ev);
        } else {
          on_failure(ev.failure_index);
        }
        ++i;
      }
    } catch (const sim::Interrupted&) {
      // Application finished; stop injecting.
    }
  }

  sim::Process drain_process(double progress, std::uint64_t epoch) {
    // Spectral-style throttled bleed-off: at most `drain_concurrency` nodes
    // write concurrently, so the whole job's data moves at that subset's
    // aggregate bandwidth.
    const double t0 = env_.now();
    // The throttled subset's bandwidth is run-constant: resolved once in
    // the constructor (drain_query_), reused by every drain.
    const double bw = drain_query_.bandwidth_gbps();
    co_await env_.delay(nodes_ * per_node_gb_ / bw);
    const bool committed = epoch == drain_epoch_ && !done_;
    if (committed) {
      periodic_restore_ = std::max(periodic_restore_, progress);
    }
    if (sink_ != nullptr) {
      emit(obs::Event::span(obs::Category::kDrain, "pfs_drain", t0,
                            env_.now(), obs::kTrackDrain)
               .with("progress", progress)
               .with("committed", committed ? 1 : 0));
    }
  }

  sim::Process app_process() {
    enum class Next { kCompute, kBbCkpt, kProactive, kRecovery, kStall, kDone };
    Next next = Next::kCompute;
    RecoveryPlan recovery_plan;

    while (next != Next::kDone) {
      switch (next) {
        // ---------------------------------------------------------- compute
        case Next::kCompute: {
          if (work_done_ >= total_work_ - kEps) {
            next = Next::kDone;
            break;
          }
          check_makespan_guard();
          phase_ = Phase::kCompute;
          const double oci = current_oci();
          result_.oci_sum_s += oci;
          ++result_.oci_samples;
          double remaining =
              std::min(oci, total_work_ - work_done_);
          next = Next::kBbCkpt;
          while (remaining > kEps) {
            const double t0 = env_.now();
            try {
              co_await env_.delay(remaining);
              work_done_ += remaining;
              remaining = 0;
              mark(PhaseKind::kCompute, t0);
            } catch (const sim::Interrupted&) {
              const double elapsed = env_.now() - t0;
              work_done_ += elapsed;
              remaining -= elapsed;
              mark(PhaseKind::kCompute, t0);
              const Wake w = wake_reason();
              if (w == Wake::kSpurious) continue;
              if (w == Wake::kStrike) {
                recovery_plan = plan_recovery();
                next = Next::kRecovery;
              } else if (w == Wake::kProactive) {
                next = Next::kProactive;
              } else {
                next = Next::kStall;
              }
              break;
            }
          }
          if (next == Next::kBbCkpt && work_done_ >= total_work_ - kEps) {
            next = Next::kDone;  // no trailing checkpoint after the last chunk
          }
          break;
        }

        // ----------------------------------------------------------- BB ckpt
        case Next::kBbCkpt: {
          phase_ = Phase::kBbCkpt;
          double remaining = t_bb_write_s_;
          next = Next::kCompute;
          bool completed = true;
          if (sink_ != nullptr) {
            emit(instant(obs::Category::kCheckpoint, "ckpt_bb_begin",
                         obs::kTrackApp)
                     .with("write_s", remaining));
          }
          while (remaining > kEps) {
            const double t0 = env_.now();
            try {
              co_await env_.delay(remaining);
              result_.overheads.checkpoint_s += remaining;
              remaining = 0;
              mark(PhaseKind::kBbCheckpoint, t0);
            } catch (const sim::Interrupted&) {
              const double elapsed = env_.now() - t0;
              result_.overheads.checkpoint_s += elapsed;
              remaining -= elapsed;
              mark(PhaseKind::kBbCheckpoint, t0);
              const Wake w = wake_reason();
              if (w == Wake::kSpurious) continue;
              if (w == Wake::kStall) {
                pending_stall_s_ = 0.0;  // dilation folded into the write
                continue;
              }
              completed = false;  // partial BB write: no drain
              if (w == Wake::kStrike) {
                recovery_plan = plan_recovery();
                next = Next::kRecovery;
              } else {
                next = Next::kProactive;
              }
              break;
            }
          }
          if (sink_ != nullptr) {
            emit(instant(obs::Category::kCheckpoint, "ckpt_bb_end",
                         obs::kTrackApp)
                     .with("completed", completed ? 1 : 0));
          }
          if (completed) {
            ++result_.periodic_ckpts;
            env_.spawn(drain_process(work_done_, drain_epoch_))
                .named("drain");
          }
          break;
        }

        // --------------------------------------------------------- proactive
        case Next::kProactive: {
          phase_ = Phase::kProactive;
          proactive_active_ = true;
          proactive_needed_ = false;
          round_phase_ = 1;
          round_commits_.clear();
          bool aborted = false;
          bool have_pending_handled_strike = false;
          if (sink_ != nullptr) {
            emit(instant(obs::Category::kProtocol, "pckpt_round_begin",
                         obs::kTrackRound)
                     .with("queued", static_cast<double>(queue_.size() +
                                                         phase2_pending_.size()))
                     .with("pckpt", uses_pckpt(cfg_.kind) ? 1 : 0));
          }

          if (!uses_pckpt(cfg_.kind)) {
            // Safeguard: every node writes in one bulk PFS transfer; all
            // vulnerable entries commit when the write completes.
            for (const auto& e : queue_) phase2_pending_.insert(e.key);
            queue_.clear();
          }

          // Phase 1 (p-ckpt only): vulnerable nodes drain one at a time at
          // contention-free single-node bandwidth, earliest deadline first.
          while (uses_pckpt(cfg_.kind) && !queue_.empty() && !aborted) {
            const VulnerableEntry entry = *queue_.begin();
            queue_.erase(queue_.begin());
            double remaining = pfs_single_s_;
            while (remaining > kEps && !aborted) {
              const double t0 = env_.now();
              try {
                co_await env_.delay(remaining);
                result_.overheads.checkpoint_s += remaining;
                remaining = 0;
                mark(PhaseKind::kProactivePhase1, t0);
              } catch (const sim::Interrupted&) {
                const double elapsed = env_.now() - t0;
                result_.overheads.checkpoint_s += elapsed;
                remaining -= elapsed;
                mark(PhaseKind::kProactivePhase1, t0);
                const Wake w = wake_reason();
                if (w == Wake::kStrike) {
                  if (!has_uncommitted_strike()) {
                    // The dying node's state is already safe; healthy nodes
                    // keep writing and recovery starts once the cut is
                    // complete (the paper's phase-2-after-failure).
                    have_pending_handled_strike = true;
                    continue;
                  }
                  aborted = true;
                } else if (w == Wake::kStall) {
                  pending_stall_s_ = 0.0;
                  continue;
                } else {
                  // New vulnerable nodes just join the queue.
                  proactive_needed_ = false;
                  continue;
                }
              }
            }
            if (!aborted && remaining <= kEps) {
              committed_.insert(entry.key);
              round_commits_.push_back(entry.key);
              if (sink_ != nullptr) {
                emit(instant(obs::Category::kProtocol, "pckpt_commit",
                             node_track(node_of_key(entry.key)))
                         .with("key", static_cast<double>(entry.key))
                         .with("deadline_s", entry.deadline_s));
              }
              pending_predictions_.erase(entry.key);
            }
          }

          // Phase 2: the remaining (healthy) nodes commit in bulk.
          if (!aborted) {
            round_phase_ = 2;
            const double vuln =
                static_cast<double>(round_commits_.size());
            const double writers = std::max(1.0, nodes_ - vuln);
            // Writer count varies per round: resolve one query per round
            // and reuse it (the common all-healthy case also hits the
            // matrix's memo cache).
            double remaining =
                setup_.storage->pfs_aggregate_query(writers, per_node_gb_)
                    .transfer_seconds();
            while (remaining > kEps && !aborted) {
              const double t0 = env_.now();
              try {
                co_await env_.delay(remaining);
                result_.overheads.checkpoint_s += remaining;
                remaining = 0;
                mark(PhaseKind::kProactivePhase2, t0);
              } catch (const sim::Interrupted&) {
                const double elapsed = env_.now() - t0;
                result_.overheads.checkpoint_s += elapsed;
                remaining -= elapsed;
                mark(PhaseKind::kProactivePhase2, t0);
                const Wake w = wake_reason();
                if (w == Wake::kStrike) {
                  if (!has_uncommitted_strike()) {
                    have_pending_handled_strike = true;
                    continue;
                  }
                  aborted = true;
                } else if (w == Wake::kStall) {
                  pending_stall_s_ = 0.0;
                  continue;
                } else {
                  proactive_needed_ = false;
                  continue;
                }
              }
            }
          }

          if (!aborted) {
            for (std::size_t key : phase2_pending_) {
              committed_.insert(key);
              round_commits_.push_back(key);
              if (sink_ != nullptr) {
                emit(instant(obs::Category::kProtocol, "pckpt_commit",
                             node_track(node_of_key(key)))
                         .with("key", static_cast<double>(key)));
              }
              pending_predictions_.erase(key);
            }
            phase2_pending_.clear();
            proactive_restore_ = std::max(proactive_restore_, work_done_);
            ++result_.proactive_ckpts;
            proactive_active_ = false;
            if (sink_ != nullptr) {
              emit(instant(obs::Category::kProtocol, "pckpt_round_end",
                           obs::kTrackRound)
                       .with("aborted", 0)
                       .with("commits",
                             static_cast<double>(round_commits_.size())));
            }
            if (have_pending_handled_strike || !strikes_.empty()) {
              recovery_plan = plan_recovery();
              next = Next::kRecovery;
            } else if (uses_pckpt(cfg_.kind) && !queue_.empty()) {
              next = Next::kProactive;  // late arrivals: another round
            } else {
              next = Next::kCompute;
            }
          } else {
            // The cut never completed: this round's commits are not a
            // consistent restore point. Strikes that were classified as
            // mitigated against a commit of this very round (possible when
            // several failures land at the same instant) are reclassified.
            for (auto& strike : strikes_) {
              if (strike.committed &&
                  std::find(round_commits_.begin(), round_commits_.end(),
                            strike.failure_index) != round_commits_.end()) {
                strike.committed = false;
                --result_.mitigated_ckpt;
                ++result_.unhandled;
              }
            }
            for (std::size_t key : round_commits_) committed_.erase(key);
            if (sink_ != nullptr) {
              emit(instant(obs::Category::kProtocol, "pckpt_round_end",
                           obs::kTrackRound)
                       .with("aborted", 1)
                       .with("commits", 0));
            }
            round_commits_.clear();
            queue_.clear();
            phase2_pending_.clear();
            proactive_active_ = false;
            recovery_plan = plan_recovery();
            next = Next::kRecovery;
          }
          break;
        }

        // ---------------------------------------------------------- recovery
        case Next::kRecovery: {
          phase_ = Phase::kRecovery;
          strikes_.clear();  // all simultaneous strikes share this recovery
          proactive_needed_ = false;
          ++drain_epoch_;    // in-flight BB drains die with the failed run
          const double loss =
              std::max(0.0, work_done_ - recovery_plan.restore_progress);
          result_.overheads.recomputation_s += loss;
          work_done_ = recovery_plan.restore_progress;
          if (sink_ != nullptr) {
            emit(instant(obs::Category::kRecovery, "restart", obs::kTrackApp)
                     .with("loss_s", loss)
                     .with("from_proactive",
                           recovery_plan.from_proactive ? 1 : 0)
                     .with("duration_s", recovery_plan.duration_s));
          }
          // The failed node needs a replacement; with a finite pool the
          // recovery stalls until one is repaired.
          double remaining = recovery_plan.duration_s + acquire_spare_wait();
          while (remaining > kEps) {
            const double t0 = env_.now();
            try {
              co_await env_.delay(remaining);
              result_.overheads.recovery_s += remaining;
              remaining = 0;
              mark(PhaseKind::kRecovery, t0);
            } catch (const sim::Interrupted&) {
              const double elapsed = env_.now() - t0;
              result_.overheads.recovery_s += elapsed;
              remaining -= elapsed;
              mark(PhaseKind::kRecovery, t0);
              const Wake w = wake_reason();
              if (w == Wake::kStrike) {
                // Another failure mid-recovery: start the restore over
                // (and it consumed another replacement node).
                check_makespan_guard();
                strikes_.clear();
                remaining = plan_recovery().duration_s + acquire_spare_wait();
                if (sink_ != nullptr) {
                  emit(instant(obs::Category::kRecovery, "recovery_restart",
                               obs::kTrackApp)
                           .with("duration_s", remaining));
                }
              } else if (w == Wake::kStall) {
                pending_stall_s_ = 0.0;
              }
              // Proactive requests during recovery carry no new state to
              // save; the controller already filters them, but be safe:
              proactive_needed_ = false;
            }
          }
          phase_ = Phase::kCompute;
          reinitiate_pending_predictions();
          next = Next::kCompute;
          break;
        }

        // ------------------------------------------------------------- stall
        case Next::kStall: {
          phase_ = Phase::kStall;
          double remaining = pending_stall_s_;
          pending_stall_s_ = 0.0;
          next = Next::kCompute;
          while (remaining > kEps) {
            const double t0 = env_.now();
            try {
              co_await env_.delay(remaining);
              result_.overheads.migration_s += remaining;
              remaining = 0;
              mark(PhaseKind::kStall, t0);
            } catch (const sim::Interrupted&) {
              const double elapsed = env_.now() - t0;
              result_.overheads.migration_s += elapsed;
              remaining -= elapsed;
              mark(PhaseKind::kStall, t0);
              const Wake w = wake_reason();
              if (w == Wake::kSpurious) continue;
              if (w == Wake::kStrike) {
                recovery_plan = plan_recovery();
                next = Next::kRecovery;
              } else if (w == Wake::kProactive) {
                next = Next::kProactive;
              } else {
                remaining += pending_stall_s_;  // coalesce stalls
                pending_stall_s_ = 0.0;
              }
              if (next != Next::kCompute) break;
            }
          }
          break;
        }

        case Next::kDone:
          break;
      }
    }

    phase_ = Phase::kDone;
    done_ = true;
    result_.makespan_s = env_.now();
    if (sink_ != nullptr) {
      // Counters are final here; only trailing pfs_drain spans (in-flight
      // BB drains completing after the app) may follow this event.
      emit(instant(obs::Category::kRun, "run_end", obs::kTrackApp)
               .with("makespan_s", result_.makespan_s)
               .with("failures", static_cast<double>(result_.failures))
               .with("predicted", static_cast<double>(result_.predicted))
               .with("mitigated_ckpt",
                     static_cast<double>(result_.mitigated_ckpt))
               .with("mitigated_lm", static_cast<double>(result_.mitigated_lm))
               .with("unhandled", static_cast<double>(result_.unhandled))
               .with("false_positives",
                     static_cast<double>(result_.false_positives))
               .with("periodic_ckpts",
                     static_cast<double>(result_.periodic_ckpts))
               .with("proactive_ckpts",
                     static_cast<double>(result_.proactive_ckpts))
               .with("lm_attempts", static_cast<double>(result_.lm_attempts))
               .with("lm_aborts", static_cast<double>(result_.lm_aborts)));
    }
    injector_->interrupt();
    co_return;
  }

  // ------------------------------------------------------------------

  sim::Environment env_;
  const RunSetup& setup_;
  CrConfig cfg_;
  obs::TraceSink* sink_ = nullptr;  // null = tracing off (the default)
  std::uint64_t run_id_ = 0;
  failure::FailureTrace trace_;
  RunResult result_;

  const double total_work_;
  const double per_node_gb_;
  const double nodes_;
  const double theta_lm_s_;
  const double sigma_;

  // Run-constant I/O costs, resolved once in the constructor.
  const double t_bb_write_s_;
  const double t_bb_read_s_;
  const double pfs_single_s_;
  const iomodel::BandwidthQuery all_nodes_query_;  ///< full-machine PFS point
  const iomodel::BandwidthQuery drain_query_;      ///< throttled drain subset

  double work_done_ = 0;
  Phase phase_ = Phase::kCompute;
  bool done_ = false;

  // Restore points (progress values whose state is durably stored).
  double periodic_restore_ = 0;    // on BBs + PFS
  double proactive_restore_ = -1;  // on PFS only
  std::uint64_t drain_epoch_ = 0;

  // Vulnerable-node coordination state (Fig. 5).
  std::set<VulnerableEntry> queue_;
  std::set<std::size_t> phase2_pending_;
  std::set<std::size_t> committed_;
  std::vector<std::size_t> round_commits_;
  bool proactive_active_ = false;
  bool proactive_needed_ = false;
  int round_phase_ = 1;

  // Live migration state.
  std::map<std::size_t, LmInfo> lm_active_;
  std::set<std::size_t> lm_done_;
  std::uint64_t lm_generation_ = 0;

  std::map<std::size_t, PendingPrediction> pending_predictions_;
  std::vector<double> repair_ends_;  // replacement-pool repair completions
  std::size_t spares_available_ = 0;
  double makespan_guard_s_ = 0;
  std::deque<FailureStrike> strikes_;
  double pending_stall_s_ = 0;
  std::size_t fp_counter_ = 0;

  sim::ProcessPtr app_;
  sim::ProcessPtr injector_;
};

}  // namespace

RunResult simulate_run(const RunSetup& setup, const CrConfig& config) {
  if (setup.app == nullptr || setup.machine == nullptr ||
      setup.storage == nullptr || setup.system == nullptr ||
      setup.leads == nullptr) {
    throw std::invalid_argument("simulate_run: incomplete RunSetup");
  }
  setup.app->validate();
  config.validate();
  Run run(setup, config);
  return run.execute();
}

}  // namespace pckpt::core
