#include "core/timeline.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pckpt::core {

std::string_view to_string(PhaseKind k) {
  switch (k) {
    case PhaseKind::kCompute:
      return "compute";
    case PhaseKind::kBbCheckpoint:
      return "bb-checkpoint";
    case PhaseKind::kProactivePhase1:
      return "pckpt-phase1";
    case PhaseKind::kProactivePhase2:
      return "pckpt-phase2";
    case PhaseKind::kRecovery:
      return "recovery";
    case PhaseKind::kStall:
      return "lm-stall";
  }
  return "?";
}

char phase_glyph(PhaseKind k) {
  switch (k) {
    case PhaseKind::kCompute:
      return '=';
    case PhaseKind::kBbCheckpoint:
      return 'b';
    case PhaseKind::kProactivePhase1:
      return '1';
    case PhaseKind::kProactivePhase2:
      return '2';
    case PhaseKind::kRecovery:
      return 'R';
    case PhaseKind::kStall:
      return 's';
  }
  return '?';
}

std::string_view to_string(MarkerKind k) {
  switch (k) {
    case MarkerKind::kPrediction:
      return "prediction";
    case MarkerKind::kFalsePositive:
      return "false-positive";
    case MarkerKind::kFailure:
      return "failure";
    case MarkerKind::kLmStart:
      return "lm-start";
    case MarkerKind::kLmComplete:
      return "lm-complete";
  }
  return "?";
}

void Timeline::add_segment(PhaseKind kind, double start_s, double end_s) {
  if (!(end_s >= start_s)) {
    throw std::invalid_argument("Timeline::add_segment: end before start");
  }
  if (!segments_.empty() && start_s < segments_.back().end_s - 1e-9) {
    throw std::invalid_argument(
        "Timeline::add_segment: segments must be appended in time order");
  }
  if (end_s - start_s < 1e-12) return;  // drop zero-length
  if (!segments_.empty() && segments_.back().kind == kind &&
      start_s - segments_.back().end_s < 1e-9) {
    segments_.back().end_s = end_s;  // merge continuation
    return;
  }
  segments_.push_back(PhaseSegment{kind, start_s, end_s});
}

void Timeline::add_marker(MarkerKind kind, double time_s) {
  markers_.push_back(Marker{kind, time_s});
}

double Timeline::total(PhaseKind kind) const {
  double t = 0;
  for (const auto& s : segments_) {
    if (s.kind == kind) t += s.duration();
  }
  return t;
}

double Timeline::span() const {
  return segments_.empty() ? 0.0 : segments_.back().end_s;
}

std::string Timeline::render_ascii(std::size_t width) const {
  if (width == 0) throw std::invalid_argument("render_ascii: zero width");
  const double horizon = span();
  std::string strip(width, '.');
  if (horizon <= 0.0) return strip;
  const double bucket = horizon / static_cast<double>(width);
  std::size_t seg = 0;
  for (std::size_t i = 0; i < width; ++i) {
    const double lo = bucket * static_cast<double>(i);
    const double hi = lo + bucket;
    // Majority phase within [lo, hi).
    std::map<PhaseKind, double> share;
    while (seg < segments_.size() && segments_[seg].start_s < hi) {
      const auto& s = segments_[seg];
      const double overlap =
          std::min(hi, s.end_s) - std::max(lo, s.start_s);
      if (overlap > 0) share[s.kind] += overlap;
      if (s.end_s >= hi) break;
      ++seg;
    }
    double best = 0;
    for (const auto& [kind, t] : share) {
      if (t > best) {
        best = t;
        strip[i] = phase_glyph(kind);
      }
    }
  }
  return strip;
}

void Timeline::print_csv(std::ostream& os) const {
  os << "record,kind,start_s,end_s\n";
  for (const auto& s : segments_) {
    os << "segment," << to_string(s.kind) << ',' << s.start_s << ','
       << s.end_s << '\n';
  }
  for (const auto& m : markers_) {
    os << "marker," << to_string(m.kind) << ',' << m.time_s << ",\n";
  }
}

}  // namespace pckpt::core
