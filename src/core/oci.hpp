#pragma once

#include <stdexcept>

/// \file oci.hpp
/// Optimal checkpoint interval calculators (Eqs. 1 and 2 of the paper).

namespace pckpt::core {

/// Young's first-order optimal checkpoint interval (Eq. 1):
///   t_opt = sqrt(2 * t_ckpt_bb / rate)
/// where `rate` is the job-level failure rate (the paper's lambda * c) in
/// failures per second and `t_ckpt_bb` the blocking BB checkpoint time.
double young_oci_seconds(double t_ckpt_bb_s, double job_rate_per_s);

/// Sigma-extended interval for LM-assisted models (Eq. 2):
///   t_opt = sqrt(2 * t_ckpt_bb / (rate * (1 - sigma)))
/// where sigma is the fraction of failures avoidable by live migration
/// (predicted with lead time exceeding the migration latency).
/// \throws std::invalid_argument unless 0 <= sigma < 1.
double sigma_extended_oci_seconds(double t_ckpt_bb_s, double job_rate_per_s,
                                  double sigma);

/// The OCI elongation factor Eq. 2 introduces over Eq. 1:
/// 1/sqrt(1 - sigma) (Observation 6 reports ~54-340% elongation).
double oci_elongation_factor(double sigma);

}  // namespace pckpt::core
