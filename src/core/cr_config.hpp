#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "failure/predictor.hpp"

/// \file cr_config.hpp
/// Configuration of a Checkpoint/Restart model instance: which of the
/// paper's five models to run and the knobs shared between them.

namespace pckpt::core {

/// The five C/R models evaluated in the paper (Secs. V and VII).
enum class ModelKind {
  kB,   ///< periodic checkpointing only (base model)
  kM1,  ///< + failure prediction + safeguard checkpointing [Bouguerra]
  kM2,  ///< + failure prediction + live migration [Behera 2020]
  kP1,  ///< + failure prediction + coordinated prioritized ckpt (p-ckpt)
  kP2,  ///< hybrid: prediction + p-ckpt + live migration
};

std::string_view to_string(ModelKind kind);
ModelKind model_from_string(std::string_view name);

/// True if the model performs live migration.
constexpr bool uses_lm(ModelKind k) {
  return k == ModelKind::kM2 || k == ModelKind::kP2;
}
/// True if the model performs proactive PFS checkpoints on prediction.
constexpr bool uses_proactive_ckpt(ModelKind k) {
  return k == ModelKind::kM1 || k == ModelKind::kP1 || k == ModelKind::kP2;
}
/// True if the proactive checkpoint path is the coordinated prioritized
/// variant (vulnerable nodes first at contention-free bandwidth).
constexpr bool uses_pckpt(ModelKind k) {
  return k == ModelKind::kP1 || k == ModelKind::kP2;
}

/// How the OCI's failure rate (lambda * c in Eqs. 1-2) is obtained.
enum class RateEstimation {
  /// Closed form from the configured Weibull system (the default).
  kAnalytic,
  /// Online estimate from failures observed so far (the paper's
  /// "dynamically changing system failure rate" refinement): a smoothed
  /// posterior that starts at the analytic rate and converges to the
  /// empirical one.
  kObserved,
};

struct CrConfig {
  ModelKind kind = ModelKind::kB;

  /// Predictor quality / lead-time scaling for this run.
  failure::PredictorConfig predictor{};

  /// Failure-rate source for the periodic OCI updates.
  RateEstimation rate_estimation = RateEstimation::kAnalytic;

  /// LM transfer volume as a multiple of the per-process checkpoint size
  /// (the paper's 3x stencil argument; the alpha of Fig. 6c / Eq. 6).
  double lm_transfer_factor = 3.0;

  /// LM is attempted only if predicted lead >= margin * theta_LM.
  double lm_safety_margin = 1.0;

  /// Application slowdown while a live migration is in flight
  /// (paper: 0.08-2.98% measured; we default to 1%).
  double lm_runtime_dilation = 0.01;

  /// Fixed job-restart cost added to every recovery (relaunch, rewiring
  /// the replacement node).
  double restart_seconds = 30.0;

  /// Max nodes draining BB->PFS concurrently (Spectral-style throttling).
  int drain_concurrency = 64;

  /// Floor for the optimal checkpoint interval.
  double min_oci_seconds = 60.0;

  /// Replacement-node pool size; -1 reproduces the paper's assumption of
  /// always-available reserved nodes. With a finite pool, every failed
  /// node and every live-migration target consumes a spare, which only
  /// returns after `node_repair_hours`; recovery blocks while the pool is
  /// empty and LM falls back (P2) or is skipped (M2).
  int spare_nodes = -1;

  /// Time for a failed node to be repaired and rejoin the spare pool.
  double node_repair_hours = 24.0;

  /// Record a per-run phase timeline (RunResult::timeline). Off by
  /// default: campaigns with thousands of runs do not need the extra
  /// allocation.
  bool record_timeline = false;

  void validate() const {
    predictor.validate();
    if (!(lm_transfer_factor > 0.0)) {
      throw std::invalid_argument("CrConfig: lm_transfer_factor must be > 0");
    }
    if (!(lm_safety_margin >= 1.0)) {
      throw std::invalid_argument("CrConfig: lm_safety_margin must be >= 1");
    }
    if (!(lm_runtime_dilation >= 0.0 && lm_runtime_dilation < 1.0)) {
      throw std::invalid_argument("CrConfig: dilation must be in [0,1)");
    }
    if (!(restart_seconds >= 0.0)) {
      throw std::invalid_argument("CrConfig: restart_seconds must be >= 0");
    }
    if (drain_concurrency < 1) {
      throw std::invalid_argument("CrConfig: drain_concurrency must be >= 1");
    }
    if (!(min_oci_seconds > 0.0)) {
      throw std::invalid_argument("CrConfig: min_oci_seconds must be > 0");
    }
    if (spare_nodes < -1) {
      throw std::invalid_argument("CrConfig: spare_nodes must be >= -1");
    }
    if (!(node_repair_hours > 0.0)) {
      throw std::invalid_argument("CrConfig: node_repair_hours must be > 0");
    }
  }
};

}  // namespace pckpt::core
