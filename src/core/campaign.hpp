#pragma once

#include <cstdint>
#include <vector>

#include "core/overheads.hpp"
#include "core/simulation.hpp"
#include "exec/executor.hpp"
#include "exec/parallel_campaign.hpp"
#include "stats/summary.hpp"

/// \file campaign.hpp
/// Multi-run campaigns: replay the same failure traces (seeds) against one
/// or several C/R models and aggregate the results. This is the C++
/// equivalent of the paper's "1000 simulation runs, averaged" protocol,
/// strengthened to a *paired* design: model comparisons share traces.
///
/// Campaigns run through the `exec` engine: trials are partitioned into
/// fixed shards (exec::plan_shards), each shard is aggregated serially,
/// and shards merge in ascending order — so aggregates are bit-identical
/// for any executor / thread count (see docs/EXECUTION.md).

namespace pckpt::obs {
class CampaignTraceCollector;
}

namespace pckpt::core {

/// Aggregated outcome of a campaign for one model.
///
/// The counter fields hold *raw totals across all runs* (mergeable); use
/// the `*_per_run()` accessors for the paper-style per-run means. Keeping
/// totals raw is what makes shard merging associative — normalizing in
/// place would double-divide on merge.
struct CampaignResult {
  ModelKind kind = ModelKind::kB;
  std::size_t runs = 0;

  stats::OnlineStats checkpoint_s;
  stats::OnlineStats recomputation_s;
  stats::OnlineStats recovery_s;
  stats::OnlineStats migration_s;
  stats::OnlineStats total_overhead_s;
  stats::OnlineStats makespan_s;
  stats::OnlineStats ft_ratio;
  stats::OnlineStats mean_oci_s;

  double failures = 0;  ///< total across runs (see failures_per_run())
  double predicted = 0;
  double mitigated_ckpt = 0;
  double mitigated_lm = 0;
  double unhandled = 0;
  double false_positives = 0;

  /// Fold another shard of the same campaign into this one. Aggregates
  /// must cover disjoint run ranges; call in ascending shard order for
  /// reproducible floating-point results.
  void merge(const CampaignResult& other);

  /// Mean event counts per run (the numbers the paper reports).
  double failures_per_run() const { return per_run(failures); }
  double predicted_per_run() const { return per_run(predicted); }
  double mitigated_ckpt_per_run() const { return per_run(mitigated_ckpt); }
  double mitigated_lm_per_run() const { return per_run(mitigated_lm); }
  double unhandled_per_run() const { return per_run(unhandled); }
  double false_positives_per_run() const { return per_run(false_positives); }

  /// Mean overheads in hours (for paper-style reporting).
  double checkpoint_h() const { return checkpoint_s.mean() / 3600.0; }
  double recomputation_h() const { return recomputation_s.mean() / 3600.0; }
  double recovery_h() const { return recovery_s.mean() / 3600.0; }
  double migration_h() const { return migration_s.mean() / 3600.0; }
  double total_overhead_h() const { return total_overhead_s.mean() / 3600.0; }

  /// Pooled FT ratio across the whole campaign: total mitigations over
  /// total failures. Prefer this over ft_ratio.mean() when runs can have
  /// zero failures (small applications), which would bias the per-run mean.
  double pooled_ft_ratio() const {
    return failures > 0 ? (mitigated_ckpt + mitigated_lm) / failures : 0.0;
  }

  /// FT-ratio split for Fig. 8: (LM - p-ckpt) mitigations over failures.
  double lm_minus_pckpt_ft() const {
    return failures > 0 ? (mitigated_lm - mitigated_ckpt) / failures : 0.0;
  }

 private:
  double per_run(double total) const {
    return runs > 0 ? total / static_cast<double>(runs) : 0.0;
  }
};

/// Shard-granular persistence seam for `run_campaign`, implemented by
/// `ckpt::CampaignCheckpointer` (src/ckpt/campaign_ckpt.hpp,
/// docs/CHECKPOINTING.md). Core knows only this interface so the
/// dependency points ckpt -> core.
///
/// Engine contract:
///  - Before dispatch, `load_shard` is called for shards 0, 1, 2, ...
///    until the first `false`; loaded shards are not re-executed. The
///    commit order below guarantees the committed set is a prefix, so
///    stopping at the first miss loses nothing.
///  - After execution, `commit_shard` is called exactly once per
///    executed shard in strictly ascending shard order (calls are
///    serialized; workers may keep simulating while another thread
///    commits). A crash at any byte therefore leaves a committed
///    prefix, and a resumed campaign merges to bit-identical results.
class CampaignCheckpointSink {
 public:
  virtual ~CampaignCheckpointSink() = default;

  /// Load the committed result of `shard` into `out`; when `trace` is
  /// non-null, also replay the shard's trial events into the
  /// collector's slots. Returns false when the shard is not committed
  /// or cannot satisfy the trace request (the engine then executes it).
  virtual bool load_shard(std::size_t shard, CampaignResult& out,
                          obs::CampaignTraceCollector* trace) = 0;

  /// Durably persist `shard` covering trials `[first_run, last_run)`.
  /// `trace` is the campaign collector when tracing (the shard's slots
  /// are final), nullptr otherwise.
  virtual void commit_shard(std::size_t shard, const CampaignResult& result,
                            std::size_t first_run, std::size_t last_run,
                            const obs::CampaignTraceCollector* trace) = 0;
};

/// Serially simulate trials `[first_run, last_run)` of a campaign; trial
/// `i` uses seed `derive_seed(base_seed, i)` — keyed on the global trial
/// index, so the result is independent of how trials are sharded.
///
/// When `trace` is non-null it must already be sized to the campaign's
/// trial count; trial `i` emits into `trace->sink_for(i)` with
/// `Event::run_id == i` (docs/OBSERVABILITY.md).
CampaignResult run_campaign_shard(const RunSetup& base, const CrConfig& config,
                                  std::size_t first_run, std::size_t last_run,
                                  std::uint64_t base_seed,
                                  obs::CampaignTraceCollector* trace = nullptr);

/// Run `runs` simulations of `config` with seeds derived from `base_seed`
/// on the given executor. Deterministic in (base, config, runs, base_seed)
/// regardless of `ex`'s concurrency. A non-null `trace` is reset to `runs`
/// slots before dispatch and collects every trial's semantic events; the
/// collected bytes are `--jobs`-independent (see obs/collector.hpp).
/// A non-null `ckpt` resumes from the committed shard prefix and commits
/// every executed shard in ascending order (see CampaignCheckpointSink);
/// resumed shards still count toward `progress` so callers see a full
/// shard tally either way.
CampaignResult run_campaign(const RunSetup& base, const CrConfig& config,
                            std::size_t runs, std::uint64_t base_seed,
                            exec::Executor& ex,
                            const exec::ProgressHook& progress = {},
                            obs::CampaignTraceCollector* trace = nullptr,
                            CampaignCheckpointSink* ckpt = nullptr);

/// Serial convenience overload (tests, examples): same chunked schedule on
/// an inline executor, so it matches the parallel path bit-for-bit.
CampaignResult run_campaign(const RunSetup& base, const CrConfig& config,
                            std::size_t runs, std::uint64_t base_seed);

/// Run all requested models against the same `runs` traces.
std::vector<CampaignResult> run_model_comparison(
    const RunSetup& base, const std::vector<CrConfig>& configs,
    std::size_t runs, std::uint64_t base_seed, exec::Executor& ex,
    const exec::ProgressHook& progress = {});

std::vector<CampaignResult> run_model_comparison(
    const RunSetup& base, const std::vector<CrConfig>& configs,
    std::size_t runs, std::uint64_t base_seed);

/// Percent reduction of `value` relative to the base model's `base`
/// (the y-axis of Figs. 4 and 7: 0 = unchanged, 100 = eliminated).
double percent_reduction(double base, double value);

}  // namespace pckpt::core
