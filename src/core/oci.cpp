#include "core/oci.hpp"

#include <cmath>

namespace pckpt::core {

double young_oci_seconds(double t_ckpt_bb_s, double job_rate_per_s) {
  if (!(t_ckpt_bb_s > 0.0)) {
    throw std::invalid_argument("young_oci: t_ckpt_bb must be > 0");
  }
  if (!(job_rate_per_s > 0.0)) {
    throw std::invalid_argument("young_oci: failure rate must be > 0");
  }
  return std::sqrt(2.0 * t_ckpt_bb_s / job_rate_per_s);
}

double sigma_extended_oci_seconds(double t_ckpt_bb_s, double job_rate_per_s,
                                  double sigma) {
  if (!(sigma >= 0.0 && sigma < 1.0)) {
    throw std::invalid_argument("sigma_extended_oci: sigma must be in [0,1)");
  }
  return young_oci_seconds(t_ckpt_bb_s, job_rate_per_s * (1.0 - sigma));
}

double oci_elongation_factor(double sigma) {
  if (!(sigma >= 0.0 && sigma < 1.0)) {
    throw std::invalid_argument(
        "oci_elongation_factor: sigma must be in [0,1)");
  }
  return 1.0 / std::sqrt(1.0 - sigma);
}

}  // namespace pckpt::core
