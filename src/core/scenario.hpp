#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/cr_config.hpp"
#include "failure/system_catalog.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

/// \file scenario.hpp
/// The "System and Application Configuration File" of the paper's
/// simulation framework (Fig. 3): a plain INI-style file describing the
/// machine, the applications, the failure distribution and the predictor,
/// parsed into the typed structures the simulator consumes.
///
/// Format:
/// \code
///   # comment
///   [machine]
///   total_nodes = 4608
///   dram_gb = 512
///
///   [application foo]      ; one section per application
///   nodes = 1000
///   ckpt_total_gb = 50000
///   compute_hours = 200
/// \endcode

namespace pckpt::core {

/// Parsed INI content: section name -> (key -> value). Repeated sections
/// of the form "[application NAME]" keep their full header as the key.
class ConfigFile {
 public:
  /// Parse from text. \throws std::invalid_argument with a line number on
  /// malformed input (unterminated section, key outside a section, ...).
  static ConfigFile parse(std::string_view text);

  /// Load and parse a file. \throws std::runtime_error if unreadable.
  static ConfigFile load(const std::string& path);

  bool has_section(const std::string& section) const;
  std::vector<std::string> sections_with_prefix(
      const std::string& prefix) const;

  /// Typed getters; the std::optional variants return nullopt when the
  /// key is absent, the plain variants throw std::out_of_range.
  std::optional<std::string> find(const std::string& section,
                                  const std::string& key) const;
  std::string get_string(const std::string& section,
                         const std::string& key) const;
  double get_double(const std::string& section, const std::string& key) const;
  int get_int(const std::string& section, const std::string& key) const;
  double get_double_or(const std::string& section, const std::string& key,
                       double fallback) const;
  int get_int_or(const std::string& section, const std::string& key,
                 int fallback) const;
  std::string get_string_or(const std::string& section,
                            const std::string& key,
                            const std::string& fallback) const;

 private:
  std::map<std::string, std::map<std::string, std::string>> sections_;
};

/// Everything one simulation scenario needs, loaded from a config file.
struct Scenario {
  workload::Machine machine;
  std::vector<workload::Application> applications;
  failure::FailureSystem system;
  core::CrConfig cr;  ///< predictor + model knobs ([predictor], [cr])
};

/// Build a Scenario from a parsed config. Sections:
///   [machine]      optional; defaults to Summit
///   [application X] one or more; required
///   [failure_system] either `preset = titan|lanl8|lanl18` or explicit
///                  weibull_shape / weibull_scale_hours / total_nodes
///   [predictor]    optional recall / false_positive_rate / lead_scale /
///                  lead_error_sigma
///   [cr]           optional model / lm_transfer_factor / spare_nodes /
///                  drain_concurrency / restart_seconds / ...
/// \throws std::invalid_argument on missing/invalid entries.
Scenario load_scenario(const ConfigFile& cfg);

}  // namespace pckpt::core
