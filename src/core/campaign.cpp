#include "core/campaign.hpp"

#include <mutex>

#include "obs/collector.hpp"
#include "obs/profiler.hpp"
#include "random/rng.hpp"

namespace pckpt::core {

namespace {

void accumulate(CampaignResult& agg, const RunResult& r) {
  agg.checkpoint_s.add(r.overheads.checkpoint_s);
  agg.recomputation_s.add(r.overheads.recomputation_s);
  agg.recovery_s.add(r.overheads.recovery_s);
  agg.migration_s.add(r.overheads.migration_s);
  agg.total_overhead_s.add(r.overheads.total());
  agg.makespan_s.add(r.makespan_s);
  agg.ft_ratio.add(r.ft_ratio());
  agg.mean_oci_s.add(r.mean_oci_s());
  agg.failures += r.failures;
  agg.predicted += r.predicted;
  agg.mitigated_ckpt += r.mitigated_ckpt;
  agg.mitigated_lm += r.mitigated_lm;
  agg.unhandled += r.unhandled;
  agg.false_positives += r.false_positives;
}

}  // namespace

void CampaignResult::merge(const CampaignResult& other) {
  if (other.runs == 0) return;
  if (runs == 0) kind = other.kind;
  runs += other.runs;
  checkpoint_s.merge(other.checkpoint_s);
  recomputation_s.merge(other.recomputation_s);
  recovery_s.merge(other.recovery_s);
  migration_s.merge(other.migration_s);
  total_overhead_s.merge(other.total_overhead_s);
  makespan_s.merge(other.makespan_s);
  ft_ratio.merge(other.ft_ratio);
  mean_oci_s.merge(other.mean_oci_s);
  failures += other.failures;
  predicted += other.predicted;
  mitigated_ckpt += other.mitigated_ckpt;
  mitigated_lm += other.mitigated_lm;
  unhandled += other.unhandled;
  false_positives += other.false_positives;
}

CampaignResult run_campaign_shard(const RunSetup& base, const CrConfig& config,
                                  std::size_t first_run, std::size_t last_run,
                                  std::uint64_t base_seed,
                                  obs::CampaignTraceCollector* trace) {
  CampaignResult shard;
  shard.kind = config.kind;
  shard.runs = last_run - first_run;
  for (std::size_t i = first_run; i < last_run; ++i) {
    obs::ScopedTimer prof_span("campaign.simulate");
    RunSetup setup = base;
    setup.seed = rnd::derive_seed(base_seed, i);
    if (trace != nullptr) {
      setup.trace = &trace->sink_for(i);
      setup.run_id = i;
    }
    accumulate(shard, simulate_run(setup, config));
  }
  return shard;
}

CampaignResult run_campaign(const RunSetup& base, const CrConfig& config,
                            std::size_t runs, std::uint64_t base_seed,
                            exec::Executor& ex,
                            const exec::ProgressHook& progress,
                            obs::CampaignTraceCollector* trace,
                            CampaignCheckpointSink* ckpt) {
  // Size the per-trial slots before any worker can touch them; after this
  // the collector is data-race free (one slot per task, no growth).
  if (trace != nullptr) trace->reset(runs);
  const auto plan = exec::plan_shards(runs);
  std::vector<CampaignResult> shards(plan.count());

  // Resume: load committed shards in ascending order until the first
  // miss. Commits below are strictly ascending, so the committed set on
  // disk is a prefix and stopping at the first miss loses nothing.
  std::size_t resumed = 0;
  if (ckpt != nullptr) {
    while (resumed < plan.count() &&
           ckpt->load_shard(resumed, shards[resumed], trace)) {
      ++resumed;
    }
  }

  // Commit bookkeeping: shards complete in any order under a pool, but
  // become durable strictly in ascending shard order — the same order
  // they merge in. A crash at any point leaves a committed prefix.
  std::mutex commit_mu;
  std::size_t next_commit = resumed;
  std::vector<unsigned char> completed(plan.count(), 0);
  for (std::size_t i = 0; i < resumed; ++i) completed[i] = 1;

  exec::run_sharded(
      ex, plan,
      [&](std::size_t shard, std::size_t begin, std::size_t end) {
        if (shard >= resumed) {
          shards[shard] =
              run_campaign_shard(base, config, begin, end, base_seed, trace);
        }
        if (ckpt == nullptr) return;
        std::lock_guard<std::mutex> lock(commit_mu);
        completed[shard] = 1;
        while (next_commit < plan.count() && completed[next_commit] != 0) {
          ckpt->commit_shard(next_commit, shards[next_commit],
                             plan.begin(next_commit), plan.end(next_commit),
                             trace);
          ++next_commit;
        }
      },
      progress);

  CampaignResult agg;
  agg.kind = config.kind;
  {
    obs::ScopedTimer prof_span("campaign.merge");
    for (const auto& shard : shards) agg.merge(shard);
  }
  return agg;
}

CampaignResult run_campaign(const RunSetup& base, const CrConfig& config,
                            std::size_t runs, std::uint64_t base_seed) {
  exec::SerialExecutor serial;
  return run_campaign(base, config, runs, base_seed, serial);
}

std::vector<CampaignResult> run_model_comparison(
    const RunSetup& base, const std::vector<CrConfig>& configs,
    std::size_t runs, std::uint64_t base_seed, exec::Executor& ex,
    const exec::ProgressHook& progress) {
  // One flat task batch across (config x trial-shard) keeps every worker
  // busy across model boundaries instead of barriering per model.
  const auto plan = exec::plan_shards(runs);
  const std::size_t per_config = plan.count();
  std::vector<std::vector<CampaignResult>> shards(
      configs.size(), std::vector<CampaignResult>(per_config));

  // One flat task per (config, shard); progress here is shard-granular.
  const auto flat = exec::plan_shards(configs.size() * per_config, 1);
  exec::run_sharded(
      ex, flat,
      [&](std::size_t task, std::size_t, std::size_t) {
        const std::size_t c = task / per_config;
        const std::size_t s = task % per_config;
        shards[c][s] = run_campaign_shard(base, configs[c], plan.begin(s),
                                          plan.end(s), base_seed);
      },
      progress);

  std::vector<CampaignResult> out;
  out.reserve(configs.size());
  obs::ScopedTimer prof_span("campaign.merge");
  for (std::size_t c = 0; c < configs.size(); ++c) {
    CampaignResult agg;
    agg.kind = configs[c].kind;
    for (const auto& shard : shards[c]) agg.merge(shard);
    out.push_back(agg);
  }
  return out;
}

std::vector<CampaignResult> run_model_comparison(
    const RunSetup& base, const std::vector<CrConfig>& configs,
    std::size_t runs, std::uint64_t base_seed) {
  exec::SerialExecutor serial;
  return run_model_comparison(base, configs, runs, base_seed, serial);
}

double percent_reduction(double base, double value) {
  if (base <= 0.0) return 0.0;
  return 100.0 * (1.0 - value / base);
}

}  // namespace pckpt::core
