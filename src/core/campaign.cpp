#include "core/campaign.hpp"

#include "random/rng.hpp"

namespace pckpt::core {

namespace {

void accumulate(CampaignResult& agg, const RunResult& r) {
  agg.checkpoint_s.add(r.overheads.checkpoint_s);
  agg.recomputation_s.add(r.overheads.recomputation_s);
  agg.recovery_s.add(r.overheads.recovery_s);
  agg.migration_s.add(r.overheads.migration_s);
  agg.total_overhead_s.add(r.overheads.total());
  agg.makespan_s.add(r.makespan_s);
  agg.ft_ratio.add(r.ft_ratio());
  agg.mean_oci_s.add(r.mean_oci_s());
  agg.failures += r.failures;
  agg.predicted += r.predicted;
  agg.mitigated_ckpt += r.mitigated_ckpt;
  agg.mitigated_lm += r.mitigated_lm;
  agg.unhandled += r.unhandled;
  agg.false_positives += r.false_positives;
}

void finalize(CampaignResult& agg) {
  if (agg.runs == 0) return;
  const auto n = static_cast<double>(agg.runs);
  agg.failures /= n;
  agg.predicted /= n;
  agg.mitigated_ckpt /= n;
  agg.mitigated_lm /= n;
  agg.unhandled /= n;
  agg.false_positives /= n;
}

}  // namespace

CampaignResult run_campaign(const RunSetup& base, const CrConfig& config,
                            std::size_t runs, std::uint64_t base_seed) {
  CampaignResult agg;
  agg.kind = config.kind;
  agg.runs = runs;
  for (std::size_t i = 0; i < runs; ++i) {
    RunSetup setup = base;
    setup.seed = rnd::derive_seed(base_seed, i);
    accumulate(agg, simulate_run(setup, config));
  }
  finalize(agg);
  return agg;
}

std::vector<CampaignResult> run_model_comparison(
    const RunSetup& base, const std::vector<CrConfig>& configs,
    std::size_t runs, std::uint64_t base_seed) {
  std::vector<CampaignResult> out;
  out.reserve(configs.size());
  for (const auto& cfg : configs) {
    out.push_back(run_campaign(base, cfg, runs, base_seed));
  }
  return out;
}

double percent_reduction(double base, double value) {
  if (base <= 0.0) return 0.0;
  return 100.0 * (1.0 - value / base);
}

}  // namespace pckpt::core
