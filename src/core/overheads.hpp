#pragma once

#include <cstddef>

#include "core/timeline.hpp"

/// \file overheads.hpp
/// Overhead accounting for one simulated run, in the paper's taxonomy
/// (checkpoint / recomputation / recovery, plus migration dilation).
/// Invariant maintained by the simulation:
///   makespan == useful_compute + total_overhead.

namespace pckpt::core {

struct Overheads {
  double checkpoint_s = 0;     ///< blocking BB + proactive PFS writes
  double recomputation_s = 0;  ///< lost work re-executed after failures
  double recovery_s = 0;       ///< restore reads + restarts
  double migration_s = 0;      ///< LM runtime dilation stalls

  double total() const {
    return checkpoint_s + recomputation_s + recovery_s + migration_s;
  }

  Overheads& operator+=(const Overheads& o) {
    checkpoint_s += o.checkpoint_s;
    recomputation_s += o.recomputation_s;
    recovery_s += o.recovery_s;
    migration_s += o.migration_s;
    return *this;
  }
};

/// Full outcome of one simulated run.
struct RunResult {
  Overheads overheads;
  double makespan_s = 0;
  double compute_s = 0;  ///< the application's useful compute time

  int failures = 0;          ///< failures that occurred (or were avoided)
  int predicted = 0;         ///< failures that had a prediction
  int mitigated_ckpt = 0;    ///< handled by safeguard / p-ckpt commit
  int mitigated_lm = 0;      ///< avoided by completed live migration
  int unhandled = 0;
  int false_positives = 0;   ///< FP predictions acted upon

  int periodic_ckpts = 0;
  int proactive_ckpts = 0;   ///< proactive checkpoint rounds completed
  int lm_attempts = 0;
  int lm_aborts = 0;

  double oci_sum_s = 0;      ///< for mean-OCI reporting
  std::size_t oci_samples = 0;

  /// Populated only when CrConfig::record_timeline is set.
  Timeline timeline;

  double ft_ratio() const {
    return failures > 0 ? static_cast<double>(mitigated_ckpt + mitigated_lm) /
                              static_cast<double>(failures)
                        : 0.0;
  }
  double mean_oci_s() const {
    return oci_samples > 0 ? oci_sum_s / static_cast<double>(oci_samples)
                           : 0.0;
  }
};

}  // namespace pckpt::core
