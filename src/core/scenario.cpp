#include "core/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pckpt::core {

namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

[[noreturn]] void fail_at(std::size_t line, const std::string& what) {
  throw std::invalid_argument("config line " + std::to_string(line) + ": " +
                              what);
}

}  // namespace

ConfigFile ConfigFile::parse(std::string_view text) {
  ConfigFile cfg;
  std::string current;
  std::size_t line_no = 0;
  std::istringstream in{std::string(text)};
  std::string raw;
  while (std::getline(in, raw)) {
    ++line_no;
    // Strip comments (# or ;) outside of values' leading text.
    const auto hash = raw.find_first_of("#;");
    std::string line = trim(hash == std::string::npos
                                ? std::string_view(raw)
                                : std::string_view(raw).substr(0, hash));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') fail_at(line_no, "unterminated section header");
      current = lower(trim(line.substr(1, line.size() - 2)));
      if (current.empty()) fail_at(line_no, "empty section name");
      cfg.sections_[current];  // sections may legitimately stay empty
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      fail_at(line_no, "expected key = value");
    }
    if (current.empty()) fail_at(line_no, "key outside any section");
    const std::string key = lower(trim(line.substr(0, eq)));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) fail_at(line_no, "empty key");
    cfg.sections_[current][key] = value;
  }
  return cfg;
}

ConfigFile ConfigFile::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("ConfigFile::load: cannot open '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

bool ConfigFile::has_section(const std::string& section) const {
  return sections_.count(lower(section)) > 0;
}

std::vector<std::string> ConfigFile::sections_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  const std::string p = lower(prefix);
  for (const auto& [name, kv] : sections_) {
    if (name.compare(0, p.size(), p) == 0) out.push_back(name);
  }
  return out;
}

std::optional<std::string> ConfigFile::find(const std::string& section,
                                            const std::string& key) const {
  const auto sit = sections_.find(lower(section));
  if (sit == sections_.end()) return std::nullopt;
  const auto kit = sit->second.find(lower(key));
  if (kit == sit->second.end()) return std::nullopt;
  return kit->second;
}

std::string ConfigFile::get_string(const std::string& section,
                                   const std::string& key) const {
  auto v = find(section, key);
  if (!v) {
    throw std::out_of_range("config: missing [" + section + "] " + key);
  }
  return *v;
}

double ConfigFile::get_double(const std::string& section,
                              const std::string& key) const {
  const std::string v = get_string(section, key);
  std::size_t used = 0;
  double x = 0;
  try {
    x = std::stod(v, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("config: [" + section + "] " + key +
                                " is not a number: '" + v + "'");
  }
  if (used != v.size()) {
    throw std::invalid_argument("config: [" + section + "] " + key +
                                " has trailing junk: '" + v + "'");
  }
  return x;
}

int ConfigFile::get_int(const std::string& section,
                        const std::string& key) const {
  const double x = get_double(section, key);
  const int i = static_cast<int>(x);
  if (static_cast<double>(i) != x) {
    throw std::invalid_argument("config: [" + section + "] " + key +
                                " must be an integer");
  }
  return i;
}

double ConfigFile::get_double_or(const std::string& section,
                                 const std::string& key,
                                 double fallback) const {
  return find(section, key) ? get_double(section, key) : fallback;
}

int ConfigFile::get_int_or(const std::string& section, const std::string& key,
                           int fallback) const {
  return find(section, key) ? get_int(section, key) : fallback;
}

std::string ConfigFile::get_string_or(const std::string& section,
                                      const std::string& key,
                                      const std::string& fallback) const {
  auto v = find(section, key);
  return v ? *v : fallback;
}

Scenario load_scenario(const ConfigFile& cfg) {
  Scenario sc;

  // [machine]
  sc.machine = workload::summit();
  if (cfg.has_section("machine")) {
    sc.machine.name = cfg.get_string_or("machine", "name", sc.machine.name);
    sc.machine.total_nodes =
        cfg.get_int_or("machine", "total_nodes", sc.machine.total_nodes);
    sc.machine.dram_gb =
        cfg.get_double_or("machine", "dram_gb", sc.machine.dram_gb);
    sc.machine.interconnect_gbps = cfg.get_double_or(
        "machine", "interconnect_gbps", sc.machine.interconnect_gbps);
    sc.machine.burst_buffer.write_gbps = cfg.get_double_or(
        "machine", "bb_write_gbps", sc.machine.burst_buffer.write_gbps);
    sc.machine.burst_buffer.read_gbps = cfg.get_double_or(
        "machine", "bb_read_gbps", sc.machine.burst_buffer.read_gbps);
    sc.machine.burst_buffer.capacity_gb = cfg.get_double_or(
        "machine", "bb_capacity_gb", sc.machine.burst_buffer.capacity_gb);
    sc.machine.io.pfs_ceiling_gbps = cfg.get_double_or(
        "machine", "pfs_ceiling_gbps", sc.machine.io.pfs_ceiling_gbps);
    sc.machine.io.peak_node_bw_gbps = cfg.get_double_or(
        "machine", "node_pfs_gbps", sc.machine.io.peak_node_bw_gbps);
  }

  // [application ...]
  for (const auto& section : cfg.sections_with_prefix("application")) {
    workload::Application app;
    const auto space = section.find(' ');
    app.name = space == std::string::npos ? "app" : section.substr(space + 1);
    app.name = cfg.get_string_or(section, "name", app.name);
    app.nodes = cfg.get_int(section, "nodes");
    app.ckpt_total_gb = cfg.get_double(section, "ckpt_total_gb");
    app.compute_hours = cfg.get_double(section, "compute_hours");
    app.validate();
    sc.applications.push_back(std::move(app));
  }
  if (sc.applications.empty()) {
    throw std::invalid_argument(
        "load_scenario: need at least one [application ...] section");
  }

  // [failure_system]
  if (cfg.find("failure_system", "preset")) {
    sc.system = failure::system_by_name(
        cfg.get_string("failure_system", "preset"));
  } else if (cfg.has_section("failure_system")) {
    sc.system.name = cfg.get_string_or("failure_system", "name", "custom");
    sc.system.weibull_shape = cfg.get_double("failure_system", "weibull_shape");
    sc.system.weibull_scale_hours =
        cfg.get_double("failure_system", "weibull_scale_hours");
    sc.system.total_nodes = cfg.get_int("failure_system", "total_nodes");
    if (!(sc.system.weibull_shape > 0.0) ||
        !(sc.system.weibull_scale_hours > 0.0) || sc.system.total_nodes < 1) {
      throw std::invalid_argument(
          "load_scenario: invalid [failure_system] parameters");
    }
  } else {
    sc.system = failure::system_by_name("titan");
  }

  // [predictor]
  auto& pred = sc.cr.predictor;
  pred.recall = cfg.get_double_or("predictor", "recall", pred.recall);
  pred.false_positive_rate = cfg.get_double_or(
      "predictor", "false_positive_rate", pred.false_positive_rate);
  pred.lead_scale =
      cfg.get_double_or("predictor", "lead_scale", pred.lead_scale);
  pred.lead_error_sigma = cfg.get_double_or("predictor", "lead_error_sigma",
                                            pred.lead_error_sigma);

  // [cr]
  if (cfg.find("cr", "model")) {
    sc.cr.kind = model_from_string(cfg.get_string("cr", "model"));
  }
  sc.cr.lm_transfer_factor = cfg.get_double_or("cr", "lm_transfer_factor",
                                               sc.cr.lm_transfer_factor);
  sc.cr.lm_safety_margin =
      cfg.get_double_or("cr", "lm_safety_margin", sc.cr.lm_safety_margin);
  sc.cr.lm_runtime_dilation = cfg.get_double_or(
      "cr", "lm_runtime_dilation", sc.cr.lm_runtime_dilation);
  sc.cr.restart_seconds =
      cfg.get_double_or("cr", "restart_seconds", sc.cr.restart_seconds);
  sc.cr.drain_concurrency =
      cfg.get_int_or("cr", "drain_concurrency", sc.cr.drain_concurrency);
  sc.cr.min_oci_seconds =
      cfg.get_double_or("cr", "min_oci_seconds", sc.cr.min_oci_seconds);
  sc.cr.spare_nodes = cfg.get_int_or("cr", "spare_nodes", sc.cr.spare_nodes);
  sc.cr.node_repair_hours = cfg.get_double_or("cr", "node_repair_hours",
                                              sc.cr.node_repair_hours);
  if (cfg.get_string_or("cr", "rate_estimation", "analytic") == "observed") {
    sc.cr.rate_estimation = core::RateEstimation::kObserved;
  }
  sc.cr.validate();
  return sc;
}

}  // namespace pckpt::core
