#include "core/cr_config.hpp"

#include <algorithm>
#include <cctype>

namespace pckpt::core {

std::string_view to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kB:
      return "B";
    case ModelKind::kM1:
      return "M1";
    case ModelKind::kM2:
      return "M2";
    case ModelKind::kP1:
      return "P1";
    case ModelKind::kP2:
      return "P2";
  }
  return "?";
}

ModelKind model_from_string(std::string_view name) {
  std::string key(name);
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (key == "B" || key == "BASE") return ModelKind::kB;
  if (key == "M1" || key == "SAFEGUARD") return ModelKind::kM1;
  if (key == "M2" || key == "LM") return ModelKind::kM2;
  if (key == "P1" || key == "PCKPT" || key == "P-CKPT") return ModelKind::kP1;
  if (key == "P2" || key == "HYBRID") return ModelKind::kP2;
  throw std::invalid_argument("model_from_string: unknown model '" +
                              std::string(name) + "'");
}

}  // namespace pckpt::core
