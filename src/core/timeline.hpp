#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

/// \file timeline.hpp
/// Optional per-run timeline: what the application was doing when
/// (compute / BB checkpoint / proactive PFS checkpoint / recovery / LM
/// stall), plus point markers for predictions, failures and migrations.
/// Enabled via CrConfig::record_timeline; exported as CSV or a compact
/// ASCII Gantt strip — handy for inspecting how a p-ckpt round interleaves
/// with failures.

namespace pckpt::core {

enum class PhaseKind {
  kCompute,
  kBbCheckpoint,
  kProactivePhase1,
  kProactivePhase2,
  kRecovery,
  kStall,
};

std::string_view to_string(PhaseKind k);
char phase_glyph(PhaseKind k);

struct PhaseSegment {
  PhaseKind kind = PhaseKind::kCompute;
  double start_s = 0;
  double end_s = 0;
  double duration() const { return end_s - start_s; }
};

enum class MarkerKind {
  kPrediction,
  kFalsePositive,
  kFailure,
  kLmStart,
  kLmComplete,
};

std::string_view to_string(MarkerKind k);

struct Marker {
  MarkerKind kind = MarkerKind::kFailure;
  double time_s = 0;
};

class Timeline {
 public:
  /// Append a segment; zero-length segments are dropped and segments that
  /// continue the previous one (same kind, abutting) are merged.
  void add_segment(PhaseKind kind, double start_s, double end_s);
  void add_marker(MarkerKind kind, double time_s);

  const std::vector<PhaseSegment>& segments() const noexcept {
    return segments_;
  }
  const std::vector<Marker>& markers() const noexcept { return markers_; }

  /// Total time attributed to a phase kind.
  double total(PhaseKind kind) const;
  /// End of the last segment (0 when empty).
  double span() const;

  /// Compact one-line-per-phase ASCII strip over [0, span()], `width`
  /// characters wide: a cell shows the phase occupying the majority of
  /// its bucket.
  std::string render_ascii(std::size_t width = 100) const;

  /// CSV: kind,start_s,end_s rows for segments then kind,time_s rows for
  /// markers.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<PhaseSegment> segments_;
  std::vector<Marker> markers_;
};

}  // namespace pckpt::core
