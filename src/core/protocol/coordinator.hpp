#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/protocol/node_state.hpp"

namespace pckpt::obs {
class TraceSink;
}

/// \file coordinator.hpp
/// Node-granularity simulation of ONE coordinated prioritized checkpoint
/// round (paper Sec. VI). Where the campaign simulator (core/simulation)
/// prices a whole application run, this model spawns a process per node,
/// exchanges the protocol's actual notifications (p-ckpt request,
/// pfs-commit broadcast, completion barrier) with a log-scaled latency
/// model, and reports how much of the round is coordination versus I/O —
/// quantifying the paper's "a global barrier with 2048 nodes takes ~8 us"
/// negligibility claim.

namespace pckpt::core::protocol {

/// Ordering policy for the vulnerable-node priority queue (the paper uses
/// lead time — earliest predicted failure first; the alternatives exist
/// for the ablation study).
enum class QueuePolicy {
  kLeadTime,  ///< earliest deadline first (the paper's design)
  kFifo,      ///< arrival order
  kLifo,      ///< newest first (anti-optimal strawman)
};

struct ProtocolConfig {
  int nodes = 0;
  double per_node_gb = 0;
  /// Contention-free single-node PFS write bandwidth (phase 1).
  double single_node_bw_gbps = 13.4;
  /// Aggregate PFS bandwidth available to the healthy nodes (phase 2).
  double aggregate_bw_gbps = 1400.0;
  /// Broadcast/barrier latency = base_us * log2(nodes) microseconds
  /// (calibrated so 2048 nodes ~= 8 us, as measured on Summit).
  double broadcast_base_us = 8.0 / 11.0;
  QueuePolicy policy = QueuePolicy::kLeadTime;

  /// Optional semantic trace sink (null = off; not part of validate()).
  /// Round events land on `obs::kTrackRound`, per-node writes on the
  /// node tracks — see docs/OBSERVABILITY.md.
  obs::TraceSink* trace = nullptr;
  /// `Event::run_id` stamped into emitted events.
  std::uint64_t run_id = 0;

  void validate() const;

  /// One broadcast (or barrier) latency in seconds for this node count.
  double broadcast_seconds() const;
};

/// One vulnerable node entering the round.
struct VulnerableSpec {
  int node = 0;
  /// When the prediction arrives, relative to round start (0 = triggers
  /// the round; later values model predictions landing mid-round).
  double arrival_s = 0;
  /// Predicted time to failure measured from its arrival.
  double lead_s = 0;
};

struct VulnerableOutcome {
  int node = 0;
  double commit_s = -1;  ///< PFS commit time; -1 = never committed
  bool mitigated = false;  ///< committed before its deadline
};

struct RoundResult {
  double total_s = 0;          ///< round start to final barrier
  double phase1_s = 0;         ///< serial vulnerable writes
  double phase2_s = 0;         ///< bulk healthy write
  double coordination_s = 0;   ///< all broadcasts + barriers
  std::vector<int> commit_order;          ///< vulnerable nodes, commit order
  std::vector<VulnerableOutcome> outcomes;
  std::size_t mitigated = 0;
  /// Transition counts observed by the per-node state machines (sanity:
  /// every healthy node went normal -> waiting -> phase2 -> normal).
  std::size_t transitions = 0;
};

/// Simulate one p-ckpt round with the given vulnerable set.
/// \throws std::invalid_argument for inconsistent specs.
RoundResult simulate_round(const ProtocolConfig& cfg,
                           std::vector<VulnerableSpec> vulnerable);

}  // namespace pckpt::core::protocol
