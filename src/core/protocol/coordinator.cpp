#include "core/protocol/coordinator.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <stdexcept>

#include "obs/profiler.hpp"
#include "obs/trace_sink.hpp"
#include "sim/sim.hpp"

namespace pckpt::core::protocol {

void ProtocolConfig::validate() const {
  if (nodes < 1) {
    throw std::invalid_argument("ProtocolConfig: nodes must be >= 1");
  }
  if (!(per_node_gb > 0.0)) {
    throw std::invalid_argument("ProtocolConfig: per_node_gb must be > 0");
  }
  if (!(single_node_bw_gbps > 0.0) || !(aggregate_bw_gbps > 0.0)) {
    throw std::invalid_argument("ProtocolConfig: bandwidths must be > 0");
  }
  if (!(broadcast_base_us >= 0.0)) {
    throw std::invalid_argument(
        "ProtocolConfig: broadcast_base_us must be >= 0");
  }
}

double ProtocolConfig::broadcast_seconds() const {
  if (nodes <= 1) return broadcast_base_us * 1e-6;
  return broadcast_base_us * std::log2(static_cast<double>(nodes)) * 1e-6;
}

namespace {

struct QueueEntry {
  int node;
  double deadline_s;   // absolute failure time
  std::uint64_t order; // arrival order
};

class Round {
 public:
  Round(const ProtocolConfig& cfg, std::vector<VulnerableSpec> vulnerable)
      : cfg_(cfg), specs_(std::move(vulnerable)) {
    cfg_.validate();
    std::vector<bool> seen(static_cast<std::size_t>(cfg_.nodes), false);
    for (const auto& v : specs_) {
      if (v.node < 0 || v.node >= cfg_.nodes) {
        throw std::invalid_argument("simulate_round: node id out of range");
      }
      if (seen[static_cast<std::size_t>(v.node)]) {
        throw std::invalid_argument("simulate_round: duplicate node");
      }
      seen[static_cast<std::size_t>(v.node)] = true;
      if (!(v.lead_s >= 0.0) || !(v.arrival_s >= 0.0)) {
        throw std::invalid_argument(
            "simulate_round: arrival/lead must be >= 0");
      }
    }
    if (specs_.empty()) {
      throw std::invalid_argument(
          "simulate_round: need at least one vulnerable node");
    }
  }

  RoundResult run() {
    pckpt_notice_ = env_.event();
    pfs_commit_ = env_.event();
    phase2_done_ = env_.event();

    machines_.reserve(static_cast<std::size_t>(cfg_.nodes));
    for (int n = 0; n < cfg_.nodes; ++n) machines_.emplace_back(n);
    for (const auto& v : specs_) {
      commit_time_[static_cast<std::size_t>(v.node)] = -1.0;
    }

    std::vector<bool> is_vulnerable(static_cast<std::size_t>(cfg_.nodes),
                                    false);
    for (const auto& v : specs_) {
      is_vulnerable[static_cast<std::size_t>(v.node)] = true;
      env_.spawn(vulnerable_node(v)).named("vuln");
    }
    for (int n = 0; n < cfg_.nodes; ++n) {
      if (!is_vulnerable[static_cast<std::size_t>(n)]) {
        env_.spawn(healthy_node(n)).named("healthy");
      }
    }
    env_.spawn(coordinator()).named("coordinator");
    env_.run();
    if (!env_.process_errors().empty()) {
      std::rethrow_exception(env_.process_errors().front().second);
    }

    // Mitigation bookkeeping.
    result_.outcomes.reserve(specs_.size());
    for (const auto& v : specs_) {
      VulnerableOutcome o;
      o.node = v.node;
      o.commit_s = commit_time_.at(static_cast<std::size_t>(v.node));
      const double deadline = v.arrival_s + v.lead_s;
      o.mitigated = o.commit_s >= 0.0 && o.commit_s <= deadline;
      if (o.mitigated) ++result_.mitigated;
      result_.outcomes.push_back(o);
    }
    result_.transitions = transitions_;
    return result_;
  }

 private:
  void note_transition(int node, NodeState to) {
    machines_[static_cast<std::size_t>(node)].transition(to);
    ++transitions_;
  }

  void emit(obs::Event e) {
    if (cfg_.trace == nullptr) return;
    e.run_id = cfg_.run_id;
    cfg_.trace->emit(e);
  }

  /// Pick the next phase-1 writer per the configured policy.
  std::size_t pick_next() const {
    std::size_t best = 0;
    for (std::size_t i = 1; i < queue_.size(); ++i) {
      const auto& a = queue_[i];
      const auto& b = queue_[best];
      bool better = false;
      switch (cfg_.policy) {
        case QueuePolicy::kLeadTime:
          better = a.deadline_s < b.deadline_s ||
                   (a.deadline_s == b.deadline_s && a.order < b.order);
          break;
        case QueuePolicy::kFifo:
          better = a.order < b.order;
          break;
        case QueuePolicy::kLifo:
          better = a.order > b.order;
          break;
      }
      if (better) best = i;
    }
    return best;
  }

  sim::Process vulnerable_node(VulnerableSpec spec) {
    if (spec.arrival_s > 0.0) co_await env_.delay(spec.arrival_s);
    note_transition(spec.node, NodeState::kVulnerable);
    emit(obs::Event::instant(obs::Category::kProtocol, "round_vulnerable",
                             env_.now(),
                             obs::kTrackNodeBase + spec.node)
             .with("node", spec.node)
             .with("deadline_s", spec.arrival_s + spec.lead_s));
    queue_.push_back(
        QueueEntry{spec.node, spec.arrival_s + spec.lead_s, next_order_++});
    if (!round_started_) {
      round_started_ = true;
      // The initiating node broadcasts the p-ckpt request to everyone.
      const double bcast_t0 = env_.now();
      co_await env_.delay(cfg_.broadcast_seconds());
      result_.coordination_s += cfg_.broadcast_seconds();
      emit(obs::Event::span(obs::Category::kProtocol, "round_request_bcast",
                            bcast_t0, env_.now(), obs::kTrackRound)
               .with("node", spec.node));
      pckpt_notice_->succeed();
    }
  }

  sim::Process healthy_node(int node) {
    co_await pckpt_notice_;
    note_transition(node, NodeState::kWaiting);
    co_await pfs_commit_;
    note_transition(node, NodeState::kPhase2Writing);
    co_await phase2_done_;
    note_transition(node, NodeState::kNormal);
  }

  sim::Process coordinator() {
    co_await pckpt_notice_;
    emit(obs::Event::instant(obs::Category::kProtocol, "round_begin",
                             env_.now(), obs::kTrackRound)
             .with("nodes", cfg_.nodes)
             .with("vulnerable", static_cast<double>(specs_.size())));
    // ------------------------------------------------------ phase 1
    const double t1_start = env_.now();
    const double write_s = cfg_.per_node_gb / cfg_.single_node_bw_gbps;
    std::size_t processed = 0;
    while (processed < specs_.size()) {
      if (queue_.empty()) {
        // A later prediction is still on its way. If it arrives before
        // phase 1 would naturally end we keep serving it here; otherwise
        // it is folded into phase 2 (committed at the bulk write's end).
        break;
      }
      const std::size_t idx = pick_next();
      const QueueEntry entry = queue_[idx];
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
      note_transition(entry.node, NodeState::kPhase1Writing);
      const double w0 = env_.now();
      co_await env_.delay(write_s);
      commit_time_[static_cast<std::size_t>(entry.node)] = env_.now();
      note_transition(entry.node, NodeState::kNormal);
      emit(obs::Event::span(obs::Category::kProtocol, "round_phase1_write",
                            w0, env_.now(),
                            obs::kTrackNodeBase + entry.node)
               .with("node", entry.node)
               .with("deadline_s", entry.deadline_s));
      result_.commit_order.push_back(entry.node);
      ++processed;
    }
    result_.phase1_s = env_.now() - t1_start;

    // --------------------------------------- pfs-commit broadcast
    const double c0 = env_.now();
    co_await env_.delay(cfg_.broadcast_seconds());
    result_.coordination_s += cfg_.broadcast_seconds();
    emit(obs::Event::span(obs::Category::kProtocol, "round_commit_bcast", c0,
                          env_.now(), obs::kTrackRound)
             .with("phase1_commits", static_cast<double>(processed)));
    pfs_commit_->succeed();

    // ------------------------------------------------------ phase 2
    const double t2_start = env_.now();
    const double healthy =
        static_cast<double>(cfg_.nodes) - static_cast<double>(processed);
    if (healthy > 0.0) {
      co_await env_.delay(healthy * cfg_.per_node_gb /
                            cfg_.aggregate_bw_gbps);
    }
    // Vulnerable nodes whose predictions landed too late for phase 1
    // commit together with the bulk write.
    for (const auto& entry : queue_) {
      commit_time_[static_cast<std::size_t>(entry.node)] = env_.now();
      note_transition(entry.node, NodeState::kPhase1Writing);
      note_transition(entry.node, NodeState::kNormal);
      result_.commit_order.push_back(entry.node);
    }
    queue_.clear();
    result_.phase2_s = env_.now() - t2_start;
    emit(obs::Event::span(obs::Category::kProtocol, "round_phase2_write",
                          t2_start, env_.now(), obs::kTrackRound)
             .with("writers", healthy));

    // ------------------------------------------------- final barrier
    const double b0 = env_.now();
    co_await env_.delay(cfg_.broadcast_seconds());
    result_.coordination_s += cfg_.broadcast_seconds();
    phase2_done_->succeed();
    result_.total_s = env_.now();
    emit(obs::Event::span(obs::Category::kProtocol, "round_barrier", b0,
                          env_.now(), obs::kTrackRound));
    emit(obs::Event::instant(obs::Category::kProtocol, "round_end",
                             env_.now(), obs::kTrackRound)
             .with("total_s", result_.total_s)
             .with("phase1_s", result_.phase1_s)
             .with("phase2_s", result_.phase2_s)
             .with("coordination_s", result_.coordination_s));
  }

  ProtocolConfig cfg_;
  std::vector<VulnerableSpec> specs_;
  sim::Environment env_;
  sim::EventPtr pckpt_notice_, pfs_commit_, phase2_done_;
  std::vector<NodeStateMachine> machines_;
  std::deque<QueueEntry> queue_;
  std::map<std::size_t, double> commit_time_;
  bool round_started_ = false;
  std::uint64_t next_order_ = 0;
  std::size_t transitions_ = 0;
  RoundResult result_;
};

}  // namespace

RoundResult simulate_round(const ProtocolConfig& cfg,
                           std::vector<VulnerableSpec> vulnerable) {
  obs::ScopedTimer prof_span("protocol.round");
  Round round(cfg, std::move(vulnerable));
  return round.run();
}

}  // namespace pckpt::core::protocol
