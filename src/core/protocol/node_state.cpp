#include "core/protocol/node_state.hpp"

#include <stdexcept>
#include <string>

namespace pckpt::core::protocol {

std::string_view to_string(NodeState s) {
  switch (s) {
    case NodeState::kNormal:
      return "normal";
    case NodeState::kVulnerable:
      return "vulnerable";
    case NodeState::kMigrating:
      return "migrating";
    case NodeState::kPhase1Writing:
      return "phase1-writing";
    case NodeState::kWaiting:
      return "waiting";
    case NodeState::kPhase2Writing:
      return "phase2-writing";
    case NodeState::kFailed:
      return "failed";
    case NodeState::kMigrated:
      return "migrated";
  }
  return "?";
}

bool transition_allowed(NodeState from, NodeState to) {
  using S = NodeState;
  switch (from) {
    case S::kNormal:
      // Prediction makes a node vulnerable; a p-ckpt notification from a
      // peer parks a healthy node in the waiting state; an unpredicted
      // failure strikes directly.
      return to == S::kVulnerable || to == S::kWaiting || to == S::kFailed;
    case S::kVulnerable:
      // Decision: enough lead -> LM; otherwise p-ckpt phase 1. The failure
      // can also strike before any action completes.
      return to == S::kMigrating || to == S::kPhase1Writing ||
             to == S::kFailed;
    case S::kMigrating:
      // LM completes (node drained) or is aborted by a shorter-lead
      // prediction (Fig. 5's abort edge back into the p-ckpt path), or the
      // failure wins the race.
      return to == S::kMigrated || to == S::kPhase1Writing ||
             to == S::kFailed;
    case S::kPhase1Writing:
      // Commit done: the node keeps running (normal) until its failure;
      // the failure may strike mid-write.
      return to == S::kNormal || to == S::kFailed;
    case S::kWaiting:
      // pfs-commit notification releases healthy nodes into phase 2; a
      // healthy waiting node can itself become vulnerable (new prediction)
      // or fail unpredicted.
      return to == S::kPhase2Writing || to == S::kVulnerable ||
             to == S::kFailed;
    case S::kPhase2Writing:
      return to == S::kNormal || to == S::kFailed;
    case S::kFailed:
    case S::kMigrated:
      return false;  // terminal within one protocol round
  }
  return false;
}

void NodeStateMachine::transition(NodeState to) {
  if (!transition_allowed(state_, to)) {
    throw std::logic_error(
        "NodeStateMachine: illegal transition " +
        std::string(to_string(state_)) + " -> " +
        std::string(to_string(to)) + " on node " + std::to_string(node_));
  }
  state_ = to;
}

}  // namespace pckpt::core::protocol
