#pragma once

#include <string_view>

/// \file node_state.hpp
/// Per-node state machine of the hybrid p-ckpt model (paper Fig. 5).
/// The protocol simulation drives every node through this machine and the
/// checker throws on transitions the paper's diagram does not allow.

namespace pckpt::core::protocol {

enum class NodeState {
  kNormal,         ///< periodic computation + checkpointing
  kVulnerable,     ///< failure predicted, action being decided
  kMigrating,      ///< live migration in progress
  kPhase1Writing,  ///< vulnerable node committing to the PFS (p-ckpt)
  kWaiting,        ///< healthy node awaiting the pfs-commit notification
  kPhase2Writing,  ///< healthy node committing to the PFS
  kFailed,         ///< the predicted failure struck
  kMigrated,       ///< process moved to a replacement node (LM success)
};

std::string_view to_string(NodeState s);

/// True if the Fig. 5 diagram allows `from -> to`.
bool transition_allowed(NodeState from, NodeState to);

/// Tiny guard object: tracks one node's state and validates every move.
class NodeStateMachine {
 public:
  explicit NodeStateMachine(int node_id) : node_(node_id) {}

  NodeState state() const noexcept { return state_; }
  int node() const noexcept { return node_; }

  /// \throws std::logic_error on a transition Fig. 5 forbids.
  void transition(NodeState to);

 private:
  int node_;
  NodeState state_ = NodeState::kNormal;
};

}  // namespace pckpt::core::protocol
