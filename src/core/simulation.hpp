#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "core/cr_config.hpp"
#include "core/overheads.hpp"
#include "failure/lead_time_model.hpp"
#include "failure/system_catalog.hpp"
#include "failure/trace.hpp"
#include "iomodel/storage.hpp"
#include "sim/sim.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

/// \file simulation.hpp
/// One simulated application run under a C/R model — the C++ equivalent of
/// the paper's SimPy framework (Fig. 3). An application alternates compute
/// phases and blocking burst-buffer checkpoints (drained to the PFS
/// asynchronously); a failure/prediction injector replays a pre-generated
/// trace; the controller reacts per the configured model (B/M1/M2/P1/P2),
/// implementing the hybrid p-ckpt state machine of Fig. 5.

namespace pckpt::obs {
class TraceSink;
}

namespace pckpt::core {

/// Immutable description of one run's environment (shared across the
/// models being compared so the comparison is paired).
struct RunSetup {
  const workload::Application* app = nullptr;
  const workload::Machine* machine = nullptr;
  const iomodel::StorageModel* storage = nullptr;
  const failure::FailureSystem* system = nullptr;
  const failure::LeadTimeModel* leads = nullptr;
  std::uint64_t seed = 1;

  /// Optional semantic trace sink for this run (null = tracing off, the
  /// default; the only cost then is one branch per emission site).
  /// Event vocabulary and determinism contract: docs/OBSERVABILITY.md.
  obs::TraceSink* trace = nullptr;
  /// Global trial index stamped into every emitted event (`Event::run_id`).
  std::uint64_t run_id = 0;
  /// Also emit DES-kernel events (schedule/fire/interrupt) — verbose,
  /// off by default; has no effect unless `trace` is set.
  bool trace_kernel = false;
};

/// Simulate one run; deterministic in (setup.seed, config).
RunResult simulate_run(const RunSetup& setup, const CrConfig& config);

/// The live-migration transfer volume for an application on a machine:
/// min(lm_transfer_factor * per-process checkpoint, DRAM) — Sec. II.
double lm_transfer_gb(const workload::Application& app,
                      const workload::Machine& machine, double factor);

/// Migration latency theta (seconds) for the decision rule of Fig. 5.
double lm_theta_seconds(const workload::Application& app,
                        const workload::Machine& machine,
                        const iomodel::StorageModel& storage, double factor);

/// The LM-eligible failure fraction sigma of Eq. 2, estimated from the
/// failure-analysis model: recall * P(actual lead > margin * theta).
double estimate_sigma(const failure::LeadTimeModel& leads,
                      const failure::PredictorConfig& predictor,
                      double theta_s, double margin);

namespace detail {

/// Interrupt causes delivered to the application process.
struct FailureStrike {
  std::size_t failure_index;
  bool committed;  ///< vulnerable state already on the PFS (mitigated)
};
struct ProactiveRequest {};  ///< start a safeguard / p-ckpt round
struct DilationStall {
  double seconds;  ///< LM runtime-dilation stall
};

/// A vulnerable-node entry in the p-ckpt priority queue. Ordered by
/// deadline (predicted failure time): lower deadline = higher priority,
/// matching the paper's "lower lead time implies higher priority".
struct VulnerableEntry {
  double deadline_s;
  std::size_t key;  ///< failure index, or kFpBase+n for false positives
  bool operator<(const VulnerableEntry& o) const {
    if (deadline_s != o.deadline_s) return deadline_s < o.deadline_s;
    return key < o.key;
  }
};

inline constexpr std::size_t kFpBase = static_cast<std::size_t>(1) << 62;

}  // namespace detail

}  // namespace pckpt::core
