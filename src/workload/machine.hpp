#pragma once

#include <string>

#include "iomodel/storage.hpp"
#include "iomodel/summit_io.hpp"

/// \file machine.hpp
/// Whole-machine descriptor: node counts, DRAM, BB devices, interconnect,
/// and the PFS performance model (Sec. II system model).

namespace pckpt::workload {

struct Machine {
  std::string name = "Summit";
  int total_nodes = 4608;
  double dram_gb = 512.0;
  iomodel::BurstBuffer burst_buffer{};        // 1.6 TB, 2.1/5.5 GB/s
  double interconnect_gbps = 12.5;            // node-to-node
  iomodel::SummitIOConfig io{};               // PFS calibration

  /// Build the storage façade (generates the PFS matrix out to
  /// max(total_nodes, job sizes used)).
  iomodel::StorageModel make_storage() const {
    return iomodel::StorageModel(
        iomodel::make_summit_matrix(io, static_cast<double>(total_nodes),
                                    17, 14),
        burst_buffer, io, interconnect_gbps);
  }
};

/// The Summit configuration used throughout the paper.
Machine summit();

}  // namespace pckpt::workload
