#include "workload/application.hpp"

#include <algorithm>
#include <cctype>

namespace pckpt::workload {

const std::vector<Application>& summit_workloads() {
  static const std::vector<Application> kApps = {
      {"CHIMERA", 2272, 646382.0, 360.0},
      {"XGC", 1515, 149625.0, 240.0},
      {"S3D", 505, 20199.0, 240.0},
      {"GYRO", 126, 197.2, 120.0},
      {"POP", 126, 102.5, 480.0},
      {"VULCAN", 64, 3.27, 720.0},
  };
  return kApps;
}

const Application& workload_by_name(std::string_view name) {
  std::string key(name);
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  for (const auto& app : summit_workloads()) {
    if (app.name == key) return app;
  }
  throw std::out_of_range("workload_by_name: unknown application '" +
                          std::string(name) + "'");
}

double scale_checkpoint_gb(double size_old_gb, int nodes_old,
                           double dram_old_gb, int nodes_new,
                           double dram_new_gb) {
  if (!(size_old_gb > 0.0) || nodes_old < 1 || nodes_new < 1 ||
      !(dram_old_gb > 0.0) || !(dram_new_gb > 0.0)) {
    throw std::invalid_argument("scale_checkpoint_gb: bad arguments");
  }
  return size_old_gb * (static_cast<double>(nodes_new) * dram_new_gb) /
         (static_cast<double>(nodes_old) * dram_old_gb);
}

}  // namespace pckpt::workload
