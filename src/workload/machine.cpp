#include "workload/machine.hpp"

namespace pckpt::workload {

Machine summit() {
  Machine m;
  m.name = "Summit";
  m.total_nodes = 4608;
  m.dram_gb = 512.0;
  m.burst_buffer = iomodel::BurstBuffer{2.1, 5.5, 1600.0};
  m.interconnect_gbps = 12.5;
  m.io = iomodel::SummitIOConfig{};
  return m;
}

}  // namespace pckpt::workload
