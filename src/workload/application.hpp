#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

/// \file application.hpp
/// HPC workload descriptors (the paper's Table I) and the checkpoint-size
/// scaling rule (Eq. 3) used to port Titan-era characteristics to Summit.

namespace pckpt::workload {

/// One scientific application's C/R-relevant characteristics.
struct Application {
  std::string name;
  int nodes = 0;
  double ckpt_total_gb = 0;   ///< aggregate checkpoint size on the machine
  double compute_hours = 0;   ///< useful computation time to finish

  double ckpt_per_node_gb() const {
    return ckpt_total_gb / static_cast<double>(nodes);
  }
  double compute_seconds() const { return compute_hours * 3600.0; }

  void validate() const {
    if (nodes < 1) throw std::invalid_argument("Application: nodes >= 1");
    if (!(ckpt_total_gb > 0.0)) {
      throw std::invalid_argument("Application: checkpoint size must be > 0");
    }
    if (!(compute_hours > 0.0)) {
      throw std::invalid_argument("Application: compute time must be > 0");
    }
  }
};

/// Table I: the six Summit workloads (checkpoint sizes already scaled to
/// Summit's DRAM via Eq. 3 by the authors).
const std::vector<Application>& summit_workloads();

/// Lookup by name (case-insensitive). Throws std::out_of_range.
const Application& workload_by_name(std::string_view name);

/// Eq. 3: rescale a checkpoint size when porting an application between
/// machines with different node counts and DRAM sizes:
///   size_new = size_old * (nodes_new * dram_new) / (nodes_old * dram_old).
double scale_checkpoint_gb(double size_old_gb, int nodes_old,
                           double dram_old_gb, int nodes_new,
                           double dram_new_gb);

}  // namespace pckpt::workload
