#include "analysis/tables.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "exec/result_sink.hpp"

namespace pckpt::analysis {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

std::size_t Table::add_row() {
  cells_.emplace_back();
  return cells_.size() - 1;
}

Table& Table::cell(std::string value) {
  if (cells_.empty()) {
    throw std::logic_error("Table::cell: call add_row() first");
  }
  if (cells_.back().size() >= headers_.size()) {
    throw std::logic_error("Table::cell: row already full");
  }
  cells_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell_percent(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value << "%";
  return cell(os.str());
}

Table& Table::cell(int value) { return cell(std::to_string(value)); }

const std::string& Table::at(std::size_t row, std::size_t col) const {
  return cells_.at(row).at(col);
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : cells_) {
      if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string();
      if (c == 0) {
        os << std::left << std::setw(static_cast<int>(widths[c])) << v;
      } else {
        os << "  " << std::right << std::setw(static_cast<int>(widths[c]))
           << v;
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = headers_.size() > 0 ? 2 * (headers_.size() - 1) : 0;
  for (auto w : widths) total += w;
  os << std::string(total, '-') << '\n';
  for (const auto& row : cells_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) os << ',';
      const std::string& v = c < row.size() ? row[c] : std::string();
      if (v.find(',') != std::string::npos) {
        os << '"' << v << '"';
      } else {
        os << v;
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : cells_) emit(row);
}

void Table::print_jsonl(std::ostream& os, const std::string& bench_name) const {
  for (std::size_t r = 0; r < cells_.size(); ++r) {
    exec::JsonlRow row;
    row.add("bench", bench_name)
        .add("row", static_cast<std::uint64_t>(r));
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells_[r].size() ? cells_[r][c]
                                                  : std::string();
      // Emit fully-numeric cells as JSON numbers so consumers need no
      // post-hoc coercion; anything else ("M2-1.5", "47.5%") stays a string.
      char* end = nullptr;
      const double num = std::strtod(v.c_str(), &end);
      if (!v.empty() && end == v.c_str() + v.size() && std::isfinite(num)) {
        row.add(headers_[c], num);
      } else {
        row.add(headers_[c], v);
      }
    }
    os << row.str() << '\n';
  }
}

std::string hours(double seconds, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << seconds / 3600.0;
  return os.str();
}

}  // namespace pckpt::analysis
