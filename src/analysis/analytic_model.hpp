#pragma once

/// \file analytic_model.hpp
/// The closed-form LM-vs-p-ckpt comparison of the paper's Observation 8
/// (Eqs. 4-8): when does prioritized checkpointing beat live migration?
///
/// Symbols: sigma = fraction of failures LM can avoid (predicted with lead
/// > migration latency); alpha = LM transfer volume over checkpoint volume;
/// beta = fraction of failures p-ckpt can mitigate.

namespace pckpt::analysis {

/// Eq. 5 factor: fractional checkpoint-overhead reduction LM's elongated
/// interval buys — 1 - sqrt(1 - sigma).
double lm_checkpoint_reduction_fraction(double sigma);

/// Eq. 6 (with the denominator alpha; the paper's print shows "/2", which
/// is inconsistent with Eq. 7 — see tests): under a uniform lead-time
/// distribution and equal network/PFS bandwidth,
///   beta = (alpha - 1 + sigma) / alpha.
double beta_fraction(double alpha, double sigma);

/// Upper bound on sigma from the constraint that LM's combined reductions
/// cannot exceed the base recomputation overhead (paper: sigma < 0.61;
/// exactly (sqrt(5)-1)/2).
double sigma_upper_bound();

/// Eq. 8 as printed in the paper: p-ckpt beats LM when
///   alpha > (sigma + 1) / (sigma + sqrt(1 - sigma)).
double alpha_threshold_paper(double sigma);

/// The same threshold re-derived from Eqs. 4-7 with beta from Eq. 6:
///   alpha > (1 - sigma) / (sqrt(1 - sigma) - sigma).
/// Kept alongside the paper's closed form; both are monotone increasing on
/// [0, sigma_upper_bound()) and agree at sigma = 0.
double alpha_threshold_derived(double sigma);

/// Eq. 4/7 predicate with explicit overhead split: does p-ckpt win?
/// \param recomp_over_ckpt ratio recomp_B / ckpt_B (1.0 = the even split
///        assumed for Eq. 8).
bool pckpt_beats_lm(double alpha, double sigma, double recomp_over_ckpt = 1.0);

}  // namespace pckpt::analysis
