#pragma once

/// \file waste_model.hpp
/// First-order closed-form expectation of model B's fault-tolerance
/// overhead (Young/Daly-style waste accounting). Used to validate the
/// discrete-event simulator end-to-end: on the base model the simulated
/// overhead must track this expectation within first-order error.

namespace pckpt::analysis {

struct WasteInputs {
  double compute_s = 0;     ///< useful work (T)
  double t_ckpt_bb_s = 0;   ///< blocking BB checkpoint cost (C)
  double oci_s = 0;         ///< checkpoint interval actually used
  double rate_per_s = 0;    ///< long-run job failure rate (lambda * c)
  double recovery_s = 0;    ///< per-failure recovery cost (restore+restart)
  /// Weibull shape of the inter-arrival process. For shape != 1 the
  /// finite-horizon renewal count differs from t * rate by the classic
  /// excess (CV^2 - 1) / 2 (positive for the DFR shapes of Table III,
  /// whose early failures cluster). 1 = Poisson, no correction.
  double weibull_shape = 1.0;
};

struct WasteBreakdown {
  double checkpoint_s = 0;     ///< (T / OCI) * C
  double expected_failures = 0;
  double recomputation_s = 0;  ///< failures * (OCI/2 + C/2) first-order
  double recovery_s = 0;       ///< failures * recovery
  double total_s = 0;
};

/// Expected overhead of periodic checkpointing with rate `rate_per_s`
/// failures per second, restore from the most recent completed
/// checkpoint. First-order in (OCI * rate); accurate for OCI << MTBF.
/// \throws std::invalid_argument on non-positive T, C, OCI or rate.
WasteBreakdown expected_waste(const WasteInputs& in);

/// Young's optimal interval minimizes expected_waste over oci_s; helper
/// that evaluates the waste at a given interval so tests can verify the
/// optimum lands where Eq. 1 says.
double total_waste_at(const WasteInputs& in, double oci_s);

}  // namespace pckpt::analysis
