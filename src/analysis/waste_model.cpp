#include "analysis/waste_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pckpt::analysis {

namespace {

/// Asymptotic renewal-function excess m(t) - t/mu -> (CV^2 - 1) / 2 for a
/// renewal process observed from t = 0.
double renewal_excess(double shape) {
  if (shape == 1.0) return 0.0;
  const double g1 = std::tgamma(1.0 + 1.0 / shape);
  const double g2 = std::tgamma(1.0 + 2.0 / shape);
  const double cv2 = g2 / (g1 * g1) - 1.0;
  return (cv2 - 1.0) / 2.0;
}

}  // namespace

WasteBreakdown expected_waste(const WasteInputs& in) {
  if (!(in.compute_s > 0.0) || !(in.t_ckpt_bb_s > 0.0) ||
      !(in.oci_s > 0.0) || !(in.rate_per_s > 0.0) ||
      !(in.recovery_s >= 0.0) || !(in.weibull_shape > 0.0)) {
    throw std::invalid_argument("expected_waste: bad inputs");
  }
  WasteBreakdown out;
  out.checkpoint_s = in.compute_s / in.oci_s * in.t_ckpt_bb_s;
  const double excess = renewal_excess(in.weibull_shape);
  // Failures arrive over the whole run; two fixed-point iterations let
  // the wall-clock (which the failures themselves extend) converge.
  double wall = in.compute_s + out.checkpoint_s;
  for (int iter = 0; iter < 2; ++iter) {
    out.expected_failures =
        std::max(0.0, wall * in.rate_per_s + excess);
    // A failure lands uniformly within a (OCI + C) cycle and rolls back
    // to the cycle's start: expected loss (OCI + C) / 2.
    out.recomputation_s =
        out.expected_failures * (in.oci_s + in.t_ckpt_bb_s) / 2.0;
    out.recovery_s = out.expected_failures * in.recovery_s;
    wall = in.compute_s + out.checkpoint_s + out.recomputation_s +
           out.recovery_s;
  }
  out.total_s = out.checkpoint_s + out.recomputation_s + out.recovery_s;
  return out;
}

double total_waste_at(const WasteInputs& in, double oci_s) {
  WasteInputs probe = in;
  probe.oci_s = oci_s;
  return expected_waste(probe).total_s;
}

}  // namespace pckpt::analysis
