#include "analysis/analytic_model.hpp"

#include <cmath>
#include <stdexcept>

namespace pckpt::analysis {

namespace {
void check_sigma(double sigma) {
  if (!(sigma >= 0.0 && sigma < 1.0)) {
    throw std::invalid_argument("analytic_model: sigma must be in [0,1)");
  }
}
void check_alpha(double alpha) {
  if (!(alpha >= 1.0)) {
    throw std::invalid_argument("analytic_model: alpha must be >= 1");
  }
}
}  // namespace

double lm_checkpoint_reduction_fraction(double sigma) {
  check_sigma(sigma);
  return 1.0 - std::sqrt(1.0 - sigma);
}

double beta_fraction(double alpha, double sigma) {
  check_alpha(alpha);
  check_sigma(sigma);
  return (alpha - 1.0 + sigma) / alpha;
}

double sigma_upper_bound() {
  // sigma + (1 - sqrt(1-sigma)) < 1  =>  sigma < sqrt(1-sigma)
  // =>  sigma^2 + sigma - 1 < 0  =>  sigma < (sqrt(5)-1)/2.
  return (std::sqrt(5.0) - 1.0) / 2.0;
}

double alpha_threshold_paper(double sigma) {
  check_sigma(sigma);
  return (sigma + 1.0) / (sigma + std::sqrt(1.0 - sigma));
}

double alpha_threshold_derived(double sigma) {
  check_sigma(sigma);
  const double root = std::sqrt(1.0 - sigma);
  if (root <= sigma) {
    throw std::invalid_argument(
        "alpha_threshold_derived: sigma beyond the feasibility bound");
  }
  return (1.0 - sigma) / (root - sigma);
}

bool pckpt_beats_lm(double alpha, double sigma, double recomp_over_ckpt) {
  check_alpha(alpha);
  check_sigma(sigma);
  if (!(recomp_over_ckpt > 0.0)) {
    throw std::invalid_argument(
        "pckpt_beats_lm: recomp/ckpt ratio must be > 0");
  }
  // Eq. 7: ckpt_red_LM / (beta - sigma) < recomp_B / ckpt_B.
  const double gain_gap = beta_fraction(alpha, sigma) - sigma;
  if (gain_gap <= 0.0) return false;  // p-ckpt mitigates no more than LM
  return lm_checkpoint_reduction_fraction(sigma) / gain_gap <
         recomp_over_ckpt;
}

}  // namespace pckpt::analysis
