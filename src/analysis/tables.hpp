#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

/// \file tables.hpp
/// Minimal ASCII/CSV table emitter used by the benchmark harness to print
/// paper-style tables and figure series.

namespace pckpt::analysis {

/// Column-aligned text table. Cells are strings; numeric helpers format
/// with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row (returns the row index).
  std::size_t add_row();

  /// Set a cell of the last row.
  Table& cell(std::string value);
  Table& cell(double value, int precision = 2);
  Table& cell_percent(double value, int precision = 1);
  Table& cell(int value);

  std::size_t rows() const noexcept { return cells_.size(); }
  std::size_t columns() const noexcept { return headers_.size(); }
  const std::string& at(std::size_t row, std::size_t col) const;

  /// Render with aligned columns (first column left, rest right).
  void print(std::ostream& os) const;
  std::string to_string() const;

  /// Render as CSV (quotes cells containing commas).
  void print_csv(std::ostream& os) const;

  /// Render as JSONL: one JSON object per data row, keyed by the column
  /// headers, prefixed with {"bench": bench_name, "row": index}. Cells
  /// that parse fully as numbers are emitted as JSON numbers; everything
  /// else (e.g. "-12.5%") as strings. Schema: docs/EXECUTION.md.
  void print_jsonl(std::ostream& os, const std::string& bench_name) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Format seconds as hours with given precision (paper tables report hours).
std::string hours(double seconds, int precision = 1);

}  // namespace pckpt::analysis
