#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file result_sink.hpp
/// Machine-readable result emission for the bench harness: one JSON object
/// per line (JSONL), written next to the human-readable stdout tables so
/// downstream tooling (plot scripts, regression trackers) never scrapes
/// ASCII tables. Schema: docs/EXECUTION.md.

namespace pckpt::exec {

/// One JSONL row: an insertion-ordered flat object of string / number /
/// bool fields. Values are rendered on `str()`; doubles use shortest-ish
/// `%.12g` (plenty for metric reporting) and non-finite values become
/// `null` so every emitted line is valid JSON.
class JsonlRow {
 public:
  JsonlRow& add(std::string_view key, std::string_view value);
  JsonlRow& add(std::string_view key, const char* value);
  JsonlRow& add(std::string_view key, double value);
  JsonlRow& add(std::string_view key, std::uint64_t value);  // also size_t
  JsonlRow& add(std::string_view key, int value);
  JsonlRow& add(std::string_view key, bool value);

  /// Append a value that is already valid JSON (e.g. from a numeric cell).
  JsonlRow& add_raw(std::string_view key, std::string_view json_value);

  bool empty() const noexcept { return fields_.empty(); }

  /// Render as a single-line JSON object (no trailing newline).
  std::string str() const;

  /// JSON string escaping (quotes, backslash, control characters).
  static std::string escape(std::string_view s);

  /// Render a double as a JSON value (`null` for NaN/Inf).
  static std::string number(double value);

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  // key -> JSON
};

/// Thread-safe append-only JSONL file writer. Rows from concurrent
/// campaigns interleave at line granularity; each line is flushed so a
/// crashed or interrupted run still leaves a valid prefix.
class JsonlSink {
 public:
  /// Opens `path` (truncating by default, appending when `append`);
  /// throws std::runtime_error on failure.
  explicit JsonlSink(const std::string& path, bool append = false);

  const std::string& path() const noexcept { return path_; }
  std::size_t rows_written() const noexcept;

  void write(const JsonlRow& row);

 private:
  std::string path_;  ///< immutable after construction
  mutable std::mutex mutex_;
  std::ofstream out_;      // guarded_by(mutex_)
  std::size_t rows_ = 0;  // guarded_by(mutex_)
};

}  // namespace pckpt::exec
