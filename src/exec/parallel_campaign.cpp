#include "exec/parallel_campaign.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>

namespace pckpt::exec {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

ShardPlan plan_shards(std::size_t total, std::size_t shard_size) {
  ShardPlan plan;
  plan.total = total;
  plan.shard_size = std::max<std::size_t>(1, shard_size);
  return plan;
}

ShardRunStats run_sharded(Executor& ex, const ShardPlan& plan,
                          const ShardFn& fn, const ProgressHook& hook) {
  ShardRunStats stats;
  stats.shards = plan.count();
  stats.items = plan.total;
  if (stats.shards == 0) return stats;

  const auto t0 = Clock::now();

  // Shared meter state; shards report completion under the lock.
  std::mutex meter_mutex;
  std::size_t shards_done = 0;
  std::size_t items_done = 0;
  double max_shard_seconds = 0.0;

  ex.run(stats.shards, [&](std::size_t shard) {
    const auto shard_t0 = Clock::now();
    fn(shard, plan.begin(shard), plan.end(shard));
    const auto shard_t1 = Clock::now();

    const double shard_s = seconds_between(shard_t0, shard_t1);
    const double elapsed = seconds_between(t0, shard_t1);

    std::lock_guard<std::mutex> lock(meter_mutex);
    ++shards_done;
    items_done += plan.end(shard) - plan.begin(shard);
    max_shard_seconds = std::max(max_shard_seconds, shard_s);
    if (hook) {
      ShardProgress p;
      p.shard_index = shard;
      p.shards_done = shards_done;
      p.shards_total = stats.shards;
      p.items_done = items_done;
      p.items_total = stats.items;
      p.shard_seconds = shard_s;
      p.elapsed_seconds = elapsed;
      p.items_per_second =
          elapsed > 0.0 ? static_cast<double>(items_done) / elapsed : 0.0;
      hook(p);
    }
  });

  stats.elapsed_seconds = seconds_between(t0, Clock::now());
  stats.items_per_second =
      stats.elapsed_seconds > 0.0
          ? static_cast<double>(stats.items) / stats.elapsed_seconds
          : 0.0;
  {
    std::lock_guard<std::mutex> lock(meter_mutex);
    stats.max_shard_seconds = max_shard_seconds;
  }
  return stats;
}

}  // namespace pckpt::exec
