#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/executor.hpp"

/// \file fair_share.hpp
/// The daemon-wide fair-share campaign scheduler (docs/SERVING.md): one
/// shared pool of worker threads serving every admitted tier-B campaign,
/// replacing the per-admission-slot serial executors. Each campaign owns
/// a private FIFO of shard-granular work items; workers drain the
/// per-campaign queues round-robin, taking one item per campaign per
/// scan. Service is therefore equal-share: with C active campaigns a
/// campaign holding S remaining shards completes within ~S*C shard
/// slots regardless of how much work the other campaigns still hold —
/// a 10k-trial campaign cannot starve a 100-trial one, whose latency
/// stays proportional to its own remaining shards.
///
/// Determinism: the scheduler only changes *when* shards run, never
/// what they compute or how results merge (parallel_campaign.hpp owns
/// the shard plan and ascending-order merge), so exact-tier payloads
/// stay byte-identical to a serial run at any worker count.

namespace pckpt::exec {

/// Shared worker pool with one work queue per registered campaign,
/// drained round-robin (one task per campaign per scan round).
///
/// Destruction semantics match ThreadPool: the destructor drains every
/// queued task before joining the workers, so in-flight
/// `CampaignExecutor::run` calls complete normally. Campaigns register
/// through `CampaignExecutor`; the scheduler itself has no public
/// enqueue surface.
class FairShareScheduler {
 public:
  /// Spawns `threads` workers (minimum 1; 0 is promoted to 1).
  explicit FairShareScheduler(std::size_t threads);
  ~FairShareScheduler();

  FairShareScheduler(const FairShareScheduler&) = delete;
  FairShareScheduler& operator=(const FairShareScheduler&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Campaigns registered right now (diagnostic only).
  std::size_t active_campaigns() const;

  /// Tasks enqueued but not yet started, across all campaigns
  /// (diagnostic only).
  std::size_t queued() const;

 private:
  friend class CampaignExecutor;

  /// One admitted campaign's private work FIFO.
  struct Campaign {
    std::deque<std::function<void()>> tasks;
  };

  /// Register/unregister a campaign queue. The handle stays valid until
  /// unregistered; unregister requires the queue to be drained (run()
  /// has returned).
  Campaign* register_campaign();
  void unregister_campaign(Campaign* c);

  void enqueue(Campaign* c, std::vector<std::function<void()>> tasks);
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Campaign>> campaigns_;  // guarded_by(mu_)
  std::size_t cursor_ = 0;        // guarded_by(mu_) round-robin scan start
  std::size_t total_queued_ = 0;  // guarded_by(mu_) sum of queue lengths
  std::vector<std::thread> workers_;  ///< immutable after construction
  bool stopping_ = false;  // guarded_by(mu_)
};

/// Executor adapter for one campaign on a FairShareScheduler: `run`
/// enqueues the batch onto this campaign's queue and blocks until every
/// task completes, rethrowing the first captured exception (remaining
/// queued tasks of a failed batch are skipped). One instance per
/// admitted campaign; construct after admission, destroy after
/// `run_campaign` returns. Not re-entrant (Executor contract).
class CampaignExecutor final : public Executor {
 public:
  explicit CampaignExecutor(FairShareScheduler& scheduler)
      : scheduler_(scheduler), campaign_(scheduler.register_campaign()) {}
  ~CampaignExecutor() override { scheduler_.unregister_campaign(campaign_); }

  CampaignExecutor(const CampaignExecutor&) = delete;
  CampaignExecutor& operator=(const CampaignExecutor&) = delete;

  std::size_t concurrency() const noexcept override {
    return scheduler_.size();
  }

  void run(std::size_t count,
           const std::function<void(std::size_t)>& task) override;

 private:
  FairShareScheduler& scheduler_;
  FairShareScheduler::Campaign* campaign_;
};

}  // namespace pckpt::exec
