#include "exec/fair_share.hpp"

#include <algorithm>
#include <exception>
#include <utility>

namespace pckpt::exec {

FairShareScheduler::FairShareScheduler(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

FairShareScheduler::~FairShareScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t FairShareScheduler::active_campaigns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return campaigns_.size();
}

std::size_t FairShareScheduler::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_queued_;
}

FairShareScheduler::Campaign* FairShareScheduler::register_campaign() {
  std::lock_guard<std::mutex> lock(mu_);
  campaigns_.push_back(std::make_unique<Campaign>());
  return campaigns_.back().get();
}

void FairShareScheduler::unregister_campaign(Campaign* c) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::find_if(
      campaigns_.begin(), campaigns_.end(),
      [c](const std::unique_ptr<Campaign>& p) { return p.get() == c; });
  if (it == campaigns_.end()) return;
  total_queued_ -= it->get()->tasks.size();
  const auto idx = static_cast<std::size_t>(it - campaigns_.begin());
  campaigns_.erase(it);
  // Keep the scan cursor pointing at the same campaign it would have
  // served next, so removing a finished campaign never skips another's
  // turn.
  if (cursor_ > idx) --cursor_;
  if (campaigns_.empty()) cursor_ = 0;
}

void FairShareScheduler::enqueue(Campaign* c,
                                 std::vector<std::function<void()>> tasks) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& t : tasks) c->tasks.push_back(std::move(t));
    total_queued_ += tasks.size();
  }
  cv_.notify_all();
}

void FairShareScheduler::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || total_queued_ > 0; });
      if (total_queued_ == 0) return;  // stopping_ && drained
      // Round-robin scan: starting at the cursor, take one task from the
      // first non-empty campaign queue and park the cursor just past it,
      // so the next worker serves the next campaign. Each active
      // campaign gets one shard slot per scan round — equal service.
      const std::size_t n = campaigns_.size();
      for (std::size_t k = 0; k < n; ++k) {
        Campaign& c = *campaigns_[(cursor_ + k) % n];
        if (c.tasks.empty()) continue;
        task = std::move(c.tasks.front());
        c.tasks.pop_front();
        --total_queued_;
        cursor_ = (cursor_ + k + 1) % n;
        break;
      }
    }
    task();  // batch closures capture their own error state; no throws
  }
}

void CampaignExecutor::run(std::size_t count,
                           const std::function<void(std::size_t)>& task) {
  if (count == 0) return;

  struct Batch {
    std::mutex m;
    std::condition_variable done_cv;
    std::size_t remaining;
    std::exception_ptr first_error;
    explicit Batch(std::size_t n) : remaining(n) {}
  };
  auto batch = std::make_shared<Batch>(count);

  std::vector<std::function<void()>> items;
  items.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    items.push_back([batch, &task, i] {
      std::exception_ptr err;
      {
        // Skip remaining work once a task has failed: the batch result
        // is already an exception, further shards are wasted cycles.
        std::lock_guard<std::mutex> lock(batch->m);
        if (batch->first_error) {
          if (--batch->remaining == 0) batch->done_cv.notify_all();
          return;
        }
      }
      try {
        task(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(batch->m);
      if (err && !batch->first_error) batch->first_error = err;
      if (--batch->remaining == 0) batch->done_cv.notify_all();
    });
  }
  scheduler_.enqueue(campaign_, std::move(items));

  std::unique_lock<std::mutex> lock(batch->m);
  batch->done_cv.wait(lock, [&] { return batch->remaining == 0; });
  if (batch->first_error) std::rethrow_exception(batch->first_error);
}

}  // namespace pckpt::exec
