#pragma once

#include <cstddef>
#include <functional>

#include "exec/executor.hpp"

/// \file parallel_campaign.hpp
/// The sharded campaign scheduler. A campaign of `total` trials is cut
/// into fixed-size shards of consecutive trial indices; shards are the
/// unit of dispatch onto an `Executor`, and shard *results* are merged by
/// the caller in ascending shard order.
///
/// Determinism contract (docs/EXECUTION.md):
///  1. The shard plan depends only on (total, shard_size) — never on the
///     executor or its thread count.
///  2. Each trial derives its RNG stream from the *global* trial index
///     (`rnd::derive_seed(base_seed, i)`), never from a worker id.
///  3. Shard results are merged in ascending shard index order.
/// Under 1-3, a campaign's aggregate is bit-identical for any `--jobs`
/// value, including the serial executor.

namespace pckpt::exec {

/// Trials per shard. Small enough to load-balance 16 workers on a
/// 200-trial campaign, large enough that dispatch cost is noise next to a
/// DES run. Fixed — see determinism contract above.
inline constexpr std::size_t kDefaultShardTrials = 8;

/// Partition of `0..total-1` into `count()` contiguous shards.
struct ShardPlan {
  std::size_t total = 0;
  std::size_t shard_size = kDefaultShardTrials;

  std::size_t count() const noexcept {
    return shard_size == 0 ? 0 : (total + shard_size - 1) / shard_size;
  }
  std::size_t begin(std::size_t shard) const noexcept {
    return shard * shard_size;
  }
  std::size_t end(std::size_t shard) const noexcept {
    const std::size_t e = (shard + 1) * shard_size;
    return e < total ? e : total;
  }
};

/// Validated plan ctor: clamps shard_size to >= 1.
ShardPlan plan_shards(std::size_t total,
                      std::size_t shard_size = kDefaultShardTrials);

/// Progress snapshot delivered once per completed shard. Hook invocations
/// are serialized (the meter's lock is held), but arrive from worker
/// threads in completion order — not shard order.
struct ShardProgress {
  std::size_t shard_index = 0;    ///< which shard just finished
  std::size_t shards_done = 0;    ///< completed so far (including this one)
  std::size_t shards_total = 0;
  std::size_t items_done = 0;     ///< trials completed so far
  std::size_t items_total = 0;
  double shard_seconds = 0.0;     ///< wall time of this shard
  double elapsed_seconds = 0.0;   ///< wall time since run_sharded started
  double items_per_second = 0.0;  ///< items_done / elapsed
};

using ProgressHook = std::function<void(const ShardProgress&)>;

/// Work function: process trials `[begin, end)` of shard `shard`.
using ShardFn =
    std::function<void(std::size_t shard, std::size_t begin, std::size_t end)>;

/// Engine-level throughput metrics for one sharded run.
struct ShardRunStats {
  std::size_t shards = 0;
  std::size_t items = 0;
  double elapsed_seconds = 0.0;
  double items_per_second = 0.0;
  double max_shard_seconds = 0.0;  ///< slowest shard (straggler diagnostic)
};

/// Execute every shard of `plan` on `ex` and block until done. The shard
/// function is called exactly once per shard; exceptions propagate per the
/// Executor contract.
ShardRunStats run_sharded(Executor& ex, const ShardPlan& plan,
                          const ShardFn& fn, const ProgressHook& hook = {});

}  // namespace pckpt::exec
