#include "exec/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace pckpt::exec {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

std::size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // submit() wraps in packaged_task, so throws cannot escape it;
             // raw post() tasks are expected not to throw.
  }
}

void ThreadPoolExecutor::run(std::size_t count,
                             const std::function<void(std::size_t)>& task) {
  if (count == 0) return;

  struct Batch {
    std::mutex m;
    std::condition_variable done_cv;
    std::size_t remaining;
    std::exception_ptr first_error;
    explicit Batch(std::size_t n) : remaining(n) {}
  };
  auto batch = std::make_shared<Batch>(count);

  for (std::size_t i = 0; i < count; ++i) {
    pool_.post([batch, &task, i] {
      std::exception_ptr err;
      {
        // Skip remaining work once a task has failed: the batch result is
        // already an exception, so further shards would be wasted cycles.
        std::lock_guard<std::mutex> lock(batch->m);
        if (batch->first_error) {
          if (--batch->remaining == 0) batch->done_cv.notify_all();
          return;
        }
      }
      try {
        task(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(batch->m);
      if (err && !batch->first_error) batch->first_error = err;
      if (--batch->remaining == 0) batch->done_cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(batch->m);
  batch->done_cv.wait(lock, [&] { return batch->remaining == 0; });
  if (batch->first_error) std::rethrow_exception(batch->first_error);
}

std::size_t resolve_jobs(std::size_t requested) noexcept {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace pckpt::exec
