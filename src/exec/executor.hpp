#pragma once

#include <cstddef>
#include <functional>

/// \file executor.hpp
/// The execution-policy seam of the campaign engine: an `Executor` turns a
/// batch of independent, index-addressed tasks into completed work. The
/// simulation core is written against this interface only, so the same
/// campaign code runs serially (tests, debugging, single-core boxes) or on
/// a thread pool (`exec::ThreadPoolExecutor`) without behavioural change —
/// determinism is owned by the *scheduling plan* (see parallel_campaign.hpp),
/// never by the executor.

namespace pckpt::exec {

/// Runs `count` independent tasks, identified by index `0..count-1`.
///
/// Contract:
///  - `run` blocks until every task has finished (or one has thrown).
///  - Tasks may execute concurrently and in any order; callers must not
///    depend on ordering for correctness or reproducibility.
///  - If one or more tasks throw, `run` rethrows the first exception it
///    captured after all started tasks have completed. Remaining queued
///    tasks may be skipped.
///  - `run` must not be called re-entrantly from inside one of its own
///    tasks (a worker waiting on its own pool would deadlock).
class Executor {
 public:
  virtual ~Executor() = default;

  /// Upper bound on tasks that can make progress simultaneously (>= 1).
  virtual std::size_t concurrency() const noexcept = 0;

  virtual void run(std::size_t count,
                   const std::function<void(std::size_t)>& task) = 0;
};

/// Inline, same-thread executor: tasks run in index order. This is the
/// default for `core::run_campaign` and the reference each parallel
/// configuration is compared against in the determinism tests.
class SerialExecutor final : public Executor {
 public:
  std::size_t concurrency() const noexcept override { return 1; }

  void run(std::size_t count,
           const std::function<void(std::size_t)>& task) override {
    for (std::size_t i = 0; i < count; ++i) task(i);
  }
};

}  // namespace pckpt::exec
