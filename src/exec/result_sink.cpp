#include "exec/result_sink.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace pckpt::exec {

std::string JsonlRow::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonlRow::number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", value);
  return buf;
}

JsonlRow& JsonlRow::add(std::string_view key, std::string_view value) {
  fields_.emplace_back(std::string(key), '"' + escape(value) + '"');
  return *this;
}

JsonlRow& JsonlRow::add(std::string_view key, const char* value) {
  return add(key, std::string_view(value));
}

JsonlRow& JsonlRow::add(std::string_view key, double value) {
  fields_.emplace_back(std::string(key), number(value));
  return *this;
}

JsonlRow& JsonlRow::add(std::string_view key, std::uint64_t value) {
  fields_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

JsonlRow& JsonlRow::add(std::string_view key, int value) {
  fields_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

JsonlRow& JsonlRow::add(std::string_view key, bool value) {
  fields_.emplace_back(std::string(key), value ? "true" : "false");
  return *this;
}

JsonlRow& JsonlRow::add_raw(std::string_view key, std::string_view json) {
  fields_.emplace_back(std::string(key), std::string(json));
  return *this;
}

std::string JsonlRow::str() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : fields_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += escape(key);
    out += "\":";
    out += value;
  }
  out += '}';
  return out;
}

JsonlSink::JsonlSink(const std::string& path, bool append)
    : path_(path),
      out_(path, append ? std::ios::out | std::ios::app : std::ios::out) {
  if (!out_) {
    throw std::runtime_error("JsonlSink: cannot open '" + path +
                             "' for writing");
  }
}

std::size_t JsonlSink::rows_written() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return rows_;
}

void JsonlSink::write(const JsonlRow& row) {
  const std::string line = row.str();
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << line << '\n';
  out_.flush();
  ++rows_;
}

}  // namespace pckpt::exec
