#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/executor.hpp"

/// \file thread_pool.hpp
/// A small, reusable worker pool. One pool is created per process (or per
/// bench binary) and shared by every campaign the binary runs; workers are
/// long-lived so per-shard dispatch costs one lock + one notify, not a
/// thread spawn.

namespace pckpt::exec {

/// Fixed-size pool of worker threads draining a FIFO task queue.
///
/// Destruction semantics: the destructor *drains* the queue — every task
/// already posted runs to completion before the workers join. This makes
/// "destroy while busy" safe and keeps futures from `submit` valid.
class ThreadPool {
 public:
  /// Spawns `threads` workers (minimum 1; 0 is promoted to 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task for execution; returns immediately.
  void post(std::function<void()> task);

  /// Enqueue a callable and get a future for its result. Exceptions thrown
  /// by the callable are captured and rethrown by `future::get`.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    post([task]() { (*task)(); });
    return result;
  }

  /// Number of tasks posted but not yet started (diagnostic only).
  std::size_t queued() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;  // guarded_by(mutex_)
  std::vector<std::thread> workers_;         ///< immutable after construction
  bool stopping_ = false;  // guarded_by(mutex_)
};

/// Executor adapter over a ThreadPool. Dispatches the task batch onto the
/// pool, blocks the calling thread until the batch completes, and rethrows
/// the first task exception (by completion order) after the batch drains.
class ThreadPoolExecutor final : public Executor {
 public:
  explicit ThreadPoolExecutor(ThreadPool& pool) : pool_(pool) {}

  std::size_t concurrency() const noexcept override { return pool_.size(); }

  void run(std::size_t count,
           const std::function<void(std::size_t)>& task) override;

 private:
  ThreadPool& pool_;
};

/// `--jobs` resolution helper: 0 means "auto" = hardware_concurrency
/// (which itself can report 0 on exotic platforms; we floor at 1).
std::size_t resolve_jobs(std::size_t requested) noexcept;

}  // namespace pckpt::exec
