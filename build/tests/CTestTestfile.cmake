# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_random[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_iomodel[1]_include.cmake")
include("/root/repo/build/tests/test_failure[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
