file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/cr_config_test.cpp.o"
  "CMakeFiles/test_core.dir/core/cr_config_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/extensions_test.cpp.o"
  "CMakeFiles/test_core.dir/core/extensions_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/oci_test.cpp.o"
  "CMakeFiles/test_core.dir/core/oci_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/properties_test.cpp.o"
  "CMakeFiles/test_core.dir/core/properties_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/protocol_test.cpp.o"
  "CMakeFiles/test_core.dir/core/protocol_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/scenario_test.cpp.o"
  "CMakeFiles/test_core.dir/core/scenario_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/simulation_test.cpp.o"
  "CMakeFiles/test_core.dir/core/simulation_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/spare_pool_test.cpp.o"
  "CMakeFiles/test_core.dir/core/spare_pool_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/timeline_test.cpp.o"
  "CMakeFiles/test_core.dir/core/timeline_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
