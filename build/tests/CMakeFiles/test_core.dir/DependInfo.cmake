
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/cr_config_test.cpp" "tests/CMakeFiles/test_core.dir/core/cr_config_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/cr_config_test.cpp.o.d"
  "/root/repo/tests/core/extensions_test.cpp" "tests/CMakeFiles/test_core.dir/core/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/extensions_test.cpp.o.d"
  "/root/repo/tests/core/oci_test.cpp" "tests/CMakeFiles/test_core.dir/core/oci_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/oci_test.cpp.o.d"
  "/root/repo/tests/core/properties_test.cpp" "tests/CMakeFiles/test_core.dir/core/properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/properties_test.cpp.o.d"
  "/root/repo/tests/core/protocol_test.cpp" "tests/CMakeFiles/test_core.dir/core/protocol_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/protocol_test.cpp.o.d"
  "/root/repo/tests/core/scenario_test.cpp" "tests/CMakeFiles/test_core.dir/core/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/scenario_test.cpp.o.d"
  "/root/repo/tests/core/simulation_test.cpp" "tests/CMakeFiles/test_core.dir/core/simulation_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/simulation_test.cpp.o.d"
  "/root/repo/tests/core/spare_pool_test.cpp" "tests/CMakeFiles/test_core.dir/core/spare_pool_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/spare_pool_test.cpp.o.d"
  "/root/repo/tests/core/timeline_test.cpp" "tests/CMakeFiles/test_core.dir/core/timeline_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/timeline_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pckpt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pckpt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/pckpt_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pckpt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/iomodel/CMakeFiles/pckpt_iomodel.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pckpt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
