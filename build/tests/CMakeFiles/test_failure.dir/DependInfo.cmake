
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/failure/lead_time_model_test.cpp" "tests/CMakeFiles/test_failure.dir/failure/lead_time_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_failure.dir/failure/lead_time_model_test.cpp.o.d"
  "/root/repo/tests/failure/log_analysis_test.cpp" "tests/CMakeFiles/test_failure.dir/failure/log_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/test_failure.dir/failure/log_analysis_test.cpp.o.d"
  "/root/repo/tests/failure/system_catalog_test.cpp" "tests/CMakeFiles/test_failure.dir/failure/system_catalog_test.cpp.o" "gcc" "tests/CMakeFiles/test_failure.dir/failure/system_catalog_test.cpp.o.d"
  "/root/repo/tests/failure/trace_test.cpp" "tests/CMakeFiles/test_failure.dir/failure/trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_failure.dir/failure/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/failure/CMakeFiles/pckpt_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pckpt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
