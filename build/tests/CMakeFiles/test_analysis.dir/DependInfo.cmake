
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/analytic_model_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/analytic_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/analytic_model_test.cpp.o.d"
  "/root/repo/tests/analysis/tables_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/tables_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/tables_test.cpp.o.d"
  "/root/repo/tests/analysis/waste_model_test.cpp" "tests/CMakeFiles/test_analysis.dir/analysis/waste_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_analysis.dir/analysis/waste_model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/pckpt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pckpt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pckpt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/pckpt_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pckpt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/iomodel/CMakeFiles/pckpt_iomodel.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pckpt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
