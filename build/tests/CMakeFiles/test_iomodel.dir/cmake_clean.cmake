file(REMOVE_RECURSE
  "CMakeFiles/test_iomodel.dir/iomodel/perf_matrix_test.cpp.o"
  "CMakeFiles/test_iomodel.dir/iomodel/perf_matrix_test.cpp.o.d"
  "CMakeFiles/test_iomodel.dir/iomodel/summit_io_test.cpp.o"
  "CMakeFiles/test_iomodel.dir/iomodel/summit_io_test.cpp.o.d"
  "test_iomodel"
  "test_iomodel.pdb"
  "test_iomodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iomodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
