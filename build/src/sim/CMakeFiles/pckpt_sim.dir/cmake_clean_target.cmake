file(REMOVE_RECURSE
  "libpckpt_sim.a"
)
