# Empty dependencies file for pckpt_sim.
# This may be replaced when dependencies are built.
