file(REMOVE_RECURSE
  "CMakeFiles/pckpt_sim.dir/condition.cpp.o"
  "CMakeFiles/pckpt_sim.dir/condition.cpp.o.d"
  "CMakeFiles/pckpt_sim.dir/environment.cpp.o"
  "CMakeFiles/pckpt_sim.dir/environment.cpp.o.d"
  "CMakeFiles/pckpt_sim.dir/event.cpp.o"
  "CMakeFiles/pckpt_sim.dir/event.cpp.o.d"
  "CMakeFiles/pckpt_sim.dir/process.cpp.o"
  "CMakeFiles/pckpt_sim.dir/process.cpp.o.d"
  "CMakeFiles/pckpt_sim.dir/resource.cpp.o"
  "CMakeFiles/pckpt_sim.dir/resource.cpp.o.d"
  "CMakeFiles/pckpt_sim.dir/store.cpp.o"
  "CMakeFiles/pckpt_sim.dir/store.cpp.o.d"
  "libpckpt_sim.a"
  "libpckpt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pckpt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
