
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/failure/lead_time_model.cpp" "src/failure/CMakeFiles/pckpt_failure.dir/lead_time_model.cpp.o" "gcc" "src/failure/CMakeFiles/pckpt_failure.dir/lead_time_model.cpp.o.d"
  "/root/repo/src/failure/log_analysis.cpp" "src/failure/CMakeFiles/pckpt_failure.dir/log_analysis.cpp.o" "gcc" "src/failure/CMakeFiles/pckpt_failure.dir/log_analysis.cpp.o.d"
  "/root/repo/src/failure/system_catalog.cpp" "src/failure/CMakeFiles/pckpt_failure.dir/system_catalog.cpp.o" "gcc" "src/failure/CMakeFiles/pckpt_failure.dir/system_catalog.cpp.o.d"
  "/root/repo/src/failure/trace.cpp" "src/failure/CMakeFiles/pckpt_failure.dir/trace.cpp.o" "gcc" "src/failure/CMakeFiles/pckpt_failure.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
