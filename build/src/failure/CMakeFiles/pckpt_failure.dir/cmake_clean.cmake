file(REMOVE_RECURSE
  "CMakeFiles/pckpt_failure.dir/lead_time_model.cpp.o"
  "CMakeFiles/pckpt_failure.dir/lead_time_model.cpp.o.d"
  "CMakeFiles/pckpt_failure.dir/log_analysis.cpp.o"
  "CMakeFiles/pckpt_failure.dir/log_analysis.cpp.o.d"
  "CMakeFiles/pckpt_failure.dir/system_catalog.cpp.o"
  "CMakeFiles/pckpt_failure.dir/system_catalog.cpp.o.d"
  "CMakeFiles/pckpt_failure.dir/trace.cpp.o"
  "CMakeFiles/pckpt_failure.dir/trace.cpp.o.d"
  "libpckpt_failure.a"
  "libpckpt_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pckpt_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
