# Empty dependencies file for pckpt_failure.
# This may be replaced when dependencies are built.
