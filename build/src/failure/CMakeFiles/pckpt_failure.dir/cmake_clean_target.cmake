file(REMOVE_RECURSE
  "libpckpt_failure.a"
)
