# Empty compiler generated dependencies file for pckpt_stats.
# This may be replaced when dependencies are built.
