file(REMOVE_RECURSE
  "CMakeFiles/pckpt_stats.dir/summary.cpp.o"
  "CMakeFiles/pckpt_stats.dir/summary.cpp.o.d"
  "libpckpt_stats.a"
  "libpckpt_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pckpt_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
