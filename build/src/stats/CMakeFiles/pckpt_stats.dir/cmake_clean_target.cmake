file(REMOVE_RECURSE
  "libpckpt_stats.a"
)
