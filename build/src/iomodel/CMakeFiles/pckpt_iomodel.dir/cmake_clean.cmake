file(REMOVE_RECURSE
  "CMakeFiles/pckpt_iomodel.dir/perf_matrix.cpp.o"
  "CMakeFiles/pckpt_iomodel.dir/perf_matrix.cpp.o.d"
  "CMakeFiles/pckpt_iomodel.dir/summit_io.cpp.o"
  "CMakeFiles/pckpt_iomodel.dir/summit_io.cpp.o.d"
  "libpckpt_iomodel.a"
  "libpckpt_iomodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pckpt_iomodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
