# Empty compiler generated dependencies file for pckpt_iomodel.
# This may be replaced when dependencies are built.
