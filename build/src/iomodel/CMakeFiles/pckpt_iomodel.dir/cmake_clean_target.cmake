file(REMOVE_RECURSE
  "libpckpt_iomodel.a"
)
