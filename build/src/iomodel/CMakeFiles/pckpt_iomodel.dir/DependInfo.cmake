
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iomodel/perf_matrix.cpp" "src/iomodel/CMakeFiles/pckpt_iomodel.dir/perf_matrix.cpp.o" "gcc" "src/iomodel/CMakeFiles/pckpt_iomodel.dir/perf_matrix.cpp.o.d"
  "/root/repo/src/iomodel/summit_io.cpp" "src/iomodel/CMakeFiles/pckpt_iomodel.dir/summit_io.cpp.o" "gcc" "src/iomodel/CMakeFiles/pckpt_iomodel.dir/summit_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
