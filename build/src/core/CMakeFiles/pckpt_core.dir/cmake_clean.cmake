file(REMOVE_RECURSE
  "CMakeFiles/pckpt_core.dir/campaign.cpp.o"
  "CMakeFiles/pckpt_core.dir/campaign.cpp.o.d"
  "CMakeFiles/pckpt_core.dir/cr_config.cpp.o"
  "CMakeFiles/pckpt_core.dir/cr_config.cpp.o.d"
  "CMakeFiles/pckpt_core.dir/oci.cpp.o"
  "CMakeFiles/pckpt_core.dir/oci.cpp.o.d"
  "CMakeFiles/pckpt_core.dir/protocol/coordinator.cpp.o"
  "CMakeFiles/pckpt_core.dir/protocol/coordinator.cpp.o.d"
  "CMakeFiles/pckpt_core.dir/protocol/node_state.cpp.o"
  "CMakeFiles/pckpt_core.dir/protocol/node_state.cpp.o.d"
  "CMakeFiles/pckpt_core.dir/scenario.cpp.o"
  "CMakeFiles/pckpt_core.dir/scenario.cpp.o.d"
  "CMakeFiles/pckpt_core.dir/simulation.cpp.o"
  "CMakeFiles/pckpt_core.dir/simulation.cpp.o.d"
  "CMakeFiles/pckpt_core.dir/timeline.cpp.o"
  "CMakeFiles/pckpt_core.dir/timeline.cpp.o.d"
  "libpckpt_core.a"
  "libpckpt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pckpt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
