# Empty dependencies file for pckpt_core.
# This may be replaced when dependencies are built.
