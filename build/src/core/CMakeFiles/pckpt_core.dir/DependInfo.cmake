
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/campaign.cpp" "src/core/CMakeFiles/pckpt_core.dir/campaign.cpp.o" "gcc" "src/core/CMakeFiles/pckpt_core.dir/campaign.cpp.o.d"
  "/root/repo/src/core/cr_config.cpp" "src/core/CMakeFiles/pckpt_core.dir/cr_config.cpp.o" "gcc" "src/core/CMakeFiles/pckpt_core.dir/cr_config.cpp.o.d"
  "/root/repo/src/core/oci.cpp" "src/core/CMakeFiles/pckpt_core.dir/oci.cpp.o" "gcc" "src/core/CMakeFiles/pckpt_core.dir/oci.cpp.o.d"
  "/root/repo/src/core/protocol/coordinator.cpp" "src/core/CMakeFiles/pckpt_core.dir/protocol/coordinator.cpp.o" "gcc" "src/core/CMakeFiles/pckpt_core.dir/protocol/coordinator.cpp.o.d"
  "/root/repo/src/core/protocol/node_state.cpp" "src/core/CMakeFiles/pckpt_core.dir/protocol/node_state.cpp.o" "gcc" "src/core/CMakeFiles/pckpt_core.dir/protocol/node_state.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/pckpt_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/pckpt_core.dir/scenario.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "src/core/CMakeFiles/pckpt_core.dir/simulation.cpp.o" "gcc" "src/core/CMakeFiles/pckpt_core.dir/simulation.cpp.o.d"
  "/root/repo/src/core/timeline.cpp" "src/core/CMakeFiles/pckpt_core.dir/timeline.cpp.o" "gcc" "src/core/CMakeFiles/pckpt_core.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pckpt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/pckpt_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/iomodel/CMakeFiles/pckpt_iomodel.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pckpt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pckpt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
