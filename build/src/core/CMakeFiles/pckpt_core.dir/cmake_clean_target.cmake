file(REMOVE_RECURSE
  "libpckpt_core.a"
)
