# Empty compiler generated dependencies file for pckpt_analysis.
# This may be replaced when dependencies are built.
