file(REMOVE_RECURSE
  "CMakeFiles/pckpt_analysis.dir/analytic_model.cpp.o"
  "CMakeFiles/pckpt_analysis.dir/analytic_model.cpp.o.d"
  "CMakeFiles/pckpt_analysis.dir/tables.cpp.o"
  "CMakeFiles/pckpt_analysis.dir/tables.cpp.o.d"
  "CMakeFiles/pckpt_analysis.dir/waste_model.cpp.o"
  "CMakeFiles/pckpt_analysis.dir/waste_model.cpp.o.d"
  "libpckpt_analysis.a"
  "libpckpt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pckpt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
