file(REMOVE_RECURSE
  "libpckpt_analysis.a"
)
