file(REMOVE_RECURSE
  "CMakeFiles/pckpt_workload.dir/application.cpp.o"
  "CMakeFiles/pckpt_workload.dir/application.cpp.o.d"
  "CMakeFiles/pckpt_workload.dir/machine.cpp.o"
  "CMakeFiles/pckpt_workload.dir/machine.cpp.o.d"
  "libpckpt_workload.a"
  "libpckpt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pckpt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
