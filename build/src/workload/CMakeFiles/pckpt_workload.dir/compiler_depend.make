# Empty compiler generated dependencies file for pckpt_workload.
# This may be replaced when dependencies are built.
