file(REMOVE_RECURSE
  "libpckpt_workload.a"
)
