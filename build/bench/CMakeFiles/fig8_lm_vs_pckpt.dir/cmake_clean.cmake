file(REMOVE_RECURSE
  "CMakeFiles/fig8_lm_vs_pckpt.dir/fig8_lm_vs_pckpt.cpp.o"
  "CMakeFiles/fig8_lm_vs_pckpt.dir/fig8_lm_vs_pckpt.cpp.o.d"
  "fig8_lm_vs_pckpt"
  "fig8_lm_vs_pckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_lm_vs_pckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
