# Empty dependencies file for fig8_lm_vs_pckpt.
# This may be replaced when dependencies are built.
