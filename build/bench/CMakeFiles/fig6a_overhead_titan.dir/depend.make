# Empty dependencies file for fig6a_overhead_titan.
# This may be replaced when dependencies are built.
