file(REMOVE_RECURSE
  "CMakeFiles/fig6a_overhead_titan.dir/fig6a_overhead_titan.cpp.o"
  "CMakeFiles/fig6a_overhead_titan.dir/fig6a_overhead_titan.cpp.o.d"
  "fig6a_overhead_titan"
  "fig6a_overhead_titan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_overhead_titan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
