# Empty dependencies file for fig2b_node_io.
# This may be replaced when dependencies are built.
