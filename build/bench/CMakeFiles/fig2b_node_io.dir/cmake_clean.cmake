file(REMOVE_RECURSE
  "CMakeFiles/fig2b_node_io.dir/fig2b_node_io.cpp.o"
  "CMakeFiles/fig2b_node_io.dir/fig2b_node_io.cpp.o.d"
  "fig2b_node_io"
  "fig2b_node_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_node_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
