file(REMOVE_RECURSE
  "CMakeFiles/obs6_oci_elongation.dir/obs6_oci_elongation.cpp.o"
  "CMakeFiles/obs6_oci_elongation.dir/obs6_oci_elongation.cpp.o.d"
  "obs6_oci_elongation"
  "obs6_oci_elongation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs6_oci_elongation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
