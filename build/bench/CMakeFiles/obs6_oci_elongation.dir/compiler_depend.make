# Empty compiler generated dependencies file for obs6_oci_elongation.
# This may be replaced when dependencies are built.
