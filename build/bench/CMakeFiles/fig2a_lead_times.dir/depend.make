# Empty dependencies file for fig2a_lead_times.
# This may be replaced when dependencies are built.
