file(REMOVE_RECURSE
  "CMakeFiles/fig2a_lead_times.dir/fig2a_lead_times.cpp.o"
  "CMakeFiles/fig2a_lead_times.dir/fig2a_lead_times.cpp.o.d"
  "fig2a_lead_times"
  "fig2a_lead_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_lead_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
