# Empty dependencies file for fig6b_overhead_lanl.
# This may be replaced when dependencies are built.
