file(REMOVE_RECURSE
  "CMakeFiles/fig6b_overhead_lanl.dir/fig6b_overhead_lanl.cpp.o"
  "CMakeFiles/fig6b_overhead_lanl.dir/fig6b_overhead_lanl.cpp.o.d"
  "fig6b_overhead_lanl"
  "fig6b_overhead_lanl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_overhead_lanl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
