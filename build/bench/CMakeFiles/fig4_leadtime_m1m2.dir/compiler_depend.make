# Empty compiler generated dependencies file for fig4_leadtime_m1m2.
# This may be replaced when dependencies are built.
