# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig4_leadtime_m1m2.
