# Empty compiler generated dependencies file for protocol_round.
# This may be replaced when dependencies are built.
