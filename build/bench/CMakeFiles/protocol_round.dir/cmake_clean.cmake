file(REMOVE_RECURSE
  "CMakeFiles/protocol_round.dir/protocol_round.cpp.o"
  "CMakeFiles/protocol_round.dir/protocol_round.cpp.o.d"
  "protocol_round"
  "protocol_round.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_round.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
