file(REMOVE_RECURSE
  "CMakeFiles/desh_pipeline.dir/desh_pipeline.cpp.o"
  "CMakeFiles/desh_pipeline.dir/desh_pipeline.cpp.o.d"
  "desh_pipeline"
  "desh_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desh_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
