# Empty dependencies file for desh_pipeline.
# This may be replaced when dependencies are built.
