# Empty compiler generated dependencies file for obs9_false_negatives.
# This may be replaced when dependencies are built.
