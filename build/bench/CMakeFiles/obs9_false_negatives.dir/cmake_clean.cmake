file(REMOVE_RECURSE
  "CMakeFiles/obs9_false_negatives.dir/obs9_false_negatives.cpp.o"
  "CMakeFiles/obs9_false_negatives.dir/obs9_false_negatives.cpp.o.d"
  "obs9_false_negatives"
  "obs9_false_negatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs9_false_negatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
