# Empty compiler generated dependencies file for ext_spare_pool.
# This may be replaced when dependencies are built.
