file(REMOVE_RECURSE
  "CMakeFiles/ext_spare_pool.dir/ext_spare_pool.cpp.o"
  "CMakeFiles/ext_spare_pool.dir/ext_spare_pool.cpp.o.d"
  "ext_spare_pool"
  "ext_spare_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_spare_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
