file(REMOVE_RECURSE
  "CMakeFiles/ablate_knobs.dir/ablate_knobs.cpp.o"
  "CMakeFiles/ablate_knobs.dir/ablate_knobs.cpp.o.d"
  "ablate_knobs"
  "ablate_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
