# Empty compiler generated dependencies file for ablate_knobs.
# This may be replaced when dependencies are built.
