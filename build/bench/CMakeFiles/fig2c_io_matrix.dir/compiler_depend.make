# Empty compiler generated dependencies file for fig2c_io_matrix.
# This may be replaced when dependencies are built.
