file(REMOVE_RECURSE
  "CMakeFiles/fig2c_io_matrix.dir/fig2c_io_matrix.cpp.o"
  "CMakeFiles/fig2c_io_matrix.dir/fig2c_io_matrix.cpp.o.d"
  "fig2c_io_matrix"
  "fig2c_io_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2c_io_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
