file(REMOVE_RECURSE
  "CMakeFiles/ext_lead_noise.dir/ext_lead_noise.cpp.o"
  "CMakeFiles/ext_lead_noise.dir/ext_lead_noise.cpp.o.d"
  "ext_lead_noise"
  "ext_lead_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_lead_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
