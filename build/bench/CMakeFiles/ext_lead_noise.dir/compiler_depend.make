# Empty compiler generated dependencies file for ext_lead_noise.
# This may be replaced when dependencies are built.
