file(REMOVE_RECURSE
  "CMakeFiles/table4_ftratio_p1p2.dir/table4_ftratio_p1p2.cpp.o"
  "CMakeFiles/table4_ftratio_p1p2.dir/table4_ftratio_p1p2.cpp.o.d"
  "table4_ftratio_p1p2"
  "table4_ftratio_p1p2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_ftratio_p1p2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
