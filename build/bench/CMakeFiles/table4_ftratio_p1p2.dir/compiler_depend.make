# Empty compiler generated dependencies file for table4_ftratio_p1p2.
# This may be replaced when dependencies are built.
