# Empty compiler generated dependencies file for fig7_leadtime_p1p2.
# This may be replaced when dependencies are built.
