file(REMOVE_RECURSE
  "CMakeFiles/fig7_leadtime_p1p2.dir/fig7_leadtime_p1p2.cpp.o"
  "CMakeFiles/fig7_leadtime_p1p2.dir/fig7_leadtime_p1p2.cpp.o.d"
  "fig7_leadtime_p1p2"
  "fig7_leadtime_p1p2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_leadtime_p1p2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
