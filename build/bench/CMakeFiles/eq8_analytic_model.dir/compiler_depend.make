# Empty compiler generated dependencies file for eq8_analytic_model.
# This may be replaced when dependencies are built.
