file(REMOVE_RECURSE
  "CMakeFiles/eq8_analytic_model.dir/eq8_analytic_model.cpp.o"
  "CMakeFiles/eq8_analytic_model.dir/eq8_analytic_model.cpp.o.d"
  "eq8_analytic_model"
  "eq8_analytic_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eq8_analytic_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
