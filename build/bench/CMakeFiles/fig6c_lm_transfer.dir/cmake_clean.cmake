file(REMOVE_RECURSE
  "CMakeFiles/fig6c_lm_transfer.dir/fig6c_lm_transfer.cpp.o"
  "CMakeFiles/fig6c_lm_transfer.dir/fig6c_lm_transfer.cpp.o.d"
  "fig6c_lm_transfer"
  "fig6c_lm_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_lm_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
