# Empty dependencies file for fig6c_lm_transfer.
# This may be replaced when dependencies are built.
