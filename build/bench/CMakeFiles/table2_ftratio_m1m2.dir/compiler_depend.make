# Empty compiler generated dependencies file for table2_ftratio_m1m2.
# This may be replaced when dependencies are built.
