file(REMOVE_RECURSE
  "CMakeFiles/table2_ftratio_m1m2.dir/table2_ftratio_m1m2.cpp.o"
  "CMakeFiles/table2_ftratio_m1m2.dir/table2_ftratio_m1m2.cpp.o.d"
  "table2_ftratio_m1m2"
  "table2_ftratio_m1m2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_ftratio_m1m2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
