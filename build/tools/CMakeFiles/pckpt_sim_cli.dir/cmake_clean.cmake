file(REMOVE_RECURSE
  "CMakeFiles/pckpt_sim_cli.dir/pckpt_sim.cpp.o"
  "CMakeFiles/pckpt_sim_cli.dir/pckpt_sim.cpp.o.d"
  "pckpt_sim"
  "pckpt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pckpt_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
