# Empty dependencies file for pckpt_sim_cli.
# This may be replaced when dependencies are built.
