
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/des_tutorial.cpp" "examples/CMakeFiles/des_tutorial.dir/des_tutorial.cpp.o" "gcc" "examples/CMakeFiles/des_tutorial.dir/des_tutorial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pckpt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pckpt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/pckpt_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pckpt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/iomodel/CMakeFiles/pckpt_iomodel.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pckpt_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
