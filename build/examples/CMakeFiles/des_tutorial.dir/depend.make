# Empty dependencies file for des_tutorial.
# This may be replaced when dependencies are built.
