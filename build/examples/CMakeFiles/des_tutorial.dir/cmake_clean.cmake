file(REMOVE_RECURSE
  "CMakeFiles/des_tutorial.dir/des_tutorial.cpp.o"
  "CMakeFiles/des_tutorial.dir/des_tutorial.cpp.o.d"
  "des_tutorial"
  "des_tutorial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/des_tutorial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
