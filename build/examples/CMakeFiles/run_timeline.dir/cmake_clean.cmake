file(REMOVE_RECURSE
  "CMakeFiles/run_timeline.dir/run_timeline.cpp.o"
  "CMakeFiles/run_timeline.dir/run_timeline.cpp.o.d"
  "run_timeline"
  "run_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
