# Empty dependencies file for run_timeline.
# This may be replaced when dependencies are built.
