file(REMOVE_RECURSE
  "CMakeFiles/leadtime_study.dir/leadtime_study.cpp.o"
  "CMakeFiles/leadtime_study.dir/leadtime_study.cpp.o.d"
  "leadtime_study"
  "leadtime_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leadtime_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
