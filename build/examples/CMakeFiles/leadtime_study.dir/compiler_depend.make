# Empty compiler generated dependencies file for leadtime_study.
# This may be replaced when dependencies are built.
