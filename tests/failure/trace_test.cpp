#include "failure/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace f = pckpt::failure;

namespace {

f::FailureTrace make_trace(std::uint64_t seed, double horizon_h = 2000.0,
                           f::PredictorConfig pred = {}) {
  static const auto leads = f::LeadTimeModel::summit_default();
  return f::FailureTrace(f::system_by_name("titan"), 2272, leads, pred, seed,
                         horizon_h * 3600.0);
}

}  // namespace

TEST(FailureTrace, DeterministicForSameSeed) {
  const auto a = make_trace(42);
  const auto b = make_trace(42);
  ASSERT_EQ(a.event_count(), b.event_count());
  for (std::size_t i = 0; i < a.event_count(); ++i) {
    EXPECT_DOUBLE_EQ(a.event(i).time_s, b.event(i).time_s);
    EXPECT_EQ(a.event(i).kind, b.event(i).kind);
    EXPECT_EQ(a.event(i).node, b.event(i).node);
  }
}

TEST(FailureTrace, DifferentSeedsDiffer) {
  const auto a = make_trace(1);
  const auto b = make_trace(2);
  ASSERT_GT(a.failures().size(), 0u);
  ASSERT_GT(b.failures().size(), 0u);
  EXPECT_NE(a.failures()[0].time_s, b.failures()[0].time_s);
}

TEST(FailureTrace, EventsAreTimeOrdered) {
  const auto t = make_trace(3);
  for (std::size_t i = 1; i < t.event_count(); ++i) {
    EXPECT_LE(t.event(i - 1).time_s, t.event(i).time_s);
  }
}

TEST(FailureTrace, FailureCountNearExpectation) {
  // Weibull k~0.69 renewal counts have CV ~1.5, so use a long horizon and
  // a generous bound (this checks calibration, not the CLT).
  const auto t = make_trace(4, 40000.0);
  const double expected = t.job_rate_per_second() * 40000.0 * 3600.0;
  const auto n = static_cast<double>(t.failures().size());
  EXPECT_NEAR(n, expected, expected * 0.30);
}

TEST(FailureTrace, PredictionPrecedesItsFailureByLead) {
  const auto t = make_trace(5);
  for (std::size_t i = 0; i < t.event_count(); ++i) {
    const auto& ev = t.event(i);
    if (ev.kind == f::TraceEvent::Kind::kPrediction &&
        !ev.is_false_positive()) {
      const auto& fail = t.failures()[ev.failure_index];
      EXPECT_NEAR(ev.time_s + ev.lead_s, fail.time_s, 1e-6);
      EXPECT_LE(ev.time_s, fail.time_s);
    }
  }
}

TEST(FailureTrace, RecallControlsPredictedFraction) {
  f::PredictorConfig pred;
  pred.recall = 0.6;
  const auto t = make_trace(6, 20000.0, pred);
  std::size_t predicted = 0;
  for (const auto& fl : t.failures()) {
    if (fl.predicted) ++predicted;
  }
  const double frac =
      static_cast<double>(predicted) / static_cast<double>(t.failures().size());
  EXPECT_NEAR(frac, 0.6, 0.05);
}

TEST(FailureTrace, FalsePositiveFractionMatchesConfig) {
  f::PredictorConfig pred;
  pred.false_positive_rate = 0.18;
  const auto t = make_trace(7, 40000.0, pred);
  std::size_t fps = 0, preds = 0;
  for (std::size_t i = 0; i < t.event_count(); ++i) {
    const auto& ev = t.event(i);
    if (ev.kind == f::TraceEvent::Kind::kPrediction) {
      ++preds;
      if (ev.is_false_positive()) ++fps;
    }
  }
  ASSERT_GT(preds, 100u);
  EXPECT_NEAR(static_cast<double>(fps) / static_cast<double>(preds), 0.18,
              0.04);
}

TEST(FailureTrace, ZeroFalsePositiveRateEmitsNone) {
  f::PredictorConfig pred;
  pred.false_positive_rate = 0.0;
  const auto t = make_trace(8, 10000.0, pred);
  for (std::size_t i = 0; i < t.event_count(); ++i) {
    EXPECT_FALSE(t.event(i).is_false_positive());
  }
}

TEST(FailureTrace, LeadScaleScalesLeads) {
  f::PredictorConfig base, scaled;
  scaled.lead_scale = 1.5;
  const auto a = make_trace(9, 5000.0, base);
  const auto b = make_trace(9, 5000.0, scaled);
  ASSERT_EQ(a.failures().size(), b.failures().size());
  for (std::size_t i = 0; i < a.failures().size(); ++i) {
    EXPECT_NEAR(b.failures()[i].lead_s, 1.5 * a.failures()[i].lead_s, 1e-9);
    EXPECT_DOUBLE_EQ(a.failures()[i].time_s, b.failures()[i].time_s);
  }
}

TEST(FailureTrace, ExtensionPreservesPrefix) {
  auto t = make_trace(10, 1000.0);
  const auto before = t.failures();
  const auto n_events_before = t.event_count();
  t.ensure_horizon(5000.0 * 3600.0);
  ASSERT_GE(t.failures().size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_DOUBLE_EQ(t.failures()[i].time_s, before[i].time_s);
    EXPECT_EQ(t.failures()[i].node, before[i].node);
    EXPECT_DOUBLE_EQ(t.failures()[i].lead_s, before[i].lead_s);
  }
  EXPECT_GT(t.event_count(), n_events_before);
}

TEST(FailureTrace, EnsureHorizonBelowCurrentIsNoop) {
  auto t = make_trace(11, 1000.0);
  const auto n = t.event_count();
  t.ensure_horizon(10.0);
  EXPECT_EQ(t.event_count(), n);
}

TEST(FailureTrace, NodesWithinJobRange) {
  const auto t = make_trace(12);
  for (const auto& fl : t.failures()) {
    EXPECT_GE(fl.node, 0);
    EXPECT_LT(fl.node, 2272);
  }
}

TEST(FailureTrace, UnpredictedFailuresHaveNoPredictionEvent) {
  const auto t = make_trace(13);
  std::vector<bool> has_pred(t.failures().size(), false);
  for (std::size_t i = 0; i < t.event_count(); ++i) {
    const auto& ev = t.event(i);
    if (ev.kind == f::TraceEvent::Kind::kPrediction &&
        !ev.is_false_positive()) {
      has_pred[ev.failure_index] = true;
    }
  }
  for (std::size_t i = 0; i < t.failures().size(); ++i) {
    EXPECT_EQ(has_pred[i], t.failures()[i].predicted);
  }
}
