#include "failure/log_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <stdexcept>

namespace f = pckpt::failure;

namespace {

f::GeneratedLog small_log(std::uint64_t seed = 7, double noise = 600.0) {
  f::LogGenConfig cfg;
  cfg.seed = seed;
  cfg.horizon_s = 48.0 * 3600.0;
  cfg.nodes = 32;
  cfg.chains_per_hour = 4.0;
  cfg.noise_per_hour = noise;
  return f::generate_log(f::example_chain_templates(), cfg);
}

}  // namespace

TEST(LogAnalysis, GeneratorProducesOrderedEventsAndTruth) {
  const auto log = small_log();
  ASSERT_GT(log.events.size(), 100u);
  ASSERT_GT(log.truth.size(), 50u);
  for (std::size_t i = 1; i < log.events.size(); ++i) {
    EXPECT_LE(log.events[i - 1].time_s, log.events[i].time_s);
  }
  for (const auto& inst : log.truth) {
    EXPECT_GT(inst.lead_s(), 0.0);
    EXPECT_GE(inst.node, 0);
    EXPECT_LT(inst.node, 32);
  }
}

TEST(LogAnalysis, GeneratorIsDeterministic) {
  const auto a = small_log(3);
  const auto b = small_log(3);
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_EQ(a.truth.size(), b.truth.size());
  for (std::size_t i = 0; i < a.truth.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.truth[i].start_s, b.truth[i].start_s);
    EXPECT_DOUBLE_EQ(a.truth[i].end_s, b.truth[i].end_s);
  }
}

TEST(LogAnalysis, DetectorRecoversAllInjectedChains) {
  const auto log = small_log();
  const auto found =
      f::detect_chains(log.events, f::example_chain_templates());
  // Concurrent same-template chains on one node can merge; with 32 nodes
  // and 4 chains/h that is rare — recall must be near-perfect.
  EXPECT_GE(found.size(), log.truth.size() * 95 / 100);
  EXPECT_LE(found.size(), log.truth.size());
}

TEST(LogAnalysis, DetectedLeadTimesMatchTruth) {
  const auto log = small_log(11, 0.0);  // no noise: exact recovery
  const auto found =
      f::detect_chains(log.events, f::example_chain_templates());
  // Index truth by (node, start) for comparison.
  std::map<std::pair<int, double>, const f::ChainInstance*> truth;
  for (const auto& t : log.truth) truth[{t.node, t.start_s}] = &t;
  std::size_t matched = 0;
  for (const auto& c : found) {
    auto it = truth.find({c.node, c.start_s});
    if (it == truth.end()) continue;
    EXPECT_EQ(c.template_id, it->second->template_id);
    EXPECT_NEAR(c.lead_s(), it->second->lead_s(), 1e-9);
    ++matched;
  }
  EXPECT_GE(matched, found.size() * 95 / 100);
}

TEST(LogAnalysis, NoiseDoesNotCreateFalseChains) {
  f::LogGenConfig cfg;
  cfg.seed = 5;
  cfg.horizon_s = 24.0 * 3600.0;
  cfg.nodes = 8;
  cfg.chains_per_hour = 1e-9;  // effectively none
  cfg.noise_per_hour = 2000.0;
  const auto log = f::generate_log(f::example_chain_templates(), cfg);
  const auto found =
      f::detect_chains(log.events, f::example_chain_templates());
  EXPECT_TRUE(found.empty());
}

TEST(LogAnalysis, StalePartialMatchesAreAbandoned) {
  // First phrase, then a long silence, then the rest: with a small
  // max_gap_s the partial match must expire and nothing is detected.
  const auto templates = f::example_chain_templates();
  std::vector<f::LogEvent> events = {
      {0.0, 0, templates[0].phrases[0]},
      {10000.0, 0, templates[0].phrases[1]},
      {10010.0, 0, templates[0].phrases[2]},
  };
  const auto strict = f::detect_chains(events, templates, 100.0);
  EXPECT_TRUE(strict.empty());
  const auto lax = f::detect_chains(events, templates, 1e6);
  EXPECT_EQ(lax.size(), 1u);
}

TEST(LogAnalysis, InterleavedChainsOnDifferentNodesBothDetected) {
  const auto templates = f::example_chain_templates();
  const auto& t0 = templates[0];
  std::vector<f::LogEvent> events;
  // Two nodes advancing the same template, interleaved line by line.
  for (std::size_t i = 0; i < t0.phrases.size(); ++i) {
    const double t = static_cast<double>(i) * 10.0;
    events.push_back({t, 1, t0.phrases[i]});
    events.push_back({t + 1.0, 2, t0.phrases[i]});
  }
  const auto found = f::detect_chains(events, templates);
  EXPECT_EQ(found.size(), 2u);
}

TEST(LogAnalysis, FittedModelMatchesGeneratorStatistics) {
  const auto log = small_log(13);
  const auto found =
      f::detect_chains(log.events, f::example_chain_templates());
  const auto model =
      f::fit_lead_time_model(found, f::example_chain_templates());
  ASSERT_GE(model.sequences().size(), 2u);
  // Template 1 has 2 gaps with median 12 s => lead median ~24 s;
  // template 3 has 3 gaps of ~8 s => ~24 s. The fitted medians must land
  // in the right ballpark.
  for (const auto& s : model.sequences()) {
    EXPECT_GT(s.median_seconds, 10.0);
    EXPECT_LT(s.median_seconds, 80.0);
    EXPECT_GT(s.weight, 1.0);
  }
  // And the model must be usable by the simulator's sigma estimation.
  EXPECT_GT(model.ccdf(10.0), 0.5);
  EXPECT_LT(model.ccdf(300.0), 0.1);
}

TEST(LogAnalysis, FitRequiresDetections) {
  EXPECT_THROW(
      f::fit_lead_time_model({}, f::example_chain_templates()),
      std::invalid_argument);
}

TEST(LogAnalysis, Validation) {
  f::ChainTemplate bad;
  bad.phrases = {"only-one"};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.phrases = {"a", ""};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad.phrases = {"a", "b"};
  bad.median_gap_s = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  f::LogGenConfig cfg;
  cfg.nodes = 0;
  EXPECT_THROW(f::generate_log(f::example_chain_templates(), cfg),
               std::invalid_argument);
  EXPECT_THROW(f::generate_log({}, f::LogGenConfig{}),
               std::invalid_argument);
  EXPECT_THROW(
      f::detect_chains({}, f::example_chain_templates(), 0.0),
      std::invalid_argument);
}
