/// Statistical validation of the predictor model behind FailureTrace:
/// over many independently seeded traces, the realized recall, the
/// false-positive fraction of predictions, and the FP-to-failure rate
/// ratio must sit inside binomial confidence bounds of their configured
/// values — including when noisy lead estimates are enabled.
///
/// Bounds are 4-sigma (p < 1e-4 per check), so the suite is effectively
/// deterministic while still being sensitive to real regressions in the
/// generator's stream discipline.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "failure/lead_time_model.hpp"
#include "failure/system_catalog.hpp"
#include "failure/trace.hpp"

namespace f = pckpt::failure;

namespace {

constexpr double kHorizonS = 400.0 * 3600.0;
constexpr int kJobNodes = 2048;
constexpr int kTraces = 40;

struct TraceStats {
  std::size_t failures = 0;
  std::size_t predicted_failures = 0;
  std::size_t predictions = 0;
  std::size_t false_positives = 0;
  double log_lead_ratio_sum = 0;  ///< sum of log(predicted/actual)
  std::size_t noisy_leads = 0;    ///< predictions where estimate != actual
};

/// Accumulate confusion-matrix counts over `kTraces` seeds of the same
/// failure environment.
TraceStats collect(const f::PredictorConfig& predictor) {
  const auto& titan = f::system_by_name("titan");
  const auto leads = f::LeadTimeModel::summit_default();
  TraceStats s;
  for (std::uint64_t seed = 1; seed <= kTraces; ++seed) {
    f::FailureTrace trace(titan, kJobNodes, leads, predictor, seed, kHorizonS);
    for (const auto& failure : trace.failures()) {
      ++s.failures;
      if (failure.predicted) ++s.predicted_failures;
    }
    for (std::size_t i = 0; i < trace.event_count(); ++i) {
      const auto& ev = trace.event(i);
      if (ev.kind != f::TraceEvent::Kind::kPrediction) continue;
      ++s.predictions;
      if (ev.is_false_positive()) ++s.false_positives;
      if (ev.predicted_lead_s != ev.lead_s) ++s.noisy_leads;
      if (ev.lead_s > 0 && ev.predicted_lead_s > 0) {
        s.log_lead_ratio_sum += std::log(ev.predicted_lead_s / ev.lead_s);
      }
    }
  }
  return s;
}

/// 4-sigma binomial bound on |p_hat - p|.
void expect_binomial(double p_hat, double p, std::size_t n,
                     const char* what) {
  ASSERT_GT(n, 100u) << what << ": sample too small to test";
  const double bound = 4.0 * std::sqrt(p * (1.0 - p) / static_cast<double>(n));
  EXPECT_NEAR(p_hat, p, bound)
      << what << ": observed " << p_hat << " over n=" << n
      << " is outside the 4-sigma band around " << p;
}

}  // namespace

TEST(PredictorStats, RecallMatchesConfiguredRate) {
  f::PredictorConfig predictor;  // defaults: recall .85, fpr .18
  const auto s = collect(predictor);
  expect_binomial(static_cast<double>(s.predicted_failures) /
                      static_cast<double>(s.failures),
                  predictor.recall, s.failures, "recall");
}

TEST(PredictorStats, FalsePositiveFractionOfPredictions) {
  f::PredictorConfig predictor;
  const auto s = collect(predictor);
  expect_binomial(static_cast<double>(s.false_positives) /
                      static_cast<double>(s.predictions),
                  predictor.false_positive_rate, s.predictions,
                  "false-positive fraction");
}

/// The FP stream is an independent Poisson process whose rate is
/// fp_stream_factor() times the failure rate, so the per-trace ratio of
/// FP count to failure count estimates that factor directly.
TEST(PredictorStats, FpStreamFactorGovernsFpRate) {
  f::PredictorConfig predictor;
  const auto s = collect(predictor);
  const double factor = predictor.fp_stream_factor();
  const double observed = static_cast<double>(s.false_positives) /
                          static_cast<double>(s.failures);
  // Both counts fluctuate (FP ~ Poisson(factor * failures), failures ~
  // Poisson): 4-sigma band on the ratio via the delta method.
  const double bound = 4.0 * std::sqrt(factor * (1.0 + factor) /
                                       static_cast<double>(s.failures));
  EXPECT_NEAR(observed, factor, bound)
      << "FP/failure ratio drifted from fp_stream_factor()=" << factor;
}

TEST(PredictorStats, OracleLeadsAreExactByDefault) {
  f::PredictorConfig predictor;  // lead_error_sigma = 0
  const auto s = collect(predictor);
  EXPECT_EQ(s.noisy_leads, 0u)
      << "lead estimates must equal actual leads when lead_error_sigma=0";
  EXPECT_EQ(s.log_lead_ratio_sum, 0.0);
}

TEST(PredictorStats, NoisyLeadEstimatesAreUnbiasedInLogSpace) {
  f::PredictorConfig predictor;
  predictor.lead_error_sigma = 0.5;
  const auto s = collect(predictor);

  // With sigma > 0 essentially every true prediction's estimate differs
  // from the actual lead. (False positives are excluded: their "lead" is
  // a pure estimate, so the trace stores it unperturbed.)
  ASSERT_GT(s.predictions, 100u);
  const std::size_t true_predictions = s.predictions - s.false_positives;
  EXPECT_GT(s.noisy_leads, true_predictions * 9 / 10);
  EXPECT_LE(s.noisy_leads, true_predictions);

  // log(predicted/actual) ~ N(0, sigma^2): the sample mean stays within
  // 4 * sigma / sqrt(n) of zero.
  const double mean =
      s.log_lead_ratio_sum / static_cast<double>(s.predictions);
  const double bound = 4.0 * predictor.lead_error_sigma /
                       std::sqrt(static_cast<double>(s.predictions));
  EXPECT_NEAR(mean, 0.0, bound)
      << "noisy lead estimates are biased in log space";
}

/// Noise perturbs only the estimate: the actual failure schedule (times,
/// nodes, leads) is bit-identical with and without lead_error_sigma.
TEST(PredictorStats, LeadNoiseDoesNotPerturbTheFailureSchedule) {
  const auto& titan = f::system_by_name("titan");
  const auto leads = f::LeadTimeModel::summit_default();
  f::PredictorConfig oracle;
  f::PredictorConfig noisy;
  noisy.lead_error_sigma = 0.5;
  for (std::uint64_t seed : {7u, 19u, 23u}) {
    f::FailureTrace a(titan, kJobNodes, leads, oracle, seed, kHorizonS);
    f::FailureTrace b(titan, kJobNodes, leads, noisy, seed, kHorizonS);
    ASSERT_EQ(a.failures().size(), b.failures().size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.failures().size(); ++i) {
      EXPECT_EQ(a.failures()[i].time_s, b.failures()[i].time_s);
      EXPECT_EQ(a.failures()[i].node, b.failures()[i].node);
      EXPECT_EQ(a.failures()[i].lead_s, b.failures()[i].lead_s);
    }
  }
}
