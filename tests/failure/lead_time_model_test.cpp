#include "failure/lead_time_model.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <vector>

#include "stats/summary.hpp"

namespace f = pckpt::failure;
namespace rnd = pckpt::rnd;

TEST(LeadTimeModel, DefaultHasTenSequences) {
  const auto m = f::LeadTimeModel::summit_default();
  EXPECT_EQ(m.sequences().size(), 10u);
  for (const auto& s : m.sequences()) {
    EXPECT_GT(s.median_seconds, 0.0);
    EXPECT_GE(s.weight, 0.0);
  }
}

TEST(LeadTimeModel, CcdfIsMonotoneDecreasing) {
  const auto m = f::LeadTimeModel::summit_default();
  double prev = 1.0;
  for (double t : {0.0, 5.0, 15.0, 25.0, 40.0, 45.0, 60.0, 120.0, 600.0}) {
    const double c = m.ccdf(t);
    EXPECT_LE(c, prev + 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(m.ccdf(0.0), 1.0);
  EXPECT_DOUBLE_EQ(m.ccdf(-3.0), 1.0);
}

TEST(LeadTimeModel, CcdfMatchesPaperAnchors) {
  // The structure Table II implies (see DESIGN.md §4.3): ~82% of leads
  // exceed CHIMERA's single-node p-ckpt write (~21 s), ~55% exceed
  // CHIMERA's RAM-capped LM transfer (~41 s), and almost none exceed 46 s
  // except a thin tail.
  const auto m = f::LeadTimeModel::summit_default();
  EXPECT_NEAR(m.ccdf(21.2), 0.82, 0.08);
  EXPECT_NEAR(m.ccdf(41.0), 0.55, 0.10);
  EXPECT_LT(m.ccdf(46.5), 0.12);
  EXPECT_GT(m.ccdf(46.5), 0.02);
  // Thin tail beyond XGC's full safeguard write (~107 s).
  EXPECT_LT(m.ccdf(107.0), 0.06);
  EXPECT_GT(m.ccdf(107.0), 0.005);
}

TEST(LeadTimeModel, EmpiricalCcdfMatchesAnalytic) {
  const auto m = f::LeadTimeModel::summit_default();
  rnd::Xoshiro256 g(123);
  const int n = 100000;
  std::vector<int> above(4, 0);
  const double probes[4] = {20.0, 41.0, 60.0, 120.0};
  for (int i = 0; i < n; ++i) {
    const auto s = m.sample(g);
    for (int j = 0; j < 4; ++j) {
      if (s.lead_seconds > probes[j]) ++above[j];
    }
  }
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(above[j] / static_cast<double>(n), m.ccdf(probes[j]), 0.01)
        << "probe=" << probes[j];
  }
}

TEST(LeadTimeModel, SampleSequenceFrequenciesFollowWeights) {
  const auto m = f::LeadTimeModel::summit_default();
  rnd::Xoshiro256 g(7);
  std::map<int, int> counts;
  const int n = 100000;
  double total_weight = 0.0;
  for (const auto& s : m.sequences()) total_weight += s.weight;
  for (int i = 0; i < n; ++i) ++counts[m.sample(g).sequence_id];
  for (const auto& s : m.sequences()) {
    const double expected = s.weight / total_weight;
    EXPECT_NEAR(counts[s.id] / static_cast<double>(n), expected, 0.01)
        << "sequence " << s.id;
  }
}

TEST(LeadTimeModel, MeanIsWeightedMixtureMean) {
  const auto m = f::LeadTimeModel::summit_default();
  rnd::Xoshiro256 g(99);
  pckpt::stats::OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(m.sample(g).lead_seconds);
  EXPECT_NEAR(s.mean(), m.mean(), m.mean() * 0.05);
}

TEST(LeadTimeModel, HeavyTailSequencesProduceOutliers) {
  // Sequences 4 and 8 (our stand-ins for the paper's outlier-rich chains)
  // must generate leads far above the cluster.
  const auto m = f::LeadTimeModel::summit_default();
  rnd::Xoshiro256 g(5);
  int far = 0;
  for (int i = 0; i < 50000; ++i) {
    if (m.sample(g).lead_seconds > 300.0) ++far;
  }
  EXPECT_GT(far, 100);   // tail exists
  EXPECT_LT(far, 2500);  // but is thin
}

TEST(LeadTimeModel, CustomMixtureValidation) {
  EXPECT_THROW(f::LeadTimeModel({{1, "bad", -5.0, 0.1, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(f::LeadTimeModel({}), std::invalid_argument);
  EXPECT_THROW(f::LeadTimeModel({{1, "zero-w", 10.0, 0.1, 0.0}}),
               std::invalid_argument);
}

TEST(LeadTimeModel, DegenerateSigmaZeroCcdfIsStep) {
  f::LeadTimeModel m({{1, "fixed", 30.0, 0.0, 1.0}});
  EXPECT_DOUBLE_EQ(m.ccdf(29.0), 1.0);
  EXPECT_DOUBLE_EQ(m.ccdf(31.0), 0.0);
}
