#include "failure/system_catalog.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace f = pckpt::failure;

TEST(SystemCatalog, HasAllTableIIISystems) {
  const auto& systems = f::system_catalog();
  ASSERT_EQ(systems.size(), 3u);
  EXPECT_EQ(systems[0].name, "LANL System 8");
  EXPECT_DOUBLE_EQ(systems[0].weibull_shape, 0.7111);
  EXPECT_DOUBLE_EQ(systems[0].weibull_scale_hours, 67.375);
  EXPECT_EQ(systems[0].total_nodes, 164);
  EXPECT_EQ(systems[2].name, "OLCF Titan");
  EXPECT_DOUBLE_EQ(systems[2].weibull_shape, 0.6885);
  EXPECT_DOUBLE_EQ(systems[2].weibull_scale_hours, 5.4527);
}

TEST(SystemCatalog, LookupByAliases) {
  EXPECT_EQ(f::system_by_name("titan").name, "OLCF Titan");
  EXPECT_EQ(f::system_by_name("OLCF Titan").name, "OLCF Titan");
  // The paper applies Titan's distribution to Summit.
  EXPECT_EQ(f::system_by_name("summit").name, "OLCF Titan");
  EXPECT_EQ(f::system_by_name("lanl8").name, "LANL System 8");
  EXPECT_EQ(f::system_by_name("LANL System 18").name, "LANL System 18");
  EXPECT_THROW(f::system_by_name("frontier"), std::out_of_range);
}

TEST(SystemCatalog, TitanSystemMtbfIsAFewHours) {
  const auto& titan = f::system_by_name("titan");
  const double mtbf = titan.system_mtbf_hours();
  EXPECT_GT(mtbf, 5.0);
  EXPECT_LT(mtbf, 9.0);
}

TEST(SystemCatalog, JobScalePreservesShapeAndScalesRate) {
  const auto& titan = f::system_by_name("titan");
  // Full system job: scale_job == scale_sys.
  EXPECT_NEAR(titan.job_scale_hours(titan.total_nodes),
              titan.weibull_scale_hours, 1e-12);
  // Smaller jobs fail less often.
  EXPECT_GT(titan.job_mtbf_hours(2272), titan.system_mtbf_hours());
  EXPECT_GT(titan.job_mtbf_hours(64), titan.job_mtbf_hours(2272));
}

TEST(SystemCatalog, ChimeraJobMtbfAnchor) {
  // CHIMERA on 2272/18868 Titan-nodes: MTBF should land in tens of hours.
  const auto& titan = f::system_by_name("titan");
  const double mtbf = titan.job_mtbf_hours(2272);
  EXPECT_GT(mtbf, 30.0);
  EXPECT_LT(mtbf, 200.0);
}

TEST(SystemCatalog, JobRatePerSecondConsistent) {
  const auto& titan = f::system_by_name("titan");
  const double rate = titan.job_rate_per_second(1024);
  EXPECT_NEAR(rate * titan.job_mtbf_hours(1024) * 3600.0, 1.0, 1e-9);
}

TEST(SystemCatalog, JobNodesValidation) {
  const auto& titan = f::system_by_name("titan");
  EXPECT_THROW(titan.job_scale_hours(0), std::invalid_argument);
}

TEST(SystemCatalog, JobsLargerThanReferenceSystemExtrapolate) {
  // The paper applies the 164-node LANL System 8 distribution to
  // 2272-node Summit jobs; the per-node rate extrapolates.
  const auto& lanl8 = f::system_by_name("lanl8");
  const double job = lanl8.job_mtbf_hours(2272);
  EXPECT_LT(job, lanl8.system_mtbf_hours());
  EXPECT_NEAR(job * 2272.0 / 164.0, lanl8.system_mtbf_hours(), 1e-9);
}
