#include "analysis/analytic_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace a = pckpt::analysis;

TEST(AnalyticModel, CkptReductionFraction) {
  EXPECT_DOUBLE_EQ(a::lm_checkpoint_reduction_fraction(0.0), 0.0);
  EXPECT_NEAR(a::lm_checkpoint_reduction_fraction(0.75), 0.5, 1e-12);
  EXPECT_THROW(a::lm_checkpoint_reduction_fraction(1.0),
               std::invalid_argument);
}

TEST(AnalyticModel, BetaFraction) {
  // alpha = 1: p-ckpt moves as much as LM; beta = sigma.
  EXPECT_NEAR(a::beta_fraction(1.0, 0.4), 0.4, 1e-12);
  // alpha = 3, sigma = 0.5: beta = 2.5/3.
  EXPECT_NEAR(a::beta_fraction(3.0, 0.5), 2.5 / 3.0, 1e-12);
  // beta >= sigma always (p-ckpt's deadline is shorter).
  for (double s : {0.0, 0.2, 0.5}) {
    for (double al : {1.0, 2.0, 3.0, 5.0}) {
      EXPECT_GE(a::beta_fraction(al, s), s - 1e-12);
      EXPECT_LE(a::beta_fraction(al, s), 1.0 + 1e-12);
    }
  }
  EXPECT_THROW(a::beta_fraction(0.5, 0.2), std::invalid_argument);
}

TEST(AnalyticModel, SigmaUpperBoundIsGoldenRatioConjugate) {
  const double bound = a::sigma_upper_bound();
  EXPECT_NEAR(bound, 0.618, 0.001);  // paper: sigma < 0.61
  // At the bound: sigma == sqrt(1 - sigma).
  EXPECT_NEAR(bound, std::sqrt(1.0 - bound), 1e-12);
}

TEST(AnalyticModel, PaperAlphaThresholdRange) {
  // Paper: within 0 <= sigma < 0.61, 1.04 <= alpha < 1.30 (the lower value
  // corresponds to small positive sigma; at sigma=0 the bound is exactly 1).
  EXPECT_NEAR(a::alpha_threshold_paper(0.0), 1.0, 1e-12);
  EXPECT_NEAR(a::alpha_threshold_paper(0.1), 1.049, 0.002);
  EXPECT_NEAR(a::alpha_threshold_paper(0.60), 1.30, 0.01);
  // Monotone increasing over the feasible range.
  double prev = 0.0;
  for (double s = 0.0; s < 0.61; s += 0.05) {
    const double t = a::alpha_threshold_paper(s);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(AnalyticModel, DerivedThresholdAgreesAtZeroAndGrows) {
  EXPECT_NEAR(a::alpha_threshold_derived(0.0), 1.0, 1e-12);
  double prev = 0.0;
  for (double s = 0.0; s < 0.55; s += 0.05) {
    const double t = a::alpha_threshold_derived(s);
    EXPECT_GT(t, prev);
    prev = t;
  }
  // Beyond the feasibility bound the derivation degenerates.
  EXPECT_THROW(a::alpha_threshold_derived(0.63), std::invalid_argument);
}

TEST(AnalyticModel, PckptBeatsLmPredicateMatchesDerivedThreshold) {
  for (double s : {0.05, 0.2, 0.4, 0.55}) {
    const double t = a::alpha_threshold_derived(s);
    EXPECT_TRUE(a::pckpt_beats_lm(t * 1.05, s));
    EXPECT_FALSE(a::pckpt_beats_lm(std::max(1.0, t * 0.95), s));
  }
}

TEST(AnalyticModel, RecomputationHeavySplitFavorsPckpt) {
  // With recomp >> ckpt, even alpha barely above the break-even wins.
  const double s = 0.3;
  const double t = a::alpha_threshold_derived(s);
  EXPECT_FALSE(a::pckpt_beats_lm(std::max(1.0, t * 0.97), s, 1.0));
  EXPECT_TRUE(a::pckpt_beats_lm(std::max(1.0, t * 0.97), s, 2.0));
}

TEST(AnalyticModel, AlphaOneSigmaPositiveNeverWins) {
  // At alpha = 1, beta == sigma: p-ckpt mitigates no more failures than LM
  // but keeps the shorter checkpoint interval — LM wins on overhead.
  EXPECT_FALSE(a::pckpt_beats_lm(1.0, 0.3));
}

TEST(AnalyticModel, Validation) {
  EXPECT_THROW(a::alpha_threshold_paper(-0.1), std::invalid_argument);
  EXPECT_THROW(a::pckpt_beats_lm(2.0, 0.2, 0.0), std::invalid_argument);
  EXPECT_THROW(a::pckpt_beats_lm(0.9, 0.2), std::invalid_argument);
}
