#include "analysis/waste_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/campaign.hpp"
#include "core/oci.hpp"
#include "core/simulation.hpp"
#include "failure/lead_time_model.hpp"
#include "failure/system_catalog.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace a = pckpt::analysis;
namespace core = pckpt::core;
namespace w = pckpt::workload;
namespace f = pckpt::failure;

TEST(WasteModel, ComponentsAddUp) {
  a::WasteInputs in;
  in.compute_s = 100000.0;
  in.t_ckpt_bb_s = 100.0;
  in.oci_s = 5000.0;
  in.rate_per_s = 1e-5;
  in.recovery_s = 60.0;
  const auto out = a::expected_waste(in);
  EXPECT_DOUBLE_EQ(out.checkpoint_s, 100000.0 / 5000.0 * 100.0);
  EXPECT_NEAR(out.total_s,
              out.checkpoint_s + out.recomputation_s + out.recovery_s,
              1e-9);
  EXPECT_GT(out.expected_failures, 1.0);
}

TEST(WasteModel, Validation) {
  a::WasteInputs in;
  EXPECT_THROW(a::expected_waste(in), std::invalid_argument);
  in = {100.0, 1.0, 10.0, 1e-5, -1.0, 1.0};
  EXPECT_THROW(a::expected_waste(in), std::invalid_argument);
  in = {100.0, 1.0, 10.0, 1e-5, 1.0, 0.0};
  EXPECT_THROW(a::expected_waste(in), std::invalid_argument);
}

TEST(WasteModel, RenewalExcessRaisesFiniteHorizonCounts) {
  // Decreasing-hazard Weibull (Table III shapes) front-loads failures:
  // the expected count over a finite window exceeds t * rate.
  a::WasteInputs poisson;
  poisson.compute_s = 100000.0;
  poisson.t_ckpt_bb_s = 50.0;
  poisson.oci_s = 5000.0;
  poisson.rate_per_s = 2e-5;
  poisson.recovery_s = 60.0;
  poisson.weibull_shape = 1.0;
  a::WasteInputs weibull = poisson;
  weibull.weibull_shape = 0.6885;  // Titan
  EXPECT_GT(a::expected_waste(weibull).expected_failures,
            a::expected_waste(poisson).expected_failures + 0.3);
}

TEST(WasteModel, YoungIntervalIsNearOptimal) {
  a::WasteInputs in;
  in.compute_s = 360.0 * 3600.0;
  in.t_ckpt_bb_s = 135.5;
  in.rate_per_s = 1.0 / (58.2 * 3600.0);
  in.recovery_s = 80.0;
  in.oci_s = 1.0;  // placeholder
  const double young = core::young_oci_seconds(in.t_ckpt_bb_s, in.rate_per_s);
  const double at_young = a::total_waste_at(in, young);
  // Waste at Young's interval must be within a hair of a grid-search
  // optimum (Young is first-order optimal).
  double best = at_young;
  for (double oci = young / 4.0; oci < young * 4.0; oci *= 1.05) {
    best = std::min(best, a::total_waste_at(in, oci));
  }
  EXPECT_LT(at_young, best * 1.02);
  // And visibly worse away from it.
  EXPECT_GT(a::total_waste_at(in, young / 4.0), at_young * 1.3);
  EXPECT_GT(a::total_waste_at(in, young * 4.0), at_young * 1.3);
}

TEST(WasteModel, SimulatorTracksClosedFormOnBaseModel) {
  // End-to-end validation: the DES simulator's model-B overhead must
  // match the first-order expectation within ~15% (Monte-Carlo noise +
  // second-order effects like the async-drain window).
  const auto machine = w::summit();
  const auto storage = machine.make_storage();
  const auto leads = f::LeadTimeModel::summit_default();
  const auto& titan = f::system_by_name("titan");

  for (const char* name : {"CHIMERA", "XGC", "S3D"}) {
    const auto& app = w::workload_by_name(name);
    core::RunSetup setup;
    setup.app = &app;
    setup.machine = &machine;
    setup.storage = &storage;
    setup.system = &titan;
    setup.leads = &leads;
    core::CrConfig cfg;
    cfg.kind = core::ModelKind::kB;
    const auto sim = core::run_campaign(setup, cfg, 120, 4711);

    a::WasteInputs in;
    in.compute_s = app.compute_seconds();
    in.t_ckpt_bb_s = storage.bb_write_seconds(app.ckpt_per_node_gb());
    in.rate_per_s = titan.job_rate_per_second(app.nodes);
    in.weibull_shape = titan.weibull_shape;
    in.oci_s = core::young_oci_seconds(in.t_ckpt_bb_s, in.rate_per_s);
    in.recovery_s =
        std::max(storage.bb_read_seconds(app.ckpt_per_node_gb()),
                 storage.pfs_single_node_seconds(app.ckpt_per_node_gb())) +
        cfg.restart_seconds;
    const auto expect = a::expected_waste(in);

    EXPECT_NEAR(sim.checkpoint_s.mean(), expect.checkpoint_s,
                expect.checkpoint_s * 0.10)
        << name;
    EXPECT_NEAR(sim.total_overhead_s.mean(), expect.total_s,
                expect.total_s * 0.18)
        << name;
    EXPECT_NEAR(sim.failures_per_run(), expect.expected_failures,
                expect.expected_failures * 0.20)
        << name;
  }
}
