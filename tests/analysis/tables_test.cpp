#include "analysis/tables.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

using pckpt::analysis::Table;

TEST(Table, BuildsAndFormats) {
  Table t({"model", "overhead(h)", "FT"});
  t.add_row();
  t.cell("B").cell(14.901, 3).cell(0.0, 2);
  t.add_row();
  t.cell("P2").cell(8.348, 3).cell(0.69, 2);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.at(0, 0), "B");
  EXPECT_EQ(t.at(1, 1), "8.348");
  const std::string s = t.to_string();
  EXPECT_NE(s.find("model"), std::string::npos);
  EXPECT_NE(s.find("P2"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, PercentAndIntCells) {
  Table t({"x", "y"});
  t.add_row();
  t.cell_percent(53.25, 1).cell(42);
  EXPECT_EQ(t.at(0, 0), "53.2%");
  EXPECT_EQ(t.at(0, 1), "42");
}

TEST(Table, AlignmentPadsColumns) {
  Table t({"a", "bbbb"});
  t.add_row();
  t.cell("wide-cell-content").cell("x");
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header line must be padded to the widest cell.
  const auto header_end = out.find('\n');
  const auto row_start = out.rfind("wide-cell-content");
  ASSERT_NE(header_end, std::string::npos);
  ASSERT_NE(row_start, std::string::npos);
}

TEST(Table, CsvEscapesCommas) {
  Table t({"name", "v"});
  t.add_row();
  t.cell("a,b").cell(1);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "name,v\n\"a,b\",1\n");
}

TEST(Table, Validation) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table t({"only"});
  EXPECT_THROW(t.cell("no row yet"), std::logic_error);
  t.add_row();
  t.cell("ok");
  EXPECT_THROW(t.cell("overflow"), std::logic_error);
}

TEST(Table, HoursHelper) {
  EXPECT_EQ(pckpt::analysis::hours(3600.0), "1.0");
  EXPECT_EQ(pckpt::analysis::hours(5400.0, 2), "1.50");
}
