#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

using namespace pckpt::stats;

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeEqualsCombinedStream) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  OnlineStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(OnlineStats, MergeEmptyIntoEmpty) {
  OnlineStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(OnlineStats, MergeIntoEmptyCopiesState) {
  // empty ⊕ nonempty must be *exactly* the nonempty accumulator — the
  // campaign engine relies on this so that the first shard merged into a
  // fresh aggregate costs no rounding at all.
  OnlineStats a;
  for (double x : {3.5, -1.0, 7.25}) a.add(x);
  OnlineStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), a.count());
  EXPECT_EQ(c.mean(), a.mean());
  EXPECT_EQ(c.variance(), a.variance());
  EXPECT_EQ(c.min(), a.min());
  EXPECT_EQ(c.max(), a.max());
}

TEST(OnlineStats, ManyChunkMergeMatchesSinglePass) {
  // The engine's shard pattern: 500 samples accumulated in chunks of 8,
  // chunks merged in ascending order, versus one single-pass stream.
  // Chunked Welford differs only by rounding — agreement to ~1e-12
  // relative is the engine's documented numerical contract.
  OnlineStats single;
  std::vector<OnlineStats> chunks;
  for (int i = 0; i < 500; ++i) {
    // Deterministic values spanning several orders of magnitude.
    const double x = (i % 17 + 1) * 1e3 + i * 0.001 - 250.0;
    if (i % 8 == 0) chunks.emplace_back();
    chunks.back().add(x);
    single.add(x);
  }
  OnlineStats merged;
  for (const auto& c : chunks) merged.merge(c);

  EXPECT_EQ(merged.count(), single.count());
  EXPECT_NEAR(merged.mean(), single.mean(), 1e-12 * std::abs(single.mean()));
  EXPECT_NEAR(merged.variance(), single.variance(),
              1e-10 * std::abs(single.variance()));
  EXPECT_DOUBLE_EQ(merged.min(), single.min());
  EXPECT_DOUBLE_EQ(merged.max(), single.max());
}

TEST(OnlineStats, MergeOrderIsDeterministic) {
  // Merging the same chunks in the same order twice is bit-identical —
  // the property the campaign scheduler's ascending-order merge leans on.
  std::vector<OnlineStats> chunks(5);
  for (int i = 0; i < 50; ++i) chunks[i % 5].add(i * 0.731 - 3.0);
  OnlineStats a, b;
  for (const auto& c : chunks) a.merge(c);
  for (const auto& c : chunks) b.merge(c);
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
}

TEST(OnlineStats, Ci95ShrinksWithSamples) {
  OnlineStats small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 3);
  for (int i = 0; i < 1000; ++i) large.add(i % 3);
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(Percentile, Basics) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.75), 7.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 0.9), 42.0);
}

TEST(Percentile, Validation) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 1.1), std::invalid_argument);
}

TEST(BoxStats, FiveNumberSummary) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(i);  // 1..101
  const auto b = box_stats(v);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.median, 51.0);
  EXPECT_DOUBLE_EQ(b.q1, 26.0);
  EXPECT_DOUBLE_EQ(b.q3, 76.0);
  EXPECT_DOUBLE_EQ(b.max, 101.0);
  EXPECT_DOUBLE_EQ(b.mean, 51.0);
  EXPECT_EQ(b.count, 101u);
  EXPECT_EQ(b.outliers, 0u);
}

TEST(BoxStats, DetectsOutliers) {
  std::vector<double> v{10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 500};
  const auto b = box_stats(v);
  EXPECT_EQ(b.outliers, 1u);
  EXPECT_LE(b.whisker_hi, 19.0);
  EXPECT_DOUBLE_EQ(b.max, 500.0);
}

TEST(BoxStats, EmptyThrows) {
  EXPECT_THROW(box_stats({}), std::invalid_argument);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0
  h.add(1.9);   // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  h.add(-1.0);  // underflow
  h.add(10.0);  // overflow (hi is exclusive)
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
}

TEST(Histogram, Validation) {
  EXPECT_THROW(Histogram(5.0, 5.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}
