#include "workload/application.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "workload/machine.hpp"

namespace w = pckpt::workload;

TEST(Workloads, TableIContents) {
  const auto& apps = w::summit_workloads();
  ASSERT_EQ(apps.size(), 6u);
  const auto& chimera = w::workload_by_name("CHIMERA");
  EXPECT_EQ(chimera.nodes, 2272);
  EXPECT_DOUBLE_EQ(chimera.ckpt_total_gb, 646382.0);
  EXPECT_DOUBLE_EQ(chimera.compute_hours, 360.0);
  const auto& vulcan = w::workload_by_name("vulcan");
  EXPECT_EQ(vulcan.nodes, 64);
  EXPECT_DOUBLE_EQ(vulcan.ckpt_total_gb, 3.27);
}

TEST(Workloads, PerNodeSizesFitSummitDram) {
  const auto machine = w::summit();
  for (const auto& app : w::summit_workloads()) {
    EXPECT_LT(app.ckpt_per_node_gb(), machine.dram_gb) << app.name;
    EXPECT_LT(app.ckpt_per_node_gb(), machine.burst_buffer.capacity_gb)
        << app.name;
  }
}

TEST(Workloads, LookupIsCaseInsensitiveAndValidating) {
  EXPECT_EQ(w::workload_by_name("pop").name, "POP");
  EXPECT_EQ(w::workload_by_name("XgC").name, "XGC");
  EXPECT_THROW(w::workload_by_name("LAMMPS"), std::out_of_range);
}

TEST(Workloads, Eq3ScalingRoundTrip) {
  // Doubling both node count and DRAM quadruples the checkpoint.
  EXPECT_DOUBLE_EQ(w::scale_checkpoint_gb(100.0, 10, 32.0, 20, 64.0), 400.0);
  // Identity scaling.
  EXPECT_DOUBLE_EQ(w::scale_checkpoint_gb(100.0, 10, 32.0, 10, 32.0), 100.0);
  EXPECT_THROW(w::scale_checkpoint_gb(-1.0, 1, 1.0, 1, 1.0),
               std::invalid_argument);
  EXPECT_THROW(w::scale_checkpoint_gb(1.0, 0, 1.0, 1, 1.0),
               std::invalid_argument);
}

TEST(Workloads, ValidateCatchesBadDescriptors) {
  w::Application bad{"X", 0, 10.0, 1.0};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {"X", 4, -1.0, 1.0};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {"X", 4, 10.0, 0.0};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  for (const auto& app : w::summit_workloads()) {
    EXPECT_NO_THROW(app.validate());
  }
}

TEST(Machine, SummitDescriptor) {
  const auto m = w::summit();
  EXPECT_EQ(m.total_nodes, 4608);
  EXPECT_DOUBLE_EQ(m.dram_gb, 512.0);
  EXPECT_DOUBLE_EQ(m.burst_buffer.write_gbps, 2.1);
  EXPECT_DOUBLE_EQ(m.burst_buffer.read_gbps, 5.5);
  EXPECT_DOUBLE_EQ(m.interconnect_gbps, 12.5);
}

TEST(Machine, StorageFacadeBuilds) {
  const auto storage = w::summit().make_storage();
  EXPECT_GT(storage.pfs_aggregate_seconds(2272.0, 284.5), 0.0);
  EXPECT_GT(storage.matrix().node_counts().back(), 4000.0);
}
