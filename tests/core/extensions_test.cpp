/// Tests for the two extension features: lead-estimation noise
/// (PredictorConfig::lead_error_sigma) and online failure-rate estimation
/// (CrConfig::rate_estimation = kObserved).

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/simulation.hpp"
#include "failure/lead_time_model.hpp"
#include "failure/system_catalog.hpp"
#include "failure/trace.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace core = pckpt::core;
namespace w = pckpt::workload;
namespace f = pckpt::failure;
using core::ModelKind;

namespace {

struct World {
  w::Machine machine = w::summit();
  pckpt::iomodel::StorageModel storage = machine.make_storage();
  f::LeadTimeModel leads = f::LeadTimeModel::summit_default();
  const f::FailureSystem& titan = f::system_by_name("titan");

  core::RunSetup setup(const w::Application& app, std::uint64_t seed = 1) {
    core::RunSetup s;
    s.app = &app;
    s.machine = &machine;
    s.storage = &storage;
    s.system = &titan;
    s.leads = &leads;
    s.seed = seed;
    return s;
  }
};

World& world() {
  static World w;
  return w;
}

}  // namespace

// ---------------------------------------------------------------- traces

TEST(LeadNoise, ZeroSigmaGivesExactEstimates) {
  f::PredictorConfig pred;
  const f::FailureTrace t(world().titan, 1515, world().leads, pred, 5,
                          1000.0 * 3600.0);
  for (std::size_t i = 0; i < t.event_count(); ++i) {
    const auto& ev = t.event(i);
    if (ev.kind == f::TraceEvent::Kind::kPrediction) {
      EXPECT_DOUBLE_EQ(ev.predicted_lead_s, ev.lead_s);
    }
  }
}

TEST(LeadNoise, NoiseLeavesFailureScheduleUntouched) {
  f::PredictorConfig clean, noisy;
  noisy.lead_error_sigma = 0.5;
  const f::FailureTrace a(world().titan, 1515, world().leads, clean, 5,
                          1000.0 * 3600.0);
  const f::FailureTrace b(world().titan, 1515, world().leads, noisy, 5,
                          1000.0 * 3600.0);
  ASSERT_EQ(a.failures().size(), b.failures().size());
  for (std::size_t i = 0; i < a.failures().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.failures()[i].time_s, b.failures()[i].time_s);
    EXPECT_DOUBLE_EQ(a.failures()[i].lead_s, b.failures()[i].lead_s);
  }
}

TEST(LeadNoise, NoisyEstimatesDifferButAreUnbiasedInLogSpace) {
  f::PredictorConfig noisy;
  noisy.lead_error_sigma = 0.5;
  const f::FailureTrace t(world().titan, 1515, world().leads, noisy, 5,
                          20000.0 * 3600.0);
  int differ = 0, total = 0;
  double log_ratio_sum = 0.0;
  for (std::size_t i = 0; i < t.event_count(); ++i) {
    const auto& ev = t.event(i);
    if (ev.kind != f::TraceEvent::Kind::kPrediction ||
        ev.is_false_positive()) {
      continue;
    }
    ++total;
    if (ev.predicted_lead_s != ev.lead_s) ++differ;
    log_ratio_sum += std::log(ev.predicted_lead_s / ev.lead_s);
  }
  ASSERT_GT(total, 100);
  EXPECT_EQ(differ, total);
  EXPECT_NEAR(log_ratio_sum / total, 0.0, 0.12);  // median-unbiased
}

TEST(LeadNoise, ValidationRejectsNegativeSigma) {
  f::PredictorConfig pred;
  pred.lead_error_sigma = -0.1;
  EXPECT_THROW(pred.validate(), std::invalid_argument);
}

// ------------------------------------------------------------ simulation

TEST(LeadNoise, DegradesHybridMitigationOnLargeApps) {
  // Misrouted decisions (LM chosen on an overestimated lead, p-ckpt's
  // priority queue mis-ordered) reduce P2's FT ratio on CHIMERA, where
  // the LM threshold sits inside the lead-time cluster.
  auto& wd = world();
  const auto& app = w::workload_by_name("CHIMERA");
  auto ft_at = [&](double sigma) {
    core::CrConfig cfg;
    cfg.kind = ModelKind::kP2;
    cfg.predictor.lead_error_sigma = sigma;
    const auto r = core::run_campaign(wd.setup(app), cfg, 40, 77);
    return r.pooled_ft_ratio();
  };
  const double oracle = ft_at(0.0);
  const double noisy = ft_at(1.0);
  EXPECT_GT(oracle, noisy + 0.03);
}

TEST(RateEstimation, ObservedModeMatchesAnalyticOnCalmRuns) {
  // With zero failures observed, the smoothed estimate equals the
  // analytic rate, so the OCI (and thus checkpoint count) barely moves.
  auto& wd = world();
  f::FailureSystem calm{"calm", 0.7, 5000.0, 4608};
  const auto& app = w::workload_by_name("S3D");
  core::RunSetup s = wd.setup(app);
  s.system = &calm;
  core::CrConfig analytic;
  analytic.kind = ModelKind::kB;
  core::CrConfig observed = analytic;
  observed.rate_estimation = core::RateEstimation::kObserved;
  const auto ra = core::simulate_run(s, analytic);
  const auto ro = core::simulate_run(s, observed);
  ASSERT_EQ(ra.failures, 0);
  EXPECT_NEAR(ro.mean_oci_s(), ra.mean_oci_s(), ra.mean_oci_s() * 0.25);
}

TEST(RateEstimation, ObservedModeShortensIntervalUnderHeavyFailures) {
  // CHIMERA under LANL System 18's rate (~3 h MTBF): the empirical rate
  // exceeds nothing (it IS the rate), but early bursty failures drive the
  // online estimate above/below analytic; averaged over runs the
  // realized checkpoint count must track the failure burden.
  auto& wd = world();
  const auto& lanl18 = f::system_by_name("lanl18");
  const auto& app = w::workload_by_name("CHIMERA");
  core::RunSetup s = wd.setup(app, 3);
  s.system = &lanl18;
  core::CrConfig analytic;
  analytic.kind = ModelKind::kB;
  core::CrConfig observed = analytic;
  observed.rate_estimation = core::RateEstimation::kObserved;
  const auto ra = core::simulate_run(s, analytic);
  const auto ro = core::simulate_run(s, observed);
  EXPECT_GT(ra.failures, 20);
  // Both complete and stay self-consistent.
  EXPECT_NEAR(ro.makespan_s, ro.compute_s + ro.overheads.total(),
              1e-6 * ro.makespan_s);
  EXPECT_GT(ro.mean_oci_s(), 0.0);
}

TEST(RateEstimation, DeterministicUnderObservedMode) {
  auto& wd = world();
  const auto& app = w::workload_by_name("XGC");
  core::CrConfig cfg;
  cfg.kind = ModelKind::kP2;
  cfg.rate_estimation = core::RateEstimation::kObserved;
  const auto a = core::simulate_run(wd.setup(app, 9), cfg);
  const auto b = core::simulate_run(wd.setup(app, 9), cfg);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.failures, b.failures);
}
