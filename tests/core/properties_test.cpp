/// Property-style sweeps over the C/R models: invariants that must hold
/// for every (failure system, model, application) combination, and
/// monotonicity properties in the predictor/model knobs. These are the
/// guarantees the paper's conclusions rest on.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/campaign.hpp"
#include "core/simulation.hpp"
#include "failure/lead_time_model.hpp"
#include "failure/system_catalog.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace core = pckpt::core;
namespace w = pckpt::workload;
namespace f = pckpt::failure;
using core::ModelKind;

namespace {

struct World {
  w::Machine machine = w::summit();
  pckpt::iomodel::StorageModel storage = machine.make_storage();
  f::LeadTimeModel leads = f::LeadTimeModel::summit_default();

  core::RunSetup setup(const w::Application& app,
                       const f::FailureSystem& sys,
                       std::uint64_t seed) {
    core::RunSetup s;
    s.app = &app;
    s.machine = &machine;
    s.storage = &storage;
    s.system = &sys;
    s.leads = &leads;
    s.seed = seed;
    return s;
  }
};

World& world() {
  static World w;
  return w;
}

}  // namespace

// ---------------------------------------------------------------------
// Grid: (system x model) — applied to XGC, which exercises both the LM
// and the p-ckpt paths.
// ---------------------------------------------------------------------

class SystemModelGrid
    : public ::testing::TestWithParam<std::tuple<const char*, ModelKind>> {};

INSTANTIATE_TEST_SUITE_P(
    Grid, SystemModelGrid,
    ::testing::Combine(::testing::Values("titan", "lanl8", "lanl18"),
                       ::testing::Values(ModelKind::kB, ModelKind::kM1,
                                         ModelKind::kM2, ModelKind::kP1,
                                         ModelKind::kP2)),
    [](const auto& pinfo) {
      return std::string(std::get<0>(pinfo.param)) + "_" +
             std::string(core::to_string(std::get<1>(pinfo.param)));
    });

TEST_P(SystemModelGrid, InvariantsHoldOnEverySystem) {
  auto& wd = world();
  const auto& [sys_name, kind] = GetParam();
  const auto& sys = f::system_by_name(sys_name);
  const auto& app = w::workload_by_name("XGC");
  core::CrConfig cfg;
  cfg.kind = kind;
  for (std::uint64_t seed : {2ull, 31ull}) {
    const auto r = core::simulate_run(wd.setup(app, sys, seed), cfg);
    // Accounting identity.
    EXPECT_NEAR(r.makespan_s, r.compute_s + r.overheads.total(),
                1e-6 * r.makespan_s);
    // Counter consistency.
    EXPECT_EQ(r.failures, r.mitigated_ckpt + r.mitigated_lm + r.unhandled);
    EXPECT_LE(r.mitigated_ckpt + r.mitigated_lm, r.predicted);
    EXPECT_GE(r.periodic_ckpts, 0);
    // Capability constraints.
    if (!core::uses_lm(kind)) {
      EXPECT_EQ(r.mitigated_lm, 0);
      EXPECT_EQ(r.lm_attempts, 0);
      EXPECT_DOUBLE_EQ(r.overheads.migration_s, 0.0);
    }
    if (!core::uses_proactive_ckpt(kind)) {
      EXPECT_EQ(r.mitigated_ckpt, 0);
      EXPECT_EQ(r.proactive_ckpts, 0);
    }
    // Overheads non-negative and makespan at least the useful work.
    EXPECT_GE(r.overheads.checkpoint_s, 0.0);
    EXPECT_GE(r.overheads.recomputation_s, 0.0);
    EXPECT_GE(r.overheads.recovery_s, 0.0);
    EXPECT_GE(r.makespan_s, r.compute_s);
  }
}

TEST_P(SystemModelGrid, PairedTracesShareFailureSchedule) {
  auto& wd = world();
  const auto& [sys_name, kind] = GetParam();
  const auto& sys = f::system_by_name(sys_name);
  const auto& app = w::workload_by_name("XGC");
  core::CrConfig cfg;
  cfg.kind = kind;
  core::CrConfig base;
  base.kind = ModelKind::kB;
  const auto r = core::simulate_run(wd.setup(app, sys, 77), cfg);
  const auto b = core::simulate_run(wd.setup(app, sys, 77), base);
  // Same trace: failure counts match up to timeline-shift edge effects.
  EXPECT_NEAR(r.failures, b.failures, 2.0);
}

// ---------------------------------------------------------------------
// Monotonicity properties.
// ---------------------------------------------------------------------

namespace {

double pooled_ft(ModelKind kind, double recall, double lead_scale,
                 std::size_t runs = 25) {
  auto& wd = world();
  const auto& app = w::workload_by_name("XGC");
  core::CrConfig cfg;
  cfg.kind = kind;
  cfg.predictor.recall = recall;
  cfg.predictor.lead_scale = lead_scale;
  auto setup = wd.setup(app, f::system_by_name("titan"), 0);
  return core::run_campaign(setup, cfg, runs, 1234).pooled_ft_ratio();
}

}  // namespace

class RecallSweep : public ::testing::TestWithParam<ModelKind> {};

INSTANTIATE_TEST_SUITE_P(Models, RecallSweep,
                         ::testing::Values(ModelKind::kM2, ModelKind::kP1,
                                           ModelKind::kP2),
                         [](const auto& pinfo) {
                           return std::string(core::to_string(pinfo.param));
                         });

TEST_P(RecallSweep, FtRatioIncreasesWithRecallAndIsBoundedByIt) {
  const ModelKind kind = GetParam();
  double prev = -1.0;
  for (double recall : {0.3, 0.6, 0.9}) {
    const double ft = pooled_ft(kind, recall, 1.0);
    EXPECT_LE(ft, recall + 0.06) << "recall=" << recall;  // bound (+noise)
    EXPECT_GE(ft, prev - 0.05);                           // monotone-ish
    prev = ft;
  }
  EXPECT_DOUBLE_EQ(pooled_ft(kind, 0.0, 1.0), 0.0);
}

TEST(Monotonicity, P1FtRatioNondecreasingInLeadScale) {
  double prev = -1.0;
  for (double scale : {0.25, 0.5, 1.0, 2.0}) {
    const double ft = pooled_ft(ModelKind::kP1, 0.85, scale);
    EXPECT_GE(ft, prev - 0.04) << "scale=" << scale;
    prev = ft;
  }
}

TEST(Monotonicity, M2FtRatioNondecreasingInLeadScale) {
  double prev = -1.0;
  for (double scale : {0.25, 0.5, 1.0, 2.0}) {
    const double ft = pooled_ft(ModelKind::kM2, 0.85, scale);
    EXPECT_GE(ft, prev - 0.04) << "scale=" << scale;
    prev = ft;
  }
}

TEST(Monotonicity, HigherLmTransferFactorNeverHelpsM2) {
  auto& wd = world();
  const auto& app = w::workload_by_name("XGC");
  auto setup = wd.setup(app, f::system_by_name("titan"), 0);
  double prev_ft = 2.0;
  for (double alpha : {1.0, 2.0, 4.0}) {
    core::CrConfig cfg;
    cfg.kind = ModelKind::kM2;
    cfg.lm_transfer_factor = alpha;
    const auto r = core::run_campaign(setup, cfg, 25, 99);
    EXPECT_LE(r.pooled_ft_ratio(), prev_ft + 0.03) << "alpha=" << alpha;
    prev_ft = r.pooled_ft_ratio();
  }
}

TEST(Monotonicity, SmallerDrainPoolDelaysRestorePoints) {
  // Fewer concurrent drainers => BB checkpoints reach the PFS later =>
  // more computation lost per unhandled failure (Fig. 1B window).
  auto& wd = world();
  const auto& app = w::workload_by_name("CHIMERA");
  auto setup = wd.setup(app, f::system_by_name("titan"), 0);
  core::CrConfig narrow;
  narrow.kind = ModelKind::kB;
  narrow.drain_concurrency = 2;
  core::CrConfig wide = narrow;
  wide.drain_concurrency = 2272;
  const auto rn = core::run_campaign(setup, narrow, 30, 5);
  const auto rw = core::run_campaign(setup, wide, 30, 5);
  EXPECT_GT(rn.recomputation_s.mean(), rw.recomputation_s.mean());
}

TEST(Monotonicity, LongerRuntimeFavorsHybridOverPckpt) {
  // The paper's Recommendation: checkpoint savings compound with runtime,
  // so P2's advantage over P1 grows as the application runs longer.
  auto& wd = world();
  w::Application short_run{"short", 1515, 149625.0, 60.0};
  w::Application long_run{"long", 1515, 149625.0, 480.0};
  auto advantage = [&](const w::Application& app) {
    auto setup = wd.setup(app, f::system_by_name("titan"), 0);
    core::CrConfig p1;
    p1.kind = ModelKind::kP1;
    core::CrConfig p2;
    p2.kind = ModelKind::kP2;
    const auto r1 = core::run_campaign(setup, p1, 40, 7);
    const auto r2 = core::run_campaign(setup, p2, 40, 7);
    return (r1.total_overhead_s.mean() - r2.total_overhead_s.mean()) /
           (app.compute_hours * 3600.0);
  };
  // Normalized by runtime, P2's edge should not shrink for long runs.
  EXPECT_GE(advantage(long_run), advantage(short_run) * 0.8);
}
