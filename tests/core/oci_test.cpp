#include "core/oci.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace core = pckpt::core;

TEST(Oci, YoungFormulaValue) {
  // t_bb = 135.5 s, MTBF = 58.2 h: OCI = sqrt(2 * 135.5 * 58.2 * 3600).
  const double rate = 1.0 / (58.2 * 3600.0);
  const double oci = core::young_oci_seconds(135.5, rate);
  EXPECT_NEAR(oci, std::sqrt(2.0 * 135.5 / rate), 1e-9);
  EXPECT_NEAR(oci / 3600.0, 2.09, 0.03);  // ~2.1 hours
}

TEST(Oci, YoungScalesWithSqrtOfCkptTime) {
  const double rate = 1e-5;
  EXPECT_NEAR(core::young_oci_seconds(400.0, rate),
              2.0 * core::young_oci_seconds(100.0, rate), 1e-9);
}

TEST(Oci, YoungScalesInverselyWithSqrtOfRate) {
  EXPECT_NEAR(core::young_oci_seconds(100.0, 4e-5),
              0.5 * core::young_oci_seconds(100.0, 1e-5), 1e-9);
}

TEST(Oci, SigmaZeroMatchesYoung) {
  EXPECT_DOUBLE_EQ(core::sigma_extended_oci_seconds(100.0, 1e-5, 0.0),
                   core::young_oci_seconds(100.0, 1e-5));
}

TEST(Oci, SigmaExtendsInterval) {
  const double base = core::young_oci_seconds(100.0, 1e-5);
  const double ext = core::sigma_extended_oci_seconds(100.0, 1e-5, 0.75);
  EXPECT_NEAR(ext, base * 2.0, 1e-9);  // 1/sqrt(0.25) = 2
  EXPECT_NEAR(ext / base, core::oci_elongation_factor(0.75), 1e-12);
}

TEST(Oci, ElongationRangeOfObservation6) {
  // Paper: 54-340% elongation across applications. sigma ~0.57 gives +53%;
  // sigma ~0.95 gives +347%.
  EXPECT_NEAR(core::oci_elongation_factor(0.57), 1.525, 0.01);
  EXPECT_NEAR(core::oci_elongation_factor(0.948), 4.39, 0.03);
}

TEST(Oci, Validation) {
  EXPECT_THROW(core::young_oci_seconds(0.0, 1e-5), std::invalid_argument);
  EXPECT_THROW(core::young_oci_seconds(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(core::sigma_extended_oci_seconds(1.0, 1e-5, 1.0),
               std::invalid_argument);
  EXPECT_THROW(core::sigma_extended_oci_seconds(1.0, 1e-5, -0.1),
               std::invalid_argument);
  EXPECT_THROW(core::oci_elongation_factor(1.0), std::invalid_argument);
}
