#include "core/timeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/campaign.hpp"
#include "core/simulation.hpp"
#include "failure/lead_time_model.hpp"
#include "failure/system_catalog.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace core = pckpt::core;
namespace w = pckpt::workload;
namespace f = pckpt::failure;
using core::MarkerKind;
using core::PhaseKind;
using core::Timeline;

// --------------------------------------------------------------- unit

TEST(Timeline, SegmentsMergeAndDropZeroLength) {
  Timeline t;
  t.add_segment(PhaseKind::kCompute, 0.0, 10.0);
  t.add_segment(PhaseKind::kCompute, 10.0, 20.0);  // merges
  t.add_segment(PhaseKind::kBbCheckpoint, 20.0, 20.0);  // dropped
  t.add_segment(PhaseKind::kBbCheckpoint, 20.0, 25.0);
  ASSERT_EQ(t.segments().size(), 2u);
  EXPECT_DOUBLE_EQ(t.segments()[0].end_s, 20.0);
  EXPECT_DOUBLE_EQ(t.total(PhaseKind::kCompute), 20.0);
  EXPECT_DOUBLE_EQ(t.total(PhaseKind::kBbCheckpoint), 5.0);
  EXPECT_DOUBLE_EQ(t.span(), 25.0);
}

TEST(Timeline, RejectsOutOfOrderSegments) {
  Timeline t;
  t.add_segment(PhaseKind::kCompute, 0.0, 10.0);
  EXPECT_THROW(t.add_segment(PhaseKind::kCompute, 5.0, 12.0),
               std::invalid_argument);
  EXPECT_THROW(t.add_segment(PhaseKind::kCompute, 12.0, 11.0),
               std::invalid_argument);
}

TEST(Timeline, AsciiRenderShowsMajorityPhase) {
  Timeline t;
  t.add_segment(PhaseKind::kCompute, 0.0, 50.0);
  t.add_segment(PhaseKind::kRecovery, 50.0, 100.0);
  const std::string strip = t.render_ascii(10);
  EXPECT_EQ(strip.size(), 10u);
  EXPECT_EQ(strip.substr(0, 5), "=====");
  EXPECT_EQ(strip.substr(5, 5), "RRRRR");
  EXPECT_THROW(t.render_ascii(0), std::invalid_argument);
}

TEST(Timeline, EmptyRendersDots) {
  Timeline t;
  EXPECT_EQ(t.render_ascii(4), "....");
  EXPECT_DOUBLE_EQ(t.span(), 0.0);
}

TEST(Timeline, CsvHasAllRows) {
  Timeline t;
  t.add_segment(PhaseKind::kCompute, 0.0, 5.0);
  t.add_marker(MarkerKind::kFailure, 3.0);
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("segment,compute,0,5"), std::string::npos);
  EXPECT_NE(out.find("marker,failure,3"), std::string::npos);
}

// --------------------------------------------------- simulation wiring

namespace {

core::RunResult recorded_run(const char* app_name, core::ModelKind kind,
                             std::uint64_t seed) {
  static const auto machine = w::summit();
  static const auto storage = machine.make_storage();
  static const auto leads = f::LeadTimeModel::summit_default();
  core::RunSetup setup;
  setup.app = &w::workload_by_name(app_name);
  setup.machine = &machine;
  setup.storage = &storage;
  setup.system = &f::system_by_name("titan");
  setup.leads = &leads;
  setup.seed = seed;
  core::CrConfig cfg;
  cfg.kind = kind;
  cfg.record_timeline = true;
  return core::simulate_run(setup, cfg);
}

}  // namespace

TEST(TimelineRecording, OffByDefault) {
  static const auto machine = w::summit();
  static const auto storage = machine.make_storage();
  static const auto leads = f::LeadTimeModel::summit_default();
  core::RunSetup setup;
  setup.app = &w::workload_by_name("POP");
  setup.machine = &machine;
  setup.storage = &storage;
  setup.system = &f::system_by_name("titan");
  setup.leads = &leads;
  const auto r = core::simulate_run(setup, core::CrConfig{});
  EXPECT_TRUE(r.timeline.segments().empty());
}

TEST(TimelineRecording, SegmentsCoverTheMakespan) {
  const auto r = recorded_run("XGC", core::ModelKind::kP2, 5);
  ASSERT_FALSE(r.timeline.segments().empty());
  double covered = 0.0;
  double prev_end = 0.0;
  for (const auto& s : r.timeline.segments()) {
    EXPECT_GE(s.start_s, prev_end - 1e-6);  // ordered, non-overlapping
    covered += s.duration();
    prev_end = s.end_s;
  }
  EXPECT_NEAR(covered, r.makespan_s, 1e-3 * r.makespan_s);
  EXPECT_NEAR(r.timeline.span(), r.makespan_s, 1e-6 * r.makespan_s);
}

TEST(TimelineRecording, PhaseTotalsMatchOverheadAccounting) {
  const auto r = recorded_run("CHIMERA", core::ModelKind::kP1, 9);
  const auto& t = r.timeline;
  EXPECT_NEAR(t.total(PhaseKind::kRecovery), r.overheads.recovery_s, 1e-6);
  EXPECT_NEAR(t.total(PhaseKind::kBbCheckpoint) +
                  t.total(PhaseKind::kProactivePhase1) +
                  t.total(PhaseKind::kProactivePhase2),
              r.overheads.checkpoint_s, 1e-6);
  EXPECT_NEAR(t.total(PhaseKind::kCompute),
              r.compute_s + r.overheads.recomputation_s,
              1e-3 * r.compute_s);
}

TEST(TimelineRecording, MarkersMatchCounters) {
  const auto r = recorded_run("CHIMERA", core::ModelKind::kP2, 11);
  int failures = 0, predictions = 0, fps = 0, lm_starts = 0, lm_done = 0;
  for (const auto& m : r.timeline.markers()) {
    switch (m.kind) {
      case MarkerKind::kFailure:
        ++failures;
        break;
      case MarkerKind::kPrediction:
        ++predictions;
        break;
      case MarkerKind::kFalsePositive:
        ++fps;
        break;
      case MarkerKind::kLmStart:
        ++lm_starts;
        break;
      case MarkerKind::kLmComplete:
        ++lm_done;
        break;
    }
  }
  // Failure markers record strikes, not LM-avoided failures.
  EXPECT_EQ(failures, r.failures - r.mitigated_lm);
  EXPECT_EQ(fps, r.false_positives);
  EXPECT_EQ(lm_starts, r.lm_attempts);
  EXPECT_GE(lm_starts, lm_done);
  EXPECT_GE(predictions, r.mitigated_ckpt);
}

TEST(TimelineRecording, PckptRoundsShowBothPhases) {
  const auto r = recorded_run("CHIMERA", core::ModelKind::kP1, 3);
  ASSERT_GT(r.proactive_ckpts, 0);
  EXPECT_GT(r.timeline.total(PhaseKind::kProactivePhase1), 0.0);
  EXPECT_GT(r.timeline.total(PhaseKind::kProactivePhase2), 0.0);
  // Phase 1 is one node at single-node bandwidth; phase 2 is everyone at
  // aggregate bandwidth — both visible, phase 2 dominating.
  EXPECT_GT(r.timeline.total(PhaseKind::kProactivePhase2),
            r.timeline.total(PhaseKind::kProactivePhase1));
}

TEST(TimelineRecording, AsciiStripRendersForRealRun) {
  const auto r = recorded_run("XGC", core::ModelKind::kP1, 5);
  const auto strip = r.timeline.render_ascii(120);
  EXPECT_EQ(strip.size(), 120u);
  // Compute dominates every bucket at this resolution (a 47 s BB write
  // never wins a ~2 h bucket); thin phases appear only at fine widths.
  EXPECT_GT(std::count(strip.begin(), strip.end(), '='), 100);
}
