#include "core/simulation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "core/campaign.hpp"
#include "failure/lead_time_model.hpp"
#include "failure/system_catalog.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace core = pckpt::core;
namespace w = pckpt::workload;
namespace f = pckpt::failure;
using core::ModelKind;

namespace {

/// Shared fixture environment (built once: the PFS matrix is not free).
struct World {
  w::Machine machine = w::summit();
  pckpt::iomodel::StorageModel storage = machine.make_storage();
  f::LeadTimeModel leads = f::LeadTimeModel::summit_default();
  const f::FailureSystem& titan = f::system_by_name("titan");
  /// A practically failure-free environment: job MTBFs land around
  /// 50k-250k hours, so the OCI stays small enough for regular
  /// checkpointing while the probability of a failure in one run is ~1e-2
  /// (the seeds used below are verified failure-free).
  f::FailureSystem calm{"calm", 0.7, 5000.0, 4608};

  core::RunSetup setup(const w::Application& app, bool with_failures = true,
                       std::uint64_t seed = 1) {
    core::RunSetup s;
    s.app = &app;
    s.machine = &machine;
    s.storage = &storage;
    s.system = with_failures ? &titan : &calm;
    s.leads = &leads;
    s.seed = seed;
    return s;
  }
};

World& world() {
  static World w;
  return w;
}

core::CrConfig config_for(ModelKind kind) {
  core::CrConfig cfg;
  cfg.kind = kind;
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------------
// Free-function helpers.
// ---------------------------------------------------------------------

TEST(LmTheta, RamCapApplies) {
  auto& wd = world();
  const auto& chimera = w::workload_by_name("CHIMERA");
  // 3 x 284.5 GB = 853 GB > 512 GB DRAM -> capped: 512 / 12.5 = 40.96 s.
  EXPECT_NEAR(core::lm_transfer_gb(chimera, wd.machine, 3.0), 512.0, 1e-9);
  EXPECT_NEAR(core::lm_theta_seconds(chimera, wd.machine, wd.storage, 3.0),
              40.96, 1e-6);
}

TEST(LmTheta, UncappedBelowRam) {
  auto& wd = world();
  const auto& xgc = w::workload_by_name("XGC");
  const double gb = core::lm_transfer_gb(xgc, wd.machine, 3.0);
  EXPECT_NEAR(gb, 3.0 * xgc.ckpt_per_node_gb(), 1e-9);
  EXPECT_LT(gb, 512.0);
  EXPECT_NEAR(core::lm_theta_seconds(xgc, wd.machine, wd.storage, 3.0),
              gb / 12.5, 1e-9);
}

TEST(EstimateSigma, BoundedByRecallAndMonotone) {
  auto& wd = world();
  f::PredictorConfig pred;
  pred.recall = 0.88;
  const double s0 = core::estimate_sigma(wd.leads, pred, 1e-9, 1.0);
  EXPECT_NEAR(s0, 0.88, 1e-6);
  double prev = 1.0;
  for (double theta : {1.0, 10.0, 30.0, 60.0, 200.0}) {
    const double s = core::estimate_sigma(wd.leads, pred, theta, 1.0);
    EXPECT_LE(s, prev + 1e-12);
    EXPECT_LE(s, 0.88 + 1e-12);
    prev = s;
  }
}

TEST(EstimateSigma, LeadScaleShiftsEligibility) {
  auto& wd = world();
  f::PredictorConfig longer, shorter;
  longer.lead_scale = 1.5;
  shorter.lead_scale = 0.5;
  const double theta = 41.0;
  EXPECT_GT(core::estimate_sigma(wd.leads, longer, theta, 1.0),
            core::estimate_sigma(wd.leads, shorter, theta, 1.0));
}

// ---------------------------------------------------------------------
// Single-run invariants.
// ---------------------------------------------------------------------

class AllModels : public ::testing::TestWithParam<ModelKind> {};

INSTANTIATE_TEST_SUITE_P(Models, AllModels,
                         ::testing::Values(ModelKind::kB, ModelKind::kM1,
                                           ModelKind::kM2, ModelKind::kP1,
                                           ModelKind::kP2),
                         [](const auto& pinfo) {
                           return std::string(core::to_string(pinfo.param));
                         });

TEST_P(AllModels, MakespanEqualsComputePlusOverheads) {
  auto& wd = world();
  for (const char* name : {"CHIMERA", "POP", "S3D"}) {
    const auto& app = w::workload_by_name(name);
    for (std::uint64_t seed : {1ull, 7ull, 23ull}) {
      const auto r =
          core::simulate_run(wd.setup(app, true, seed), config_for(GetParam()));
      EXPECT_NEAR(r.makespan_s, r.compute_s + r.overheads.total(),
                  1e-6 * r.makespan_s)
          << name << " seed=" << seed;
    }
  }
}

TEST_P(AllModels, DeterministicForSameSeed) {
  auto& wd = world();
  const auto& app = w::workload_by_name("XGC");
  const auto a = core::simulate_run(wd.setup(app, true, 99), config_for(GetParam()));
  const auto b = core::simulate_run(wd.setup(app, true, 99), config_for(GetParam()));
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_DOUBLE_EQ(a.overheads.checkpoint_s, b.overheads.checkpoint_s);
  EXPECT_DOUBLE_EQ(a.overheads.recomputation_s, b.overheads.recomputation_s);
  EXPECT_DOUBLE_EQ(a.overheads.recovery_s, b.overheads.recovery_s);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.mitigated_ckpt, b.mitigated_ckpt);
  EXPECT_EQ(a.mitigated_lm, b.mitigated_lm);
}

TEST_P(AllModels, FailureFreeRunHasOnlyCheckpointOverhead) {
  auto& wd = world();
  const auto& app = w::workload_by_name("S3D");
  const auto r = core::simulate_run(wd.setup(app, false), config_for(GetParam()));
  EXPECT_EQ(r.failures, 0);
  EXPECT_EQ(r.unhandled, 0);
  EXPECT_DOUBLE_EQ(r.overheads.recomputation_s, 0.0);
  EXPECT_DOUBLE_EQ(r.overheads.recovery_s, 0.0);
  EXPECT_GT(r.overheads.checkpoint_s, 0.0);
  // LM-assisted models elongate the OCI ~3x (sigma ~0.88), so their count
  // is lower; everyone still checkpoints periodically.
  EXPECT_GE(r.periodic_ckpts, 3);
  EXPECT_NEAR(r.makespan_s, r.compute_s + r.overheads.total(), 1e-6);
}

TEST_P(AllModels, CountersAreConsistent) {
  auto& wd = world();
  const auto& app = w::workload_by_name("CHIMERA");
  const auto r = core::simulate_run(wd.setup(app, true, 5), config_for(GetParam()));
  EXPECT_EQ(r.failures, r.mitigated_ckpt + r.mitigated_lm + r.unhandled);
  EXPECT_LE(r.predicted, r.failures);
  EXPECT_GE(r.failures, 1);
  EXPECT_GE(r.overheads.checkpoint_s, 0.0);
  EXPECT_GE(r.overheads.recomputation_s, 0.0);
  EXPECT_GE(r.overheads.recovery_s, 0.0);
  EXPECT_GE(r.overheads.migration_s, 0.0);
}

TEST(Simulation, FailureCountIdenticalAcrossModels) {
  // Paired traces: for a given seed, every model sees the same failures.
  auto& wd = world();
  const auto& app = w::workload_by_name("XGC");
  int failures = -1;
  for (auto kind : {ModelKind::kB, ModelKind::kM1, ModelKind::kM2,
                    ModelKind::kP1, ModelKind::kP2}) {
    const auto r = core::simulate_run(wd.setup(app, true, 321), config_for(kind));
    if (failures < 0) {
      failures = r.failures;
    } else {
      // Proactive actions shift the timeline, so late-horizon failures can
      // differ by a hair; the bulk of the trace is shared.
      EXPECT_NEAR(r.failures, failures, 1.0) << core::to_string(kind);
    }
  }
}

TEST(Simulation, BaseModelTakesNoProactiveActions) {
  auto& wd = world();
  const auto& app = w::workload_by_name("CHIMERA");
  const auto r = core::simulate_run(wd.setup(app, true, 11), config_for(ModelKind::kB));
  EXPECT_EQ(r.proactive_ckpts, 0);
  EXPECT_EQ(r.lm_attempts, 0);
  EXPECT_EQ(r.mitigated_ckpt, 0);
  EXPECT_EQ(r.mitigated_lm, 0);
  EXPECT_EQ(r.false_positives, 0);
  EXPECT_EQ(r.unhandled, r.failures);
  EXPECT_DOUBLE_EQ(r.overheads.migration_s, 0.0);
}

TEST(Simulation, M1CannotMitigateChimeraScaleApps) {
  // Safeguard needs the full aggregate PFS write (~450 s) to beat leads
  // that are almost all < 46 s (Sec. V / Table II).
  auto& wd = world();
  const auto& app = w::workload_by_name("CHIMERA");
  int mitigated = 0, failures = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto r = core::simulate_run(wd.setup(app, true, seed), config_for(ModelKind::kM1));
    mitigated += r.mitigated_ckpt;
    failures += r.failures;
  }
  ASSERT_GT(failures, 20);
  EXPECT_LT(static_cast<double>(mitigated) / failures, 0.05);
}

TEST(Simulation, M1MitigatesSmallApps) {
  auto& wd = world();
  const auto& app = w::workload_by_name("POP");
  int mitigated = 0, failures = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const auto r = core::simulate_run(wd.setup(app, true, seed), config_for(ModelKind::kM1));
    mitigated += r.mitigated_ckpt;
    failures += r.failures;
  }
  ASSERT_GT(failures, 10);
  EXPECT_GT(static_cast<double>(mitigated) / failures, 0.7);
}

TEST(Simulation, P1MitigatesLargeAppsWhereM1Fails) {
  auto& wd = world();
  const auto& app = w::workload_by_name("CHIMERA");
  int p1_mit = 0, failures = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto r = core::simulate_run(wd.setup(app, true, seed), config_for(ModelKind::kP1));
    p1_mit += r.mitigated_ckpt;
    failures += r.failures;
  }
  const double ft = static_cast<double>(p1_mit) / failures;
  EXPECT_GT(ft, 0.55);  // paper Table IV: 0.70 at reference leads
  EXPECT_LT(ft, 0.9);
}

TEST(Simulation, M2UsesOnlyLmAndP1OnlyCkpt) {
  auto& wd = world();
  const auto& app = w::workload_by_name("XGC");
  const auto m2 = core::simulate_run(wd.setup(app, true, 17), config_for(ModelKind::kM2));
  EXPECT_EQ(m2.mitigated_ckpt, 0);
  EXPECT_EQ(m2.proactive_ckpts, 0);
  const auto p1 = core::simulate_run(wd.setup(app, true, 17), config_for(ModelKind::kP1));
  EXPECT_EQ(p1.mitigated_lm, 0);
  EXPECT_EQ(p1.lm_attempts, 0);
  EXPECT_GT(p1.proactive_ckpts, 0);
}

TEST(Simulation, HybridUsesBothMechanisms) {
  auto& wd = world();
  const auto& app = w::workload_by_name("CHIMERA");
  int lm = 0, ckpt = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto r = core::simulate_run(wd.setup(app, true, seed), config_for(ModelKind::kP2));
    lm += r.mitigated_lm;
    ckpt += r.mitigated_ckpt;
  }
  EXPECT_GT(lm, 0);
  EXPECT_GT(ckpt, 0);
}

TEST(Simulation, ProactiveRecoveryIsVisibleForP1) {
  // Observation 2 discussion: P1 recovery is ~2.5-6% of total overhead;
  // other models stay below ~1.5%.
  auto& wd = world();
  const auto& app = w::workload_by_name("CHIMERA");
  double p1_recovery = 0, p1_total = 0, b_recovery = 0, b_total = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto p1 = core::simulate_run(wd.setup(app, true, seed), config_for(ModelKind::kP1));
    p1_recovery += p1.overheads.recovery_s;
    p1_total += p1.overheads.total();
    const auto b = core::simulate_run(wd.setup(app, true, seed), config_for(ModelKind::kB));
    b_recovery += b.overheads.recovery_s;
    b_total += b.overheads.total();
  }
  EXPECT_GT(p1_recovery / p1_total, 0.02);
  EXPECT_LT(p1_recovery / p1_total, 0.10);
  EXPECT_LT(b_recovery / b_total, 0.02);
}

TEST(Simulation, LmModelsElongateCheckpointInterval) {
  auto& wd = world();
  const auto& app = w::workload_by_name("POP");
  const auto b = core::simulate_run(wd.setup(app, false), config_for(ModelKind::kB));
  const auto m2 = core::simulate_run(wd.setup(app, false), config_for(ModelKind::kM2));
  EXPECT_GT(m2.mean_oci_s(), 1.4 * b.mean_oci_s());
  EXPECT_LT(m2.periodic_ckpts, b.periodic_ckpts);
  EXPECT_LT(m2.overheads.checkpoint_s, b.overheads.checkpoint_s);
}

TEST(Simulation, LeadScaleImprovesM2Mitigation) {
  auto& wd = world();
  const auto& app = w::workload_by_name("CHIMERA");
  auto ft_at = [&](double scale) {
    core::CrConfig cfg = config_for(ModelKind::kM2);
    cfg.predictor.lead_scale = scale;
    int mit = 0, fails = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const auto r = core::simulate_run(wd.setup(app, true, seed), cfg);
      mit += r.mitigated_lm;
      fails += r.failures;
    }
    return static_cast<double>(mit) / fails;
  };
  const double lo = ft_at(0.5);
  const double ref = ft_at(1.0);
  const double hi = ft_at(1.5);
  EXPECT_LE(lo, ref + 0.05);
  EXPECT_LE(ref, hi + 0.05);
  // The cliff of Table II: -50% lead nearly kills LM on CHIMERA.
  EXPECT_LT(lo, 0.12);
  EXPECT_GT(hi, 0.4);
}

TEST(Simulation, ZeroRecallMeansNoMitigation) {
  auto& wd = world();
  const auto& app = w::workload_by_name("POP");
  core::CrConfig cfg = config_for(ModelKind::kP2);
  cfg.predictor.recall = 0.0;
  cfg.predictor.false_positive_rate = 0.0;
  const auto r = core::simulate_run(wd.setup(app, true, 3), cfg);
  EXPECT_EQ(r.mitigated_ckpt + r.mitigated_lm, 0);
  EXPECT_EQ(r.predicted, 0);
}

TEST(Simulation, FalsePositivesCostCheckpointTime) {
  auto& wd = world();
  const auto& app = w::workload_by_name("S3D");
  core::CrConfig no_fp = config_for(ModelKind::kP1);
  no_fp.predictor.false_positive_rate = 0.0;
  core::CrConfig heavy_fp = config_for(ModelKind::kP1);
  heavy_fp.predictor.false_positive_rate = 0.5;
  double fp_ckpt = 0, clean_ckpt = 0;
  int fp_count = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    fp_ckpt += core::simulate_run(wd.setup(app, true, seed), heavy_fp)
                   .overheads.checkpoint_s;
    fp_count += core::simulate_run(wd.setup(app, true, seed), heavy_fp)
                    .false_positives;
    clean_ckpt += core::simulate_run(wd.setup(app, true, seed), no_fp)
                      .overheads.checkpoint_s;
  }
  EXPECT_GT(fp_count, 0);
  EXPECT_GT(fp_ckpt, clean_ckpt);
}

TEST(Simulation, RejectsIncompleteSetup) {
  core::RunSetup empty;
  EXPECT_THROW(core::simulate_run(empty, core::CrConfig{}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Paper-shape assertions at campaign level (Observations 2, 5, 6).
// ---------------------------------------------------------------------

TEST(CampaignShape, ChimeraModelOrdering) {
  auto& wd = world();
  const auto& app = w::workload_by_name("CHIMERA");
  std::vector<core::CrConfig> cfgs;
  for (auto k : {ModelKind::kB, ModelKind::kM1, ModelKind::kM2,
                 ModelKind::kP1, ModelKind::kP2}) {
    cfgs.push_back(config_for(k));
  }
  const auto res = core::run_model_comparison(wd.setup(app), cfgs, 30, 42);
  const double b = res[0].total_overhead_s.mean();
  const double m1 = res[1].total_overhead_s.mean();
  const double m2 = res[2].total_overhead_s.mean();
  const double p1 = res[3].total_overhead_s.mean();
  const double p2 = res[4].total_overhead_s.mean();
  // Observation 2 ordering for the largest application.
  EXPECT_NEAR(m1 / b, 1.0, 0.05);  // safeguard is useless at this scale
  EXPECT_LT(m2, b);
  EXPECT_LT(p1, m2 * 1.05);
  EXPECT_LT(p2, p1);
  EXPECT_LT(p2 / b, 0.70);  // hybrid p-ckpt: large reduction
  // Observation 6: hybrid recomputation exceeds P1's.
  EXPECT_GT(res[4].recomputation_s.mean(), res[3].recomputation_s.mean());
  // Observation 5: LM reduces checkpoint overhead.
  EXPECT_LT(res[4].checkpoint_s.mean(), res[3].checkpoint_s.mean());
}

TEST(CampaignShape, PooledFtRatiosMatchTableIV) {
  auto& wd = world();
  const auto& app = w::workload_by_name("CHIMERA");
  const auto p1 =
      core::run_campaign(wd.setup(app), config_for(ModelKind::kP1), 30, 42);
  const auto p2 =
      core::run_campaign(wd.setup(app), config_for(ModelKind::kP2), 30, 42);
  EXPECT_NEAR(p1.pooled_ft_ratio(), 0.70, 0.12);
  EXPECT_NEAR(p2.pooled_ft_ratio(), 0.69, 0.12);
  // Table IV: P1 and P2 mitigate nearly equal fractions.
  EXPECT_NEAR(p1.pooled_ft_ratio(), p2.pooled_ft_ratio(), 0.08);
}

TEST(Campaign, PercentReduction) {
  EXPECT_DOUBLE_EQ(core::percent_reduction(10.0, 5.0), 50.0);
  EXPECT_DOUBLE_EQ(core::percent_reduction(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(core::percent_reduction(10.0, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(core::percent_reduction(0.0, 5.0), 0.0);
  EXPECT_LT(core::percent_reduction(10.0, 12.0), 0.0);
}

TEST(Campaign, AggregatesAreMeansOverRuns) {
  auto& wd = world();
  const auto& app = w::workload_by_name("GYRO");
  const auto res =
      core::run_campaign(wd.setup(app), config_for(ModelKind::kB), 5, 9);
  EXPECT_EQ(res.runs, 5u);
  EXPECT_EQ(res.total_overhead_s.count(), 5u);
  EXPECT_NEAR(res.total_overhead_s.mean(),
              res.checkpoint_s.mean() + res.recomputation_s.mean() +
                  res.recovery_s.mean() + res.migration_s.mean(),
              1e-6);
}
