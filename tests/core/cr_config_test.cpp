#include "core/cr_config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace core = pckpt::core;
using core::ModelKind;

TEST(CrConfig, ModelNamesRoundTrip) {
  for (auto k : {ModelKind::kB, ModelKind::kM1, ModelKind::kM2,
                 ModelKind::kP1, ModelKind::kP2}) {
    EXPECT_EQ(core::model_from_string(core::to_string(k)), k);
  }
}

TEST(CrConfig, ModelAliases) {
  EXPECT_EQ(core::model_from_string("base"), ModelKind::kB);
  EXPECT_EQ(core::model_from_string("safeguard"), ModelKind::kM1);
  EXPECT_EQ(core::model_from_string("lm"), ModelKind::kM2);
  EXPECT_EQ(core::model_from_string("p-ckpt"), ModelKind::kP1);
  EXPECT_EQ(core::model_from_string("hybrid"), ModelKind::kP2);
  EXPECT_THROW(core::model_from_string("Q9"), std::invalid_argument);
}

TEST(CrConfig, CapabilityPredicates) {
  EXPECT_FALSE(core::uses_lm(ModelKind::kB));
  EXPECT_FALSE(core::uses_lm(ModelKind::kM1));
  EXPECT_TRUE(core::uses_lm(ModelKind::kM2));
  EXPECT_FALSE(core::uses_lm(ModelKind::kP1));
  EXPECT_TRUE(core::uses_lm(ModelKind::kP2));

  EXPECT_FALSE(core::uses_proactive_ckpt(ModelKind::kB));
  EXPECT_TRUE(core::uses_proactive_ckpt(ModelKind::kM1));
  EXPECT_FALSE(core::uses_proactive_ckpt(ModelKind::kM2));
  EXPECT_TRUE(core::uses_proactive_ckpt(ModelKind::kP1));
  EXPECT_TRUE(core::uses_proactive_ckpt(ModelKind::kP2));

  EXPECT_FALSE(core::uses_pckpt(ModelKind::kM1));
  EXPECT_TRUE(core::uses_pckpt(ModelKind::kP1));
  EXPECT_TRUE(core::uses_pckpt(ModelKind::kP2));
}

TEST(CrConfig, DefaultsValidate) {
  core::CrConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(CrConfig, ValidationRejectsBadKnobs) {
  core::CrConfig cfg;
  cfg.lm_transfer_factor = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.lm_safety_margin = 0.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.lm_runtime_dilation = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.restart_seconds = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.drain_concurrency = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.min_oci_seconds = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.predictor.recall = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}
