/// Tests for the finite replacement-node pool extension
/// (CrConfig::spare_nodes / node_repair_hours). The paper assumes
/// reserved nodes are always available; these tests pin the behaviour
/// when that assumption is relaxed.

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/simulation.hpp"
#include "failure/lead_time_model.hpp"
#include "failure/system_catalog.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace core = pckpt::core;
namespace w = pckpt::workload;
namespace f = pckpt::failure;
using core::ModelKind;

namespace {

struct World {
  w::Machine machine = w::summit();
  pckpt::iomodel::StorageModel storage = machine.make_storage();
  f::LeadTimeModel leads = f::LeadTimeModel::summit_default();
  const f::FailureSystem& lanl18 = f::system_by_name("lanl18");

  core::RunSetup setup(const w::Application& app, std::uint64_t seed = 1) {
    core::RunSetup s;
    s.app = &app;
    s.machine = &machine;
    s.storage = &storage;
    s.system = &lanl18;  // failure-heavy: the pool actually drains
    s.leads = &leads;
    s.seed = seed;
    return s;
  }
};

World& world() {
  static World w;
  return w;
}

}  // namespace

TEST(SparePool, UnlimitedPoolMatchesDefaultBehaviour) {
  auto& wd = world();
  const auto& app = w::workload_by_name("XGC");
  core::CrConfig def;
  def.kind = ModelKind::kB;
  core::CrConfig unlimited = def;
  unlimited.spare_nodes = -1;
  const auto a = core::simulate_run(wd.setup(app, 4), def);
  const auto b = core::simulate_run(wd.setup(app, 4), unlimited);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

TEST(SparePool, HugePoolIsEquivalentToUnlimited) {
  auto& wd = world();
  const auto& app = w::workload_by_name("XGC");
  core::CrConfig unlimited;
  unlimited.kind = ModelKind::kB;
  core::CrConfig huge = unlimited;
  huge.spare_nodes = 100000;
  const auto a = core::simulate_run(wd.setup(app, 4), unlimited);
  const auto b = core::simulate_run(wd.setup(app, 4), huge);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

TEST(SparePool, TinyPoolInflatesRecoveryOverhead) {
  // CHIMERA under LANL-18's rate fails every ~3.3 h; with one spare and
  // 2 h repairs the pool stays feasible but recoveries regularly stall.
  auto& wd = world();
  const auto& app = w::workload_by_name("CHIMERA");
  core::CrConfig unlimited;
  unlimited.kind = ModelKind::kB;
  core::CrConfig scarce = unlimited;
  scarce.spare_nodes = 1;
  scarce.node_repair_hours = 2.0;
  double rec_unlimited = 0.0, rec_scarce = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    rec_unlimited += core::simulate_run(wd.setup(app, seed), unlimited)
                         .overheads.recovery_s;
    rec_scarce +=
        core::simulate_run(wd.setup(app, seed), scarce).overheads.recovery_s;
  }
  EXPECT_GT(rec_scarce, rec_unlimited * 3.0);
}

TEST(SparePool, ShorterRepairShrinksTheStall) {
  auto& wd = world();
  const auto& app = w::workload_by_name("CHIMERA");
  core::CrConfig slow;
  slow.kind = ModelKind::kB;
  slow.spare_nodes = 2;
  slow.node_repair_hours = 4.0;
  core::CrConfig fast = slow;
  fast.node_repair_hours = 0.5;
  const auto r_slow = core::simulate_run(wd.setup(app, 7), slow);
  const auto r_fast = core::simulate_run(wd.setup(app, 7), fast);
  EXPECT_LT(r_fast.overheads.recovery_s, r_slow.overheads.recovery_s);
  EXPECT_LT(r_fast.makespan_s, r_slow.makespan_s);
}

TEST(SparePool, HybridFallsBackToPckptWhenPoolIsDry) {
  // With no standing spares, LM never has a migration target at
  // prediction time (returning repairs are consumed by recoveries), so P2
  // leans on the p-ckpt path.
  auto& wd = world();
  const auto& app = w::workload_by_name("XGC");
  core::CrConfig p2;
  p2.kind = ModelKind::kP2;
  p2.spare_nodes = 0;
  p2.node_repair_hours = 1.0;
  const auto r = core::simulate_run(wd.setup(app, 11), p2);
  EXPECT_EQ(r.mitigated_lm, 0);
  EXPECT_GT(r.mitigated_ckpt, 0);
}

TEST(SparePool, M2WithoutSparesCannotMitigateAtAll) {
  auto& wd = world();
  const auto& app = w::workload_by_name("XGC");
  core::CrConfig m2;
  m2.kind = ModelKind::kM2;
  m2.spare_nodes = 0;
  m2.node_repair_hours = 1.0;
  const auto r = core::simulate_run(wd.setup(app, 11), m2);
  EXPECT_EQ(r.mitigated_lm, 0);
  EXPECT_EQ(r.mitigated_ckpt, 0);
  EXPECT_EQ(r.unhandled, r.failures);
}

TEST(SparePool, InfeasibleConfigurationFailsLoudly) {
  // Repairs far slower than the failure rate: the run cannot finish; the
  // makespan guard must throw instead of simulating forever.
  auto& wd = world();
  const auto& app = w::workload_by_name("CHIMERA");
  core::CrConfig cfg;
  cfg.kind = ModelKind::kB;
  cfg.spare_nodes = 1;
  cfg.node_repair_hours = 500.0;
  EXPECT_THROW(core::simulate_run(wd.setup(app, 7), cfg),
               std::runtime_error);
}

TEST(SparePool, IdentityInvariantHoldsWithFinitePool) {
  auto& wd = world();
  const auto& app = w::workload_by_name("CHIMERA");
  for (auto kind : {ModelKind::kB, ModelKind::kP2}) {
    core::CrConfig cfg;
    cfg.kind = kind;
    cfg.spare_nodes = 2;
    cfg.node_repair_hours = 6.0;
    const auto r = core::simulate_run(wd.setup(app, 13), cfg);
    EXPECT_NEAR(r.makespan_s, r.compute_s + r.overheads.total(),
                1e-6 * r.makespan_s);
  }
}

TEST(SparePool, ConfigValidation) {
  core::CrConfig cfg;
  cfg.spare_nodes = -2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.node_repair_hours = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.spare_nodes = 0;
  EXPECT_NO_THROW(cfg.validate());
}
