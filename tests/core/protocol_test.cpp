#include "core/protocol/coordinator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/protocol/node_state.hpp"

namespace p = pckpt::core::protocol;
using p::NodeState;

// ---------------------------------------------------------------------
// State machine (Fig. 5).
// ---------------------------------------------------------------------

TEST(NodeStateMachine, HappyPathsAreAllowed) {
  // Vulnerable node taking the p-ckpt path.
  p::NodeStateMachine vuln(0);
  vuln.transition(NodeState::kVulnerable);
  vuln.transition(NodeState::kPhase1Writing);
  vuln.transition(NodeState::kNormal);

  // Vulnerable node migrating away.
  p::NodeStateMachine lm(1);
  lm.transition(NodeState::kVulnerable);
  lm.transition(NodeState::kMigrating);
  lm.transition(NodeState::kMigrated);

  // Healthy node during a p-ckpt round.
  p::NodeStateMachine healthy(2);
  healthy.transition(NodeState::kWaiting);
  healthy.transition(NodeState::kPhase2Writing);
  healthy.transition(NodeState::kNormal);
}

TEST(NodeStateMachine, LmAbortEdgeExists) {
  // Fig. 5: LM in progress + shorter-lead prediction -> p-ckpt.
  p::NodeStateMachine m(0);
  m.transition(NodeState::kVulnerable);
  m.transition(NodeState::kMigrating);
  m.transition(NodeState::kPhase1Writing);
  EXPECT_EQ(m.state(), NodeState::kPhase1Writing);
}

TEST(NodeStateMachine, FailureReachableFromActiveStates) {
  for (auto from : {NodeState::kNormal, NodeState::kVulnerable,
                    NodeState::kMigrating, NodeState::kPhase1Writing,
                    NodeState::kWaiting, NodeState::kPhase2Writing}) {
    EXPECT_TRUE(p::transition_allowed(from, NodeState::kFailed))
        << p::to_string(from);
  }
}

TEST(NodeStateMachine, IllegalTransitionsThrow) {
  p::NodeStateMachine m(0);
  EXPECT_THROW(m.transition(NodeState::kPhase2Writing), std::logic_error);
  EXPECT_THROW(m.transition(NodeState::kMigrated), std::logic_error);
  m.transition(NodeState::kVulnerable);
  EXPECT_THROW(m.transition(NodeState::kWaiting), std::logic_error);
  m.transition(NodeState::kFailed);
  // Terminal.
  EXPECT_THROW(m.transition(NodeState::kNormal), std::logic_error);
}

TEST(NodeStateMachine, MigratedIsTerminal) {
  EXPECT_FALSE(p::transition_allowed(NodeState::kMigrated,
                                     NodeState::kNormal));
  EXPECT_FALSE(
      p::transition_allowed(NodeState::kMigrated, NodeState::kFailed));
}

// ---------------------------------------------------------------------
// Protocol round.
// ---------------------------------------------------------------------

namespace {
p::ProtocolConfig chimera_like(int nodes = 64) {
  p::ProtocolConfig cfg;
  cfg.nodes = nodes;
  cfg.per_node_gb = 284.5;
  cfg.single_node_bw_gbps = 13.4;
  cfg.aggregate_bw_gbps = 1400.0;
  return cfg;
}
}  // namespace

TEST(ProtocolRound, BroadcastLatencyMatchesSummitAnchor) {
  p::ProtocolConfig cfg;
  cfg.nodes = 2048;
  cfg.per_node_gb = 1.0;
  EXPECT_NEAR(cfg.broadcast_seconds(), 8e-6, 1e-7);  // ~8 us at 2048 nodes
}

TEST(ProtocolRound, SingleVulnerableCommitsInPhase1) {
  const auto cfg = chimera_like();
  const auto r = p::simulate_round(cfg, {{5, 0.0, 60.0}});
  ASSERT_EQ(r.outcomes.size(), 1u);
  EXPECT_TRUE(r.outcomes[0].mitigated);
  // Phase-1 write = 284.5 / 13.4 ~= 21.2 s (plus ~us of coordination).
  EXPECT_NEAR(r.outcomes[0].commit_s, 21.23, 0.1);
  EXPECT_EQ(r.commit_order, (std::vector<int>{5}));
  EXPECT_EQ(r.mitigated, 1u);
}

TEST(ProtocolRound, ShortLeadMissesDeadline) {
  const auto cfg = chimera_like();
  const auto r = p::simulate_round(cfg, {{5, 0.0, 10.0}});
  EXPECT_FALSE(r.outcomes[0].mitigated);
  EXPECT_EQ(r.mitigated, 0u);
  EXPECT_GT(r.outcomes[0].commit_s, 10.0);  // committed, but too late
}

TEST(ProtocolRound, LeadTimePriorityOrdersByDeadline) {
  const auto cfg = chimera_like();
  // Three simultaneous predictions; deadlines reversed vs node ids.
  const auto r = p::simulate_round(
      cfg, {{1, 0.0, 100.0}, {2, 0.0, 50.0}, {3, 0.0, 26.0}});
  EXPECT_EQ(r.commit_order, (std::vector<int>{3, 2, 1}));
  // Node 3 (26 s lead) only survives BECAUSE it went first (one write is
  // ~21.2 s; second place would commit at ~42 s).
  EXPECT_TRUE(r.outcomes[2].mitigated);
  EXPECT_EQ(r.mitigated, 3u);  // 21.2 < 26, 42.5 < 50, 63.7 < 100
}

TEST(ProtocolRound, FifoPolicySacrificesUrgentNode) {
  auto cfg = chimera_like();
  cfg.policy = p::QueuePolicy::kFifo;
  const auto r = p::simulate_round(
      cfg, {{1, 0.0, 100.0}, {2, 0.0, 50.0}, {3, 0.0, 26.0}});
  EXPECT_EQ(r.commit_order, (std::vector<int>{1, 2, 3}));
  // Node 3 commits third at ~63.7 s > 26 s deadline: unmitigated.
  EXPECT_FALSE(r.outcomes[2].mitigated);
  EXPECT_EQ(r.mitigated, 2u);
}

TEST(ProtocolRound, LifoIsWorseThanFifoHere) {
  auto cfg = chimera_like();
  cfg.policy = p::QueuePolicy::kLifo;
  const auto r = p::simulate_round(
      cfg, {{1, 0.0, 24.0}, {2, 0.0, 50.0}, {3, 0.0, 100.0}});
  // LIFO serves node 3 first; node 1 (urgent, arrived first) dies.
  EXPECT_EQ(r.commit_order.front(), 3);
  EXPECT_FALSE(r.outcomes[0].mitigated);
}

TEST(ProtocolRound, MidRoundArrivalJoinsQueue) {
  const auto cfg = chimera_like();
  // Second prediction lands 5 s into the first node's write, with an
  // urgent deadline; it is served next (phase 1 still running).
  const auto r = p::simulate_round(cfg, {{1, 0.0, 30.0}, {2, 5.0, 45.0}});
  EXPECT_EQ(r.commit_order, (std::vector<int>{1, 2}));
  EXPECT_TRUE(r.outcomes[0].mitigated);
  EXPECT_TRUE(r.outcomes[1].mitigated);  // commits ~42.5 < 5+45
}

TEST(ProtocolRound, LateArrivalFoldsIntoPhase2) {
  const auto cfg = chimera_like();
  // Arrival far after phase 1 ends (~21.2 s): committed with the bulk
  // write instead.
  const auto r = p::simulate_round(cfg, {{1, 0.0, 30.0}, {2, 30.0, 60.0}});
  ASSERT_EQ(r.commit_order.size(), 2u);
  EXPECT_EQ(r.commit_order[0], 1);
  EXPECT_EQ(r.commit_order[1], 2);
  EXPECT_GT(r.outcomes[1].commit_s, r.phase1_s);
}

TEST(ProtocolRound, CoordinationCostIsNegligible) {
  // The paper's Sec. VI claim: broadcasts/barriers are microseconds while
  // writes are seconds.
  const auto cfg = chimera_like(2048);
  const auto r = p::simulate_round(cfg, {{7, 0.0, 60.0}});
  EXPECT_LT(r.coordination_s, 1e-4);
  EXPECT_GT(r.total_s, 20.0);
  EXPECT_LT(r.coordination_s / r.total_s, 1e-5);
}

TEST(ProtocolRound, PhaseDurationsAddUp) {
  const auto cfg = chimera_like(128);
  const auto r = p::simulate_round(cfg, {{0, 0.0, 60.0}, {1, 0.0, 90.0}});
  EXPECT_NEAR(r.total_s,
              r.phase1_s + r.phase2_s + r.coordination_s, 1e-9);
  // Phase 2 moves (nodes - 2) * per_node at the aggregate bandwidth.
  EXPECT_NEAR(r.phase2_s, 126.0 * 284.5 / 1400.0, 1e-6);
}

TEST(ProtocolRound, AllHealthyNodesWalkTheStateMachine) {
  const auto cfg = chimera_like(32);
  const auto r = p::simulate_round(cfg, {{0, 0.0, 60.0}});
  // 31 healthy nodes x 3 transitions + vulnerable x 3 = 96.
  EXPECT_EQ(r.transitions, 31u * 3u + 3u);
}

TEST(ProtocolRound, Validation) {
  auto cfg = chimera_like();
  EXPECT_THROW(p::simulate_round(cfg, {}), std::invalid_argument);
  EXPECT_THROW(p::simulate_round(cfg, {{-1, 0.0, 5.0}}),
               std::invalid_argument);
  EXPECT_THROW(p::simulate_round(cfg, {{99999, 0.0, 5.0}}),
               std::invalid_argument);
  EXPECT_THROW(p::simulate_round(cfg, {{1, 0.0, 5.0}, {1, 0.0, 9.0}}),
               std::invalid_argument);
  EXPECT_THROW(p::simulate_round(cfg, {{1, -1.0, 5.0}}),
               std::invalid_argument);
  cfg.nodes = 0;
  EXPECT_THROW(p::simulate_round(cfg, {{0, 0.0, 5.0}}),
               std::invalid_argument);
}
