#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "exec/thread_pool.hpp"
#include "failure/lead_time_model.hpp"
#include "failure/system_catalog.hpp"
#include "random/rng.hpp"
#include "stats/summary.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace core = pckpt::core;
namespace exec = pckpt::exec;
namespace w = pckpt::workload;
namespace f = pckpt::failure;
namespace stats = pckpt::stats;
namespace rnd = pckpt::rnd;
using core::ModelKind;

namespace {

/// Shared fixture environment (built once: the PFS matrix is not free).
struct World {
  w::Machine machine = w::summit();
  pckpt::iomodel::StorageModel storage = machine.make_storage();
  f::LeadTimeModel leads = f::LeadTimeModel::summit_default();
  const f::FailureSystem& titan = f::system_by_name("titan");

  core::RunSetup setup(const w::Application& app) {
    core::RunSetup s;
    s.app = &app;
    s.machine = &machine;
    s.storage = &storage;
    s.system = &titan;
    s.leads = &leads;
    return s;
  }
};

World& world() {
  static World w;
  return w;
}

core::CrConfig config_for(ModelKind kind) {
  core::CrConfig cfg;
  cfg.kind = kind;
  return cfg;
}

bool stats_identical(const stats::OnlineStats& a, const stats::OnlineStats& b) {
  return a.count() == b.count() && a.mean() == b.mean() &&
         a.variance() == b.variance() && a.min() == b.min() &&
         a.max() == b.max();
}

void expect_identical(const core::CampaignResult& a,
                      const core::CampaignResult& b) {
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_TRUE(stats_identical(a.checkpoint_s, b.checkpoint_s));
  EXPECT_TRUE(stats_identical(a.recomputation_s, b.recomputation_s));
  EXPECT_TRUE(stats_identical(a.recovery_s, b.recovery_s));
  EXPECT_TRUE(stats_identical(a.migration_s, b.migration_s));
  EXPECT_TRUE(stats_identical(a.total_overhead_s, b.total_overhead_s));
  EXPECT_TRUE(stats_identical(a.makespan_s, b.makespan_s));
  EXPECT_TRUE(stats_identical(a.ft_ratio, b.ft_ratio));
  EXPECT_TRUE(stats_identical(a.mean_oci_s, b.mean_oci_s));
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.predicted, b.predicted);
  EXPECT_EQ(a.mitigated_ckpt, b.mitigated_ckpt);
  EXPECT_EQ(a.mitigated_lm, b.mitigated_lm);
  EXPECT_EQ(a.unhandled, b.unhandled);
  EXPECT_EQ(a.false_positives, b.false_positives);
}

constexpr std::size_t kRuns = 40;
constexpr std::uint64_t kSeed = 2022;

}  // namespace

// ---------------------------------------------------------------------
// CampaignResult::merge.
// ---------------------------------------------------------------------

TEST(CampaignMerge, TwoShardsEqualOneBigShard) {
  auto& wd = world();
  const auto setup = wd.setup(w::summit_workloads()[0]);
  const auto cfg = config_for(ModelKind::kP2);

  const auto whole = core::run_campaign_shard(setup, cfg, 0, kRuns, kSeed);
  auto merged = core::run_campaign_shard(setup, cfg, 0, 17, kSeed);
  merged.merge(core::run_campaign_shard(setup, cfg, 17, kRuns, kSeed));

  // Trial seeds key on the global index, so the split point is invisible
  // to everything except Welford rounding; counts and extrema are exact.
  EXPECT_EQ(merged.runs, whole.runs);
  EXPECT_EQ(merged.failures, whole.failures);
  EXPECT_EQ(merged.predicted, whole.predicted);
  EXPECT_EQ(merged.mitigated_ckpt, whole.mitigated_ckpt);
  EXPECT_EQ(merged.mitigated_lm, whole.mitigated_lm);
  EXPECT_EQ(merged.unhandled, whole.unhandled);
  EXPECT_EQ(merged.false_positives, whole.false_positives);
  EXPECT_EQ(merged.total_overhead_s.count(), whole.total_overhead_s.count());
  EXPECT_EQ(merged.total_overhead_s.min(), whole.total_overhead_s.min());
  EXPECT_EQ(merged.total_overhead_s.max(), whole.total_overhead_s.max());
  EXPECT_NEAR(merged.total_overhead_s.mean(), whole.total_overhead_s.mean(),
              1e-12 * std::abs(whole.total_overhead_s.mean()));
  EXPECT_NEAR(merged.makespan_s.variance(), whole.makespan_s.variance(),
              1e-9 * std::abs(whole.makespan_s.variance()) + 1e-12);
}

TEST(CampaignMerge, EmptyIntoEmptyStaysEmpty) {
  core::CampaignResult a, b;
  a.merge(b);
  EXPECT_EQ(a.runs, 0u);
  EXPECT_EQ(a.failures, 0.0);
  EXPECT_EQ(a.failures_per_run(), 0.0);
  EXPECT_EQ(a.pooled_ft_ratio(), 0.0);
}

TEST(CampaignMerge, EmptyAdoptsNonEmpty) {
  auto& wd = world();
  const auto setup = wd.setup(w::summit_workloads()[0]);
  const auto shard =
      core::run_campaign_shard(setup, config_for(ModelKind::kM1), 0, 8, kSeed);

  core::CampaignResult agg;
  agg.merge(shard);
  expect_identical(agg, shard);

  // And merging an empty shard into a populated one is a no-op.
  core::CampaignResult empty;
  auto copy = shard;
  copy.merge(empty);
  expect_identical(copy, shard);
}

TEST(CampaignResult, PerRunAccessorsNormalizeTotals) {
  core::CampaignResult r;
  r.runs = 8;
  r.failures = 20.0;
  r.predicted = 12.0;
  r.mitigated_ckpt = 6.0;
  r.mitigated_lm = 4.0;
  r.unhandled = 10.0;
  r.false_positives = 2.0;
  EXPECT_DOUBLE_EQ(r.failures_per_run(), 2.5);
  EXPECT_DOUBLE_EQ(r.predicted_per_run(), 1.5);
  EXPECT_DOUBLE_EQ(r.mitigated_ckpt_per_run(), 0.75);
  EXPECT_DOUBLE_EQ(r.mitigated_lm_per_run(), 0.5);
  EXPECT_DOUBLE_EQ(r.unhandled_per_run(), 1.25);
  EXPECT_DOUBLE_EQ(r.false_positives_per_run(), 0.25);
  // Pooled ratios divide totals by totals — no run-count involvement.
  EXPECT_DOUBLE_EQ(r.pooled_ft_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(r.lm_minus_pckpt_ft(), -0.1);
}

// ---------------------------------------------------------------------
// Determinism across executors and thread counts.
// ---------------------------------------------------------------------

TEST(CampaignDeterminism, SerialOverloadMatchesExplicitSerialExecutor) {
  auto& wd = world();
  const auto setup = wd.setup(w::summit_workloads()[0]);
  const auto cfg = config_for(ModelKind::kP1);

  const auto implicit = core::run_campaign(setup, cfg, kRuns, kSeed);
  exec::SerialExecutor serial;
  const auto explicit_serial =
      core::run_campaign(setup, cfg, kRuns, kSeed, serial);
  expect_identical(implicit, explicit_serial);
}

TEST(CampaignDeterminism, BitIdenticalAcrossThreadCounts) {
  auto& wd = world();
  const auto setup = wd.setup(w::summit_workloads()[0]);
  const auto cfg = config_for(ModelKind::kP2);

  const auto reference = core::run_campaign(setup, cfg, kRuns, kSeed);
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2},
                                 std::size_t{7}, std::size_t{16}}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    exec::ThreadPool pool(jobs);
    exec::ThreadPoolExecutor ex(pool);
    const auto r = core::run_campaign(setup, cfg, kRuns, kSeed, ex);
    expect_identical(reference, r);
  }
}

TEST(CampaignDeterminism, ComparisonBitIdenticalAcrossThreadCounts) {
  auto& wd = world();
  const auto setup = wd.setup(w::summit_workloads()[0]);
  const std::vector<core::CrConfig> configs = {
      config_for(ModelKind::kB), config_for(ModelKind::kM2),
      config_for(ModelKind::kP2)};

  const auto reference =
      core::run_model_comparison(setup, configs, kRuns, kSeed);
  ASSERT_EQ(reference.size(), configs.size());
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{7}}) {
    SCOPED_TRACE("jobs=" + std::to_string(jobs));
    exec::ThreadPool pool(jobs);
    exec::ThreadPoolExecutor ex(pool);
    const auto rs = core::run_model_comparison(setup, configs, kRuns, kSeed, ex);
    ASSERT_EQ(rs.size(), reference.size());
    for (std::size_t i = 0; i < rs.size(); ++i) {
      expect_identical(reference[i], rs[i]);
    }
  }
}

TEST(CampaignDeterminism, ComparisonMatchesIndividualCampaigns) {
  auto& wd = world();
  const auto setup = wd.setup(w::summit_workloads()[0]);
  const std::vector<core::CrConfig> configs = {config_for(ModelKind::kB),
                                               config_for(ModelKind::kP2)};
  const auto rs = core::run_model_comparison(setup, configs, kRuns, kSeed);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto solo = core::run_campaign(setup, configs[i], kRuns, kSeed);
    expect_identical(rs[i], solo);
  }
}

TEST(CampaignDeterminism, ChunkedMergeTracksUnchunkedAccumulation) {
  // The chunked Welford merge is not bit-identical to a single-pass
  // accumulation over all trials, but it must agree to ~1e-12 relative —
  // the engine's documented numerical contract (docs/EXECUTION.md).
  auto& wd = world();
  const auto& app = w::summit_workloads()[0];
  const auto setup = wd.setup(app);
  const auto cfg = config_for(ModelKind::kP2);

  stats::OnlineStats total_s, makespan_s;
  double failures = 0.0;
  for (std::size_t i = 0; i < kRuns; ++i) {
    core::RunSetup s = setup;
    s.seed = rnd::derive_seed(kSeed, i);
    const auto r = core::simulate_run(s, cfg);
    total_s.add(r.overheads.total());
    makespan_s.add(r.makespan_s);
    failures += r.failures;
  }

  const auto engine = core::run_campaign(setup, cfg, kRuns, kSeed);
  EXPECT_EQ(engine.failures, failures);  // integer totals stay exact
  EXPECT_NEAR(engine.total_overhead_s.mean(), total_s.mean(),
              1e-12 * std::abs(total_s.mean()));
  EXPECT_NEAR(engine.makespan_s.mean(), makespan_s.mean(),
              1e-12 * std::abs(makespan_s.mean()));
  EXPECT_NEAR(engine.makespan_s.variance(), makespan_s.variance(),
              1e-9 * std::abs(makespan_s.variance()) + 1e-12);
}

TEST(CampaignDeterminism, ProgressHookReportsEveryTrial) {
  auto& wd = world();
  const auto setup = wd.setup(w::summit_workloads()[0]);
  exec::ThreadPool pool(2);
  exec::ThreadPoolExecutor ex(pool);

  std::size_t calls = 0;
  std::size_t final_items = 0;
  std::mutex m;
  core::run_campaign(setup, config_for(ModelKind::kB), kRuns, kSeed, ex,
                     [&](const exec::ShardProgress& p) {
                       std::lock_guard<std::mutex> lock(m);
                       ++calls;
                       final_items = std::max(final_items, p.items_done);
                     });
  EXPECT_EQ(calls, exec::plan_shards(kRuns).count());
  EXPECT_EQ(final_items, kRuns);
}
