#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace core = pckpt::core;

namespace {

constexpr const char* kFullConfig = R"(
# A full scenario (Fig. 3's configuration-file input).
[machine]
name = MiniSummit
total_nodes = 1024
dram_gb = 256
interconnect_gbps = 10
bb_write_gbps = 2.0
bb_read_gbps = 5.0
bb_capacity_gb = 800
pfs_ceiling_gbps = 900

[application alpha]
nodes = 512
ckpt_total_gb = 20000
compute_hours = 120

[application beta]
name = BETA-RENAMED
nodes = 64
ckpt_total_gb = 50.5      ; inline comment
compute_hours = 240

[failure_system]
name = testsys
weibull_shape = 0.75
weibull_scale_hours = 20
total_nodes = 4096

[predictor]
recall = 0.9
false_positive_rate = 0.1
lead_scale = 1.5
lead_error_sigma = 0.25

[cr]
model = P2
lm_transfer_factor = 2.5
spare_nodes = 4
node_repair_hours = 6
rate_estimation = observed
)";

}  // namespace

TEST(ConfigFile, ParsesSectionsAndKeys) {
  const auto cfg = core::ConfigFile::parse(kFullConfig);
  EXPECT_TRUE(cfg.has_section("machine"));
  EXPECT_TRUE(cfg.has_section("APPLICATION ALPHA"));  // case-insensitive
  EXPECT_EQ(cfg.get_string("machine", "name"), "MiniSummit");
  EXPECT_EQ(cfg.get_int("machine", "total_nodes"), 1024);
  EXPECT_DOUBLE_EQ(cfg.get_double("application beta", "ckpt_total_gb"),
                   50.5);
}

TEST(ConfigFile, CommentsAndWhitespaceAreIgnored) {
  const auto cfg = core::ConfigFile::parse(
      "  [s]  \n  a =  1  # trailing\n; full-line comment\nb=2\n");
  EXPECT_EQ(cfg.get_int("s", "a"), 1);
  EXPECT_EQ(cfg.get_int("s", "b"), 2);
}

TEST(ConfigFile, OptionalAccessors) {
  const auto cfg = core::ConfigFile::parse("[s]\na = 3\n");
  EXPECT_EQ(cfg.get_int_or("s", "a", 9), 3);
  EXPECT_EQ(cfg.get_int_or("s", "missing", 9), 9);
  EXPECT_DOUBLE_EQ(cfg.get_double_or("nosection", "x", 1.5), 1.5);
  EXPECT_EQ(cfg.get_string_or("s", "missing", "dflt"), "dflt");
  EXPECT_FALSE(cfg.find("s", "missing").has_value());
}

TEST(ConfigFile, MalformedInputReportsLineNumbers) {
  try {
    core::ConfigFile::parse("[ok]\nkey_without_value\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(core::ConfigFile::parse("[unterminated\n"),
               std::invalid_argument);
  EXPECT_THROW(core::ConfigFile::parse("orphan = 1\n"), std::invalid_argument);
  EXPECT_THROW(core::ConfigFile::parse("[]\n"), std::invalid_argument);
  EXPECT_THROW(core::ConfigFile::parse("[s]\n= v\n"), std::invalid_argument);
}

TEST(ConfigFile, NumericValidation) {
  const auto cfg = core::ConfigFile::parse("[s]\na = 1.5x\nb = 1.5\n");
  EXPECT_THROW(cfg.get_double("s", "a"), std::invalid_argument);
  EXPECT_THROW(cfg.get_int("s", "b"), std::invalid_argument);  // not integral
  EXPECT_THROW(cfg.get_string("s", "zzz"), std::out_of_range);
}

TEST(Scenario, FullRoundTrip) {
  const auto sc = core::load_scenario(core::ConfigFile::parse(kFullConfig));
  EXPECT_EQ(sc.machine.name, "MiniSummit");
  EXPECT_EQ(sc.machine.total_nodes, 1024);
  EXPECT_DOUBLE_EQ(sc.machine.dram_gb, 256.0);
  EXPECT_DOUBLE_EQ(sc.machine.burst_buffer.write_gbps, 2.0);
  EXPECT_DOUBLE_EQ(sc.machine.io.pfs_ceiling_gbps, 900.0);

  ASSERT_EQ(sc.applications.size(), 2u);
  EXPECT_EQ(sc.applications[0].name, "alpha");
  EXPECT_EQ(sc.applications[0].nodes, 512);
  EXPECT_EQ(sc.applications[1].name, "BETA-RENAMED");

  EXPECT_EQ(sc.system.name, "testsys");
  EXPECT_DOUBLE_EQ(sc.system.weibull_shape, 0.75);

  EXPECT_DOUBLE_EQ(sc.cr.predictor.recall, 0.9);
  EXPECT_DOUBLE_EQ(sc.cr.predictor.lead_error_sigma, 0.25);
  EXPECT_EQ(sc.cr.kind, core::ModelKind::kP2);
  EXPECT_DOUBLE_EQ(sc.cr.lm_transfer_factor, 2.5);
  EXPECT_EQ(sc.cr.spare_nodes, 4);
  EXPECT_EQ(sc.cr.rate_estimation, core::RateEstimation::kObserved);
}

TEST(Scenario, DefaultsWhenSectionsOmitted) {
  const auto sc = core::load_scenario(core::ConfigFile::parse(
      "[application x]\nnodes = 10\nckpt_total_gb = 5\ncompute_hours = 1\n"));
  EXPECT_EQ(sc.machine.name, "Summit");
  EXPECT_EQ(sc.system.name, "OLCF Titan");
  EXPECT_EQ(sc.cr.kind, core::ModelKind::kB);
  EXPECT_DOUBLE_EQ(sc.cr.predictor.recall, 0.85);
}

TEST(Scenario, FailureSystemPreset) {
  const auto sc = core::load_scenario(core::ConfigFile::parse(
      "[application x]\nnodes = 10\nckpt_total_gb = 5\ncompute_hours = 1\n"
      "[failure_system]\npreset = lanl18\n"));
  EXPECT_EQ(sc.system.name, "LANL System 18");
}

TEST(Scenario, RequiresAnApplication) {
  EXPECT_THROW(core::load_scenario(core::ConfigFile::parse("[machine]\n")),
               std::invalid_argument);
}

TEST(Scenario, RejectsBadApplication) {
  EXPECT_THROW(
      core::load_scenario(core::ConfigFile::parse(
          "[application x]\nnodes = 0\nckpt_total_gb = 5\ncompute_hours = 1\n")),
      std::invalid_argument);
}

TEST(Scenario, RejectsBadFailureSystem) {
  EXPECT_THROW(
      core::load_scenario(core::ConfigFile::parse(
          "[application x]\nnodes = 1\nckpt_total_gb = 5\ncompute_hours = 1\n"
          "[failure_system]\nweibull_shape = -1\nweibull_scale_hours = 5\n"
          "total_nodes = 10\n")),
      std::invalid_argument);
}

TEST(ConfigFile, LoadMissingFileThrows) {
  EXPECT_THROW(core::ConfigFile::load("/nonexistent/path.ini"),
               std::runtime_error);
}
