// obs::RuntimeLog suite: byte-stable NDJSON format under an injected
// clock, monotonic seq assignment, level filtering (including the
// drop-before-render contract), and the append-mode file sink.

#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/runtime_log.hpp"

using pckpt::obs::LogLevel;
using pckpt::obs::RuntimeLog;

namespace {

/// A log routed to a temp file so the suite can read the bytes back.
class FileLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/pckpt_runtime_log_" + std::to_string(::getpid()) + ".ndjson";
    ::unlink(path_.c_str());
  }
  void TearDown() override { ::unlink(path_.c_str()); }

  std::vector<std::string> lines() const {
    std::ifstream in(path_);
    std::vector<std::string> out;
    std::string line;
    while (std::getline(in, line)) out.push_back(line);
    return out;
  }

  std::string path_;
};

TEST_F(FileLogTest, RecordBytesAreStableUnderInjectedClock) {
  RuntimeLog log(LogLevel::kInfo);
  ASSERT_TRUE(log.open_file(path_));
  log.set_clock([] { return std::uint64_t{1234}; });
  log.info("serve", "serve.start")
      .add("socket", "/tmp/s.sock")
      .add("records", std::uint64_t{7});
  const auto ls = lines();
  ASSERT_EQ(ls.size(), 1u);
  EXPECT_EQ(ls[0],
            "{\"ts_ms\":1234,\"seq\":0,\"level\":\"info\","
            "\"component\":\"serve\",\"event\":\"serve.start\","
            "\"socket\":\"/tmp/s.sock\",\"records\":7}");
}

TEST_F(FileLogTest, SeqIsMonotonicAcrossRecords) {
  RuntimeLog log(LogLevel::kDebug);
  ASSERT_TRUE(log.open_file(path_));
  log.set_clock([] { return std::uint64_t{0}; });
  for (int i = 0; i < 5; ++i) log.debug("t", "tick").add("i", i);
  EXPECT_EQ(log.records(), 5u);
  const auto ls = lines();
  ASSERT_EQ(ls.size(), 5u);
  for (std::size_t i = 0; i < ls.size(); ++i) {
    const std::string want = "\"seq\":" + std::to_string(i) + ",";
    EXPECT_NE(ls[i].find(want), std::string::npos) << ls[i];
  }
}

TEST_F(FileLogTest, RecordsBelowMinLevelAreDropped) {
  RuntimeLog log(LogLevel::kWarn);
  ASSERT_TRUE(log.open_file(path_));
  log.set_clock([] { return std::uint64_t{0}; });
  log.debug("t", "a");
  log.info("t", "b");
  log.warn("t", "c");
  log.error("t", "d");
  const auto ls = lines();
  ASSERT_EQ(ls.size(), 2u);
  EXPECT_NE(ls[0].find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(ls[1].find("\"level\":\"error\""), std::string::npos);
  // Dropped records consume no sequence numbers: the surviving pair is
  // seq 0 and 1, and the counter agrees.
  EXPECT_NE(ls[0].find("\"seq\":0,"), std::string::npos);
  EXPECT_NE(ls[1].find("\"seq\":1,"), std::string::npos);
  EXPECT_EQ(log.records(), 2u);
}

TEST_F(FileLogTest, FilteredBuilderIsInertAndCheap) {
  RuntimeLog log(LogLevel::kError);
  ASSERT_TRUE(log.open_file(path_));
  EXPECT_FALSE(log.enabled(LogLevel::kInfo));
  auto rec = log.info("t", "dropped");
  rec.add("k", 1).add("s", "v");
  rec.commit();
  rec.commit();  // idempotent on a dead builder
  EXPECT_EQ(log.records(), 0u);
  EXPECT_TRUE(lines().empty());
}

TEST_F(FileLogTest, FileSinkAppendsAcrossReopen) {
  {
    RuntimeLog log(LogLevel::kInfo);
    ASSERT_TRUE(log.open_file(path_));
    log.set_clock([] { return std::uint64_t{1}; });
    log.info("t", "first");
  }
  {
    RuntimeLog log(LogLevel::kInfo);
    ASSERT_TRUE(log.open_file(path_));
    log.set_clock([] { return std::uint64_t{2}; });
    log.info("t", "second");
  }
  const auto ls = lines();
  ASSERT_EQ(ls.size(), 2u);
  EXPECT_NE(ls[0].find("\"event\":\"first\""), std::string::npos);
  EXPECT_NE(ls[1].find("\"event\":\"second\""), std::string::npos);
  // Each logger restarts its own seq; append order still totals the file.
  EXPECT_NE(ls[1].find("\"seq\":0,"), std::string::npos);
}

TEST(RuntimeLogLevels, ParseAndToStringRoundTrip) {
  for (const char* name : {"debug", "info", "warn", "error"}) {
    LogLevel level{};
    ASSERT_TRUE(pckpt::obs::parse_log_level(name, level)) << name;
    EXPECT_EQ(pckpt::obs::to_string(level), name);
  }
  LogLevel level{};
  EXPECT_FALSE(pckpt::obs::parse_log_level("verbose", level));
  EXPECT_FALSE(pckpt::obs::parse_log_level("", level));
}

TEST(RuntimeLogLevels, OpenFileFailureLeavesSinkUsable) {
  RuntimeLog log(LogLevel::kInfo);
  EXPECT_FALSE(log.open_file("/no/such/dir/x.ndjson"));
  // Still emits (to stderr) without crashing; records() advances.
  log.set_clock([] { return std::uint64_t{0}; });
  log.set_min_level(LogLevel::kError);  // keep test output quiet
  log.info("t", "suppressed");
  EXPECT_EQ(log.records(), 0u);
}

}  // namespace
