// Bench-telemetry suite (src/obs/bench_json.hpp): pckpt-bench/1 documents
// round-trip through the writer and parser, metric direction and
// tolerance rules behave as documented, and the bench_report driver
// returns the contractual exit codes (0 ok / 1 regression / 2 usage or
// parse error) over fixture files.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_json.hpp"

namespace {

namespace fs = std::filesystem;
using pckpt::obs::BenchDoc;
using pckpt::obs::BenchJsonWriter;
using pckpt::obs::compare_bench;
using pckpt::obs::higher_is_better;
using pckpt::obs::is_informational;
using pckpt::obs::parse_bench_json;
using pckpt::obs::run_bench_report;

class BenchReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("pckpt_bench_report_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string write_doc(const std::string& name, double trials_per_s,
                        double wall_s, const fs::path& subdir = {}) {
    BenchJsonWriter w("fixture");
    w.add_config("runs", 100.0);
    w.add_config("system", "titan");
    w.add_metric("trials_per_s", trials_per_s);
    w.add_metric("wall_s", wall_s);
    const fs::path base = subdir.empty() ? dir_ : dir_ / subdir;
    fs::create_directories(base);
    const std::string path = (base / name).string();
    w.write(path);
    return path;
  }

  int report(std::vector<std::string> args) {
    out_.str("");
    err_.str("");
    return run_bench_report(args, out_, err_);
  }

  fs::path dir_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST(BenchJson, WriterParserRoundTrip) {
  BenchJsonWriter w("roundtrip");
  w.add_config("runs", 500.0);
  w.add_config("system", "titan");
  w.add_metric("trials_per_s", 1234.5);
  w.add_metric("wall_s", 0.405);
  const BenchDoc doc = parse_bench_json(w.str());
  EXPECT_EQ(doc.schema, "pckpt-bench/1");
  EXPECT_EQ(doc.bench, "roundtrip");
  EXPECT_FALSE(doc.git_rev.empty());
  EXPECT_EQ(doc.config.at("runs"), "500");
  EXPECT_EQ(doc.config.at("system"), "titan");
  EXPECT_DOUBLE_EQ(doc.metrics.at("trials_per_s"), 1234.5);
  EXPECT_DOUBLE_EQ(doc.metrics.at("wall_s"), 0.405);
}

TEST(BenchJson, ParserRejectsGarbageAndWrongSchema) {
  EXPECT_THROW(parse_bench_json("not json"), std::runtime_error);
  EXPECT_THROW(parse_bench_json("{\"metrics\": {}}"), std::runtime_error);
  EXPECT_THROW(
      parse_bench_json("{\"schema\": \"pckpt-bench/999\", \"metrics\": {}}"),
      std::runtime_error);
  EXPECT_THROW(
      parse_bench_json("{\"schema\": \"pckpt-bench/1\"}"),  // no metrics
      std::runtime_error);
  EXPECT_THROW(parse_bench_json("{\"schema\": \"pckpt-bench/1\", "
                                "\"metrics\": {\"x\": \"oops\"}}"),
               std::runtime_error);
  // Trailing junk after the document is a parse error, not ignored.
  EXPECT_THROW(parse_bench_json("{\"schema\": \"pckpt-bench/1\", "
                                "\"metrics\": {}} extra"),
               std::runtime_error);
}

TEST(BenchJson, DirectionConvention) {
  EXPECT_TRUE(higher_is_better("trials_per_s"));
  EXPECT_TRUE(higher_is_better("serial.trials_per_s.median"));
  EXPECT_TRUE(higher_is_better("hit_rate"));
  EXPECT_TRUE(higher_is_better("speedup"));
  EXPECT_TRUE(higher_is_better("speedup.median"));
  EXPECT_FALSE(higher_is_better("wall_s"));
  EXPECT_FALSE(higher_is_better("BM_FullRun/2.real_us.median"));
  EXPECT_FALSE(higher_is_better("peak_rss_kb"));
  EXPECT_TRUE(is_informational("serial.trials_per_s.stddev"));
  EXPECT_FALSE(is_informational("serial.trials_per_s.median"));
}

TEST(BenchJson, CompareAppliesToleranceAndDirection) {
  BenchDoc base, cur;
  base.metrics["trials_per_s"] = 1000.0;
  base.metrics["wall_s"] = 1.0;
  base.metrics["trials_per_s.stddev"] = 5.0;
  // 5% slower throughput, 5% more wall, stddev doubled.
  cur.metrics["trials_per_s"] = 950.0;
  cur.metrics["wall_s"] = 1.05;
  cur.metrics["trials_per_s.stddev"] = 10.0;

  EXPECT_FALSE(compare_bench(base, cur, 0.10).regression);  // within 10%
  const auto tight = compare_bench(base, cur, 0.02);        // beyond 2%
  EXPECT_TRUE(tight.regression);
  int regressed = 0;
  for (const auto& d : tight.deltas) regressed += d.regressed ? 1 : 0;
  EXPECT_EQ(regressed, 2);  // both gated metrics, never the stddev

  // Improvements never regress, whatever the tolerance.
  BenchDoc faster = cur;
  faster.metrics["trials_per_s"] = 2000.0;
  faster.metrics["wall_s"] = 0.5;
  faster.metrics["trials_per_s.stddev"] = 0.1;
  EXPECT_FALSE(compare_bench(base, faster, 0.0).regression);
}

TEST(BenchJson, VanishedMetricRegressesNewMetricDoesNot) {
  BenchDoc base, cur;
  base.metrics["wall_s"] = 1.0;
  base.metrics["old_only"] = 2.0;
  cur.metrics["wall_s"] = 1.0;
  cur.metrics["new_only"] = 3.0;
  const auto cmp = compare_bench(base, cur, 0.10);
  EXPECT_TRUE(cmp.regression);
  ASSERT_EQ(cmp.only_baseline.size(), 1u);
  EXPECT_EQ(cmp.only_baseline[0], "old_only");
  ASSERT_EQ(cmp.only_current.size(), 1u);
  EXPECT_EQ(cmp.only_current[0], "new_only");
}

TEST(BenchJson, CompareFlagsConfigChanges) {
  BenchDoc base, cur;
  base.config["runs"] = "100";
  cur.config["runs"] = "500";
  base.metrics["wall_s"] = 1.0;
  cur.metrics["wall_s"] = 1.0;
  const auto cmp = compare_bench(base, cur, 0.10);
  ASSERT_EQ(cmp.config_changes.size(), 1u);
  EXPECT_EQ(cmp.config_changes[0], "runs: 100 -> 500");
  EXPECT_FALSE(cmp.regression);  // advisory, not a gate
}

TEST_F(BenchReportTest, ExitZeroWhenWithinTolerance) {
  const auto base = write_doc("BENCH_a.json", 1000.0, 1.0);
  const auto cur = write_doc("BENCH_b.json", 980.0, 1.01);
  EXPECT_EQ(report({base, cur}), 0);
  EXPECT_NE(out_.str().find("no regression"), std::string::npos);
}

TEST_F(BenchReportTest, ExitOneOnRegressionAndZeroWarnOnly) {
  const auto base = write_doc("BENCH_a.json", 1000.0, 1.0);
  const auto cur = write_doc("BENCH_b.json", 500.0, 2.0);
  EXPECT_EQ(report({base, cur}), 1);
  EXPECT_NE(out_.str().find("REGRESSED"), std::string::npos);
  EXPECT_EQ(report({"--warn-only", base, cur}), 0);
  EXPECT_NE(out_.str().find("warn-only"), std::string::npos);
}

TEST_F(BenchReportTest, ToleranceFlagWidensTheGate) {
  const auto base = write_doc("BENCH_a.json", 1000.0, 1.0);
  const auto cur = write_doc("BENCH_b.json", 800.0, 1.25);  // 20% worse
  EXPECT_EQ(report({base, cur}), 1);  // default 10%
  EXPECT_EQ(report({"--tolerance=30", base, cur}), 0);
  EXPECT_EQ(report({"--tolerance=5", base, cur}), 1);
}

TEST_F(BenchReportTest, UsageAndParseErrorsExitTwo) {
  const auto good = write_doc("BENCH_a.json", 1000.0, 1.0);
  EXPECT_EQ(report({}), 2);                          // missing paths
  EXPECT_EQ(report({good}), 2);                      // one path
  EXPECT_EQ(report({"--bogus", good, good}), 2);     // unknown flag
  EXPECT_EQ(report({"--tolerance=x", good, good}), 2);
  EXPECT_EQ(report({"--tolerance=-5", good, good}), 2);
  EXPECT_EQ(report({(dir_ / "missing.json").string(), good}), 2);
  const auto bad = (dir_ / "BENCH_bad.json").string();
  std::ofstream(bad) << "{ nope";
  EXPECT_EQ(report({bad, good}), 2);
  // One file, one directory: ambiguous, refuse.
  EXPECT_EQ(report({good, dir_.string()}), 2);
}

TEST_F(BenchReportTest, DirectoryModeComparesByFileName) {
  write_doc("BENCH_one.json", 1000.0, 1.0, "baselines");
  write_doc("BENCH_two.json", 500.0, 1.0, "baselines");
  write_doc("BENCH_one.json", 990.0, 1.01, "results");
  write_doc("BENCH_two.json", 495.0, 1.02, "results");
  // Only in results: skipped with a note, not a failure.
  write_doc("BENCH_new.json", 1.0, 1.0, "results");
  EXPECT_EQ(report({(dir_ / "baselines").string(),
                    (dir_ / "results").string()}),
            0);
  EXPECT_NE(out_.str().find("compared 2 of 3"), std::string::npos);
  EXPECT_NE(out_.str().find("no committed baseline yet"), std::string::npos);

  // A regression in any one file gates the whole directory.
  write_doc("BENCH_two.json", 100.0, 5.0, "results");
  EXPECT_EQ(report({(dir_ / "baselines").string(),
                    (dir_ / "results").string()}),
            1);
  EXPECT_EQ(report({"--warn-only", (dir_ / "baselines").string(),
                    (dir_ / "results").string()}),
            0);
}

TEST_F(BenchReportTest, EmptyResultsDirectoryIsAUsageError) {
  fs::create_directories(dir_ / "baselines");
  fs::create_directories(dir_ / "results");
  EXPECT_EQ(report({(dir_ / "baselines").string(),
                    (dir_ / "results").string()}),
            2);
}

}  // namespace
