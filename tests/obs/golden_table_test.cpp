/// Golden-table regression tests: the FT-ratio columns of the paper's
/// Tables II (M1/M2) and IV (P1/P2) at three lead-time scales, plus the
/// Eq. 8 analytic thresholds, rendered to CSV and compared cell-by-cell
/// against committed files under tests/obs/golden/.
///
/// Regenerating after an INTENDED change:
///   PCKPT_REGEN_GOLDEN=1 ./build/tests/test_golden
///       --gtest_filter='GoldenTables.*'

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analytic_model.hpp"
#include "core/campaign.hpp"
#include "exec/result_sink.hpp"
#include "failure/lead_time_model.hpp"
#include "failure/system_catalog.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace core = pckpt::core;
namespace w = pckpt::workload;
namespace f = pckpt::failure;
namespace an = pckpt::analysis;

namespace {

bool regen_requested() {
  const char* v = std::getenv("PCKPT_REGEN_GOLDEN");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

std::string num(double v) { return pckpt::exec::JsonlRow::number(v); }

constexpr std::size_t kRuns = 24;
constexpr std::uint64_t kSeed = 2022;

struct TableWorld {
  w::Machine machine = w::summit();
  pckpt::iomodel::StorageModel storage = machine.make_storage();
  f::LeadTimeModel leads = f::LeadTimeModel::summit_default();
  const f::FailureSystem& titan = f::system_by_name("titan");
};

TableWorld& table_world() {
  static TableWorld w;
  return w;
}

/// FT-ratio CSV for a pair of models over the paper's applications and
/// three lead-time scales (1.5 / 1.0 / 0.5 = the +50% / 0 / -50% deltas).
std::string render_ft_csv(const std::vector<core::ModelKind>& kinds) {
  auto& wd = table_world();
  std::ostringstream out;
  out << "app,model,lead_scale,ft_ratio,failures_per_run\n";
  for (const char* name : {"CHIMERA", "XGC", "POP"}) {
    const auto& app = w::workload_by_name(name);
    core::RunSetup setup;
    setup.app = &app;
    setup.machine = &wd.machine;
    setup.storage = &wd.storage;
    setup.system = &wd.titan;
    setup.leads = &wd.leads;
    for (double lead_scale : {1.5, 1.0, 0.5}) {
      for (auto kind : kinds) {
        core::CrConfig cfg;
        cfg.kind = kind;
        cfg.predictor.lead_scale = lead_scale;
        const auto r = core::run_campaign(setup, cfg, kRuns, kSeed);
        out << app.name << ',' << core::to_string(kind) << ','
            << num(lead_scale) << ',' << num(r.pooled_ft_ratio()) << ','
            << num(r.failures_per_run()) << '\n';
      }
    }
  }
  return out.str();
}

/// Eq. 8 (and its re-derivation) on a sigma grid, plus the Eq. 5/6
/// ingredients — pure closed forms, so the CSV is exact by construction.
std::string render_eq8_csv() {
  std::ostringstream out;
  out << "sigma,alpha_paper,alpha_derived,lm_ckpt_reduction,beta_alpha1.5\n";
  for (int i = 0; i <= 12; ++i) {
    const double sigma = 0.05 * i;
    out << num(sigma) << ',' << num(an::alpha_threshold_paper(sigma)) << ','
        << num(an::alpha_threshold_derived(sigma)) << ','
        << num(an::lm_checkpoint_reduction_fraction(sigma)) << ','
        << num(an::beta_fraction(1.5, sigma)) << '\n';
  }
  return out.str();
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::vector<std::string> cells;
    std::istringstream ls(line);
    std::string cell;
    while (std::getline(ls, cell, ',')) cells.push_back(cell);
    rows.push_back(std::move(cells));
  }
  return rows;
}

/// Exact cell-by-cell comparison with a readable first-divergence
/// message; regenerates the file instead when PCKPT_REGEN_GOLDEN is set.
void check_against_golden(const std::string& filename,
                          const std::string& actual) {
  const std::string path = std::string(PCKPT_GOLDEN_DIR) + "/" + filename;
  if (regen_requested()) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — regenerate with PCKPT_REGEN_GOLDEN=1 "
                     "./build/tests/test_golden";
  std::stringstream buf;
  buf << in.rdbuf();
  const auto expected = parse_csv(buf.str());
  const auto got = parse_csv(actual);

  const std::size_t rows = std::min(expected.size(), got.size());
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t cols = std::min(expected[r].size(), got[r].size());
    for (std::size_t c = 0; c < cols; ++c) {
      ASSERT_EQ(expected[r][c], got[r][c])
          << "first divergence in " << filename << " at row " << (r + 1)
          << ", column " << (c + 1) << " (header: "
          << (expected.empty() || expected[0].size() <= c ? "?"
                                                          : expected[0][c])
          << ")\n  golden: " << expected[r][c] << "\n  actual: " << got[r][c]
          << "\nRegenerate with PCKPT_REGEN_GOLDEN=1 if this change is "
             "intended.";
    }
    ASSERT_EQ(expected[r].size(), got[r].size())
        << filename << ": column count changed at row " << (r + 1);
  }
  ASSERT_EQ(expected.size(), got.size())
      << filename << ": row count changed (golden " << expected.size()
      << ", actual " << got.size() << ")";
}

}  // namespace

TEST(GoldenTables, TableIIFtRatiosExact) {
  check_against_golden(
      "table2_ft.csv",
      render_ft_csv({core::ModelKind::kM1, core::ModelKind::kM2}));
}

TEST(GoldenTables, TableIVFtRatiosExact) {
  check_against_golden(
      "table4_ft.csv",
      render_ft_csv({core::ModelKind::kP1, core::ModelKind::kP2}));
}

TEST(GoldenTables, Eq8AnalyticOutputsExact) {
  check_against_golden("eq8.csv", render_eq8_csv());
}

/// Sanity on the rendered values themselves (independent of the golden
/// files): FT ratios are probabilities and the paper's headline ordering
/// P2 >= P1 holds on the pooled campaign.
TEST(GoldenTables, RenderedFtRatiosAreSane) {
  const auto rows =
      parse_csv(render_ft_csv({core::ModelKind::kP1, core::ModelKind::kP2}));
  ASSERT_GT(rows.size(), 1u);
  double p1_sum = 0, p2_sum = 0;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const double ft = std::stod(rows[r][3]);
    EXPECT_GE(ft, 0.0);
    EXPECT_LE(ft, 1.0);
    (rows[r][1] == "P1" ? p1_sum : p2_sum) += ft;
  }
  EXPECT_GE(p2_sum, p1_sum);
}
