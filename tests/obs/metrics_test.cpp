// MetricsRegistry / LatencyHist edge cases: histogram shape mismatch on
// merge, quantiles at empty / single-sample / saturated inputs, bucket
// monotonicity over the full u64 range, and counter ordering
// determinism across merges (exports must be byte-stable).

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

using pckpt::obs::LatencyHist;
using pckpt::obs::MetricsRegistry;

namespace {

// ---------------------------------------------------------------------
// LatencyHist bucketing.
// ---------------------------------------------------------------------

TEST(LatencyHist, SmallValuesGetExactBuckets) {
  for (std::uint64_t us = 0; us < 4; ++us) {
    EXPECT_EQ(LatencyHist::bucket_of(us), us);
    EXPECT_EQ(LatencyHist::bucket_lo(us), us);
  }
}

TEST(LatencyHist, BucketOfIsMonotoneAndLoIsConsistent) {
  // Across octave boundaries: bucket_of never decreases, and every
  // value lands in a bucket whose lower bound does not exceed it.
  std::uint64_t prev = 0;
  const std::vector<std::uint64_t> samples = {
      0,       1,    3,    4,       5,          7,          8,
      15,      16,   63,   64,      1000,       4095,       4096,
      1000000, 1ull << 32, 1ull << 62,
      std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t us : samples) {
    const std::size_t b = LatencyHist::bucket_of(us);
    EXPECT_GE(b, prev) << us;
    EXPECT_LT(b, LatencyHist::kBuckets) << us;
    EXPECT_LE(LatencyHist::bucket_lo(b), us) << us;
    prev = b;
  }
}

TEST(LatencyHist, RelativeBucketWidthStaysUnderQuarter) {
  // The 4-sub-buckets-per-octave scheme bounds quantile error: each
  // bucket's width is at most 25% of its lower bound (above 4 us).
  for (std::uint64_t us = 4; us < (1ull << 20); us = us * 5 / 4 + 1) {
    const std::size_t b = LatencyHist::bucket_of(us);
    const std::uint64_t lo = LatencyHist::bucket_lo(b);
    const std::uint64_t hi = LatencyHist::bucket_lo(b + 1);
    ASSERT_GT(hi, lo);
    EXPECT_LE(static_cast<double>(hi - lo), 0.25 * static_cast<double>(lo))
        << "bucket " << b << " [" << lo << ", " << hi << ")";
  }
}

// ---------------------------------------------------------------------
// LatencyHist quantiles.
// ---------------------------------------------------------------------

TEST(LatencyHist, EmptyHistogramReportsZero) {
  const LatencyHist h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
  EXPECT_EQ(h.max_us(), 0u);
}

TEST(LatencyHist, SingleSampleReportsItsOwnBucketMidpointEverywhere) {
  LatencyHist h;
  h.record_us(100);
  const double mid = LatencyHist::bucket_mid(LatencyHist::bucket_of(100));
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile(q), mid) << q;
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum_us(), 100u);
  EXPECT_EQ(h.max_us(), 100u);
}

TEST(LatencyHist, SaturatedSamplesLandInTopBucketWithoutOverflow) {
  LatencyHist h;
  const std::uint64_t huge = std::numeric_limits<std::uint64_t>::max();
  h.record_us(huge);
  h.record_us(huge - 1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max_us(), huge);
  const double top = LatencyHist::bucket_mid(LatencyHist::bucket_of(huge));
  EXPECT_EQ(h.p99(), top);
  EXPECT_TRUE(std::isfinite(top));
  EXPECT_GT(top, 0.0);
}

TEST(LatencyHist, QuantilesBracketTheDistribution) {
  LatencyHist h;
  for (std::uint64_t us = 1; us <= 1000; ++us) h.record_us(us);
  // Exact rank values are 500/900/990; bucketed answers must land
  // within one bucket's relative width (25%).
  EXPECT_NEAR(h.p50(), 500.0, 0.25 * 500.0);
  EXPECT_NEAR(h.p90(), 900.0, 0.25 * 900.0);
  EXPECT_NEAR(h.p99(), 990.0, 0.25 * 990.0);
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
}

TEST(LatencyHist, MergeIsExactElementWiseSum) {
  LatencyHist a, b;
  for (std::uint64_t us : {5ull, 50ull, 500ull}) a.record_us(us);
  for (std::uint64_t us : {7ull, 70ull, 700ull, 7000ull}) b.record_us(us);
  LatencyHist sum = a;
  sum.merge(b);
  EXPECT_EQ(sum.count(), 7u);
  EXPECT_EQ(sum.sum_us(), a.sum_us() + b.sum_us());
  EXPECT_EQ(sum.max_us(), 7000u);
  for (std::size_t i = 0; i < LatencyHist::kBuckets; ++i) {
    EXPECT_EQ(sum.bucket_count(i), a.bucket_count(i) + b.bucket_count(i));
  }
}

// ---------------------------------------------------------------------
// MetricsRegistry: shape mismatch, merge determinism.
// ---------------------------------------------------------------------

TEST(MetricsRegistry, HistogramShapeMismatchThrowsOnReuse) {
  MetricsRegistry reg;
  reg.histogram("lat", 0.0, 10.0, 5);
  EXPECT_THROW(reg.histogram("lat", 0.0, 10.0, 6), std::invalid_argument);
  EXPECT_THROW(reg.histogram("lat", 0.0, 20.0, 5), std::invalid_argument);
  EXPECT_THROW(reg.histogram("lat", 1.0, 10.0, 5), std::invalid_argument);
  // The matching shape still resolves to the same histogram.
  EXPECT_NO_THROW(reg.histogram("lat", 0.0, 10.0, 5));
}

TEST(MetricsRegistry, HistogramShapeMismatchThrowsOnMerge) {
  MetricsRegistry a, b;
  a.histogram("lat", 0.0, 10.0, 5).add(1.0);
  b.histogram("lat", 0.0, 10.0, 7).add(1.0);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(MetricsRegistry, CounterOrderIsFirstUseAndStableAcrossMerges) {
  MetricsRegistry a;
  a.counter("zeta") = 1;
  a.counter("alpha") = 2;

  MetricsRegistry b;
  b.counter("alpha") = 10;
  b.counter("mid") = 20;

  a.merge(b);
  // Insertion order of `a` wins for shared names; b's new names append
  // in b's order. No alphabetical resorting anywhere.
  ASSERT_EQ(a.counters().size(), 3u);
  EXPECT_EQ(a.counters()[0].first, "zeta");
  EXPECT_EQ(a.counters()[0].second, 1u);
  EXPECT_EQ(a.counters()[1].first, "alpha");
  EXPECT_EQ(a.counters()[1].second, 12u);
  EXPECT_EQ(a.counters()[2].first, "mid");
  EXPECT_EQ(a.counters()[2].second, 20u);
}

TEST(MetricsRegistry, RepeatedMergesRenderIdentically) {
  const auto build = [] {
    MetricsRegistry r;
    r.counter("requests") = 3;
    r.latency("req.us").record_us(150);
    r.stat("shard_us").add(2.0);
    return r;
  };
  MetricsRegistry once = build();
  once.merge(build());

  MetricsRegistry twice = build();
  twice.merge(build());
  EXPECT_EQ(once.to_string(), twice.to_string());

  std::ostringstream ja, jb;
  once.write_jsonl(ja, "x");
  twice.write_jsonl(jb, "x");
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(MetricsRegistry, LatencyMergesFoldIntoExistingHistogram) {
  MetricsRegistry a, b;
  a.latency("req.us").record_us(10);
  b.latency("req.us").record_us(1000);
  b.latency("other.us").record_us(5);
  a.merge(b);
  ASSERT_EQ(a.latencies().size(), 2u);
  EXPECT_EQ(a.latencies()[0].first, "req.us");
  EXPECT_EQ(a.latencies()[0].second.count(), 2u);
  EXPECT_EQ(a.latencies()[0].second.max_us(), 1000u);
  EXPECT_EQ(a.latencies()[1].first, "other.us");
  EXPECT_FALSE(a.empty());
}

TEST(MetricsRegistry, EmptyIncludesLatencies) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.latency("req.us");
  EXPECT_FALSE(reg.empty());
}

}  // namespace
