#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/simulation.hpp"
#include "exec/thread_pool.hpp"
#include "failure/lead_time_model.hpp"
#include "failure/system_catalog.hpp"
#include "sim/sim.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace obs = pckpt::obs;
namespace core = pckpt::core;
namespace w = pckpt::workload;
namespace f = pckpt::failure;
namespace exec = pckpt::exec;

namespace {

obs::Event sample_span() {
  return obs::Event::span(obs::Category::kCheckpoint, "ckpt_bb", 10.0, 12.5,
                          obs::kTrackApp)
      .with("completed", 1);
}

}  // namespace

// ---------------------------------------------------------------------
// Event value semantics.
// ---------------------------------------------------------------------

TEST(Event, InstantAndSpanBasics) {
  const auto i =
      obs::Event::instant(obs::Category::kFailure, "failure", 42.0, 9);
  EXPECT_TRUE(i.is_instant());
  EXPECT_DOUBLE_EQ(i.t0_s, 42.0);
  EXPECT_DOUBLE_EQ(i.t1_s, 42.0);
  EXPECT_EQ(i.track, 9);

  const auto s = sample_span();
  EXPECT_FALSE(s.is_instant());
  EXPECT_DOUBLE_EQ(s.duration_s(), 2.5);
  EXPECT_STREQ(s.name, "ckpt_bb");
}

TEST(Event, FieldLookupAndFallback) {
  auto e = obs::Event::instant(obs::Category::kPrediction, "prediction_tp",
                               1.0, obs::kTrackNodeBase + 3);
  e.with("node", 3).with("lead_s", 55.5);
  EXPECT_EQ(e.field_count, 2u);
  EXPECT_DOUBLE_EQ(e.field("node"), 3.0);
  EXPECT_DOUBLE_EQ(e.field("lead_s"), 55.5);
  EXPECT_TRUE(e.has_field("lead_s"));
  EXPECT_FALSE(e.has_field("deadline_s"));
  EXPECT_DOUBLE_EQ(e.field("deadline_s", -1.0), -1.0);
}

TEST(Event, FieldCapacityDropsSilently) {
  auto e = obs::Event::instant(obs::Category::kRun, "x", 0.0, 0);
  for (int i = 0; i < 2 * static_cast<int>(obs::Event::kMaxFields); ++i) {
    e.with("k", i);
  }
  EXPECT_EQ(e.field_count, obs::Event::kMaxFields);
}

TEST(TraceFormat, ParseAndReject) {
  EXPECT_EQ(obs::trace_format_from_string("jsonl"), obs::TraceFormat::kJsonl);
  EXPECT_EQ(obs::trace_format_from_string("chrome"),
            obs::TraceFormat::kChrome);
  EXPECT_THROW(obs::trace_format_from_string("perfetto"),
               std::invalid_argument);
  EXPECT_THROW(obs::trace_format_from_string(""), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Sinks.
// ---------------------------------------------------------------------

TEST(MemoryTraceSink, BuffersInEmissionOrder) {
  obs::MemoryTraceSink sink;
  sink.emit(obs::Event::instant(obs::Category::kRun, "run_begin", 0.0, 0));
  sink.emit(sample_span());
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_STREQ(sink.events()[0].name, "run_begin");
  EXPECT_STREQ(sink.events()[1].name, "ckpt_bb");
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(KernelTraceBridge, ForwardsKernelEventsWithRunId) {
  obs::MemoryTraceSink sink;
  obs::KernelTraceBridge bridge(sink, 7);
  pckpt::sim::Environment env;
  env.set_tracer(&bridge);
  env.spawn([](pckpt::sim::Environment& e) -> pckpt::sim::Process {
    co_await e.timeout(1.0);
    co_await e.timeout(2.0);
  }(env));
  env.run();
  env.set_tracer(nullptr);
  ASSERT_GT(sink.size(), 0u);
  for (const auto& e : sink.events()) {
    EXPECT_EQ(e.category, obs::Category::kKernel);
    EXPECT_EQ(e.run_id, 7u);
    EXPECT_EQ(e.track, obs::kTrackKernel);
  }
}

// ---------------------------------------------------------------------
// Writers.
// ---------------------------------------------------------------------

TEST(JsonlTraceWriter, FixedKeyOrderAndPayload) {
  std::ostringstream out;
  obs::JsonlTraceWriter writer(out);
  writer.begin_campaign("app/P2");
  auto e = sample_span();
  e.run_id = 3;
  writer.write(e);
  writer.finish();
  EXPECT_EQ(out.str(),
            "{\"campaign\":\"app/P2\",\"run\":3,\"cat\":\"checkpoint\","
            "\"name\":\"ckpt_bb\",\"track\":0,\"t0_s\":10,\"t1_s\":12.5,"
            "\"completed\":1}\n");
  EXPECT_EQ(writer.events_written(), 1u);
}

TEST(ChromeTraceWriter, ValidStructureAndLazyMetadata) {
  std::ostringstream out;
  {
    obs::ChromeTraceWriter writer(out);
    writer.begin_campaign("x/B");
    auto s = sample_span();
    writer.write(s);
    writer.write(s);  // same (pid, tid): metadata must not repeat
    auto i = obs::Event::instant(obs::Category::kFailure, "failure", 20.0,
                                 obs::kTrackNodeBase + 4);
    writer.write(i);
    writer.finish();
    writer.finish();  // idempotent
  }
  const std::string text = out.str();
  EXPECT_EQ(text.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(text.substr(text.size() - 3), "]}\n");
  // One process_name, two thread_names (app track + node 4 track).
  auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t p = text.find(needle); p != std::string::npos;
         p = text.find(needle, p + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("process_name"), 1u);
  EXPECT_EQ(count("thread_name"), 2u);
  EXPECT_EQ(count("\"ph\":\"X\""), 2u);
  EXPECT_EQ(count("\"ph\":\"i\""), 1u);
  EXPECT_NE(text.find("\"name\":\"node 4\""), std::string::npos);
}

TEST(ChromeTraceWriter, CampaignsGetDisjointPidNamespaces) {
  std::ostringstream out;
  obs::ChromeTraceWriter writer(out);
  writer.begin_campaign("first");
  auto e = sample_span();
  e.run_id = 0;
  writer.write(e);
  writer.begin_campaign("second");
  writer.write(e);  // same run_id, different campaign -> different pid
  writer.finish();
  const std::string text = out.str();
  EXPECT_NE(text.find("\"first trial 0\""), std::string::npos);
  EXPECT_NE(text.find("\"second trial 0\""), std::string::npos);
  EXPECT_NE(text.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(text.find("\"pid\":1"), std::string::npos);
}

TEST(ChromeTraceWriter, EmptyTraceIsStillValidJson) {
  std::ostringstream out;
  {
    obs::ChromeTraceWriter writer(out);
  }  // dtor finishes
  EXPECT_EQ(out.str(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n");
}

TEST(MakeTraceWriter, FactoryPicksFormat) {
  std::ostringstream out;
  auto jsonl = obs::make_trace_writer(obs::TraceFormat::kJsonl, out);
  auto chrome = obs::make_trace_writer(obs::TraceFormat::kChrome, out);
  EXPECT_NE(dynamic_cast<obs::JsonlTraceWriter*>(jsonl.get()), nullptr);
  EXPECT_NE(dynamic_cast<obs::ChromeTraceWriter*>(chrome.get()), nullptr);
}

// ---------------------------------------------------------------------
// Metrics.
// ---------------------------------------------------------------------

TEST(MetricsRegistry, CountersStatsHistograms) {
  obs::MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  ++m.counter("events.total");
  ++m.counter("events.total");
  m.stat("span_s.ckpt").add(2.0);
  m.stat("span_s.ckpt").add(4.0);
  m.histogram("lead_s", 0.0, 100.0, 10).add(55.0);
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.counter("events.total"), 2u);
  EXPECT_DOUBLE_EQ(m.stat("span_s.ckpt").mean(), 3.0);
  // Shape mismatch on re-registration must throw.
  EXPECT_THROW(m.histogram("lead_s", 0.0, 50.0, 10), std::invalid_argument);
}

TEST(MetricsRegistry, MergeAddsAndToStringIsOrdered) {
  obs::MetricsRegistry a, b;
  ++a.counter("n");
  a.stat("s").add(1.0);
  ++b.counter("n");
  b.stat("s").add(3.0);
  b.histogram("h", 0, 10, 5).add(2.0);
  a.merge(b);
  EXPECT_EQ(a.counter("n"), 2u);
  EXPECT_EQ(a.stat("s").count(), 2u);
  const std::string text = a.to_string();
  EXPECT_NE(text.find("n"), std::string::npos);
  EXPECT_LT(text.find("n"), text.find("s"));
}

// ---------------------------------------------------------------------
// Collector + campaign integration.
// ---------------------------------------------------------------------

namespace {

struct TraceWorld {
  w::Machine machine = w::summit();
  pckpt::iomodel::StorageModel storage = machine.make_storage();
  f::LeadTimeModel leads = f::LeadTimeModel::summit_default();
  const f::FailureSystem& titan = f::system_by_name("titan");
  // Small but failure-prone app: traces stay cheap while every event
  // type (predictions, failures, LM, p-ckpt rounds) still occurs.
  w::Application app{"tracelet", 2048, 2048.0 * 16.0, 2.0};

  core::RunSetup setup() const {
    core::RunSetup s;
    s.app = &app;
    s.machine = &machine;
    s.storage = &storage;
    s.system = &titan;
    s.leads = &leads;
    return s;
  }
};

TraceWorld& trace_world() {
  static TraceWorld w;
  return w;
}

std::string campaign_trace_bytes(core::ModelKind kind, std::size_t runs,
                                 exec::Executor& ex) {
  auto& wd = trace_world();
  core::CrConfig cfg;
  cfg.kind = kind;
  obs::CampaignTraceCollector collector;
  core::run_campaign(wd.setup(), cfg, runs, 2022, ex, {}, &collector);
  std::ostringstream out;
  obs::JsonlTraceWriter writer(out);
  collector.write(writer, "trace/golden");
  writer.finish();
  return out.str();
}

}  // namespace

TEST(CampaignTraceCollector, SlotsFollowGlobalTrialIndex) {
  obs::CampaignTraceCollector c(3);
  EXPECT_EQ(c.trials(), 3u);
  c.sink_for(2).emit(
      obs::Event::instant(obs::Category::kRun, "run_begin", 0.0, 0));
  EXPECT_EQ(c.events_for(2).size(), 1u);
  EXPECT_EQ(c.events_for(0).size(), 0u);
  EXPECT_EQ(c.total_events(), 1u);
  EXPECT_THROW(c.sink_for(3), std::out_of_range);
}

TEST(CampaignTraceCollector, WritesInAscendingTrialOrder) {
  obs::CampaignTraceCollector c(2);
  auto late = obs::Event::instant(obs::Category::kRun, "run_begin", 0.0, 0);
  late.run_id = 1;
  auto early = obs::Event::instant(obs::Category::kRun, "run_begin", 0.0, 0);
  early.run_id = 0;
  c.sink_for(1).emit(late);   // filled out of order on purpose
  c.sink_for(0).emit(early);
  std::ostringstream out;
  obs::JsonlTraceWriter w(out);
  c.write(w, "c");
  const std::string text = out.str();
  EXPECT_LT(text.find("\"run\":0"), text.find("\"run\":1"));
}

TEST(CampaignTraceCollector, SummarizeRollsUpCountsAndSpans) {
  obs::CampaignTraceCollector c(1);
  c.sink_for(0).emit(
      obs::Event::instant(obs::Category::kRun, "run_begin", 0.0, 0));
  c.sink_for(0).emit(sample_span());
  obs::MetricsRegistry m;
  c.summarize(m);
  EXPECT_EQ(m.counter("events.total"), 2u);
  EXPECT_EQ(m.counter("events.run_begin"), 1u);
  EXPECT_EQ(m.counter("events.ckpt_bb"), 1u);
  EXPECT_DOUBLE_EQ(m.stat("span_s.ckpt_bb").mean(), 2.5);
}

TEST(SimulateRunTrace, BeginsAndEndsEveryRun) {
  auto& wd = trace_world();
  core::CrConfig cfg;
  cfg.kind = core::ModelKind::kP2;
  obs::MemoryTraceSink sink;
  auto setup = wd.setup();
  setup.seed = 11;
  setup.trace = &sink;
  setup.run_id = 5;
  const auto r = core::simulate_run(setup, cfg);
  ASSERT_GT(sink.size(), 2u);
  EXPECT_STREQ(sink.events().front().name, "run_begin");
  bool saw_end = false;
  for (const auto& e : sink.events()) {
    EXPECT_EQ(e.run_id, 5u);
    if (std::string_view(e.name) == "run_end") {
      saw_end = true;
      EXPECT_DOUBLE_EQ(e.field("makespan_s"), r.makespan_s);
      EXPECT_DOUBLE_EQ(e.field("failures"),
                       static_cast<double>(r.failures));
      EXPECT_DOUBLE_EQ(e.field("unhandled"),
                       static_cast<double>(r.unhandled));
    }
  }
  EXPECT_TRUE(saw_end);
}

TEST(SimulateRunTrace, KernelTracingIsOptIn) {
  auto& wd = trace_world();
  core::CrConfig cfg;
  cfg.kind = core::ModelKind::kB;
  obs::MemoryTraceSink off, on;
  auto setup = wd.setup();
  setup.seed = 3;
  setup.trace = &off;
  core::simulate_run(setup, cfg);
  setup.trace = &on;
  setup.trace_kernel = true;
  core::simulate_run(setup, cfg);
  auto kernel_events = [](const obs::MemoryTraceSink& s) {
    std::size_t n = 0;
    for (const auto& e : s.events()) {
      if (e.category == obs::Category::kKernel) ++n;
    }
    return n;
  };
  EXPECT_EQ(kernel_events(off), 0u);
  EXPECT_GT(kernel_events(on), 0u);
  EXPECT_GT(on.size(), off.size());
}

/// The ISSUE's headline determinism guarantee: serializing a campaign
/// trace yields the same bytes for any worker count.
TEST(CampaignTraceDeterminism, BytesIdenticalAcrossJobs) {
  exec::SerialExecutor serial;
  const std::string base =
      campaign_trace_bytes(core::ModelKind::kP2, 16, serial);
  ASSERT_FALSE(base.empty());
  for (std::size_t jobs : {1u, 2u, 7u}) {
    exec::ThreadPool pool(jobs);
    exec::ThreadPoolExecutor ex(pool);
    const std::string other =
        campaign_trace_bytes(core::ModelKind::kP2, 16, ex);
    EXPECT_EQ(base, other) << "trace bytes diverged at --jobs=" << jobs;
  }
}

TEST(CampaignTraceDeterminism, ResultsUnchangedByTracing) {
  auto& wd = trace_world();
  core::CrConfig cfg;
  cfg.kind = core::ModelKind::kP2;
  exec::SerialExecutor ex;
  obs::CampaignTraceCollector collector;
  const auto traced =
      core::run_campaign(wd.setup(), cfg, 8, 2022, ex, {}, &collector);
  const auto plain = core::run_campaign(wd.setup(), cfg, 8, 2022, ex);
  EXPECT_EQ(traced.makespan_s.mean(), plain.makespan_s.mean());
  EXPECT_EQ(traced.failures, plain.failures);
  EXPECT_EQ(traced.mitigated_ckpt, plain.mitigated_ckpt);
  EXPECT_GT(collector.total_events(), 0u);
}
