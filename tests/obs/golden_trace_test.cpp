/// Golden-trace regression tests: one canonical semantic trace per C/R
/// model (B, M1, M2, P1, P2) at a fixed seed, committed under
/// tests/obs/golden/. Any change to the simulator's event sequence —
/// reordered emissions, altered payloads, different timing — fails here
/// with the first diverging line spelled out.
///
/// Regenerating after an INTENDED change:
///   PCKPT_REGEN_GOLDEN=1 ./build/tests/test_golden
///       --gtest_filter='Golden/GoldenTrace.*'
/// then inspect the diff of tests/obs/golden/ and commit it.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/simulation.hpp"
#include "failure/lead_time_model.hpp"
#include "failure/system_catalog.hpp"
#include "obs/obs.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace core = pckpt::core;
namespace obs = pckpt::obs;
namespace w = pckpt::workload;
namespace f = pckpt::failure;

namespace {

#ifndef PCKPT_GOLDEN_DIR
#error "PCKPT_GOLDEN_DIR must point at tests/obs/golden"
#endif

bool regen_requested() {
  const char* v = std::getenv("PCKPT_REGEN_GOLDEN");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

/// The canonical golden environment: small enough that traces stay a few
/// hundred lines, failure-prone enough (titan distribution) that every
/// event family appears across the five models.
struct GoldenWorld {
  w::Machine machine = w::summit();
  pckpt::iomodel::StorageModel storage = machine.make_storage();
  f::LeadTimeModel leads = f::LeadTimeModel::summit_default();
  /// A deliberately failure-hot Weibull system: the job-level MTBF lands
  /// near one hour so a two-hour run sees failures, predictions, LM
  /// attempts and p-ckpt rounds — while the trace stays a few hundred
  /// lines.
  f::FailureSystem hot{"golden-hot", 0.7, 0.5, 4608};
  w::Application app{"golden", 2048, 2048.0 * 16.0, 2.0};

  core::RunSetup setup() const {
    core::RunSetup s;
    s.app = &app;
    s.machine = &machine;
    s.storage = &storage;
    s.system = &hot;
    s.leads = &leads;
    return s;
  }
};

GoldenWorld& golden_world() {
  static GoldenWorld w;
  return w;
}

constexpr std::size_t kGoldenRuns = 2;
constexpr std::uint64_t kGoldenSeed = 424242;

std::string render_trace(core::ModelKind kind) {
  auto& wd = golden_world();
  core::CrConfig cfg;
  cfg.kind = kind;
  obs::CampaignTraceCollector collector;
  pckpt::exec::SerialExecutor serial;
  core::run_campaign(wd.setup(), cfg, kGoldenRuns, kGoldenSeed, serial, {},
                     &collector);
  std::ostringstream out;
  obs::JsonlTraceWriter writer(out);
  collector.write(writer, std::string("golden/") +
                              std::string(core::to_string(kind)));
  writer.finish();
  return out.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string golden_path(core::ModelKind kind) {
  return std::string(PCKPT_GOLDEN_DIR) + "/trace_" +
         std::string(core::to_string(kind)) + ".jsonl";
}

}  // namespace

class GoldenTrace : public ::testing::TestWithParam<core::ModelKind> {};

INSTANTIATE_TEST_SUITE_P(Golden, GoldenTrace,
                         ::testing::Values(core::ModelKind::kB,
                                           core::ModelKind::kM1,
                                           core::ModelKind::kM2,
                                           core::ModelKind::kP1,
                                           core::ModelKind::kP2),
                         [](const auto& param_info) {
                           return std::string(
                               core::to_string(param_info.param));
                         });

TEST_P(GoldenTrace, MatchesCommittedTraceLineByLine) {
  const std::string path = golden_path(GetParam());
  const std::string actual = render_trace(GetParam());

  if (regen_requested()) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path << " ("
                 << split_lines(actual).size() << " lines)";
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — regenerate with PCKPT_REGEN_GOLDEN=1 "
                     "./build/tests/test_golden";
  std::stringstream buf;
  buf << in.rdbuf();
  const auto expected_lines = split_lines(buf.str());
  const auto actual_lines = split_lines(actual);

  const std::size_t n = std::min(expected_lines.size(), actual_lines.size());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(expected_lines[i], actual_lines[i])
        << "first trace divergence at line " << (i + 1) << " of " << path
        << "\n  golden: " << expected_lines[i]
        << "\n  actual: " << actual_lines[i]
        << "\nIf this change is intended, regenerate with "
           "PCKPT_REGEN_GOLDEN=1 ./build/tests/test_golden and commit the "
           "updated golden files.";
  }
  ASSERT_EQ(expected_lines.size(), actual_lines.size())
      << "trace length changed: golden has " << expected_lines.size()
      << " events, actual has " << actual_lines.size()
      << " (first " << n << " lines agree). Regenerate with "
         "PCKPT_REGEN_GOLDEN=1 if intended.";
}

/// The golden environment must actually exercise the interesting event
/// families — otherwise the golden files silently stop guarding the
/// mitigation paths.
TEST(GoldenTraceCoverage, EventFamiliesPresent) {
  obs::MetricsRegistry m;
  for (auto kind : {core::ModelKind::kB, core::ModelKind::kM1,
                    core::ModelKind::kM2, core::ModelKind::kP1,
                    core::ModelKind::kP2}) {
    for (const std::string& line : split_lines(render_trace(kind))) {
      const auto name_pos = line.find("\"name\":\"");
      ASSERT_NE(name_pos, std::string::npos);
      const auto start = name_pos + 8;
      const auto end = line.find('"', start);
      ++m.counter("events." + line.substr(start, end - start));
    }
  }
  for (const char* required :
       {"run_begin", "run_end", "compute", "ckpt_bb_begin", "ckpt_bb_end",
        "pfs_drain", "failure", "restart", "prediction_tp", "lm_begin",
        "pckpt_round_begin", "pckpt_round_end"}) {
    EXPECT_GT(m.counter(std::string("events.") + required), 0u)
        << "golden environment no longer produces '" << required << "'";
  }
}
