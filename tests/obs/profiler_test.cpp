// Self-profiler suite (src/obs/profiler.hpp): the disabled path records
// nothing, nested spans partition time into exact self/child shares, the
// cross-thread merge is deterministic, and merge_profile renders into the
// MetricsRegistry in sorted-label order.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace {

using pckpt::obs::MetricsRegistry;
using pckpt::obs::merge_profile;
using pckpt::obs::ProfileReport;
using pckpt::obs::Profiler;
using pckpt::obs::ScopedTimer;
using pckpt::obs::SpanStats;

void spin_ns(std::uint64_t ns) {
  const std::uint64_t t0 = pckpt::obs::ProfClock::now_ns();
  while (pckpt::obs::ProfClock::now_ns() - t0 < ns) {
  }
}

TEST(Profiler, DetachedRecordsNothing) {
  ASSERT_EQ(Profiler::active(), nullptr);
  {
    ScopedTimer t("never.recorded");
    spin_ns(1000);
  }
  Profiler prof;
  prof.attach();
  prof.detach();
  const ProfileReport report = prof.report();
  EXPECT_TRUE(report.empty());
  EXPECT_EQ(report.find("never.recorded"), nullptr);
}

TEST(Profiler, SpanStructStaysSmall) {
  // The disabled path is one atomic load + branch over a stack object;
  // keep the object within a cache line (compile-time mirror of the
  // static_assert in the header).
  static_assert(sizeof(ScopedTimer) <= 64);
  SUCCEED();
}

TEST(Profiler, RecordsCallsAndTime) {
  Profiler prof;
  prof.attach();
  for (int i = 0; i < 5; ++i) {
    ScopedTimer t("unit.work");
    spin_ns(20000);
  }
  prof.detach();
  const ProfileReport report = prof.report();
  const auto* e = report.find("unit.work");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->stats.calls, 5u);
  EXPECT_GE(e->stats.total_ns, 5u * 20000u);
  EXPECT_GE(e->stats.max_ns, 20000u);
  EXPECT_EQ(e->stats.self_ns(), e->stats.total_ns);  // no children
}

TEST(Profiler, NestedSpansPartitionIntoSelfAndChild) {
  Profiler prof;
  prof.attach();
  {
    ScopedTimer outer("nest.outer");
    spin_ns(20000);
    {
      ScopedTimer inner("nest.inner");
      spin_ns(20000);
    }
    spin_ns(20000);
  }
  prof.detach();
  const ProfileReport report = prof.report();
  const auto* outer = report.find("nest.outer");
  const auto* inner = report.find("nest.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // The child's full elapsed time is charged to the parent's child_ns, so
  // self times partition the outer span exactly (no double counting).
  EXPECT_EQ(outer->stats.child_ns, inner->stats.total_ns);
  EXPECT_EQ(outer->stats.self_ns() + inner->stats.total_ns,
            outer->stats.total_ns);
  EXPECT_GE(outer->stats.self_ns(), 2u * 20000u);
  EXPECT_GE(inner->stats.self_ns(), 20000u);
}

TEST(Profiler, AttachIsExclusive) {
  Profiler a;
  a.attach();
  Profiler b;
  EXPECT_THROW(b.attach(), std::logic_error);
  a.detach();
  b.attach();  // slot freed
  EXPECT_TRUE(b.attached());
  b.detach();
}

TEST(Profiler, ReattachGetsFreshRecords) {
  // The thread-local records cache keys on the attach generation: a
  // second profiler on the same thread must not inherit the first's
  // accumulators.
  {
    Profiler first;
    first.attach();
    {
      ScopedTimer t("gen.span");
    }
    first.detach();
    EXPECT_EQ(first.report().find("gen.span")->stats.calls, 1u);
  }
  Profiler second;
  second.attach();
  {
    ScopedTimer t("gen.span");
  }
  second.detach();
  const ProfileReport report = second.report();
  const auto* e = report.find("gen.span");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->stats.calls, 1u);  // not 2: no leakage across attaches
}

TEST(Profiler, CrossThreadMergeIsDeterministic) {
  // Four threads record disjoint call counts into two shared labels; the
  // merged totals must be the exact integer sums regardless of thread
  // scheduling, and repeated report() calls must render identically.
  Profiler prof;
  prof.attach();
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([w] {
      for (int i = 0; i < (w + 1) * 10; ++i) {
        ScopedTimer a("mt.alpha");
        ScopedTimer b("mt.beta");
      }
    });
  }
  for (auto& t : workers) t.join();
  prof.detach();

  const ProfileReport r1 = prof.report();
  EXPECT_EQ(r1.threads, 4u);
  const auto* alpha = r1.find("mt.alpha");
  const auto* beta = r1.find("mt.beta");
  ASSERT_NE(alpha, nullptr);
  ASSERT_NE(beta, nullptr);
  EXPECT_EQ(alpha->stats.calls, 100u);  // 10+20+30+40
  EXPECT_EQ(beta->stats.calls, 100u);
  // Labels come out sorted, so two reports are byte-identical.
  const ProfileReport r2 = prof.report();
  EXPECT_EQ(r1.to_string(), r2.to_string());
  ASSERT_EQ(r1.spans.size(), 2u);
  EXPECT_EQ(r1.spans[0].label, "mt.alpha");
  EXPECT_EQ(r1.spans[1].label, "mt.beta");
}

TEST(Profiler, CoveredSecondsSumsSelfTimes) {
  ProfileReport report;
  report.spans.push_back({"a", SpanStats{1, 3'000'000'000ULL, 1'000'000'000ULL, 0}});
  report.spans.push_back({"b", SpanStats{1, 1'000'000'000ULL, 0, 0}});
  EXPECT_DOUBLE_EQ(report.covered_s(), 3.0);  // (3-1) + 1 seconds
}

TEST(Profiler, MergeProfileRendersSortedCounters) {
  Profiler prof;
  prof.attach();
  {
    ScopedTimer b("zz.late");
    spin_ns(1000);
  }
  {
    ScopedTimer a("aa.early");
    spin_ns(1000);
  }
  prof.detach();

  MetricsRegistry reg;
  merge_profile(prof.report(), reg);
  const auto& counters = reg.counters();
  ASSERT_EQ(counters.size(), 6u);
  // Sorted by label, three counters per span, insertion order preserved.
  EXPECT_EQ(counters[0].first, "prof.calls.aa.early");
  EXPECT_EQ(counters[1].first, "prof.us.aa.early");
  EXPECT_EQ(counters[2].first, "prof.self_us.aa.early");
  EXPECT_EQ(counters[3].first, "prof.calls.zz.late");
  EXPECT_EQ(counters[0].second, 1u);
  EXPECT_EQ(counters[3].second, 1u);
}

TEST(Profiler, HostCountersReportPeakRss) {
  const auto hc = pckpt::obs::sample_host_counters();
  EXPECT_GT(hc.peak_rss_kb, 0u);  // any live process has a resident set
}

}  // namespace
