#include "random/distributions.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/summary.hpp"

namespace rnd = pckpt::rnd;
using pckpt::stats::OnlineStats;

namespace {
constexpr int kDraws = 200000;
}

TEST(Distributions, UniformRange) {
  rnd::Xoshiro256 g(1);
  rnd::Uniform u(3.0, 7.0);
  OnlineStats s;
  for (int i = 0; i < kDraws; ++i) {
    const double x = u(g);
    ASSERT_GE(x, 3.0);
    ASSERT_LT(x, 7.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), 5.0, 0.02);
}

TEST(Distributions, UniformRejectsBadRange) {
  EXPECT_THROW(rnd::Uniform(2.0, 2.0), std::invalid_argument);
  EXPECT_THROW(rnd::Uniform(3.0, 1.0), std::invalid_argument);
}

TEST(Distributions, BernoulliFrequencyMatchesP) {
  rnd::Xoshiro256 g(2);
  rnd::Bernoulli b(0.18);
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (b(g)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.18, 0.01);
}

TEST(Distributions, BernoulliRejectsOutOfRange) {
  EXPECT_THROW(rnd::Bernoulli(-0.1), std::invalid_argument);
  EXPECT_THROW(rnd::Bernoulli(1.1), std::invalid_argument);
}

TEST(Distributions, ExponentialMean) {
  rnd::Xoshiro256 g(3);
  rnd::Exponential e(0.25);  // mean 4
  OnlineStats s;
  for (int i = 0; i < kDraws; ++i) s.add(e(g));
  EXPECT_NEAR(s.mean(), 4.0, 0.1);
}

TEST(Distributions, WeibullMeanMatchesGammaFormula) {
  rnd::Xoshiro256 g(4);
  // OLCF Titan parameters from Table III.
  rnd::Weibull w(0.6885, 5.4527);
  OnlineStats s;
  for (int i = 0; i < kDraws; ++i) s.add(w(g));
  EXPECT_NEAR(s.mean(), w.mean(), w.mean() * 0.03);
}

TEST(Distributions, WeibullCdfInverseConsistency) {
  // Median of Weibull = scale * (ln 2)^(1/shape); CDF(median) = 0.5.
  rnd::Weibull w(0.8170, 6.6293);
  const double median = 6.6293 * std::pow(std::log(2.0), 1.0 / 0.8170);
  EXPECT_NEAR(w.cdf(median), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(w.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.cdf(-5.0), 0.0);
}

TEST(Distributions, WeibullHazardDecreasingForShapeBelowOne) {
  rnd::Weibull w(0.7, 10.0);
  double prev = w.hazard(0.1);
  for (double x = 1.0; x < 100.0; x += 5.0) {
    const double h = w.hazard(x);
    EXPECT_LT(h, prev);
    prev = h;
  }
}

TEST(Distributions, WeibullShapeOneIsExponential) {
  rnd::Weibull w(1.0, 4.0);
  // Constant hazard 1/scale.
  EXPECT_NEAR(w.hazard(1.0), 0.25, 1e-12);
  EXPECT_NEAR(w.hazard(50.0), 0.25, 1e-12);
  EXPECT_NEAR(w.mean(), 4.0, 1e-9);
}

TEST(Distributions, WeibullEmpiricalCdfMatchesAnalytic) {
  rnd::Xoshiro256 g(5);
  rnd::Weibull w(0.7111, 67.375);  // LANL System 8
  const double probe = 30.0;
  int below = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (w(g) < probe) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / kDraws, w.cdf(probe), 0.01);
}

TEST(Distributions, LogNormalMedian) {
  rnd::Xoshiro256 g(6);
  auto ln = rnd::LogNormal::from_median(45.0, 0.5);
  std::vector<double> xs;
  xs.reserve(kDraws);
  for (int i = 0; i < kDraws; ++i) xs.push_back(ln(g));
  EXPECT_NEAR(pckpt::stats::percentile(std::move(xs), 0.5), 45.0, 1.0);
  EXPECT_NEAR(ln.median(), 45.0, 1e-9);
}

TEST(Distributions, LogNormalMeanFormula) {
  rnd::Xoshiro256 g(7);
  rnd::LogNormal ln(2.0, 0.75);
  OnlineStats s;
  for (int i = 0; i < kDraws; ++i) s.add(ln(g));
  EXPECT_NEAR(s.mean(), ln.mean(), ln.mean() * 0.03);
}

TEST(Distributions, DiscreteWeightsProportions) {
  rnd::Xoshiro256 g(8);
  rnd::DiscreteWeights d({1.0, 3.0, 6.0});
  std::array<int, 3> hits{};
  for (int i = 0; i < kDraws; ++i) ++hits[d(g)];
  EXPECT_NEAR(hits[0] / static_cast<double>(kDraws), 0.1, 0.01);
  EXPECT_NEAR(hits[1] / static_cast<double>(kDraws), 0.3, 0.01);
  EXPECT_NEAR(hits[2] / static_cast<double>(kDraws), 0.6, 0.01);
}

TEST(Distributions, DiscreteWeightsValidation) {
  EXPECT_THROW(rnd::DiscreteWeights({}), std::invalid_argument);
  EXPECT_THROW(rnd::DiscreteWeights({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rnd::DiscreteWeights({1.0, -1.0}), std::invalid_argument);
}

TEST(Distributions, DiscreteWeightsZeroWeightNeverDrawn) {
  rnd::Xoshiro256 g(9);
  rnd::DiscreteWeights d({1.0, 0.0, 1.0});
  for (int i = 0; i < 10000; ++i) EXPECT_NE(d(g), 1u);
}

TEST(Distributions, UniformIndexCoversRangeWithoutBias) {
  rnd::Xoshiro256 g(10);
  std::array<int, 5> hits{};
  for (int i = 0; i < kDraws; ++i) ++hits[rnd::uniform_index(g, 5)];
  for (int h : hits) {
    EXPECT_NEAR(h / static_cast<double>(kDraws), 0.2, 0.01);
  }
}

TEST(Distributions, UniformIndexRejectsZero) {
  rnd::Xoshiro256 g(11);
  EXPECT_THROW(rnd::uniform_index(g, 0), std::invalid_argument);
}
