#include "random/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace rnd = pckpt::rnd;

TEST(Xoshiro256, DeterministicForSameSeed) {
  rnd::Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  rnd::Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, Uniform01InHalfOpenRange) {
  rnd::Xoshiro256 g(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = g.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, Uniform01MeanNearHalf) {
  rnd::Xoshiro256 g(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += g.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(SeedDerivation, ChildStreamsAreDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 64; ++s) {
    seeds.insert(rnd::derive_seed(12345, s));
  }
  EXPECT_EQ(seeds.size(), 64u);
}

TEST(SeedDerivation, DeterministicAndParentSensitive) {
  EXPECT_EQ(rnd::derive_seed(1, 5), rnd::derive_seed(1, 5));
  EXPECT_NE(rnd::derive_seed(1, 5), rnd::derive_seed(2, 5));
  EXPECT_NE(rnd::derive_seed(1, 5), rnd::derive_seed(1, 6));
}

TEST(SeedDerivation, IsConstexpr) {
  constexpr auto s = rnd::derive_seed(99, 3);
  static_assert(s != 0);
  SUCCEED();
}
