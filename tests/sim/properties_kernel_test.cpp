/// Property tests for the observability layer, in two parts.
///
/// Part A drives the DES kernel's `KernelTracer` hook with randomized
/// coroutine programs (~100 seeds) and checks the hook's contract:
/// schedule targets never lie in the past, fire times are monotone, the
/// fire count matches the kernel's own event counter, and nothing is
/// reported after the simulation drains (or after the tracer detaches).
///
/// Part B runs the full simulator with a `MemoryTraceSink` across every
/// C/R model and many seeds, and reconciles the semantic event stream
/// against the `RunResult` counters: the trace and the aggregate numbers
/// are two views of the same run and must never disagree.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string_view>
#include <utility>
#include <vector>

#include "core/campaign.hpp"
#include "core/simulation.hpp"
#include "failure/lead_time_model.hpp"
#include "obs/collector.hpp"
#include "obs/trace_sink.hpp"
#include "sim/sim.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace sim = pckpt::sim;
namespace obs = pckpt::obs;
namespace core = pckpt::core;
namespace w = pckpt::workload;
namespace f = pckpt::failure;

namespace {

// ---------------------------------------------------------------- Part A

/// Records every kernel callback and flags any activity that arrives
/// after the test declares the simulation closed.
class RecordingTracer final : public sim::KernelTracer {
 public:
  struct Sched {
    sim::SimTime now;
    sim::SimTime fire_at;
    sim::EventSeq seq;
  };

  void on_schedule(sim::SimTime now, sim::SimTime fire_at,
                   sim::EventSeq seq) override {
    if (closed) late_callbacks++;
    schedules.push_back({now, fire_at, seq});
  }
  void on_event(sim::SimTime t, sim::EventSeq seq) override {
    if (closed) late_callbacks++;
    fires.emplace_back(t, seq);
  }
  void on_spawn(sim::SimTime /*now*/, const std::string& /*name*/) override {
    if (closed) late_callbacks++;
    spawns++;
  }
  void on_interrupt(sim::SimTime /*now*/,
                    const std::string& /*name*/) override {
    if (closed) late_callbacks++;
    interrupts++;
  }

  std::vector<Sched> schedules;
  std::vector<std::pair<sim::SimTime, sim::EventSeq>> fires;
  int spawns = 0;
  int interrupts = 0;
  bool closed = false;
  int late_callbacks = 0;
};

sim::Process worker(sim::Environment& env, std::vector<double> delays) {
  try {
    for (double d : delays) co_await env.timeout(d);
  } catch (const sim::Interrupted&) {
    co_return;
  }
}

/// Interrupts victims on a fixed schedule; interrupting an already
/// finished process is a documented no-op, so the plan needs no
/// coordination with the victims' lifetimes.
sim::Process chaos(sim::Environment& env, std::vector<sim::Process>* victims,
                   std::vector<std::pair<double, std::size_t>> plan) {
  for (auto [delay, idx] : plan) {
    co_await env.timeout(delay);
    (*victims)[idx % victims->size()].interrupt();
  }
}

TEST(KernelTracerProperties, RandomProgramsSatisfyTheHookContract) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    // Test-local fuzzing RNG, explicitly seeded per iteration — never
    // feeds simulation state. lint: raw-rng-ok
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> n_workers(1, 6);
    std::uniform_int_distribution<int> n_steps(1, 8);
    std::uniform_real_distribution<double> delay(0.0, 10.0);

    sim::Environment env;
    RecordingTracer tracer;
    env.set_tracer(&tracer);

    std::vector<sim::Process> procs;
    const int workers = n_workers(rng);
    for (int i = 0; i < workers; ++i) {
      std::vector<double> delays(static_cast<std::size_t>(n_steps(rng)));
      for (double& d : delays) d = delay(rng);
      procs.push_back(env.spawn(worker(env, std::move(delays))));
    }
    std::vector<std::pair<double, std::size_t>> plan(
        static_cast<std::size_t>(n_steps(rng)));
    for (auto& [d, idx] : plan) {
      d = delay(rng);
      idx = static_cast<std::size_t>(rng() % 64);
    }
    auto controller = env.spawn(chaos(env, &procs, std::move(plan)));
    env.run();
    tracer.closed = true;

    // Schedule targets are never in the past.
    for (const auto& s : tracer.schedules) {
      ASSERT_GE(s.fire_at, s.now) << "seed " << seed;
    }
    // Fire times are monotone non-decreasing, and the tracer saw exactly
    // the events the kernel says it processed.
    for (std::size_t i = 1; i < tracer.fires.size(); ++i) {
      ASSERT_GE(tracer.fires[i].first, tracer.fires[i - 1].first)
          << "seed " << seed << ", fire " << i;
    }
    ASSERT_EQ(tracer.fires.size(), env.events_processed()) << "seed " << seed;
    ASSERT_EQ(tracer.spawns, workers + 1) << "seed " << seed;
    if (!tracer.fires.empty()) {
      ASSERT_EQ(env.now(), tracer.fires.back().first) << "seed " << seed;
    }

    // A drained simulation is quiescent: no live processes, no pending
    // events, no escaped exceptions, and no further tracer callbacks.
    ASSERT_EQ(env.live_processes(), 0u) << "seed " << seed;
    ASSERT_EQ(env.pending_events(), 0u) << "seed " << seed;
    ASSERT_TRUE(env.process_errors().empty()) << "seed " << seed;
    ASSERT_EQ(tracer.late_callbacks, 0) << "seed " << seed;

    // Detaching really detaches.
    env.set_tracer(nullptr);
    tracer.closed = false;
    const auto fires_before = tracer.fires.size();
    env.spawn(worker(env, {1.0}));
    env.run();
    ASSERT_EQ(tracer.fires.size(), fires_before) << "seed " << seed;
    ASSERT_EQ(tracer.spawns, workers + 1) << "seed " << seed;
  }
}

// ---------------------------------------------------------------- Part B

/// A failure-hot world (job MTBF near one hour against a two-hour run)
/// so that every mitigation path appears across the seed sweep.
struct PropertyWorld {
  w::Machine machine = w::summit();
  pckpt::iomodel::StorageModel storage = machine.make_storage();
  f::LeadTimeModel leads = f::LeadTimeModel::summit_default();
  f::FailureSystem hot{"property-hot", 0.7, 0.5, 4608};
  w::Application app{"property", 2048, 2048.0 * 16.0, 2.0};

  core::RunSetup setup(std::uint64_t seed) const {
    core::RunSetup s;
    s.app = &app;
    s.machine = &machine;
    s.storage = &storage;
    s.system = &hot;
    s.leads = &leads;
    s.seed = seed;
    return s;
  }
};

PropertyWorld& property_world() {
  static PropertyWorld w;
  return w;
}

std::size_t count_events(const std::vector<obs::Event>& events,
                         std::string_view name) {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [&](const obs::Event& e) { return name == e.name; }));
}

class TraceReconciliation : public ::testing::TestWithParam<core::ModelKind> {
};

INSTANTIATE_TEST_SUITE_P(AllModels, TraceReconciliation,
                         ::testing::Values(core::ModelKind::kB,
                                           core::ModelKind::kM1,
                                           core::ModelKind::kM2,
                                           core::ModelKind::kP1,
                                           core::ModelKind::kP2),
                         [](const auto& param_info) {
                           return std::string(
                               core::to_string(param_info.param));
                         });

TEST_P(TraceReconciliation, EventStreamMatchesRunResultCounters) {
  auto& wd = property_world();
  core::CrConfig cfg;
  cfg.kind = GetParam();
  const bool is_base = GetParam() == core::ModelKind::kB;

  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    obs::MemoryTraceSink sink;
    auto setup = wd.setup(seed);
    setup.trace = &sink;
    setup.run_id = seed;
    const auto r = core::simulate_run(setup, cfg);
    const auto& events = sink.events();
    ASSERT_FALSE(events.empty()) << "seed " << seed;

    // Lifecycle: the stream opens with run_begin, contains exactly one
    // run_end, and every event carries the configured run_id.
    EXPECT_STREQ(events.front().name, "run_begin") << "seed " << seed;
    ASSERT_EQ(count_events(events, "run_end"), 1u) << "seed " << seed;
    for (const auto& e : events) {
      ASSERT_EQ(e.run_id, seed);
    }

    // Emission order: events are appended at simulation time, so t1_s is
    // non-decreasing across the whole stream (spans are emitted at their
    // end time), and no span runs backwards.
    for (std::size_t i = 0; i < events.size(); ++i) {
      ASSERT_LE(events[i].t0_s, events[i].t1_s) << "seed " << seed;
      if (i > 0) {
        ASSERT_GE(events[i].t1_s, events[i - 1].t1_s)
            << "seed " << seed << ", event " << i << " ("
            << events[i].name << " after " << events[i - 1].name << ")";
      }
    }

    // Checkpoint bracketing: begin/end strictly alternate and balance,
    // even when a write is cut short by a strike or a proactive request.
    int depth = 0;
    std::size_t completed_ckpts = 0;
    for (const auto& e : events) {
      const std::string_view name = e.name;
      if (name == "ckpt_bb_begin") {
        ASSERT_EQ(depth, 0) << "nested ckpt_bb at seed " << seed;
        depth = 1;
      } else if (name == "ckpt_bb_end") {
        ASSERT_EQ(depth, 1) << "unmatched ckpt_bb_end at seed " << seed;
        depth = 0;
        if (e.field("completed") == 1.0) ++completed_ckpts;
      }
    }
    EXPECT_EQ(depth, 0) << "unclosed ckpt_bb at seed " << seed;
    EXPECT_EQ(completed_ckpts, static_cast<std::size_t>(r.periodic_ckpts))
        << "seed " << seed;

    // Count reconciliation: the trace and the RunResult are two views of
    // the same run.
    EXPECT_EQ(count_events(events, "failure"),
              static_cast<std::size_t>(r.failures))
        << "seed " << seed;
    EXPECT_EQ(count_events(events, "lm_begin"),
              static_cast<std::size_t>(r.lm_attempts))
        << "seed " << seed;
    EXPECT_EQ(count_events(events, "lm_abort"),
              static_cast<std::size_t>(r.lm_aborts))
        << "seed " << seed;
    if (!is_base) {
      EXPECT_EQ(count_events(events, "prediction_fp"),
                static_cast<std::size_t>(r.false_positives))
          << "seed " << seed;
    }
    std::size_t clean_rounds = 0;
    int outcome_ckpt = 0, outcome_lm = 0, outcome_unhandled = 0;
    for (const auto& e : events) {
      const std::string_view name = e.name;
      if (name == "pckpt_round_end" && e.field("aborted") == 0.0) {
        ++clean_rounds;
      }
      if (name == "failure") {
        const double outcome = e.field("outcome");
        if (outcome == 1.0) {
          ++outcome_ckpt;
        } else if (outcome == 2.0) {
          ++outcome_lm;
        } else {
          ++outcome_unhandled;
        }
      }
    }
    EXPECT_EQ(clean_rounds, static_cast<std::size_t>(r.proactive_ckpts))
        << "seed " << seed;
    // The per-failure outcome labels partition the failure count exactly
    // like the aggregate mitigation counters... except that an aborted
    // p-ckpt round may retroactively reclassify an already-emitted
    // mitigated_ckpt failure as unhandled, so those two labels are
    // compared as a sum.
    EXPECT_EQ(outcome_lm, r.mitigated_lm) << "seed " << seed;
    EXPECT_EQ(outcome_ckpt + outcome_unhandled,
              r.mitigated_ckpt + r.unhandled)
        << "seed " << seed;

    // run_end payload mirrors the final RunResult field by field.
    const auto run_end =
        std::find_if(events.begin(), events.end(), [](const obs::Event& e) {
          return std::string_view(e.name) == "run_end";
        });
    ASSERT_NE(run_end, events.end());
    EXPECT_EQ(run_end->field("makespan_s"), r.makespan_s) << "seed " << seed;
    const std::pair<const char*, int> counters[] = {
        {"failures", r.failures},
        {"predicted", r.predicted},
        {"mitigated_ckpt", r.mitigated_ckpt},
        {"mitigated_lm", r.mitigated_lm},
        {"unhandled", r.unhandled},
        {"false_positives", r.false_positives},
        {"periodic_ckpts", r.periodic_ckpts},
        {"proactive_ckpts", r.proactive_ckpts},
        {"lm_attempts", r.lm_attempts},
        {"lm_aborts", r.lm_aborts},
    };
    for (const auto& [key, value] : counters) {
      EXPECT_EQ(run_end->field(key, -1.0), static_cast<double>(value))
          << "run_end field '" << key << "' at seed " << seed;
    }
    // Only in-flight drains may outlive the application.
    for (auto it = run_end + 1; it != events.end(); ++it) {
      EXPECT_STREQ(it->name, "pfs_drain") << "seed " << seed;
    }
  }
}

/// Campaign-level reconciliation: per-trial trace counters sum to the
/// CampaignResult's raw totals, and the collector accounts for every
/// buffered event.
TEST(TraceReconciliation, CampaignTotalsMatchCollectedTraces) {
  auto& wd = property_world();
  core::CrConfig cfg;
  cfg.kind = core::ModelKind::kP2;
  constexpr std::size_t kRuns = 12;

  obs::CampaignTraceCollector collector;
  pckpt::exec::SerialExecutor serial;
  const auto r = core::run_campaign(wd.setup(0), cfg, kRuns, 99, serial, {},
                                    &collector);

  ASSERT_EQ(collector.trials(), kRuns);
  std::size_t events_seen = 0;
  double failures = 0, lm_attempts = 0, false_positives = 0;
  for (std::size_t i = 0; i < kRuns; ++i) {
    const auto& events = collector.events_for(i);
    events_seen += events.size();
    failures += static_cast<double>(count_events(events, "failure"));
    lm_attempts += static_cast<double>(count_events(events, "lm_begin"));
    false_positives +=
        static_cast<double>(count_events(events, "prediction_fp"));
    for (const auto& e : events) {
      ASSERT_EQ(e.run_id, i);
    }
  }
  EXPECT_EQ(events_seen, collector.total_events());
  EXPECT_EQ(failures, r.failures);
  EXPECT_EQ(false_positives, r.false_positives);
  EXPECT_GE(lm_attempts, r.mitigated_lm);  // attempts can abort or fail
}

}  // namespace
