#include "sim/environment.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/event.hpp"

namespace sim = pckpt::sim;

TEST(Environment, StartsAtTimeZero) {
  sim::Environment env;
  EXPECT_DOUBLE_EQ(env.now(), 0.0);
  EXPECT_EQ(env.pending_events(), 0u);
}

TEST(Environment, TimeoutAdvancesClock) {
  sim::Environment env;
  auto ev = env.timeout(5.0);
  double fired_at = -1.0;
  ev->add_callback([&](sim::EventCore& e) { fired_at = e.env().now(); });
  env.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
  EXPECT_DOUBLE_EQ(env.now(), 5.0);
}

TEST(Environment, TimeoutRejectsNegativeDelay) {
  sim::Environment env;
  EXPECT_THROW(env.timeout(-1.0), std::invalid_argument);
}

TEST(Environment, EventsFireInTimeOrder) {
  sim::Environment env;
  std::vector<int> order;
  env.timeout(3.0)->add_callback([&](sim::EventCore&) { order.push_back(3); });
  env.timeout(1.0)->add_callback([&](sim::EventCore&) { order.push_back(1); });
  env.timeout(2.0)->add_callback([&](sim::EventCore&) { order.push_back(2); });
  env.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Environment, SimultaneousEventsFireFifo) {
  sim::Environment env;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    env.timeout(1.0)->add_callback(
        [&order, i](sim::EventCore&) { order.push_back(i); });
  }
  env.run();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(Environment, RunUntilStopsClockAtBound) {
  sim::Environment env;
  env.timeout(10.0);
  env.timeout(20.0);
  env.run_until(15.0);
  EXPECT_DOUBLE_EQ(env.now(), 15.0);
  EXPECT_EQ(env.pending_events(), 1u);
  env.run();
  EXPECT_DOUBLE_EQ(env.now(), 20.0);
}

TEST(Environment, RunUntilProcessesEventsAtExactBound) {
  sim::Environment env;
  bool fired = false;
  env.timeout(5.0)->add_callback([&](sim::EventCore&) { fired = true; });
  env.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Environment, ManualEventSucceed) {
  sim::Environment env;
  auto ev = env.event();
  EXPECT_FALSE(ev->triggered());
  bool fired = false;
  ev->add_callback([&](sim::EventCore&) { fired = true; });
  ev->succeed();
  EXPECT_TRUE(ev->triggered());
  EXPECT_FALSE(ev->processed());
  env.run();
  EXPECT_TRUE(fired);
  EXPECT_TRUE(ev->processed());
}

TEST(Environment, DoubleSucceedThrows) {
  sim::Environment env;
  auto ev = env.event();
  ev->succeed();
  EXPECT_THROW(ev->succeed(), std::logic_error);
}

TEST(Environment, FailedEventCarriesError) {
  sim::Environment env;
  auto ev = env.event();
  ev->fail(std::make_exception_ptr(std::runtime_error("boom")));
  bool saw_failure = false;
  ev->add_callback([&](sim::EventCore& e) { saw_failure = e.failed(); });
  env.run();
  EXPECT_TRUE(saw_failure);
  ASSERT_NE(ev->error(), nullptr);
  EXPECT_THROW(std::rethrow_exception(ev->error()), std::runtime_error);
}

TEST(Environment, CallbackOnProcessedEventRunsImmediately) {
  sim::Environment env;
  auto ev = env.timeout(0.0);
  env.run();
  bool fired = false;
  ev->add_callback([&](sim::EventCore&) { fired = true; });
  EXPECT_TRUE(fired);
}

TEST(Environment, CallbacksMayScheduleMoreEvents) {
  sim::Environment env;
  int chain = 0;
  std::function<void(sim::EventCore&)> next = [&](sim::EventCore& e) {
    if (++chain < 5) e.env().timeout(1.0)->add_callback(next);
  };
  env.timeout(1.0)->add_callback(next);
  env.run();
  EXPECT_EQ(chain, 5);
  EXPECT_DOUBLE_EQ(env.now(), 5.0);
}

TEST(Environment, PostRunsCallableAtCurrentTime) {
  sim::Environment env;
  double t = -1.0;
  env.timeout(7.0)->add_callback([&](sim::EventCore& e) {
    e.env().post([&env, &t] { t = env.now(); });
  });
  env.run();
  EXPECT_DOUBLE_EQ(t, 7.0);
}

TEST(Environment, ScheduleAtFiresAtAbsoluteTime) {
  sim::Environment env;
  env.timeout(4.0);
  env.run_until(4.0);
  auto ev = env.event();
  double fired_at = -1.0;
  ev->add_callback([&](sim::EventCore& e) { fired_at = e.env().now(); });
  env.schedule_at(ev, 9.0);  // absolute, not relative to now()==4
  EXPECT_TRUE(ev->triggered());
  env.run();
  EXPECT_DOUBLE_EQ(fired_at, 9.0);
}

TEST(Environment, ScheduleAtRejectsPastTime) {
  sim::Environment env;
  env.timeout(5.0);
  env.run();
  auto ev = env.event();
  EXPECT_THROW(env.schedule_at(ev, 1.0), std::invalid_argument);
}

TEST(Environment, PostEventFiresAtCurrentTime) {
  sim::Environment env;
  env.timeout(3.0);
  env.run_until(3.0);
  auto ev = env.event();
  double fired_at = -1.0;
  ev->add_callback([&](sim::EventCore& e) { fired_at = e.env().now(); });
  env.post(ev);
  env.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(Environment, EventsProcessedCounter) {
  sim::Environment env;
  for (int i = 0; i < 10; ++i) env.timeout(static_cast<double>(i));
  env.run();
  EXPECT_EQ(env.events_processed(), 10u);
}
