/// Property tests for the kernel's flat 4-ary event heap: against many
/// randomized push/pop interleavings, the pop order must equal a stable
/// sort of the inserted entries by (fire_time, seq). This is the heap's
/// whole contract — time order with FIFO tie-break — and the invariant
/// the golden-trace suite depends on one layer up.

#include "sim/event_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace sim = pckpt::sim;

namespace {

bool entry_before(const sim::HeapEntry& a, const sim::HeapEntry& b) {
  if (a.t != b.t) return a.t < b.t;
  return a.seq < b.seq;
}

std::vector<sim::HeapEntry> drain(sim::EventHeap& h) {
  std::vector<sim::HeapEntry> out;
  while (!h.empty()) out.push_back(h.pop());
  return out;
}

void expect_same_order(const std::vector<sim::HeapEntry>& popped,
                       std::vector<sim::HeapEntry> inserted,
                       std::uint64_t seed) {
  // seq values are unique, so a plain sort by (t, seq) IS the stable
  // order of insertion among equal times.
  std::sort(inserted.begin(), inserted.end(), entry_before);
  ASSERT_EQ(popped.size(), inserted.size()) << "seed " << seed;
  for (std::size_t i = 0; i < popped.size(); ++i) {
    EXPECT_EQ(popped[i].t, inserted[i].t) << "seed " << seed << " pos " << i;
    EXPECT_EQ(popped[i].seq, inserted[i].seq)
        << "seed " << seed << " pos " << i;
    EXPECT_EQ(popped[i].slot, inserted[i].slot)
        << "seed " << seed << " pos " << i;
  }
}

}  // namespace

TEST(EventHeap, StartsEmpty) {
  sim::EventHeap h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
}

TEST(EventHeap, PopsTimeOrderWithFifoTieBreak) {
  sim::EventHeap h;
  // Three distinct times plus three entries at the same time; the equal
  // ones must come back in seq (insertion) order.
  h.push({5.0, 0, 10});
  h.push({1.0, 1, 11});
  h.push({3.0, 2, 12});
  h.push({3.0, 3, 13});
  h.push({3.0, 4, 14});
  std::vector<sim::EventSlot> slots;
  while (!h.empty()) slots.push_back(h.pop().slot);
  EXPECT_EQ(slots, (std::vector<sim::EventSlot>{11, 12, 13, 14, 10}));
}

TEST(EventHeap, RandomizedPopOrderMatchesStableSort) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    // Test-local fuzzing RNG, explicitly seeded per iteration — never
    // feeds simulation state. lint: raw-rng-ok
    std::mt19937_64 rng(seed);
    // Heavy tie mass: draw times from a small integer grid so equal fire
    // times are the common case, exercising the seq tie-break hard.
    std::uniform_int_distribution<int> time_grid(0, 12);
    std::uniform_int_distribution<int> count(1, 200);
    sim::EventHeap h;
    std::vector<sim::HeapEntry> inserted;
    sim::EventSeq seq = 0;
    const int n = count(rng);
    for (int i = 0; i < n; ++i) {
      sim::HeapEntry e{static_cast<sim::SimTime>(time_grid(rng)), seq,
                       static_cast<sim::EventSlot>(seq)};
      ++seq;
      h.push(e);
      inserted.push_back(e);
    }
    expect_same_order(drain(h), std::move(inserted), seed);
  }
}

TEST(EventHeap, RandomizedInterleavedPushPop) {
  // Interleave pushes and pops the way the kernel does (pop one, schedule
  // a few more): every popped entry must still be the global minimum of
  // everything inserted-but-not-yet-popped at that moment.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    // Test-local fuzzing RNG, explicitly seeded per iteration. lint: raw-rng-ok
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> time_grid(0, 9);
    std::uniform_int_distribution<int> burst(1, 8);
    sim::EventHeap h;
    std::vector<sim::HeapEntry> live;  // mirror of the heap's content
    sim::EventSeq seq = 0;
    sim::SimTime now = 0.0;
    for (int round = 0; round < 120; ++round) {
      const int pushes = burst(rng);
      for (int i = 0; i < pushes; ++i) {
        // Fire times never precede the clock, as in the kernel.
        sim::HeapEntry e{now + time_grid(rng), seq,
                         static_cast<sim::EventSlot>(seq)};
        ++seq;
        h.push(e);
        live.push_back(e);
      }
      ASSERT_FALSE(h.empty());
      const sim::HeapEntry popped = h.pop();
      now = popped.t;
      const auto expect =
          std::min_element(live.begin(), live.end(), entry_before);
      ASSERT_NE(expect, live.end());
      EXPECT_EQ(popped.seq, expect->seq) << "seed " << seed;
      EXPECT_EQ(popped.t, expect->t) << "seed " << seed;
      live.erase(expect);
    }
    // Drain what remains and check the tail order too.
    std::vector<sim::HeapEntry> rest = drain(h);
    expect_same_order(rest, std::move(live), seed);
  }
}

TEST(EventHeap, ClearEmptiesTheHeap) {
  sim::EventHeap h;
  for (int i = 0; i < 10; ++i) {
    h.push({static_cast<sim::SimTime>(i), static_cast<sim::EventSeq>(i), 0});
  }
  h.clear();
  EXPECT_TRUE(h.empty());
}
