#include "sim/resource.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/environment.hpp"
#include "sim/process.hpp"

namespace sim = pckpt::sim;

namespace {

/// Holds the resource for `hold` seconds, recording entry order.
sim::Process user(sim::Environment& env, sim::Resource& res, double priority,
                  double hold, int id, std::vector<int>* order) {
  auto req = res.request(priority);
  co_await req->granted;
  order->push_back(id);
  co_await env.timeout(hold);
  res.release(req);
}

sim::Process guarded_user(sim::Environment& env, sim::Resource& res,
                          double hold, std::vector<double>* done_times) {
  auto req = res.request();
  sim::ResourceGuard guard(res, req);
  co_await req->granted;
  co_await env.timeout(hold);
  done_times->push_back(env.now());
}

sim::Process interruptible_user(sim::Environment& env, sim::Resource& res,
                                double hold, bool* interrupted) {
  auto req = res.request();
  sim::ResourceGuard guard(res, req);
  try {
    co_await req->granted;
    co_await env.timeout(hold);
  } catch (const sim::Interrupted&) {
    *interrupted = true;
  }
}

}  // namespace

TEST(Resource, ZeroCapacityRejected) {
  sim::Environment env;
  EXPECT_THROW(sim::Resource(env, 0), std::invalid_argument);
}

TEST(Resource, GrantsUpToCapacityImmediately) {
  sim::Environment env;
  sim::Resource res(env, 2);
  auto a = res.request();
  auto b = res.request();
  auto c = res.request();
  EXPECT_TRUE(a->is_granted);
  EXPECT_TRUE(b->is_granted);
  EXPECT_FALSE(c->is_granted);
  EXPECT_EQ(res.in_use(), 2u);
  EXPECT_EQ(res.queue_length(), 1u);
}

TEST(Resource, ReleaseHandsSlotToWaiter) {
  sim::Environment env;
  sim::Resource res(env, 1);
  auto a = res.request();
  auto b = res.request();
  EXPECT_FALSE(b->is_granted);
  res.release(a);
  EXPECT_TRUE(b->is_granted);
  EXPECT_EQ(res.in_use(), 1u);
}

TEST(Resource, FifoAmongEqualPriorities) {
  sim::Environment env;
  sim::Resource res(env, 1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    env.spawn(user(env, res, 0.0, 1.0, i, &order));
  }
  env.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Resource, LowerPriorityValueGoesFirst) {
  sim::Environment env;
  sim::Resource res(env, 1);
  std::vector<int> order;
  // id 0 grabs the slot; 1..3 queue with descending priority values so the
  // grant order must be reversed.
  env.spawn(user(env, res, 0.0, 1.0, 0, &order));
  env.spawn(user(env, res, 30.0, 1.0, 1, &order));
  env.spawn(user(env, res, 20.0, 1.0, 2, &order));
  env.spawn(user(env, res, 10.0, 1.0, 3, &order));
  env.run();
  EXPECT_EQ(order, (std::vector<int>{0, 3, 2, 1}));
}

TEST(Resource, SerializesHolders) {
  sim::Environment env;
  sim::Resource res(env, 1);
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) env.spawn(guarded_user(env, res, 2.0, &done));
  env.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_DOUBLE_EQ(done[0], 2.0);
  EXPECT_DOUBLE_EQ(done[1], 4.0);
  EXPECT_DOUBLE_EQ(done[2], 6.0);
}

TEST(Resource, CapacityTwoOverlaps) {
  sim::Environment env;
  sim::Resource res(env, 2);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) env.spawn(guarded_user(env, res, 2.0, &done));
  env.run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_DOUBLE_EQ(done[0], 2.0);
  EXPECT_DOUBLE_EQ(done[1], 2.0);
  EXPECT_DOUBLE_EQ(done[2], 4.0);
  EXPECT_DOUBLE_EQ(done[3], 4.0);
}

TEST(Resource, CancelWaitingRequestLeavesQueueConsistent) {
  sim::Environment env;
  sim::Resource res(env, 1);
  auto a = res.request();
  auto b = res.request();
  auto c = res.request();
  res.release(b);  // cancel while waiting
  EXPECT_EQ(res.queue_length(), 1u);
  res.release(a);
  EXPECT_TRUE(c->is_granted);
}

TEST(Resource, ReleaseIsIdempotent) {
  sim::Environment env;
  sim::Resource res(env, 1);
  auto a = res.request();
  res.release(a);
  res.release(a);
  EXPECT_EQ(res.in_use(), 0u);
  auto b = res.request();
  EXPECT_TRUE(b->is_granted);
}

TEST(Resource, GuardReleasesOnInterrupt) {
  sim::Environment env;
  sim::Resource res(env, 1);
  bool interrupted = false;
  auto p = env.spawn(interruptible_user(env, res, 100.0, &interrupted));
  env.timeout(5.0)->add_callback(
      [&](sim::EventCore&) { p.interrupt(std::string("failure")); });
  env.run();
  EXPECT_TRUE(interrupted);
  // The interrupted holder must have released the slot via its guard.
  EXPECT_EQ(res.in_use(), 0u);
  auto b = res.request();
  EXPECT_TRUE(b->is_granted);
}

TEST(Resource, InterruptedWaiterDoesNotConsumeSlot) {
  sim::Environment env;
  sim::Resource res(env, 1);
  bool holder_irq = false, waiter_irq = false;
  env.spawn(interruptible_user(env, res, 100.0, &holder_irq));
  auto waiter = env.spawn(interruptible_user(env, res, 1.0, &waiter_irq));
  env.timeout(5.0)->add_callback(
      [&](sim::EventCore&) { waiter.interrupt(std::string("x")); });
  env.run_until(50.0);
  EXPECT_TRUE(waiter_irq);
  EXPECT_FALSE(holder_irq);
  EXPECT_EQ(res.queue_length(), 0u);
  EXPECT_EQ(res.in_use(), 1u);  // original holder still running
}
