#include "sim/process.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/environment.hpp"

namespace sim = pckpt::sim;

namespace {

sim::Process sleeper(sim::Environment& env, double dt, double* woke_at) {
  co_await env.timeout(dt);
  *woke_at = env.now();
}

sim::Process two_phase(sim::Environment& env, std::vector<double>* marks) {
  co_await env.timeout(1.0);
  marks->push_back(env.now());
  co_await env.timeout(2.0);
  marks->push_back(env.now());
}

sim::Process waiter_on(sim::Environment&, sim::EventPtr ev, bool* done) {
  co_await ev;
  *done = true;
}

sim::Process interruptible(sim::Environment& env, double dt,
                           bool* interrupted, double* at,
                           std::string* cause_out) {
  try {
    co_await env.timeout(dt);
  } catch (const sim::Interrupted& irq) {
    *interrupted = true;
    *at = env.now();
    if (irq.cause().has_value()) {
      *cause_out = std::any_cast<std::string>(irq.cause());
    }
  }
}

sim::Process thrower(sim::Environment& env) {
  co_await env.timeout(1.0);
  throw std::runtime_error("process died");
}

sim::Process parent_waits_child(sim::Environment& env, double* child_done_at,
                                double* parent_done_at) {
  auto child = env.spawn(sleeper(env, 5.0, child_done_at));
  co_await child;
  *parent_done_at = env.now();
}

}  // namespace

namespace {

sim::Process delay_sleeper(sim::Environment& env, double dt, double* woke_at) {
  co_await env.delay(dt);
  *woke_at = env.now();
}

sim::Process delay_interruptible(sim::Environment& env, double dt,
                                 bool* interrupted, double* at) {
  try {
    co_await env.delay(dt);
  } catch (const sim::Interrupted&) {
    *interrupted = true;
    *at = env.now();
  }
  // The abandoned timer must not fire back into the coroutine: sleep
  // again past the original deadline and record the second wake.
  co_await env.delay(dt);
}

}  // namespace

TEST(Process, DelaySuspendsForSimTime) {
  sim::Environment env;
  double woke = -1.0;
  env.spawn(delay_sleeper(env, 3.5, &woke));
  env.run();
  EXPECT_DOUBLE_EQ(woke, 3.5);
  EXPECT_EQ(env.live_processes(), 0u);
}

TEST(Process, DelayRejectsNegative) {
  sim::Environment env;
  double woke = -1.0;
  env.spawn(delay_sleeper(env, -1.0, &woke)).named("bad-delay");
  env.run();
  ASSERT_EQ(env.process_errors().size(), 1u);
  EXPECT_THROW(std::rethrow_exception(env.process_errors().front().second),
               std::invalid_argument);
}

TEST(Process, InterruptedDelayDoesNotWakeTwice) {
  sim::Environment env;
  bool interrupted = false;
  double at = -1.0;
  auto p = env.spawn(delay_interruptible(env, 10.0, &interrupted, &at));
  env.timeout(4.0)->add_callback(
      [st = p.state()](sim::EventCore&) { st->interrupt(); });
  env.run();
  EXPECT_TRUE(interrupted);
  EXPECT_DOUBLE_EQ(at, 4.0);
  // Second sleep ran its full 10 s from t=4: the stale timer entry from
  // the interrupted wait (t=10) was disarmed, not redelivered.
  EXPECT_DOUBLE_EQ(env.now(), 14.0);
}

TEST(Process, TimeoutSuspendsForSimTime) {
  sim::Environment env;
  double woke = -1.0;
  env.spawn(sleeper(env, 3.5, &woke));
  env.run();
  EXPECT_DOUBLE_EQ(woke, 3.5);
  EXPECT_EQ(env.live_processes(), 0u);
}

TEST(Process, SequentialTimeoutsAccumulate) {
  sim::Environment env;
  std::vector<double> marks;
  env.spawn(two_phase(env, &marks));
  env.run();
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_DOUBLE_EQ(marks[0], 1.0);
  EXPECT_DOUBLE_EQ(marks[1], 3.0);
}

TEST(Process, AwaitManualEvent) {
  sim::Environment env;
  auto gate = env.event();
  bool done = false;
  env.spawn(waiter_on(env, gate, &done));
  env.run();
  EXPECT_FALSE(done);  // nothing triggered the gate
  gate->succeed();
  env.run();
  EXPECT_TRUE(done);
}

TEST(Process, ManyWaitersOnOneEventAllWake) {
  sim::Environment env;
  auto gate = env.event();
  bool done[4] = {false, false, false, false};
  for (bool& d : done) env.spawn(waiter_on(env, gate, &d));
  gate->succeed();
  env.run();
  for (bool d : done) EXPECT_TRUE(d);
}

TEST(Process, DoneEventFiresOnCompletion) {
  sim::Environment env;
  double woke = -1.0;
  auto p = env.spawn(sleeper(env, 2.0, &woke));
  bool parent_saw = false;
  p.done_event()->add_callback([&](sim::EventCore&) { parent_saw = true; });
  env.run();
  EXPECT_TRUE(parent_saw);
  EXPECT_TRUE(p.finished());
}

TEST(Process, AwaitChildProcess) {
  sim::Environment env;
  double child_done = -1.0, parent_done = -1.0;
  env.spawn(parent_waits_child(env, &child_done, &parent_done));
  env.run();
  EXPECT_DOUBLE_EQ(child_done, 5.0);
  EXPECT_DOUBLE_EQ(parent_done, 5.0);
}

TEST(Process, InterruptWakesAtInterruptTime) {
  sim::Environment env;
  bool interrupted = false;
  double at = -1.0;
  std::string cause;
  auto p = env.spawn(interruptible(env, 100.0, &interrupted, &at, &cause));
  env.timeout(10.0)->add_callback([&](sim::EventCore&) {
    p.interrupt(std::string("failure"));
  });
  env.run();
  EXPECT_TRUE(interrupted);
  EXPECT_DOUBLE_EQ(at, 10.0);
  EXPECT_EQ(cause, "failure");
}

TEST(Process, InterruptedTimeoutDoesNotWakeTwice) {
  sim::Environment env;
  bool interrupted = false;
  double at = -1.0;
  std::string cause;
  auto p = env.spawn(interruptible(env, 20.0, &interrupted, &at, &cause));
  env.timeout(5.0)->add_callback(
      [&](sim::EventCore&) { p.interrupt(std::string("x")); });
  env.run();  // runs past t=20 where the stale timeout fires
  EXPECT_TRUE(interrupted);
  EXPECT_DOUBLE_EQ(at, 5.0);
  EXPECT_TRUE(p.finished());
  EXPECT_DOUBLE_EQ(env.now(), 20.0);  // stale timeout still drains the heap
}

TEST(Process, InterruptFinishedProcessIsNoop) {
  sim::Environment env;
  double woke = -1.0;
  auto p = env.spawn(sleeper(env, 1.0, &woke));
  env.run();
  EXPECT_TRUE(p.finished());
  EXPECT_FALSE(p.interrupt(std::string("late")));
}

TEST(Process, UncaughtExceptionRecordedAndFailsDoneEvent) {
  sim::Environment env;
  auto p = env.spawn(thrower(env));
  bool done_failed = false;
  p.done_event()->add_callback(
      [&](sim::EventCore& e) { done_failed = e.failed(); });
  env.run();
  EXPECT_TRUE(done_failed);
  ASSERT_EQ(env.process_errors().size(), 1u);
  EXPECT_THROW(std::rethrow_exception(env.process_errors()[0].second),
               std::runtime_error);
}

TEST(Process, AwaitingFailedChildRethrows) {
  sim::Environment env;
  bool caught = false;
  auto parent = [](sim::Environment& e, bool* c) -> sim::Process {
    auto child = e.spawn(thrower(e));
    try {
      co_await child;
    } catch (const std::runtime_error&) {
      *c = true;
    }
  };
  env.spawn(parent(env, &caught));
  env.run();
  EXPECT_TRUE(caught);
}

TEST(Process, EnvironmentTeardownReclaimsUnfinishedProcesses) {
  // A process parked on a never-triggered event must not leak or crash when
  // the environment is destroyed (ASan-clean).
  bool done = false;
  {
    sim::Environment env;
    auto gate = env.event();
    env.spawn(waiter_on(env, gate, &done));
    env.run();
    EXPECT_EQ(env.live_processes(), 1u);
  }
  EXPECT_FALSE(done);
}

TEST(Process, NamesAreCarriedIntoErrorRecords) {
  sim::Environment env;
  env.spawn(thrower(env)).named("doomed");
  env.run();
  ASSERT_EQ(env.process_errors().size(), 1u);
  EXPECT_EQ(env.process_errors()[0].first, "doomed");
}

TEST(Process, SpawningTwiceThrows) {
  sim::Environment env;
  double woke = 0.0;
  auto p = env.spawn(sleeper(env, 1.0, &woke));
  EXPECT_THROW(env.spawn(p), std::logic_error);
}

TEST(Process, ZeroDelayTimeoutRunsSameTime) {
  sim::Environment env;
  double woke = -1.0;
  env.spawn(sleeper(env, 0.0, &woke));
  env.run();
  EXPECT_DOUBLE_EQ(woke, 0.0);
}

TEST(Process, InterruptBeforeFirstResumeDeliversAtFirstAwait) {
  sim::Environment env;
  bool interrupted = false;
  double at = -1.0;
  std::string cause;
  auto p = env.spawn(interruptible(env, 50.0, &interrupted, &at, &cause));
  p.interrupt(std::string("early"));
  env.run();
  EXPECT_TRUE(interrupted);
  EXPECT_DOUBLE_EQ(at, 0.0);
  EXPECT_EQ(cause, "early");
}
