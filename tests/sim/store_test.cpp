#include "sim/store.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/environment.hpp"
#include "sim/process.hpp"

namespace sim = pckpt::sim;

namespace {

sim::Process consumer(sim::Environment&, sim::Store& store,
                      std::vector<std::string>* got) {
  for (int i = 0; i < 2; ++i) {
    auto t = store.get();
    co_await t->ready;
    got->push_back(std::any_cast<std::string>(t->item));
  }
}

sim::Process producer(sim::Environment& env, sim::Store& store,
                      double delay) {
  co_await env.timeout(delay);
  store.put(std::string("a"));
  co_await env.timeout(delay);
  store.put(std::string("b"));
}

}  // namespace

TEST(Store, PutThenGetImmediate) {
  sim::Environment env;
  sim::Store s(env);
  s.put(42);
  auto t = s.get();
  EXPECT_TRUE(t->fulfilled);
  env.run();
  EXPECT_EQ(std::any_cast<int>(t->item), 42);
  EXPECT_EQ(s.items(), 0u);
}

TEST(Store, GetBlocksUntilPut) {
  sim::Environment env;
  sim::Store s(env);
  std::vector<std::string> got;
  env.spawn(consumer(env, s, &got));
  env.spawn(producer(env, s, 5.0));
  env.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "a");
  EXPECT_EQ(got[1], "b");
  EXPECT_DOUBLE_EQ(env.now(), 10.0);
}

TEST(Store, FifoAmongItems) {
  sim::Environment env;
  sim::Store s(env);
  s.put(1);
  s.put(2);
  s.put(3);
  auto a = s.get();
  auto b = s.get();
  EXPECT_EQ(std::any_cast<int>(a->item), 1);
  EXPECT_EQ(std::any_cast<int>(b->item), 2);
  EXPECT_EQ(s.items(), 1u);
}

TEST(Store, FifoAmongWaiters) {
  sim::Environment env;
  sim::Store s(env);
  auto t1 = s.get();
  auto t2 = s.get();
  EXPECT_EQ(s.waiting(), 2u);
  s.put(std::string("first"));
  EXPECT_TRUE(t1->fulfilled);
  EXPECT_FALSE(t2->fulfilled);
  s.put(std::string("second"));
  EXPECT_TRUE(t2->fulfilled);
  env.run();
  EXPECT_EQ(std::any_cast<std::string>(t1->item), "first");
  EXPECT_EQ(std::any_cast<std::string>(t2->item), "second");
}

TEST(Store, CountsAreAccurate) {
  sim::Environment env;
  sim::Store s(env);
  EXPECT_EQ(s.items(), 0u);
  EXPECT_EQ(s.waiting(), 0u);
  s.put(1);
  EXPECT_EQ(s.items(), 1u);
  (void)s.get();
  EXPECT_EQ(s.items(), 0u);
  (void)s.get();
  EXPECT_EQ(s.waiting(), 1u);
}
