/// Property tests for the slab event pool behind Environment::event():
/// generation-checked handles catch use-after-release, and steady-state
/// event traffic recycles slots instead of growing the pool. These pin
/// the two halves of the pool's contract — safety (stale access throws)
/// and the allocation-free hot path the kernel overhaul exists for.

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/environment.hpp"
#include "sim/event.hpp"
#include "sim/process.hpp"

namespace sim = pckpt::sim;

namespace {

sim::Process ticker(sim::Environment& env, int rounds) {
  for (int i = 0; i < rounds; ++i) co_await env.delay(1.0);
}

sim::Process timeout_ticker(sim::Environment& env, int rounds) {
  for (int i = 0; i < rounds; ++i) co_await env.timeout(1.0);
}

}  // namespace

TEST(EventPool, ObserverOutlivingEventThrowsOnAccess) {
  sim::Environment env;
  sim::EventObserver watch;
  {
    auto ev = env.timeout(1.0);
    watch = ev.observer();
    EXPECT_TRUE(watch.alive());
    EXPECT_FALSE(watch->processed());
  }
  // The heap entry keeps the record alive until it fires; processing
  // drops the last reference and recycles the slot (generation bump).
  env.run();
  EXPECT_FALSE(watch.alive());
  EXPECT_THROW(watch->processed(), std::logic_error);
}

TEST(EventPool, ObserverStaysDeadAfterSlotIsRecycled) {
  sim::Environment env;
  auto ev = env.timeout(1.0);
  auto watch = ev.observer();
  ev.reset();
  env.run();
  ASSERT_FALSE(watch.alive());
  // Re-acquire events until the released slot is handed out again. The
  // observer pinned the old generation, so it must keep throwing even
  // though the slot itself is live under a new identity.
  auto recycled = env.event();
  EXPECT_FALSE(watch.alive());
  EXPECT_THROW(watch->processed(), std::logic_error);
  EXPECT_TRUE(recycled->state() == sim::EventCore::State::kPending);
}

TEST(EventPool, HandleKeepsSlotAliveAcrossProcessing) {
  sim::Environment env;
  auto ev = env.timeout(2.0);
  env.run();
  // The owning handle held the record through processing: still valid,
  // state readable, no generation bump observed.
  EXPECT_TRUE(ev.valid());
  EXPECT_TRUE(ev->processed());
  EXPECT_FALSE(ev->failed());
}

TEST(EventPool, BatchOfEventsIsFullyRecycled) {
  sim::Environment env;
  for (int i = 0; i < 100; ++i) env.timeout(static_cast<double>(i));
  env.run();
  const auto& pool = env.event_pool();
  // No handles retained: every constructed slot is back on the free list.
  EXPECT_GE(pool.slots_created(), 100u);
  EXPECT_EQ(pool.free_slots(), pool.slots_created());
}

TEST(EventPool, SteadyStateDelayLoopDoesNotGrowPool) {
  sim::Environment env;
  env.spawn(ticker(env, 3));
  env.run();
  const std::size_t warm = env.event_pool().slots_created();
  sim::Environment env2;
  env2.spawn(ticker(env2, 5000));
  env2.run();
  // co_await env.delay() reuses the per-process timer event: thousands of
  // awaits need no more slots than the first few did.
  EXPECT_EQ(env2.event_pool().slots_created(), warm);
}

TEST(EventPool, SteadyStateTimeoutLoopDoesNotGrowPool) {
  sim::Environment env;
  env.spawn(timeout_ticker(env, 3));
  env.run();
  const std::size_t warm = env.event_pool().slots_created();
  sim::Environment env2;
  env2.spawn(timeout_ticker(env2, 5000));
  env2.run();
  // Even the event-returning timeout() path recycles: each fired event's
  // slot is free again before the next one is acquired.
  EXPECT_EQ(env2.event_pool().slots_created(), warm);
}
