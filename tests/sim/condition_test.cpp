#include "sim/condition.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/environment.hpp"
#include "sim/process.hpp"

namespace sim = pckpt::sim;

namespace {

sim::Process await_event(sim::Environment&, sim::EventPtr ev, double* at,
                         bool* failed) {
  try {
    co_await ev;
    *at = ev->env().now();
  } catch (...) {
    *failed = true;
  }
}

}  // namespace

TEST(Condition, AnyOfFiresOnFirst) {
  sim::Environment env;
  auto cond = sim::any_of(env, {env.timeout(5.0), env.timeout(2.0),
                                env.timeout(9.0)});
  double at = -1.0;
  bool failed = false;
  env.spawn(await_event(env, cond, &at, &failed));
  env.run();
  EXPECT_DOUBLE_EQ(at, 2.0);
  EXPECT_FALSE(failed);
}

TEST(Condition, AllOfWaitsForLast) {
  sim::Environment env;
  auto cond = sim::all_of(env, {env.timeout(5.0), env.timeout(2.0),
                                env.timeout(9.0)});
  double at = -1.0;
  bool failed = false;
  env.spawn(await_event(env, cond, &at, &failed));
  env.run();
  EXPECT_DOUBLE_EQ(at, 9.0);
}

TEST(Condition, EmptyAnyOfSucceedsImmediately) {
  sim::Environment env;
  auto cond = sim::any_of(env, {});
  double at = -1.0;
  bool failed = false;
  env.spawn(await_event(env, cond, &at, &failed));
  env.run();
  EXPECT_DOUBLE_EQ(at, 0.0);
}

TEST(Condition, EmptyAllOfSucceedsImmediately) {
  sim::Environment env;
  auto cond = sim::all_of(env, {});
  double at = -1.0;
  bool failed = false;
  env.spawn(await_event(env, cond, &at, &failed));
  env.run();
  EXPECT_DOUBLE_EQ(at, 0.0);
}

TEST(Condition, AnyOfPropagatesChildFailure) {
  sim::Environment env;
  auto bad = env.event();
  bad->fail(std::make_exception_ptr(std::runtime_error("bad")));
  auto cond = sim::any_of(env, {env.timeout(10.0), bad});
  double at = -1.0;
  bool failed = false;
  env.spawn(await_event(env, cond, &at, &failed));
  env.run();
  EXPECT_TRUE(failed);
}

TEST(Condition, AllOfPropagatesChildFailure) {
  sim::Environment env;
  auto bad = env.event();
  bad->fail(std::make_exception_ptr(std::runtime_error("bad")));
  auto cond = sim::all_of(env, {env.timeout(1.0), bad});
  double at = -1.0;
  bool failed = false;
  env.spawn(await_event(env, cond, &at, &failed));
  env.run();
  EXPECT_TRUE(failed);
}

TEST(Condition, AllOfWithAlreadyProcessedChildren) {
  sim::Environment env;
  auto a = env.timeout(1.0);
  auto b = env.timeout(2.0);
  env.run();  // both processed
  auto cond = sim::all_of(env, {a, b});
  double at = -1.0;
  bool failed = false;
  env.spawn(await_event(env, cond, &at, &failed));
  env.run();
  EXPECT_DOUBLE_EQ(at, 2.0);
  EXPECT_FALSE(failed);
}

TEST(Condition, AnyOfDoesNotDoubleFire) {
  sim::Environment env;
  auto cond = sim::any_of(env, {env.timeout(1.0), env.timeout(1.0)});
  int fires = 0;
  cond->add_callback([&](sim::EventCore&) { ++fires; });
  env.run();
  EXPECT_EQ(fires, 1);
}
