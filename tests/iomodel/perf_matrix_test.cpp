#include "iomodel/perf_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

using pckpt::iomodel::PerfMatrix;

namespace {
PerfMatrix tiny() {
  // nodes {1, 10}, sizes {1, 100} GB, bw row-major
  return PerfMatrix({1.0, 10.0}, {1.0, 100.0},
                    {10.0, 20.0,    // 1 node
                     50.0, 200.0}); // 10 nodes
}
}  // namespace

TEST(PerfMatrix, ExactGridPoints) {
  const auto m = tiny();
  EXPECT_DOUBLE_EQ(m.bandwidth(1.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(m.bandwidth(1.0, 100.0), 20.0);
  EXPECT_DOUBLE_EQ(m.bandwidth(10.0, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(m.bandwidth(10.0, 100.0), 200.0);
}

TEST(PerfMatrix, GeometricMidpointInterpolation) {
  const auto m = tiny();
  // Log-bilinear: halfway in log space between 1 and 100 GB is 10 GB, and
  // the interpolated bandwidth is the geometric mean.
  EXPECT_NEAR(m.bandwidth(1.0, 10.0), std::sqrt(10.0 * 20.0), 1e-9);
  EXPECT_NEAR(m.bandwidth(10.0, 10.0), std::sqrt(50.0 * 200.0), 1e-9);
}

TEST(PerfMatrix, ClampsOutsideGrid) {
  const auto m = tiny();
  EXPECT_DOUBLE_EQ(m.bandwidth(0.5, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(m.bandwidth(100.0, 1000.0), 200.0);
}

TEST(PerfMatrix, InterpolationIsMonotoneOnMonotoneGrid) {
  const auto m = tiny();
  double prev = 0.0;
  for (double n = 1.0; n <= 10.0; n += 0.5) {
    const double b = m.bandwidth(n, 50.0);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(PerfMatrix, InterpolatedValuesBoundedByCorners) {
  const auto m = tiny();
  for (double n : {1.5, 3.0, 7.7}) {
    for (double s : {2.0, 30.0, 90.0}) {
      const double b = m.bandwidth(n, s);
      EXPECT_GE(b, 10.0);
      EXPECT_LE(b, 200.0);
    }
  }
}

TEST(PerfMatrix, TransferSecondsConsistent) {
  const auto m = tiny();
  // 10 nodes x 100 GB at 200 GB/s = 5 s.
  EXPECT_NEAR(m.transfer_seconds(10.0, 100.0), 5.0, 1e-9);
}

TEST(PerfMatrix, SingleRowAndColumnGrid) {
  PerfMatrix m({4.0}, {8.0}, {42.0});
  EXPECT_DOUBLE_EQ(m.bandwidth(1.0, 1.0), 42.0);
  EXPECT_DOUBLE_EQ(m.bandwidth(100.0, 100.0), 42.0);
}

TEST(PerfMatrix, Validation) {
  EXPECT_THROW(PerfMatrix({}, {1.0}, {}), std::invalid_argument);
  EXPECT_THROW(PerfMatrix({1.0}, {}, {}), std::invalid_argument);
  EXPECT_THROW(PerfMatrix({2.0, 1.0}, {1.0}, {1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(PerfMatrix({1.0}, {1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(PerfMatrix({1.0}, {1.0}, {0.0}), std::invalid_argument);
  EXPECT_THROW(PerfMatrix({1.0, 1.0}, {1.0}, {1.0, 1.0}),
               std::invalid_argument);
}

TEST(PerfMatrix, BandwidthArgumentValidation) {
  const auto m = tiny();
  EXPECT_THROW(m.bandwidth(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(m.bandwidth(1.0, -1.0), std::invalid_argument);
}

TEST(PerfMatrix, QueryMatchesDirectLookups) {
  const auto m = tiny();
  const auto q = m.query(10.0, 100.0);
  EXPECT_TRUE(q.valid());
  EXPECT_DOUBLE_EQ(q.nodes(), 10.0);
  EXPECT_DOUBLE_EQ(q.per_node_gb(), 100.0);
  EXPECT_DOUBLE_EQ(q.bandwidth_gbps(), m.bandwidth(10.0, 100.0));
  EXPECT_DOUBLE_EQ(q.transfer_seconds(), m.transfer_seconds(10.0, 100.0));
}

TEST(PerfMatrix, DefaultQueryIsInvalid) {
  const pckpt::iomodel::BandwidthQuery q;
  EXPECT_FALSE(q.valid());
  EXPECT_DOUBLE_EQ(q.bandwidth_gbps(), 0.0);
}

TEST(PerfMatrix, RepeatedLookupsAreMemoStable) {
  // The thread-local memo cache must be invisible in values: the same
  // arguments return bit-identical bandwidth on every call, and other
  // matrices with other contents cannot pollute the answer.
  const auto m = tiny();
  const double first = m.bandwidth(3.0, 7.0);
  PerfMatrix other({1.0, 10.0}, {1.0, 100.0},
                   {1.0, 2.0, 5.0, 9.0});
  (void)other.bandwidth(3.0, 7.0);  // same args, different matrix
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(m.bandwidth(3.0, 7.0), first);
  }
}
