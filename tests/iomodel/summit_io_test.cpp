#include "iomodel/summit_io.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "iomodel/storage.hpp"

namespace io = pckpt::iomodel;

TEST(SummitIO, NodeBandwidthPeaksAtEightTasks) {
  const io::SummitIOConfig cfg;
  const double size = 64.0;  // large transfer
  const double at_peak = io::node_bandwidth_for_tasks(cfg.peak_tasks, size);
  for (int t = 1; t <= cfg.max_tasks; ++t) {
    EXPECT_LE(io::node_bandwidth_for_tasks(t, size), at_peak + 1e-9)
        << "tasks=" << t;
  }
  // Strictly worse away from the peak.
  EXPECT_LT(io::node_bandwidth_for_tasks(1, size), at_peak);
  EXPECT_LT(io::node_bandwidth_for_tasks(42, size), at_peak);
}

TEST(SummitIO, PeakMatchesPaperAnchor) {
  // Paper: 13-13.5 GB/s single-node PFS write with 8 tasks.
  const double bw = io::node_bandwidth_for_tasks(8, 256.0);
  EXPECT_GT(bw, 12.5);
  EXPECT_LT(bw, 13.5);
}

TEST(SummitIO, TaskRangeValidation) {
  EXPECT_THROW(io::node_bandwidth_for_tasks(0, 1.0), std::invalid_argument);
  EXPECT_THROW(io::node_bandwidth_for_tasks(43, 1.0), std::invalid_argument);
}

TEST(SummitIO, SizeEfficiencyIsSaturating) {
  double prev = 0.0;
  for (double s : {0.001, 0.01, 0.1, 1.0, 10.0, 100.0}) {
    const double e = io::size_efficiency(s);
    EXPECT_GT(e, prev);
    EXPECT_LE(e, 1.0);
    prev = e;
  }
  EXPECT_GT(io::size_efficiency(100.0), 0.99);
}

TEST(SummitIO, AggregateBandwidthMonotoneInNodes) {
  double prev = 0.0;
  for (double n : {1.0, 8.0, 64.0, 512.0, 4096.0}) {
    const double b = io::aggregate_bandwidth(n, 32.0);
    EXPECT_GT(b, prev);
    prev = b;
  }
}

TEST(SummitIO, AggregateBandwidthSaturatesBelowCeiling) {
  const io::SummitIOConfig cfg;
  const double b = io::aggregate_bandwidth(100000.0, 256.0, cfg);
  EXPECT_LT(b, cfg.pfs_ceiling_gbps);
  EXPECT_GT(b, 0.95 * cfg.pfs_ceiling_gbps);
}

TEST(SummitIO, SingleNodeAggregateMatchesNodeBandwidth) {
  // With one node, far from the ceiling, aggregate ~= node bandwidth.
  const double agg = io::aggregate_bandwidth(1.0, 64.0);
  const double node = io::node_bandwidth(64.0);
  EXPECT_NEAR(agg, node, node * 0.02);
}

TEST(SummitIO, MatrixMatchesGeneratorOnGridPoints) {
  const io::SummitIOConfig cfg;
  const auto m = io::make_summit_matrix(cfg, 4096.0, 13, 12);
  for (std::size_t i = 0; i < m.node_counts().size(); i += 3) {
    for (std::size_t j = 0; j < m.sizes_gb().size(); j += 3) {
      const double expected =
          io::aggregate_bandwidth(m.node_counts()[i], m.sizes_gb()[j], cfg);
      EXPECT_NEAR(m.cell(i, j), expected, expected * 1e-12);
    }
  }
}

TEST(SummitIO, MatrixInterpolatesCloseToGenerator) {
  const io::SummitIOConfig cfg;
  const auto m = io::make_summit_matrix(cfg, 4096.0, 17, 14);
  // Off-grid probes should be within a few percent of the analytic model.
  for (double n : {3.0, 47.0, 333.0, 2272.0}) {
    for (double s : {0.05, 0.81, 13.3, 284.5}) {
      const double analytic = io::aggregate_bandwidth(n, s, cfg);
      const double interp = m.bandwidth(n, s);
      EXPECT_NEAR(interp, analytic, analytic * 0.06)
          << "n=" << n << " s=" << s;
    }
  }
}

TEST(SummitIO, MakeMatrixValidation) {
  EXPECT_THROW(io::make_summit_matrix({}, 0.5), std::invalid_argument);
  EXPECT_THROW(io::make_summit_matrix({}, 64.0, 1, 5),
               std::invalid_argument);
}

TEST(StorageModel, BurstBufferTimings) {
  io::BurstBuffer bb;
  EXPECT_NEAR(bb.write_seconds(210.0), 100.0, 1e-9);
  EXPECT_NEAR(bb.read_seconds(55.0), 10.0, 1e-9);
  EXPECT_THROW(bb.write_seconds(-1.0), std::invalid_argument);
  EXPECT_THROW(bb.write_seconds(2000.0), std::invalid_argument);  // capacity
}

TEST(StorageModel, FacadeTimings) {
  const io::SummitIOConfig cfg;
  io::StorageModel storage(io::make_summit_matrix(cfg, 4096.0), {}, cfg);
  // Single-node PFS write of CHIMERA's per-node state: ~284.5 GB at
  // ~13.4 GB/s ~= 21 s.
  const double t = storage.pfs_single_node_seconds(284.5);
  EXPECT_GT(t, 19.0);
  EXPECT_LT(t, 23.0);
  // LM transfer of 512 GB at 12.5 GB/s = 41 s.
  EXPECT_NEAR(storage.lm_transfer_seconds(512.0), 40.96, 0.01);
  EXPECT_DOUBLE_EQ(storage.pfs_single_node_seconds(0.0), 0.0);
}

TEST(StorageModel, AggregateCheckpointAnchors) {
  const io::SummitIOConfig cfg;
  io::StorageModel storage(io::make_summit_matrix(cfg, 4096.0, 17, 14), {},
                           cfg);
  // CHIMERA full proactive checkpoint: ~646 TB over 2272 nodes — several
  // hundred seconds (far above typical lead times => safeguard fails).
  const double chimera = storage.pfs_aggregate_seconds(2272.0, 284.5);
  EXPECT_GT(chimera, 350.0);
  EXPECT_LT(chimera, 600.0);
  // POP: ~102.5 GB over 126 nodes — sub-second (safeguard succeeds).
  const double pop = storage.pfs_aggregate_seconds(126.0, 102.5 / 126.0);
  EXPECT_LT(pop, 2.0);
}
