#include "ckpt/campaign_ckpt.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "exec/thread_pool.hpp"
#include "failure/lead_time_model.hpp"
#include "failure/system_catalog.hpp"
#include "obs/collector.hpp"
#include "obs/trace_writer.hpp"
#include "random/rng.hpp"
#include "support/crash_harness.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace core = pckpt::core;
namespace exec = pckpt::exec;
namespace obs = pckpt::obs;
namespace w = pckpt::workload;
namespace f = pckpt::failure;
namespace rnd = pckpt::rnd;
using pckpt::ckpt::CampaignCheckpointer;
using pckpt::ckpt::decode_shard;
using pckpt::ckpt::DecodedShard;
using pckpt::ckpt::encode_shard;
using pckpt::ckpt::StringInterner;

namespace {

/// Shared fixture environment (built once: the PFS matrix is not free).
struct World {
  w::Machine machine = w::summit();
  pckpt::iomodel::StorageModel storage = machine.make_storage();
  f::LeadTimeModel leads = f::LeadTimeModel::summit_default();
  const f::FailureSystem& titan = f::system_by_name("titan");

  core::RunSetup setup(const w::Application& app) {
    core::RunSetup s;
    s.app = &app;
    s.machine = &machine;
    s.storage = &storage;
    s.system = &titan;
    s.leads = &leads;
    return s;
  }
};

World& world() {
  static World w;
  return w;
}

constexpr std::size_t kRuns = 40;  // 5 shards of kDefaultShardTrials = 8
constexpr std::uint64_t kSeed = 2022;
constexpr char kManifest[] = "campaign-ckpt-test/manifest-A";

core::CrConfig config_for(core::ModelKind kind) {
  core::CrConfig cfg;
  cfg.kind = kind;
  return cfg;
}

/// Bitwise result comparison via the codec itself: two results encode
/// to the same bytes iff every moment and counter is bit-identical.
std::string result_bytes(const core::CampaignResult& r) {
  return encode_shard(r, nullptr, 0, 0);
}

class CampaignCkptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/pckpt_campaign_ckpt_" + std::to_string(::getpid());
    clear_dir();
  }
  void TearDown() override { clear_dir(); }

  void clear_dir() {
    // The checkpointer creates one flat directory of <hex>.ckpt files.
    const std::string rm = "rm -rf " + dir_;
    ASSERT_EQ(std::system(rm.c_str()), 0);
  }

  std::string dir_;
};

// ---------------------------------------------------------------------
// Codec.
// ---------------------------------------------------------------------

TEST_F(CampaignCkptTest, ShardPayloadRoundTripsBitExact) {
  auto& wd = world();
  const auto setup = wd.setup(w::summit_workloads()[0]);
  const auto cfg = config_for(core::ModelKind::kP2);

  obs::CampaignTraceCollector trace(kRuns);
  const auto shard =
      core::run_campaign_shard(setup, cfg, 8, 16, kSeed, &trace);

  const std::string bytes = encode_shard(shard, &trace, 8, 16);
  StringInterner names;
  DecodedShard d;
  ASSERT_TRUE(decode_shard(bytes, names, d));
  EXPECT_TRUE(d.has_trace);
  EXPECT_EQ(result_bytes(d.result), result_bytes(shard));
  ASSERT_EQ(d.trial_events.size(), 8u);
  for (std::size_t t = 0; t < 8; ++t) {
    const auto& want = trace.events_for(8 + t);
    const auto& got = d.trial_events[t];
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_STREQ(got[i].name, want[i].name);
      EXPECT_EQ(got[i].t0_s, want[i].t0_s);
      EXPECT_EQ(got[i].t1_s, want[i].t1_s);
      EXPECT_EQ(got[i].run_id, want[i].run_id);
      EXPECT_EQ(got[i].track, want[i].track);
      EXPECT_EQ(got[i].category, want[i].category);
      ASSERT_EQ(got[i].field_count, want[i].field_count);
      for (std::size_t k = 0; k < want[i].field_count; ++k) {
        EXPECT_STREQ(got[i].fields[k].key, want[i].fields[k].key);
        EXPECT_EQ(got[i].fields[k].value, want[i].fields[k].value);
      }
    }
  }
}

TEST_F(CampaignCkptTest, DecodeRejectsMalformedPayloads) {
  auto& wd = world();
  const auto setup = wd.setup(w::summit_workloads()[0]);
  const auto shard = core::run_campaign_shard(
      setup, config_for(core::ModelKind::kM1), 0, 8, kSeed);
  const std::string good = encode_shard(shard, nullptr, 0, 8);

  StringInterner names;
  DecodedShard d;
  ASSERT_TRUE(decode_shard(good, names, d));
  EXPECT_FALSE(d.has_trace);

  EXPECT_FALSE(decode_shard("", names, d));
  EXPECT_FALSE(decode_shard(good.substr(0, good.size() - 1), names, d));
  EXPECT_FALSE(decode_shard(good + "x", names, d));
  std::string bad_version = good;
  bad_version[0] = '\x7f';
  EXPECT_FALSE(decode_shard(bad_version, names, d));
  std::string bad_kind = good;
  bad_kind[1] = '\x09';
  EXPECT_FALSE(decode_shard(bad_kind, names, d));
}

// ---------------------------------------------------------------------
// Checkpointer lifecycle.
// ---------------------------------------------------------------------

TEST_F(CampaignCkptTest, FreshOpenWritesManifestAndResumeReads)
{
  auto& wd = world();
  const auto setup = wd.setup(w::summit_workloads()[0]);
  const auto cfg = config_for(core::ModelKind::kP1);
  const auto plan = exec::plan_shards(kRuns);

  {
    CampaignCheckpointer ckpt(dir_, kManifest, kRuns, /*resume=*/false);
    EXPECT_FALSE(ckpt.stats().reused);
    EXPECT_EQ(ckpt.committed_prefix(), 0u);
    const auto shard =
        core::run_campaign_shard(setup, cfg, 0, plan.end(0), kSeed);
    ckpt.commit_shard(0, shard, 0, plan.end(0), nullptr);
  }
  {
    CampaignCheckpointer ckpt(dir_, kManifest, kRuns, /*resume=*/true);
    EXPECT_TRUE(ckpt.stats().reused);
    EXPECT_EQ(ckpt.committed_prefix(), 1u);
    core::CampaignResult out;
    ASSERT_TRUE(ckpt.load_shard(0, out, nullptr));
    EXPECT_EQ(result_bytes(out),
              result_bytes(core::run_campaign_shard(setup, cfg, 0,
                                                    plan.end(0), kSeed)));
    EXPECT_FALSE(ckpt.load_shard(1, out, nullptr));
  }
}

TEST_F(CampaignCkptTest, ResumeFalseDiscardsPreviousState) {
  auto& wd = world();
  const auto setup = wd.setup(w::summit_workloads()[0]);
  const auto cfg = config_for(core::ModelKind::kP1);
  {
    CampaignCheckpointer ckpt(dir_, kManifest, kRuns, /*resume=*/false);
    const auto shard = core::run_campaign_shard(setup, cfg, 0, 8, kSeed);
    ckpt.commit_shard(0, shard, 0, 8, nullptr);
  }
  CampaignCheckpointer ckpt(dir_, kManifest, kRuns, /*resume=*/false);
  EXPECT_FALSE(ckpt.stats().reused);
  EXPECT_EQ(ckpt.committed_prefix(), 0u);
}

TEST_F(CampaignCkptTest, PlanMismatchDiscardsStaleCheckpoint) {
  auto& wd = world();
  const auto setup = wd.setup(w::summit_workloads()[0]);
  const auto cfg = config_for(core::ModelKind::kP1);
  {
    CampaignCheckpointer ckpt(dir_, kManifest, kRuns, /*resume=*/false);
    const auto shard = core::run_campaign_shard(setup, cfg, 0, 8, kSeed);
    ckpt.commit_shard(0, shard, 0, 8, nullptr);
  }
  // Same manifest text (same key, same file) but a different trial
  // count: the stored plan no longer matches, so resuming must discard
  // rather than merge shards of the wrong geometry.
  CampaignCheckpointer ckpt(dir_, kManifest, kRuns + 8, /*resume=*/true);
  EXPECT_FALSE(ckpt.stats().reused);
  EXPECT_EQ(ckpt.committed_prefix(), 0u);
}

TEST_F(CampaignCkptTest, ShardCommittedWithoutTraceCannotServeTracedResume) {
  auto& wd = world();
  const auto setup = wd.setup(w::summit_workloads()[0]);
  const auto cfg = config_for(core::ModelKind::kP2);
  {
    CampaignCheckpointer ckpt(dir_, kManifest, kRuns, /*resume=*/false);
    const auto shard = core::run_campaign_shard(setup, cfg, 0, 8, kSeed);
    ckpt.commit_shard(0, shard, 0, 8, nullptr);
  }
  CampaignCheckpointer ckpt(dir_, kManifest, kRuns, /*resume=*/true);
  obs::CampaignTraceCollector trace(kRuns);
  core::CampaignResult out;
  EXPECT_FALSE(ckpt.load_shard(0, out, &trace));  // forces re-execution
  EXPECT_TRUE(ckpt.load_shard(0, out, nullptr));  // untraced load still fine
}

// ---------------------------------------------------------------------
// Every shard boundary x jobs in {1, 2, 7}: kill after shard k, resume,
// byte-identical merged result.
// ---------------------------------------------------------------------

TEST_F(CampaignCkptTest, ResumeAtEveryShardBoundaryIsByteIdentical) {
  auto& wd = world();
  const auto setup = wd.setup(w::summit_workloads()[0]);
  const auto cfg = config_for(core::ModelKind::kP2);
  const auto plan = exec::plan_shards(kRuns);
  ASSERT_EQ(plan.count(), 5u);

  const auto reference = core::run_campaign(setup, cfg, kRuns, kSeed);
  const std::string want = result_bytes(reference);

  const std::size_t jobs_cycle[] = {1, 2, 7};
  for (std::size_t k = 0; k <= plan.count(); ++k) {
    for (const std::size_t jobs : jobs_cycle) {
      SCOPED_TRACE("k=" + std::to_string(k) + " jobs=" + std::to_string(jobs));
      clear_dir();
      // Stage an interrupted run: shards [0, k) committed, then killed.
      {
        CampaignCheckpointer ckpt(dir_, kManifest, kRuns, /*resume=*/false);
        for (std::size_t i = 0; i < k; ++i) {
          const auto shard = core::run_campaign_shard(
              setup, cfg, plan.begin(i), plan.end(i), kSeed);
          ckpt.commit_shard(i, shard, plan.begin(i), plan.end(i), nullptr);
        }
      }
      // Resume on a pool of `jobs` workers.
      CampaignCheckpointer ckpt(dir_, kManifest, kRuns, /*resume=*/true);
      exec::ThreadPool pool(jobs);
      exec::ThreadPoolExecutor ex(pool);
      const auto resumed = core::run_campaign(setup, cfg, kRuns, kSeed, ex,
                                              {}, nullptr, &ckpt);
      EXPECT_EQ(result_bytes(resumed), want);
      const auto s = ckpt.stats();
      EXPECT_EQ(s.committed_prefix, k);
      EXPECT_EQ(s.resumed, k);                  // no committed shard redone
      EXPECT_EQ(s.committed, plan.count() - k);  // the rest executed once
    }
  }
}

TEST_F(CampaignCkptTest, TracedResumeProducesByteIdenticalTraceOutput) {
  auto& wd = world();
  const auto setup = wd.setup(w::summit_workloads()[0]);
  const auto cfg = config_for(core::ModelKind::kP2);
  const auto plan = exec::plan_shards(kRuns);
  constexpr std::size_t kKillAfter = 2;

  // Uninterrupted reference run with tracing.
  obs::CampaignTraceCollector ref_trace;
  exec::SerialExecutor ref_serial;
  const auto reference = core::run_campaign(setup, cfg, kRuns, kSeed,
                                            ref_serial, {}, &ref_trace);
  std::ostringstream ref_out;
  {
    auto writer = obs::make_trace_writer(obs::TraceFormat::kJsonl, ref_out);
    ref_trace.write(*writer, "app/P2");
    writer->finish();
  }

  // Interrupted run: kKillAfter shards committed with their trace.
  {
    CampaignCheckpointer ckpt(dir_, kManifest, kRuns, /*resume=*/false);
    obs::CampaignTraceCollector partial(kRuns);
    for (std::size_t i = 0; i < kKillAfter; ++i) {
      const auto shard = core::run_campaign_shard(
          setup, cfg, plan.begin(i), plan.end(i), kSeed, &partial);
      ckpt.commit_shard(i, shard, plan.begin(i), plan.end(i), &partial);
    }
  }

  // Resume with tracing; shard events replay from the checkpoint.
  CampaignCheckpointer ckpt(dir_, kManifest, kRuns, /*resume=*/true);
  obs::CampaignTraceCollector resumed_trace;
  exec::SerialExecutor serial;
  const auto resumed = core::run_campaign(setup, cfg, kRuns, kSeed, serial,
                                          {}, &resumed_trace, &ckpt);
  EXPECT_EQ(result_bytes(resumed), result_bytes(reference));
  EXPECT_EQ(ckpt.stats().resumed, kKillAfter);

  std::ostringstream resumed_out;
  {
    auto writer =
        obs::make_trace_writer(obs::TraceFormat::kJsonl, resumed_out);
    resumed_trace.write(*writer, "app/P2");
    writer->finish();
  }
  EXPECT_EQ(resumed_out.str(), ref_out.str());
}

// ---------------------------------------------------------------------
// Kill-anywhere sweep: randomized write-fault offsets through the shared
// crash harness. Whatever byte the campaign dies on, resuming completes
// to byte-identical results, never loses a committed shard, and never
// re-executes one.
// ---------------------------------------------------------------------

namespace {
/// Forwards to the real checkpointer and acknowledges each durable
/// commit to the harness pipe.
struct AckingSink final : core::CampaignCheckpointSink {
  core::CampaignCheckpointSink* inner = nullptr;
  const std::function<void()>* ack = nullptr;

  bool load_shard(std::size_t shard, core::CampaignResult& out,
                  obs::CampaignTraceCollector* trace) override {
    return inner->load_shard(shard, out, trace);
  }
  void commit_shard(std::size_t shard, const core::CampaignResult& result,
                    std::size_t first_run, std::size_t last_run,
                    const obs::CampaignTraceCollector* trace) override {
    inner->commit_shard(shard, result, first_run, last_run, trace);
    (*ack)();
  }
};
}  // namespace

TEST_F(CampaignCkptTest, KillAnywhereResumeIsByteIdentical) {
  auto& wd = world();
  const auto setup = wd.setup(w::summit_workloads()[0]);
  const auto cfg = config_for(core::ModelKind::kP2);
  const auto plan = exec::plan_shards(kRuns);

  const auto reference = core::run_campaign(setup, cfg, kRuns, kSeed);
  const std::string want = result_bytes(reference);

  rnd::Xoshiro256 rng(20260808u);
  const std::size_t jobs_cycle[] = {1, 2, 7};
  int kills = 0;
  int completions = 0;
  for (int trial = 0; trial < 40; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    clear_dir();
    const long long budget = 1 + static_cast<long long>(rng() % 6000);
    const auto out = pckpt::testsupport::run_crashing_child(
        budget, [&](const std::function<void()>& ack) {
          CampaignCheckpointer ckpt(dir_, kManifest, kRuns, /*resume=*/true);
          AckingSink sink;
          sink.inner = &ckpt;
          sink.ack = &ack;
          exec::SerialExecutor serial;
          core::run_campaign(setup, cfg, kRuns, kSeed, serial, {}, nullptr,
                             &sink);
        });
    ASSERT_TRUE(out.killed_by_fault() || out.completed());
    if (out.killed_by_fault()) ++kills;
    if (out.completed()) ++completions;

    // Reopen: every acknowledged shard commit must have survived...
    CampaignCheckpointer ckpt(dir_, kManifest, kRuns, /*resume=*/true);
    const std::size_t prefix = ckpt.committed_prefix();
    ASSERT_GE(static_cast<int>(prefix), out.acks);       // nothing lost
    ASSERT_LE(static_cast<int>(prefix), out.acks + 1);   // +1 in-flight max

    // ...and the resumed campaign must merge to the reference bytes on
    // any worker count, re-executing only the unacknowledged suffix.
    const std::size_t jobs = jobs_cycle[static_cast<std::size_t>(trial) % 3];
    exec::ThreadPool pool(jobs);
    exec::ThreadPoolExecutor ex(pool);
    const auto resumed =
        core::run_campaign(setup, cfg, kRuns, kSeed, ex, {}, nullptr, &ckpt);
    ASSERT_EQ(result_bytes(resumed), want);
    const auto s = ckpt.stats();
    ASSERT_EQ(s.resumed, prefix);                  // committed never redone
    ASSERT_EQ(s.committed, plan.count() - prefix);  // suffix executed once
  }
  // The sweep must exercise both genuine kills and full completions.
  EXPECT_GT(kills, 10);
  EXPECT_GT(completions, 0);
}

}  // namespace
