#include "ckpt/durable_log.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "random/rng.hpp"
#include "support/crash_harness.hpp"

namespace pckpt::ckpt {
namespace {

class DurableLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/pckpt_durable_log_" + std::to_string(::getpid()) + ".log";
    ::unlink(path_.c_str());
    ::unlink((path_ + ".journal").c_str());
  }
  void TearDown() override {
    ::unlink(path_.c_str());
    ::unlink((path_ + ".journal").c_str());
  }

  std::string path_;
};

std::string payload_for(std::uint64_t i) {
  std::string p;
  const std::size_t len = 1 + (i * 53) % 200;
  p.reserve(len);
  for (std::size_t j = 0; j < len; ++j) {
    p.push_back(static_cast<char>((i * 101 + j * 13) % 256));
  }
  return p;
}

TEST_F(DurableLogTest, RoundTripPreservesBytesAndKeys) {
  {
    DurableLog log(path_);
    for (std::uint64_t i = 0; i < 20; ++i) log.append(i, payload_for(i));
    EXPECT_EQ(log.stats().frames, 20u);
  }
  std::map<std::uint64_t, std::string> got;
  DurableLog log(path_, [&](std::uint64_t key, std::string_view p) {
    got[key] = std::string(p);
  });
  ASSERT_EQ(got.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(got[i], payload_for(i));
  EXPECT_EQ(log.stats().frames, 20u);
  EXPECT_FALSE(log.stats().replayed_journal);
  EXPECT_EQ(log.stats().truncated_bytes, 0u);
}

TEST_F(DurableLogTest, ReplayVisitsFramesInLogOrderSoReAppendsWin) {
  {
    DurableLog log(path_);
    log.append(1, "first");
    log.append(2, "other");
    log.append(1, "second");
  }
  std::vector<std::pair<std::uint64_t, std::string>> seen;
  DurableLog log(path_, [&](std::uint64_t key, std::string_view p) {
    seen.emplace_back(key, std::string(p));
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<std::uint64_t, std::string>{1, "first"}));
  EXPECT_EQ(seen[1], (std::pair<std::uint64_t, std::string>{2, "other"}));
  EXPECT_EQ(seen[2], (std::pair<std::uint64_t, std::string>{1, "second"}));
}

TEST_F(DurableLogTest, GroupCommitIsAtomicAcrossReopen) {
  {
    DurableLog log(path_);
    std::vector<std::pair<std::uint64_t, std::string>> group;
    for (std::uint64_t i = 0; i < 5; ++i) group.emplace_back(i, payload_for(i));
    log.append_group(group);
    EXPECT_EQ(log.stats().frames, 5u);
  }
  std::size_t frames = 0;
  DurableLog log(path_, [&](std::uint64_t, std::string_view) { ++frames; });
  EXPECT_EQ(frames, 5u);
}

TEST_F(DurableLogTest, TornTailIsTruncatedCommittedPrefixSurvives) {
  std::uint64_t intact_size = 0;
  {
    DurableLog log(path_);
    log.append(1, payload_for(1));
    log.append(2, payload_for(2));
    intact_size = log.stats().log_bytes;
  }
  // Simulate a torn trailing frame: garbage appended past the committed
  // prefix, as a crash mid-append (pre-journal formats) would leave.
  {
    FILE* f = ::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("PCKR\x07garbage-torn-tail", f);
    ::fclose(f);
  }
  std::size_t frames = 0;
  DurableLog log(path_, [&](std::uint64_t, std::string_view) { ++frames; });
  EXPECT_EQ(frames, 2u);
  EXPECT_GT(log.stats().truncated_bytes, 0u);
  EXPECT_EQ(log.stats().log_bytes, intact_size);
  // Post-recovery the log is writable again.
  log.append(3, payload_for(3));
  EXPECT_EQ(log.stats().frames, 3u);
}

TEST_F(DurableLogTest, RemoveFilesDeletesBothAndPoisonsAppends) {
  DurableLog log(path_);
  log.append(1, "x");
  log.remove_files();
  EXPECT_NE(::access(path_.c_str(), F_OK), 0);
  EXPECT_NE(::access((path_ + ".journal").c_str(), F_OK), 0);
  EXPECT_THROW(log.append(2, "y"), std::logic_error);
}

TEST_F(DurableLogTest, OversizedPayloadIsRejectedUpFront) {
  DurableLog log(path_);
  // Can't allocate 4 GiB in a unit test; exercise the guard through a
  // string_view with a forged length instead.
  const std::string_view huge(static_cast<const char*>(nullptr),
                              0x100000000ull);
  EXPECT_THROW(log.append(1, huge), std::invalid_argument);
}

// Kill-anywhere sweep through the shared crash harness: whatever byte
// the child dies on, every acknowledged append must survive recovery,
// and an armed journal implies the in-flight record is durable too.
TEST_F(DurableLogTest, CrashAtRandomizedOffsetsNeverLosesCommittedRecords) {
  rnd::Xoshiro256 rng(20260808u);
  int kills = 0;
  int replays = 0;
  for (int trial = 0; trial < 40; ++trial) {
    TearDown();
    const long long budget = 1 + static_cast<long long>(rng() % 9000);
    const auto out = testsupport::run_crashing_child(
        budget, [&](const std::function<void()>& ack) {
          DurableLog log(path_);
          for (std::uint64_t i = 0; i < 64; ++i) {
            log.append(i, payload_for(i));
            ack();
          }
        });
    ASSERT_TRUE(out.killed_by_fault() || out.completed());
    if (out.killed_by_fault()) ++kills;

    std::map<std::uint64_t, std::string> got;
    DurableLog log(path_, [&](std::uint64_t key, std::string_view p) {
      got[key] = std::string(p);
    });
    if (log.stats().replayed_journal) ++replays;
    // Everything acknowledged is durable; at most one in-flight record
    // (journal committed, ack never sent) may appear beyond that.
    ASSERT_GE(static_cast<int>(got.size()), out.acks);
    ASSERT_LE(static_cast<int>(got.size()), out.acks + 1);
    for (std::uint64_t i = 0; i < got.size(); ++i) {
      ASSERT_TRUE(got.count(i) == 1);
      ASSERT_EQ(got[i], payload_for(i));
    }
    // Post-recovery the log accepts new appends.
    log.append(1000, "recovered");
  }
  // The budget range must actually exercise mid-write kills and journal
  // replays, not just complete runs.
  EXPECT_GT(kills, 10);
  EXPECT_GT(replays, 0);
}

}  // namespace
}  // namespace pckpt::ckpt
