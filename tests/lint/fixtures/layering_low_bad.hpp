#pragma once

// Linted under the virtual path src/sim/low.hpp: the simulation kernel
// reaching *up* into the serving layer is exactly the dependency the
// layering contract forbids (sim is layer 2, serve is layer 7).

#include "serve/high.hpp"

inline int low_value() { return serve_high_value(); }
