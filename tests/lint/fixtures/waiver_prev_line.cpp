// Fixture: standalone previous-line waiver honored.
#include <ctime>

double stamp() {
  // Bench harness wants a host timestamp here, not sim time.
  // lint: wall-clock-ok
  return static_cast<double>(time(nullptr));
}
