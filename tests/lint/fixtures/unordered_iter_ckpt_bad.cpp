// Fixture: violates unordered-iter (linted under src/ckpt/). Iterating
// an unordered container while encoding a checkpoint payload would make
// the on-disk bytes depend on hash-table order — resume would no longer
// be byte-identical.
#include <cstdint>
#include <string>
#include <unordered_map>

std::string encode(const std::unordered_map<std::uint64_t, std::string>& m) {
  std::string out;
  for (const auto& kv : m) out += kv.second;
  return out;
}
