// Fixture: a waiver for a different rule does not suppress wall-clock.
#include <ctime>

double stamp() {
  return static_cast<double>(time(nullptr));  // lint: raw-rng-ok
}
