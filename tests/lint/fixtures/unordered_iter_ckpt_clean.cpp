// Fixture: clean under unordered-iter in src/ckpt/. Keyed lookup into
// an unordered container is fine — only iteration leaks hash order into
// the persisted bytes.
#include <cstdint>
#include <string>
#include <unordered_map>

std::string lookup(const std::unordered_map<std::uint64_t, std::string>& m,
                   std::uint64_t key) {
  const auto it = m.find(key);
  return it == m.end() ? std::string() : it->second;
}
