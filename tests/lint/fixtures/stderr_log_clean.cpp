// Fixture: compliant serving-tree diagnostics — structured records via
// the runtime log, plus one waived last-resort stderr write (the
// pattern for "the log sink itself failed").
#include <cstdio>
#include <string>

struct FakeLog {
  void error(const std::string&, const std::string&) {}
};

void report(FakeLog& log, const char* what) {
  log.error("serve", what);
  std::fprintf(stderr, "log sink lost: %s\n", what);  // lint: stderr-log-ok
}
