// Fixture: violates fp-accum (linted under src/obs/).
double total(const double* xs, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += xs[i];
  return sum;
}
