// Fixture: flat storage in kernel files is fine (linted as
// src/sim/event.cpp).
#include <vector>

struct Flat {
  std::vector<int> slots;
};
