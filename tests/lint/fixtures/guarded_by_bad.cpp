// A counter whose field is annotated guarded_by(mu_) but incremented
// without taking the lock — the violating half of the guarded-by pair.
// read() takes the lock correctly, so exactly one finding fires.

#include <mutex>

class BadCounter {
 public:
  void increment() { ++count_; }

  int read() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

 private:
  mutable std::mutex mu_;
  int count_ = 0;  // guarded_by(mu_)
};
