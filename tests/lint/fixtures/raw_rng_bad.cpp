// Fixture: violates raw-rng outside src/random/.
#include <cstdlib>
#include <random>

int draw() {
  std::random_device rd;
  std::mt19937 gen(rd());
  return static_cast<int>(gen()) + rand();
}
