// Fixture: the typed scheduling API.
template <class E, class Ev, class Fn>
void new_style(E& env, Ev ev, Fn fn) {
  env.schedule_at(ev, env.now() + 1.5);
  env.post(fn);
}
