#pragma once

// Fixture: violates using-namespace.
#include <vector>

using namespace std;

inline vector<int> v() { return {}; }
