#pragma once

// Fixture: compliant header.
struct Guarded {
  int x = 0;
};
