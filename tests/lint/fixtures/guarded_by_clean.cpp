// The clean half of the guarded-by pair: every access to the annotated
// field happens under a lock on its mutex, the constructor initializer
// is exempt (the object is not shared yet), and the locked helper is
// annotated // requires(mu_) so callers carry the obligation.

#include <mutex>

class GoodCounter {
 public:
  GoodCounter() { count_ = 0; }

  void increment() {
    std::lock_guard<std::mutex> lock(mu_);
    bump_locked();
  }

  int read() const {
    std::scoped_lock lock(mu_);
    return count_;
  }

 private:
  // requires(mu_)
  void bump_locked() { ++count_; }

  mutable std::mutex mu_;
  int count_ = 0;  // guarded_by(mu_)
};
