// Fixture: violates wall-clock (linted under a src/ virtual path).
#include <chrono>
#include <ctime>

double stamp() {
  auto now = std::chrono::system_clock::now();
  (void)now;
  std::time_t t = time(nullptr);
  return static_cast<double>(t);
}
