// Fixture: steady_clock and simulation time are fine.
#include <chrono>

double elapsed() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}
