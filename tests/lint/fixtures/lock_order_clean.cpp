// The clean half of the lock-order pair: both paths acquire a_ before
// b_, so the acquisition graph has one edge and no cycle.

#include <mutex>

class GoodPair {
 public:
  void add() {
    std::lock_guard<std::mutex> la(a_);
    std::lock_guard<std::mutex> lb(b_);
    ++x_;
  }

  void sub() {
    std::lock_guard<std::mutex> la(a_);
    std::lock_guard<std::mutex> lb(b_);
    --x_;
  }

 private:
  std::mutex a_;
  std::mutex b_;
  int x_ = 0;
};
