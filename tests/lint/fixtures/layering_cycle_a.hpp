#pragma once

// Linted under the virtual path src/core/cycle_a.hpp: one half of an
// include cycle inside a single layer — same-layer includes are fine,
// but the cycle itself must be rejected.

#include "core/cycle_b.hpp"

inline int cycle_a_value() { return 1; }
