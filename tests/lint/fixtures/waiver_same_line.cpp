// Fixture: same-line waiver honored.
#include <ctime>

double stamp() {
  return static_cast<double>(time(nullptr));  // lint: wall-clock-ok
}
