// Fixture: violates unordered-iter (linted under src/sim/).
#include <string>
#include <unordered_map>

int sum_all(const std::unordered_map<std::string, int>& index) {
  int s = 0;
  for (const auto& kv : index) s += kv.second;
  return s;
}
