// Fixture: violates hot-path-container (linted as src/sim/event.cpp).
#include <map>

struct Index {
  std::map<int, int> by_id;
};
