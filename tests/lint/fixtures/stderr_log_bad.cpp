// Fixture: direct stderr logging in a serving-tree file — every write
// here must route through obs::RuntimeLog instead.
#include <cstdio>
#include <iostream>

void report(const char* what) {
  std::cerr << "error: " << what << "\n";
  std::fprintf(stderr, "error: %s\n", what);
  perror(what);
}
