// Fixture: violates hot-path-shared-ptr (linted as src/sim/event.cpp).
#include <memory>

struct Node {
  std::shared_ptr<Node> next;
};
