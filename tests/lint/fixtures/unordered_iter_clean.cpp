// Fixture: key lookup on unordered containers is fine.
#include <string>
#include <unordered_map>

int lookup(const std::unordered_map<std::string, int>& index) {
  const auto it = index.find("x");
  return it == index.end() ? 0 : it->second;
}
