// Fixture: header missing #pragma once.
struct NoGuard {
  int x = 0;
};
