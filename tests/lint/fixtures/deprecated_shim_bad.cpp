// Fixture: violates deprecated-shim.
struct Env;
void drive(Env& envr);

template <class E, class Ev, class Fn>
void old_style(E& env, Ev ev, Fn fn) {
  env.schedule(ev, 1.5);
  env.defer(fn);
}
