#pragma once

// Linted under the virtual path src/serve/high.hpp: a higher layer
// including a lower one is the legal direction.

#include "sim/low.hpp"

inline int serve_high_value() { return low_value() + 4; }
