// Inconsistent nested acquisition order: ab() locks a_ then b_, ba()
// locks b_ then a_. Two threads running them concurrently can deadlock;
// the lock-order rule reports the AB/BA cycle at both sites.

#include <mutex>

class BadPair {
 public:
  void ab() {
    std::lock_guard<std::mutex> la(a_);
    std::lock_guard<std::mutex> lb(b_);
    ++x_;
  }

  void ba() {
    std::lock_guard<std::mutex> lb(b_);
    std::lock_guard<std::mutex> la(a_);
    --x_;
  }

 private:
  std::mutex a_;
  std::mutex b_;
  int x_ = 0;
};
