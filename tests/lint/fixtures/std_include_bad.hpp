#pragma once

// Fixture: violates std-include (uses std::string via a transitive
// include; linted under src/).
#include <vector>

struct Named {
  std::vector<int> ids;
  std::string name;
};
