#pragma once

// Linted under the virtual path src/serve/high.hpp: a serving-layer
// header. It exists so the include in layering_low_bad.hpp resolves to
// a file in the project set (unresolved includes are never edges).

inline int serve_high_value() { return 7; }
