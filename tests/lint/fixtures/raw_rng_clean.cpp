// Fixture: randomness through the project RNG is fine.
#include "random/rng.hpp"

double draw(pckpt::rng::Xoshiro256& g) { return g.uniform01(); }
