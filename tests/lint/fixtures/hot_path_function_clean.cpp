// Fixture: EventCallback in kernel files is the sanctioned type.
struct EventCallbackUser {
  int inline_budget = 48;
};
