#pragma once

// Fixture: qualified names in headers.
#include <vector>

inline std::vector<int> v() { return {}; }
