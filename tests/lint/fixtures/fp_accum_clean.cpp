// Fixture: waived accumulation (order asserted deterministic).
double total(const double* xs, int n) {
  double sum = 0.0;
  // Samples arrive serialized in ascending trial order.
  for (int i = 0; i < n; ++i) sum += xs[i];  // lint: fp-order-ok
  return sum;
}
