// Fixture: violates hot-path-function (linted as src/sim/event.cpp).
#include <functional>

struct Hook {
  std::function<void()> cb;
};
