#pragma once

// Linted under the virtual path src/sim/low.hpp: a kernel-layer header
// with no upward includes — the clean half of the layering pair.

inline int low_value() { return 3; }
