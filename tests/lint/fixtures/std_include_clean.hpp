#pragma once

// Fixture: self-sufficient header.
#include <string>
#include <vector>

struct Named {
  std::vector<int> ids;
  std::string name;
};
