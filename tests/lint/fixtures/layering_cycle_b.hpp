#pragma once

// Linted under the virtual path src/core/cycle_b.hpp: the other half of
// the include cycle.

#include "core/cycle_a.hpp"

inline int cycle_b_value() { return 2; }
